#ifndef TABULA_BENCH_BENCH_APPROACHES_H_
#define TABULA_BENCH_BENCH_APPROACHES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/approach.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "viz/dashboard.h"

namespace tabula {
namespace bench {

/// One measured row of a Figure 11–14 style comparison.
struct ApproachRow {
  std::string name;
  double prepare_millis = 0.0;
  double avg_data_system_millis = 0.0;
  double avg_viz_millis = 0.0;
  double min_loss = 0.0;
  double avg_loss = 0.0;
  double max_loss = 0.0;
  size_t violations = 0;
  double avg_answer_tuples = 0.0;
  uint64_t memory_bytes = 0;
};

/// Prepares `approach`, replays the workload through the dashboard
/// harness, and aggregates the paper's metrics.
inline Result<ApproachRow> MeasureApproach(
    Approach* approach, const Table& table,
    const std::vector<WorkloadQuery>& workload,
    const DashboardOptions& dashboard, double theta) {
  ApproachRow row;
  row.name = approach->name();
  Stopwatch prep;
  TABULA_RETURN_NOT_OK(approach->Prepare());
  row.prepare_millis = prep.ElapsedMillis();
  TABULA_ASSIGN_OR_RETURN(DashboardReport report,
                          RunDashboard(approach, table, workload, dashboard));
  row.avg_data_system_millis = report.AvgDataSystemMillis();
  row.avg_viz_millis = report.AvgVizMillis();
  row.min_loss = report.MinActualLoss();
  row.avg_loss = report.AvgActualLoss();
  row.max_loss = report.MaxActualLoss();
  row.violations = report.LossViolations(theta);
  row.avg_answer_tuples = report.AvgAnswerTuples();
  row.memory_bytes = approach->MemoryBytes();
  return row;
}

/// Prints the rows as a paper-style table plus CSV.
inline void PrintApproachRows(const std::string& figure,
                              const std::string& theta_label,
                              const std::vector<ApproachRow>& rows) {
  std::printf("\n-- theta = %s --\n", theta_label.c_str());
  std::printf("%-16s %12s %12s %10s %10s %10s %6s %10s\n", "approach",
              "ds_ms", "viz_ms", "min_loss", "avg_loss", "max_loss", "viol",
              "tuples");
  for (const auto& r : rows) {
    std::printf("%-16s %12.3f %12.3f %10.4g %10.4g %10.4g %6zu %10.0f\n",
                r.name.c_str(), r.avg_data_system_millis, r.avg_viz_millis,
                r.min_loss, r.avg_loss, r.max_loss, r.violations,
                r.avg_answer_tuples);
    char csv[256];
    std::snprintf(csv, sizeof(csv),
                  "%s,%s,%s,%.3f,%.3f,%.5g,%.5g,%.5g,%zu,%.0f",
                  figure.c_str(), theta_label.c_str(), r.name.c_str(),
                  r.avg_data_system_millis, r.avg_viz_millis, r.min_loss,
                  r.avg_loss, r.max_loss, r.violations,
                  r.avg_answer_tuples);
    PrintCsvRow(csv);
  }
}

}  // namespace bench
}  // namespace tabula

#endif  // TABULA_BENCH_BENCH_APPROACHES_H_

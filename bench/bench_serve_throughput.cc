/// Dashboard-serving throughput: N client threads hammer a QueryServer
/// with a Zipf-skewed cell workload (dashboards revisit hot filters —
/// the skew GeoBlocks exploits), with and without the sharded result
/// cache, reporting QPS and p50/p95/p99 serving latency plus the cache
/// hit rate. A second section measures a heatmap pan answered as N
/// serial Query() calls (what viz/dashboard.cc used to do) vs one
/// BatchQuery() fan-out.
///
///   --smoke        tiny fixed scale for CI (overrides the env knobs)
///   --trace        adds a tracing-overhead section: the cache-on load
///                  re-run with a kDisabled tracer and with a kAll
///                  tracer, reporting the QPS delta vs no tracer at all
///
///   TABULA_SCALE   table rows            (default 60000)
///   TABULA_CLIENTS client threads        (default 8)
///   TABULA_SERVE_QUERIES queries/thread  (default 4000)
///   TABULA_CELLS   distinct workload cells (default 120)

#include <cmath>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/tabula.h"
#include "obs/trace.h"
#include "serve/query_server.h"

namespace tabula {
namespace bench {
namespace {

struct LoadReport {
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
  uint64_t degraded = 0;
};

/// Runs `clients` threads, each issuing `queries_per_thread` queries
/// drawn Zipf-style from `workload`.
LoadReport RunLoad(QueryServer* server,
                   const std::vector<WorkloadQuery>& workload,
                   size_t clients, size_t queries_per_thread,
                   uint64_t seed) {
  // Zipf weights over the workload cells: cell at rank r gets 1/r^s.
  // Dashboards concentrate on a few hot filters; s ≈ 1 mirrors the
  // skew web-traffic studies report.
  std::vector<double> weights(workload.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.0);
  }

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + t);
      for (size_t i = 0; i < queries_per_thread; ++i) {
        size_t pick = rng.Discrete(weights);
        auto answer = server->Query(QueryRequest(workload[pick].where));
        if (!answer.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       answer.status().ToString().c_str());
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double seconds = wall.ElapsedSeconds();

  LoadReport report;
  MetricsSnapshot snap = server->metrics().Snapshot();
  report.qps = static_cast<double>(clients * queries_per_thread) / seconds;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "serve_latency") {
      report.p50_us = hist.P50Micros();
      report.p95_us = hist.P95Micros();
      report.p99_us = hist.P99Micros();
    }
  }
  report.hit_rate = server->cache().Stats().HitRate();
  report.degraded = snap.CounterValue("serve_degraded");
  return report;
}

}  // namespace
}  // namespace bench
}  // namespace tabula

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  bool smoke = false;
  bool trace_section = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace") == 0) trace_section = true;
  }

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t clients = static_cast<size_t>(EnvInt64("TABULA_CLIENTS", 8));
  size_t queries_per_thread =
      static_cast<size_t>(EnvInt64("TABULA_SERVE_QUERIES", 4000));
  size_t num_cells = static_cast<size_t>(EnvInt64("TABULA_CELLS", 120));
  if (smoke) {
    // CI-sized: seconds, not minutes, and still exercises every path.
    config.rows = 20000;
    clients = 4;
    queries_per_thread = 250;
    num_cells = 40;
  }

  const Table& table = TaxiTable(config);
  auto attrs = Attributes(4);
  auto loss = MakeLossFunction("mean_loss", {.columns = {"fare_amount"}});
  if (!loss.ok()) {
    std::fprintf(stderr, "loss failed: %s\n",
                 loss.status().ToString().c_str());
    return 1;
  }
  TabulaOptions options;
  options.cubed_attributes = attrs;
  options.owned_loss = std::move(loss).value();
  options.threshold = 0.05;
  std::fprintf(stderr, "[bench] initializing Tabula...\n");
  auto tabula = Tabula::Initialize(table, options);
  if (!tabula.ok()) {
    std::fprintf(stderr, "init failed: %s\n",
                 tabula.status().ToString().c_str());
    return 1;
  }

  WorkloadOptions wopts;
  wopts.num_queries = num_cells;
  wopts.seed = config.seed;
  auto workload = GenerateWorkload(table, attrs, wopts);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Serving throughput: " + std::to_string(clients) +
              " clients, Zipf(1.0) over " +
              std::to_string(workload->size()) + " cells");
  PrintCsvHeader("cache,clients,queries,qps,p50_us,p95_us,p99_us,hit_rate");

  double qps_off = 0.0;
  double qps_cache_on = 0.0;
  for (bool cache_on : {false, true}) {
    QueryServerOptions sopts;
    sopts.enable_cache = cache_on;
    QueryServer server(tabula.value().get(), sopts);
    LoadReport report = RunLoad(&server, *workload, clients,
                                queries_per_thread, config.seed);
    if (!cache_on) qps_off = report.qps;
    if (cache_on) qps_cache_on = report.qps;
    std::printf("%-9s qps %10.0f   p50 %7.1f us   p95 %7.1f us   "
                "p99 %7.1f us   hit rate %.1f%%\n",
                cache_on ? "cache-on" : "cache-off", report.qps,
                report.p50_us, report.p95_us, report.p99_us,
                report.hit_rate * 100.0);
    char row[256];
    std::snprintf(row, sizeof(row), "%s,%zu,%zu,%.0f,%.1f,%.1f,%.1f,%.3f",
                  cache_on ? "on" : "off", clients,
                  clients * queries_per_thread, report.qps, report.p50_us,
                  report.p95_us, report.p99_us, report.hit_rate);
    PrintCsvRow(row);
    if (cache_on && qps_off > 0.0) {
      std::printf("          cache speedup: %.2fx\n", report.qps / qps_off);
    }
  }

  if (trace_section) {
    // Tracing overhead: the cache-on load, re-run with a tracer wired
    // through both the middleware and the server. kDisabled should cost
    // ~nothing (one relaxed atomic load per request); kAll records a
    // span per request into the ring and should stay under ~5%.
    PrintHeader("Tracing overhead (vs no tracer, cache-on load)");
    PrintCsvHeader("trace_mode,qps,overhead_pct");
    struct TraceCase {
      const char* label;
      bool attach;
      TraceMode mode;
    };
    const TraceCase cases[] = {
        {"none", false, TraceMode::kDisabled},
        {"disabled", true, TraceMode::kDisabled},
        {"on_demand", true, TraceMode::kOnDemand},  // no request opts in
        {"all", true, TraceMode::kAll},
    };
    double qps_none = 0.0;
    double qps_all = 0.0;
    uint64_t spans_all = 0;
    const int kTraceReps = smoke ? 1 : 3;
    for (const auto& c : cases) {
      // Best-of-N: scheduler jitter between back-to-back 0.3 s loads is
      // a few percent — the max is the least-perturbed run.
      double qps = 0.0;
      uint64_t spans = 0;
      for (int rep = 0; rep < kTraceReps; ++rep) {
        Tracer tracer(TracerOptions{c.mode, 8192});
        QueryServerOptions sopts;
        sopts.enable_cache = true;
        if (c.attach) sopts.tracer = &tracer;
        QueryServer server(tabula.value().get(), sopts);
        LoadReport report = RunLoad(&server, *workload, clients,
                                    queries_per_thread, config.seed);
        qps = std::max(qps, report.qps);
        spans = c.attach ? tracer.recorder().total_recorded() : 0;
      }
      if (!c.attach) qps_none = qps;
      if (c.mode == TraceMode::kAll) {
        qps_all = qps;
        spans_all = spans;
      }
      double overhead =
          qps_none > 0.0 ? (qps_none - qps) / qps_none * 100.0 : 0.0;
      std::printf("%-9s qps %10.0f   overhead %+5.1f%%   spans %llu\n",
                  c.label, qps, overhead,
                  static_cast<unsigned long long>(spans));
      char row[128];
      std::snprintf(row, sizeof(row), "%s,%.0f,%.1f", c.label, qps,
                    overhead);
      PrintCsvRow(row);
    }
    if (qps_none > 0.0 && qps_all > 0.0 && spans_all > 0) {
      // Absolute per-span recording cost: the honest number behind the
      // kAll percentage, which this cache-hit microbenchmark (~1 us per
      // request) makes look worse than any real dashboard load would.
      double ns_per_span = (1.0 / qps_all - 1.0 / qps_none) * 1e9;
      std::printf("          kAll span cost: ~%.0f ns/span (amortized "
                  "<5%% for requests over %.0f us)\n",
                  ns_per_span, ns_per_span / 0.05 / 1000.0);
    }
    (void)qps_cache_on;
  }

  // Heatmap pan: every visible tile is one cell query. Serial loop
  // (the pre-serve dashboard behaviour) vs one BatchQuery fan-out.
  PrintHeader("Heatmap pan: serial Query loop vs BatchQuery fan-out");
  const size_t kPanTiles = std::min<size_t>(32, workload->size());
  std::vector<QueryRequest> tiles;
  for (size_t i = 0; i < kPanTiles; ++i) {
    tiles.emplace_back((*workload)[i].where);
  }
  QueryServerOptions pan_opts;
  pan_opts.enable_cache = false;  // measure the fan-out, not the cache
  QueryServer pan_server(tabula.value().get(), pan_opts);
  const int kReps = smoke ? 5 : 50;

  Stopwatch serial;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const auto& tile : tiles) {
      auto answer = pan_server.Query(tile);
      if (!answer.ok()) return 1;
    }
  }
  double serial_ms = serial.ElapsedMillis() / kReps;

  Stopwatch batched;
  for (int rep = 0; rep < kReps; ++rep) {
    auto batch = pan_server.BatchQuery(tiles);
    if (!batch.ok()) return 1;
  }
  double batch_ms = batched.ElapsedMillis() / kReps;

  std::printf("%zu tiles: serial %8.3f ms   batched %8.3f ms   (%.2fx)\n",
              kPanTiles, serial_ms, batch_ms, serial_ms / batch_ms);
  PrintCsvHeader("pan_tiles,serial_ms,batch_ms");
  char row[128];
  std::snprintf(row, sizeof(row), "%zu,%.3f,%.3f", kPanTiles, serial_ms,
                batch_ms);
  PrintCsvRow(row);
  return 0;
}

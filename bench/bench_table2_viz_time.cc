/// Reproduces Table II: sample visualization time per approach for the
/// geospatial heat map, statistical mean, and regression analyses, each
/// at its smallest accuracy loss threshold — plus the "No sampling" row
/// (analysis on the raw query result).
///
/// Paper shapes to check: Tabula has the highest visualization time
/// among sampled approaches (non-iceberg queries return the ~1000-tuple
/// global sample, vs ~100-tuple on-the-fly samples) yet stays within
/// hundreds of milliseconds; no-sampling is ~3 orders of magnitude
/// slower. POIsam has no mean/regression entries (its loss is
/// visualization-aware), mirroring the paper's "-" cells.

#include "baselines/poisam.h"
#include "baselines/sample_first.h"
#include "baselines/sample_on_the_fly.h"
#include "baselines/tabula_approach.h"
#include "bench_approaches.h"
#include "loss/regression_loss.h"

namespace tabula {
namespace bench {
namespace {

struct Cell {
  bool present = false;
  double viz_millis = 0.0;
};

Cell Measure(Approach* approach, const Table& table,
             const std::vector<WorkloadQuery>& workload,
             const DashboardOptions& dashboard, double theta) {
  auto row = MeasureApproach(approach, table, workload, dashboard, theta);
  if (!row.ok()) {
    std::printf("%s ERROR %s\n", approach->name().c_str(),
                row.status().ToString().c_str());
    return {};
  }
  return {true, row->avg_viz_millis};
}

}  // namespace
}  // namespace bench
}  // namespace tabula

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  auto attrs = Attributes(5);

  WorkloadOptions wopts;
  wopts.num_queries = config.queries;
  auto workload = GenerateWorkload(table, attrs, wopts);
  if (!workload.ok()) {
    std::printf("workload ERROR %s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Table II reproduction: sample visualization time\n");
  std::printf("rows=%zu, %zu queries, smallest thresholds per loss\n",
              table.num_rows(), workload->size());

  auto heat_loss = MakeLossFunction("heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}).value();
  MeanLoss mean_loss("fare_amount");
  RegressionLoss reg_loss("fare_amount", "tip_amount");
  const double heat_theta = 0.25 * kNormalizedUnitsPerKm;
  const double mean_theta = 0.025;
  const double reg_theta = 1.0;

  struct TaskSpec {
    const char* column_name;
    const LossFunction* loss;
    double theta;
    DashboardOptions dashboard;
  };
  TaskSpec heat{"heatmap", heat_loss.get(), heat_theta, {}};
  heat.dashboard.task = VisualTask::kHeatmap;
  heat.dashboard.x_column = "pickup_x";
  heat.dashboard.y_column = "pickup_y";
  TaskSpec mean{"mean", &mean_loss, mean_theta, {}};
  mean.dashboard.task = VisualTask::kMean;
  mean.dashboard.target_column = "fare_amount";
  TaskSpec reg{"regression", &reg_loss, reg_theta, {}};
  reg.dashboard.task = VisualTask::kRegression;
  reg.dashboard.x_column = "fare_amount";
  reg.dashboard.y_column = "tip_amount";

  // row name -> three cells.
  std::vector<std::pair<std::string, std::vector<Cell>>> matrix;
  auto run_tasks = [&](const std::string& name, auto make_approach,
                       bool poisam_like) {
    std::vector<Cell> cells;
    for (TaskSpec* spec : {&heat, &mean, &reg}) {
      // POIsam only supports visualization-aware losses (paper: "-").
      if (poisam_like && spec->dashboard.task != VisualTask::kHeatmap) {
        cells.push_back({});
        continue;
      }
      auto approach = make_approach(*spec);
      cells.push_back(
          Measure(approach.get(), table, *workload, spec->dashboard,
                  spec->theta));
    }
    matrix.emplace_back(name, std::move(cells));
  };

  run_tasks("SamFirst-100MB",
            [&](const TaskSpec&) {
              return std::make_unique<SampleFirst>(
                  table, Budget100MB(table), "SamFirst-100MB");
            },
            false);
  run_tasks("SamFirst-1GB",
            [&](const TaskSpec&) {
              return std::make_unique<SampleFirst>(table, Budget1GB(table),
                                                   "SamFirst-1GB");
            },
            false);
  run_tasks("SamFly",
            [&](const TaskSpec& spec) {
              return std::make_unique<SampleOnTheFly>(table, spec.loss,
                                                      spec.theta);
            },
            false);
  run_tasks("POIsam",
            [&](const TaskSpec& spec) {
              return std::make_unique<PoiSam>(table, spec.loss, spec.theta);
            },
            true);
  run_tasks("Tabula",
            [&](const TaskSpec& spec) {
              TabulaOptions topts;
              topts.cubed_attributes = attrs;
              topts.loss = spec.loss;
              topts.threshold = spec.theta;
              return std::make_unique<TabulaApproach>(table, topts);
            },
            false);
  run_tasks("NoSampling",
            [&](const TaskSpec&) {
              return std::make_unique<NoSampling>(table);
            },
            false);

  PrintHeader("Table II: sample visualization time (avg per query)");
  std::printf("%-16s %18s %18s %18s\n", "approach", "heat map (ms)",
              "mean (ms)", "regression (ms)");
  PrintCsvHeader("table,approach,heatmap_ms,mean_ms,regression_ms");
  for (const auto& [name, cells] : matrix) {
    auto fmt = [](const Cell& c) {
      if (!c.present) return std::string("-");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", c.viz_millis);
      return std::string(buf);
    };
    std::printf("%-16s %18s %18s %18s\n", name.c_str(),
                fmt(cells[0]).c_str(), fmt(cells[1]).c_str(),
                fmt(cells[2]).c_str());
    char csv[160];
    std::snprintf(csv, sizeof(csv), "2,%s,%s,%s,%s", name.c_str(),
                  fmt(cells[0]).c_str(), fmt(cells[1]).c_str(),
                  fmt(cells[2]).c_str());
    PrintCsvRow(csv);
  }
  return 0;
}

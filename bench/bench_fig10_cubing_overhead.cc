/// Reproduces Figure 10: cubing overhead on a small dataset — Tabula vs
/// the fully materialized sampling cube (FullSamCube) and the partially
/// materialized cube built by executing the initialization query
/// literally (PartSamCube). The paper runs this on 5 GB of NYCtaxi
/// (1/20th of the full table) because the naive cubes cannot scale; we
/// use 1/4 of the bench scale for the same reason. Histogram-aware loss,
/// as in the paper.
///
/// Paper shapes to check: Tabula ≈ 40× faster to initialize than either
/// cube; FullSamCube 50–100× more memory than Tabula; PartSamCube 5–8×.

#include <algorithm>
#include <cstring>

#include "baselines/sample_cube.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/tabula.h"
#include "cube/dry_run.h"
#include "sampling/random_sampler.h"

namespace {

using namespace tabula;
using namespace tabula::bench;

/// Before/after comparison of the dry-run engines: the preserved
/// std::unordered_map reference (RunDryRunLegacy) vs the flat-hash
/// parallel roll-up (RunDryRun), on identical inputs. Also a
/// differential check — both engines must find the exact same iceberg
/// cells. Writes BENCH_fig10_cubing_overhead.json; returns the
/// flat/legacy speedup (0 on error).
double CompareDryRunEngines(const Table& table, double theta) {
  // All 7 experiment attributes: the lattice then has 128 cuboids and
  // ~30K cells, the regime the flat-hash engine targets (insert-heavy
  // folds and roll-ups where std::unordered_map pays a node allocation
  // per new cell). Mean loss, whose Accumulate is two additions, so the
  // measured time is the aggregation engine — key packing plus hash-table
  // traffic — rather than per-row loss evaluation, which is byte-for-byte
  // identical in both engines (the histogram loss would spend ~90% of the
  // dry run in nearest-neighbor queries and mask the comparison). The
  // figure sweep below keeps the paper's histogram loss and 4 attributes.
  auto attrs = Attributes(7);
  MeanLoss mean_loss("fare_amount");
  const LossFunction* loss = &mean_loss;
  auto encoder = KeyEncoder::Make(table, attrs);
  if (!encoder.ok()) return 0.0;
  std::vector<size_t> all_cols(attrs.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  auto packer = KeyPacker::Make(*encoder, all_cols);
  if (!packer.ok()) return 0.0;
  Lattice lattice(attrs.size());
  Rng rng(42);
  DatasetView all(&table);
  std::vector<RowId> sample_rows =
      RandomSample(all, SerflingSampleSize(), &rng);
  DatasetView global_sample(&table, sample_rows);

  // Best-of-3 per engine, interleaved so cache warm-up is symmetric.
  double legacy_ms = 1e300, flat_ms = 1e300;
  DryRunResult legacy_result, flat_result;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch t1;
    auto legacy = RunDryRunLegacy(table, *encoder, *packer, lattice, *loss,
                                  global_sample, theta);
    double ms1 = t1.ElapsedMillis();
    Stopwatch t2;
    auto flat = RunDryRun(table, *encoder, *packer, lattice, *loss,
                          global_sample, theta);
    double ms2 = t2.ElapsedMillis();
    if (!legacy.ok() || !flat.ok()) {
      std::printf("dry-run engine ERROR: %s\n",
                  (!legacy.ok() ? legacy.status() : flat.status())
                      .ToString()
                      .c_str());
      return 0.0;
    }
    if (ms1 < legacy_ms) legacy_ms = ms1;
    if (ms2 < flat_ms) flat_ms = ms2;
    legacy_result = std::move(legacy).value();
    flat_result = std::move(flat).value();
  }

  // Differential oracle: identical iceberg-cell sets, cuboid by cuboid
  // (the legacy engine's keys are unsorted; sort before comparing).
  bool identical = legacy_result.total_cells == flat_result.total_cells &&
                   legacy_result.total_iceberg_cells ==
                       flat_result.total_iceberg_cells;
  for (size_t m = 0;
       identical && m < legacy_result.cuboids.size(); ++m) {
    std::vector<uint64_t> legacy_keys = legacy_result.cuboids[m].iceberg_keys;
    std::sort(legacy_keys.begin(), legacy_keys.end());
    identical = legacy_keys == flat_result.cuboids[m].iceberg_keys;
  }

  double speedup = flat_ms > 0.0 ? legacy_ms / flat_ms : 0.0;
  PrintHeader("Dry-run engine: unordered_map (legacy) vs flat-hash");
  std::printf("rows=%zu threads=%zu theta=$%.2f\n", table.num_rows(),
              ThreadPool::Global().num_threads(), theta);
  std::printf("%-24s %12s\n", "engine", "dry_run_ms");
  std::printf("%-24s %12.1f\n", "legacy_unordered_map", legacy_ms);
  std::printf("%-24s %12.1f\n", "flat_hash", flat_ms);
  std::printf("speedup: %.2fx   iceberg sets identical: %s\n", speedup,
              identical ? "yes" : "NO");
  PrintCsvHeader("figure,engine,dry_run_ms,speedup");
  PrintCsvRow("10e,legacy_unordered_map," + std::to_string(legacy_ms) + ",1.0");
  PrintCsvRow("10e,flat_hash," + std::to_string(flat_ms) + "," +
              std::to_string(speedup));

  JsonObject payload;
  payload.Set("bench", std::string("fig10_cubing_overhead"))
      .Set("rows", static_cast<double>(table.num_rows()))
      .Set("threads", static_cast<double>(ThreadPool::Global().num_threads()))
      .Set("theta", theta)
      .Set("iceberg_cells",
           static_cast<double>(flat_result.total_iceberg_cells))
      .Set("total_cells", static_cast<double>(flat_result.total_cells))
      .Set("legacy_dry_run_ms", legacy_ms)
      .Set("flat_dry_run_ms", flat_ms)
      .Set("speedup", speedup)
      .Set("iceberg_sets_identical", std::string(identical ? "yes" : "no"));
  WriteBenchJson("fig10_cubing_overhead", payload);

  return identical ? speedup : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  TaxiGeneratorOptions gen;
  gen.num_rows = std::max<size_t>(config.rows / 4, 1000);
  gen.seed = config.seed;
  auto table = TaxiGenerator(gen).Generate();
  auto attrs = Attributes(4);
  auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();

  std::printf("Figure 10 reproduction: cubing overhead on a small dataset\n");
  std::printf("rows=%zu (paper: 5GB NYCtaxi), histogram-aware loss, "
              "%zu attributes\n",
              table->num_rows(), attrs.size());

  // Engine before/after + differential check. In --smoke mode this is
  // the whole run: CI fails the build on a >20% dry-run regression
  // (speedup < 1/1.2 would mean flat-hash got slower than the legacy
  // reference) or on an iceberg-set mismatch.
  double speedup = CompareDryRunEngines(*table, 0.5);
  if (smoke) {
    if (speedup <= 0.0) {
      std::printf("SMOKE FAIL: engines disagree or errored\n");
      return 1;
    }
    if (speedup < 1.0 / 1.2) {
      std::printf("SMOKE FAIL: flat-hash dry run regressed >20%% "
                  "(speedup %.2fx)\n",
                  speedup);
      return 1;
    }
    std::printf("SMOKE OK: speedup %.2fx, iceberg sets identical\n", speedup);
    return 0;
  }

  PrintHeader("Figure 10(a,b): initialization time and memory");
  std::printf("%-10s %-14s %14s %14s %10s\n", "theta", "approach",
              "init_ms", "memory", "cells");
  PrintCsvHeader("figure,theta,approach,init_ms,memory_bytes,materialized");

  for (double theta : HistogramThresholdsDollar()) {
    char label[32];
    std::snprintf(label, sizeof(label), "$%.2f", theta);

    // Tabula.
    {
      TabulaOptions opts;
      opts.cubed_attributes = attrs;
      opts.loss = loss.get();
      opts.threshold = theta;
      Stopwatch timer;
      auto tabula = Tabula::Initialize(*table, opts);
      double ms = timer.ElapsedMillis();
      if (!tabula.ok()) {
        std::printf("Tabula ERROR %s\n", tabula.status().ToString().c_str());
        continue;
      }
      uint64_t mem = tabula.value()->init_stats().TotalBytes();
      std::printf("%-10s %-14s %14.0f %14s %10zu\n", label, "Tabula", ms,
                  HumanBytes(mem).c_str(),
                  tabula.value()->init_stats().representative_samples);
      char row[160];
      std::snprintf(row, sizeof(row), "10,%s,Tabula,%.1f,%llu,%zu", label,
                    ms, static_cast<unsigned long long>(mem),
                    tabula.value()->init_stats().representative_samples);
      PrintCsvRow(row);
    }
    // PartSamCube and FullSamCube.
    for (auto mode : {MaterializedSampleCube::Mode::kPartial,
                      MaterializedSampleCube::Mode::kFull}) {
      MaterializedSampleCube cube(*table, attrs, loss.get(), theta, mode);
      Stopwatch timer;
      Status st = cube.Prepare();
      double ms = timer.ElapsedMillis();
      if (!st.ok()) {
        std::printf("%s ERROR %s\n", cube.name().c_str(),
                    st.ToString().c_str());
        continue;
      }
      std::printf("%-10s %-14s %14.0f %14s %10zu\n", label,
                  cube.name().c_str(), ms,
                  HumanBytes(cube.MemoryBytes()).c_str(),
                  cube.num_materialized_cells());
      char row[160];
      std::snprintf(row, sizeof(row), "10,%s,%s,%.1f,%llu,%zu", label,
                    cube.name().c_str(), ms,
                    static_cast<unsigned long long>(cube.MemoryBytes()),
                    cube.num_materialized_cells());
      PrintCsvRow(row);
    }
  }
  return 0;
}

/// Reproduces Figure 10: cubing overhead on a small dataset — Tabula vs
/// the fully materialized sampling cube (FullSamCube) and the partially
/// materialized cube built by executing the initialization query
/// literally (PartSamCube). The paper runs this on 5 GB of NYCtaxi
/// (1/20th of the full table) because the naive cubes cannot scale; we
/// use 1/4 of the bench scale for the same reason. Histogram-aware loss,
/// as in the paper.
///
/// Paper shapes to check: Tabula ≈ 40× faster to initialize than either
/// cube; FullSamCube 50–100× more memory than Tabula; PartSamCube 5–8×.

#include "baselines/sample_cube.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/tabula.h"

int main() {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromEnv();
  TaxiGeneratorOptions gen;
  gen.num_rows = std::max<size_t>(config.rows / 4, 1000);
  gen.seed = config.seed;
  auto table = TaxiGenerator(gen).Generate();
  auto attrs = Attributes(4);
  auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();

  std::printf("Figure 10 reproduction: cubing overhead on a small dataset\n");
  std::printf("rows=%zu (paper: 5GB NYCtaxi), histogram-aware loss, "
              "%zu attributes\n",
              table->num_rows(), attrs.size());

  PrintHeader("Figure 10(a,b): initialization time and memory");
  std::printf("%-10s %-14s %14s %14s %10s\n", "theta", "approach",
              "init_ms", "memory", "cells");
  PrintCsvHeader("figure,theta,approach,init_ms,memory_bytes,materialized");

  for (double theta : HistogramThresholdsDollar()) {
    char label[32];
    std::snprintf(label, sizeof(label), "$%.2f", theta);

    // Tabula.
    {
      TabulaOptions opts;
      opts.cubed_attributes = attrs;
      opts.loss = loss.get();
      opts.threshold = theta;
      Stopwatch timer;
      auto tabula = Tabula::Initialize(*table, opts);
      double ms = timer.ElapsedMillis();
      if (!tabula.ok()) {
        std::printf("Tabula ERROR %s\n", tabula.status().ToString().c_str());
        continue;
      }
      uint64_t mem = tabula.value()->init_stats().TotalBytes();
      std::printf("%-10s %-14s %14.0f %14s %10zu\n", label, "Tabula", ms,
                  HumanBytes(mem).c_str(),
                  tabula.value()->init_stats().representative_samples);
      char row[160];
      std::snprintf(row, sizeof(row), "10,%s,Tabula,%.1f,%llu,%zu", label,
                    ms, static_cast<unsigned long long>(mem),
                    tabula.value()->init_stats().representative_samples);
      PrintCsvRow(row);
    }
    // PartSamCube and FullSamCube.
    for (auto mode : {MaterializedSampleCube::Mode::kPartial,
                      MaterializedSampleCube::Mode::kFull}) {
      MaterializedSampleCube cube(*table, attrs, loss.get(), theta, mode);
      Stopwatch timer;
      Status st = cube.Prepare();
      double ms = timer.ElapsedMillis();
      if (!st.ok()) {
        std::printf("%s ERROR %s\n", cube.name().c_str(),
                    st.ToString().c_str());
        continue;
      }
      std::printf("%-10s %-14s %14.0f %14s %10zu\n", label,
                  cube.name().c_str(), ms,
                  HumanBytes(cube.MemoryBytes()).c_str(),
                  cube.num_materialized_cells());
      char row[160];
      std::snprintf(row, sizeof(row), "10,%s,%s,%.1f,%llu,%zu", label,
                    cube.name().c_str(), ms,
                    static_cast<unsigned long long>(cube.MemoryBytes()),
                    cube.num_materialized_cells());
      PrintCsvRow(row);
    }
  }
  return 0;
}

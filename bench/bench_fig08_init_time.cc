/// Reproduces Figure 8: Tabula initialization time, split into the dry
/// run, real run, and sample selection (SamS) stages.
///
///  (a) geospatial heat-map-aware loss, θ ∈ {0.25, 0.5, 1, 2} km
///  (b) statistical mean loss,          θ ∈ {2.5, 5, 10, 20} %
///  (c) linear regression loss,         θ ∈ {1, 2, 4, 8} °
///  (d) histogram loss, θ = $0.5, cubed attributes ∈ {4, 5, 6, 7}
///
/// Paper shapes to check: dry-run time flat in θ; total grows as θ
/// shrinks; the heat-map dry run is the most expensive of the three and
/// the mean loss the cheapest; with more attributes everything grows but
/// the dry run grows the slowest.

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/tabula.h"

namespace tabula {
namespace bench {
namespace {

/// Rendered per-sweep-point JSON rows, gathered across sweeps and
/// written to BENCH_fig08_init_time.json so init throughput is tracked
/// as a committed artifact, not just scrollback.
std::vector<std::string> g_json_rows;

void RunSweep(const Table& table, const std::string& figure,
              const LossFunction& loss,
              const std::vector<double>& thresholds,
              const std::vector<std::string>& threshold_labels,
              size_t num_attrs) {
  PrintHeader("Figure 8" + figure + ": initialization time, " + loss.name() +
              ", " + std::to_string(num_attrs) + " attributes");
  std::printf("%-12s %12s %12s %12s %12s %10s %10s\n", "theta",
              "dry_run_ms", "real_run_ms", "selection_ms", "total_ms",
              "cells", "iceberg");
  PrintCsvHeader("figure,loss,theta,dry_ms,real_ms,selection_ms,total_ms,"
                 "cells,iceberg_cells");
  for (size_t i = 0; i < thresholds.size(); ++i) {
    TabulaOptions opts;
    opts.cubed_attributes = Attributes(num_attrs);
    opts.loss = &loss;
    opts.threshold = thresholds[i];
    auto tabula = Tabula::Initialize(table, opts);
    if (!tabula.ok()) {
      std::printf("ERROR %s\n", tabula.status().ToString().c_str());
      continue;
    }
    const auto& s = tabula.value()->init_stats();
    std::printf("%-12s %12.0f %12.0f %12.0f %12.0f %10zu %10zu\n",
                threshold_labels[i].c_str(), s.dry_run_millis,
                s.real_run_millis, s.selection_millis, s.total_millis,
                s.total_cells, s.iceberg_cells);
    char row[256];
    std::snprintf(row, sizeof(row), "8%s,%s,%s,%.1f,%.1f,%.1f,%.1f,%zu,%zu",
                  figure.c_str(), loss.name().c_str(),
                  threshold_labels[i].c_str(), s.dry_run_millis,
                  s.real_run_millis, s.selection_millis, s.total_millis,
                  s.total_cells, s.iceberg_cells);
    PrintCsvRow(row);
    JsonObject json_row;
    json_row.Set("figure", "8" + figure)
        .Set("loss", loss.name())
        .Set("theta", threshold_labels[i])
        .Set("attrs", static_cast<double>(num_attrs))
        .Set("dry_run_ms", s.dry_run_millis)
        .Set("real_run_ms", s.real_run_millis)
        .Set("selection_ms", s.selection_millis)
        .Set("total_ms", s.total_millis)
        .Set("cells", static_cast<double>(s.total_cells))
        .Set("iceberg_cells", static_cast<double>(s.iceberg_cells));
    g_json_rows.push_back(json_row.Render());
  }
}

}  // namespace
}  // namespace bench
}  // namespace tabula

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  std::printf("Figure 8 reproduction: Tabula initialization time\n");
  std::printf("rows=%zu (paper: 700M on a 5-node cluster)\n",
              table.num_rows());

  // (a) geospatial heat-map-aware loss.
  {
    auto loss = MakeLossFunction("heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}).value();
    std::vector<double> thetas;
    std::vector<std::string> labels;
    for (double km : HeatmapThresholdsKm()) {
      thetas.push_back(km * kNormalizedUnitsPerKm);
      labels.push_back(std::to_string(km) + "km");
    }
    RunSweep(table, "a", *loss, thetas, labels, 5);
  }
  // (b) statistical mean loss.
  {
    MeanLoss loss("fare_amount");
    std::vector<double> thetas = MeanThresholds();
    std::vector<std::string> labels{"2.5%", "5%", "10%", "20%"};
    RunSweep(table, "b", loss, thetas, labels, 5);
  }
  // (c) linear regression loss (tip vs fare, as in Figure 1).
  {
    RegressionLoss loss("fare_amount", "tip_amount");
    std::vector<double> thetas = RegressionThresholdsDeg();
    std::vector<std::string> labels{"1deg", "2deg", "4deg", "8deg"};
    RunSweep(table, "c", loss, thetas, labels, 5);
  }
  // (d) histogram loss, θ = $0.5, 4..7 attributes.
  {
    auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();
    for (size_t attrs = 4; attrs <= 7; ++attrs) {
      RunSweep(table, "d", *loss, {0.5}, {"$0.5/" + std::to_string(attrs)},
               attrs);
    }
  }

  JsonObject payload;
  payload.Set("bench", std::string("fig08_init_time"))
      .Set("rows", static_cast<double>(table.num_rows()))
      .Set("threads",
           static_cast<double>(ThreadPool::Global().num_threads()))
      .SetRaw("sweeps", JsonArray(g_json_rows));
  WriteBenchJson("fig08_init_time", payload);
  return 0;
}

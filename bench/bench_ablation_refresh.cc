/// Ablation: incremental maintenance (Tabula::Refresh) vs full
/// re-initialization — the extension beyond the paper (DESIGN.md §4).
///
/// Sweeps the append fraction and compares (a) Refresh() with kept
/// maintenance state, (b) Refresh() with lazily rebuilt state, and
/// (c) a full Initialize() from scratch, all restoring the identical
/// deterministic guarantee.

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/tabula.h"

namespace {

using namespace tabula;

std::unique_ptr<Table> FreshTable(size_t rows, uint64_t seed) {
  TaxiGeneratorOptions gen;
  gen.num_rows = rows;
  gen.seed = seed;
  return TaxiGenerator(gen).Generate();
}

void AppendFrom(Table* target, const Table& source, size_t n) {
  for (RowId r = 0; r < n && r < source.num_rows(); ++r) {
    Status st = target->AppendRowFrom(source, r);
    TABULA_CHECK(st.ok());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  size_t base_rows = std::min<size_t>(config.rows, 40000);
  auto extra = FreshTable(base_rows, config.seed + 1);
  auto attrs = Attributes(5);
  MeanLoss loss("fare_amount");

  std::printf("Incremental-maintenance ablation (base=%zu rows, mean loss "
              "theta=5%%)\n",
              base_rows);
  PrintHeader("Refresh vs re-initialize, by append fraction");
  std::printf("%-10s %18s %18s %18s\n", "append", "refresh_kept_ms",
              "refresh_lazy_ms", "reinitialize_ms");
  PrintCsvHeader("ablation,append_fraction,refresh_kept_ms,refresh_lazy_ms,"
                 "reinit_ms,new_iceberg,resampled");

  for (double fraction : {0.01, 0.05, 0.25, 1.0}) {
    size_t append_rows = static_cast<size_t>(base_rows * fraction);

    double kept_ms = 0.0, lazy_ms = 0.0, reinit_ms = 0.0;
    Tabula::RefreshStats kept_stats;

    // (a) kept maintenance state.
    {
      auto table = FreshTable(base_rows, config.seed);
      TabulaOptions opts;
      opts.cubed_attributes = attrs;
      opts.loss = &loss;
      opts.threshold = 0.05;
      opts.keep_maintenance_state = true;
      auto tabula = Tabula::Initialize(*table, opts);
      TABULA_CHECK(tabula.ok());
      AppendFrom(table.get(), *extra, append_rows);
      Stopwatch t;
      TABULA_CHECK(tabula.value()->Refresh(&kept_stats).ok());
      kept_ms = t.ElapsedMillis();
    }
    // (b) lazy state rebuild.
    {
      auto table = FreshTable(base_rows, config.seed);
      TabulaOptions opts;
      opts.cubed_attributes = attrs;
      opts.loss = &loss;
      opts.threshold = 0.05;
      opts.keep_maintenance_state = false;
      auto tabula = Tabula::Initialize(*table, opts);
      TABULA_CHECK(tabula.ok());
      AppendFrom(table.get(), *extra, append_rows);
      Stopwatch t;
      Tabula::RefreshStats stats;
      TABULA_CHECK(tabula.value()->Refresh(&stats).ok());
      lazy_ms = t.ElapsedMillis();
    }
    // (c) full re-initialization on the grown table.
    {
      auto table = FreshTable(base_rows, config.seed);
      AppendFrom(table.get(), *extra, append_rows);
      TabulaOptions opts;
      opts.cubed_attributes = attrs;
      opts.loss = &loss;
      opts.threshold = 0.05;
      Stopwatch t;
      auto tabula = Tabula::Initialize(*table, opts);
      TABULA_CHECK(tabula.ok());
      reinit_ms = t.ElapsedMillis();
    }

    std::printf("%-10.0f%% %17.0f %18.0f %18.0f   (new iceberg %zu, "
                "resampled %zu)\n",
                fraction * 100, kept_ms, lazy_ms, reinit_ms,
                kept_stats.new_iceberg_cells, kept_stats.resampled_cells);
    char row[192];
    std::snprintf(row, sizeof(row), "refresh,%.2f,%.1f,%.1f,%.1f,%zu,%zu",
                  fraction, kept_ms, lazy_ms, reinit_ms,
                  kept_stats.new_iceberg_cells, kept_stats.resampled_cells);
    PrintCsvRow(row);
  }
  return 0;
}

/// Reproduces Figure 13: linear regression loss (angle difference of the
/// tip-vs-fare regression lines, unit: degrees) — per-query data-system
/// time (a) and actual loss (b), sweeping θ ∈ {1, 2, 4, 8}°.
///
/// Paper shapes to check: like Figure 11 — Tabula flat and far below
/// SamFly/POIsam; no θ violations for SamFly/Tabula/Tabula*; POIsam may
/// violate occasionally.

#include "baselines/poisam.h"
#include "baselines/sample_first.h"
#include "baselines/sample_on_the_fly.h"
#include "baselines/tabula_approach.h"
#include "bench_approaches.h"
#include "loss/regression_loss.h"

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  auto attrs = Attributes(5);
  RegressionLoss loss("fare_amount", "tip_amount");

  WorkloadOptions wopts;
  wopts.num_queries = config.queries;
  auto workload = GenerateWorkload(table, attrs, wopts);
  if (!workload.ok()) {
    std::printf("workload ERROR %s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 13 reproduction: linear regression loss (degrees)\n");
  std::printf("rows=%zu, %zu queries, %zu attributes\n", table.num_rows(),
              workload->size(), attrs.size());
  PrintCsvHeader(
      "figure,theta,approach,ds_ms,viz_ms,min_loss,avg_loss,max_loss,"
      "violations,tuples");

  DashboardOptions dashboard;
  dashboard.task = VisualTask::kRegression;
  dashboard.x_column = "fare_amount";
  dashboard.y_column = "tip_amount";
  dashboard.loss = &loss;

  for (double theta : RegressionThresholdsDeg()) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.0fdeg", theta);

    std::vector<ApproachRow> rows;
    auto add = [&](Approach* approach) {
      auto row =
          MeasureApproach(approach, table, *workload, dashboard, theta);
      if (row.ok()) {
        rows.push_back(std::move(row).value());
      } else {
        std::printf("%s ERROR %s\n", approach->name().c_str(),
                    row.status().ToString().c_str());
      }
    };

    SampleFirst sf100(table, Budget100MB(table), "SamFirst-100MB");
    SampleFirst sf1g(table, Budget1GB(table), "SamFirst-1GB");
    SampleOnTheFly fly(table, &loss, theta);
    PoiSam poisam(table, &loss, theta);
    TabulaOptions topts;
    topts.cubed_attributes = attrs;
    topts.loss = &loss;
    topts.threshold = theta;
    TabulaApproach tabula(table, topts);
    TabulaApproach star(table, topts, /*enable_selection=*/false);

    add(&sf100);
    add(&sf1g);
    add(&fly);
    add(&poisam);
    add(&tabula);
    add(&star);
    PrintApproachRows("13", label, rows);
  }
  return 0;
}

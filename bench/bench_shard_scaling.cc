/// Sharded-cube scaling: build time and serving QPS at K ∈ {1, 2, 4, 8}
/// shards over the same table, same loss, same θ. The merged cube must
/// be the SAME cube at every K — identical iceberg-cell counts — so the
/// sweep isolates the cost/benefit of partitioned building and
/// scatter-gather serving with nothing else moving.
///
/// Two build-time metrics per K:
///   wall_ms   measured wall clock on this host. Shard builds are
///             independent pool tasks, so this converges to crit_ms
///             once the pool has >= K workers; on smaller pools the
///             tasks time-share and wall approaches the *sum* of the
///             shard builds instead.
///   crit_ms   the build's critical path — coordinator-serial work
///             (partition, state merge, θ re-verification) plus the
///             slowest single shard build. This is the wall clock a
///             K-worker deployment (the paper's cluster setting)
///             delivers, and the headline the speedup is computed
///             from; wall_ms is reported alongside so nothing hides.
///
///   --smoke        small fixed scale; exits non-zero when the K=8
///                  critical path regresses >20% vs K=1 or the iceberg
///                  sets diverge (the CI gate)
///   --seed/--rows/--queries  effective-config overrides (bench_common)
///
///   TABULA_SCALE   table rows   (default 60000)
///   TABULA_SEED    dataset seed (default 7)
///
/// Writes BENCH_shard_scaling.json with the headline numbers.

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "shard/sharded_tabula.h"

namespace tabula {
namespace bench {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

struct ShardPoint {
  size_t k = 0;
  double wall_ms = 0.0;
  double crit_ms = 0.0;
  double qps = 0.0;
  size_t iceberg_cells = 0;
  size_t conflict_cells = 0;
  size_t union_accepted = 0;
  size_t verified = 0;
  size_t resampled = 0;
};

}  // namespace
}  // namespace bench
}  // namespace tabula

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  if (smoke) {
    config.rows = std::min<size_t>(config.rows, 20000);
  }

  TaxiGeneratorOptions gen;
  gen.num_rows = config.rows;
  gen.seed = config.seed;
  std::unique_ptr<Table> table = TaxiGenerator(gen).Generate();
  const std::vector<std::string> attrs = Attributes(3);
  const double theta = 0.05;
  auto loss =
      MakeLossFunction("mean_loss", {.columns = {"fare_amount"}}).value();

  std::printf("Sharded-cube scaling: %zu rows, mean loss theta=%.2f, "
              "%zu attributes, hash partition\n",
              table->num_rows(), theta, attrs.size());
  PrintCsvHeader("k,crit_ms,wall_ms,qps,iceberg_cells,conflicts,resampled");

  WorkloadOptions wopt;
  wopt.num_queries = 200;
  wopt.seed = config.seed * 31 + 5;
  auto workload = GenerateWorkload(*table, attrs, wopt);
  if (!workload.ok()) {
    std::printf("workload ERROR %s\n", workload.status().ToString().c_str());
    return 1;
  }
  const size_t serve_queries = smoke ? 2000 : 20000;

  std::vector<ShardPoint> points;
  const int reps = smoke ? 1 : 3;
  for (size_t k : kShardCounts) {
    ShardedTabulaOptions opts;
    opts.base.cubed_attributes = attrs;
    opts.base.loss = loss.get();
    opts.base.threshold = theta;
    opts.base.seed = config.seed;
    // Apples-to-apples across K: representative-sample selection is a
    // global optimization the partitioned build forgoes, so switch it
    // off for K=1 too.
    opts.base.enable_sample_selection = false;
    opts.num_shards = k;
    opts.partition = ShardPartition::kHash;

    ShardPoint p;
    p.k = k;
    std::unique_ptr<ShardedTabula> engine;
    for (int r = 0; r < reps; ++r) {
      Stopwatch timer;
      auto built = ShardedTabula::Initialize(*table, opts);
      double ms = timer.ElapsedMillis();
      if (!built.ok()) {
        std::printf("k=%zu ERROR %s\n", k, built.status().ToString().c_str());
        return 1;
      }
      double crit = built.value()->init_stats().critical_path_millis;
      if (r == 0 || ms < p.wall_ms) p.wall_ms = ms;
      if (r == 0 || crit < p.crit_ms) p.crit_ms = crit;
      engine = std::move(built).value();
    }
    p.iceberg_cells = engine->merged_iceberg_cells();
    const ShardedInitStats& stats = engine->init_stats();
    p.conflict_cells = stats.conflict_cells;
    p.union_accepted = stats.union_accepted_cells;
    p.verified = stats.verified_cells;
    p.resampled = stats.resampled_cells;

    // Single-threaded serving sweep over the workload cells; the
    // scatter-gather path is exercised for every iceberg-cell answer.
    Stopwatch serve_timer;
    for (size_t q = 0; q < serve_queries; ++q) {
      const WorkloadQuery& wq = workload.value()[q % workload.value().size()];
      auto ans = engine->Query(QueryRequest(wq.where));
      if (!ans.ok()) {
        std::printf("k=%zu query ERROR %s\n", k,
                    ans.status().ToString().c_str());
        return 1;
      }
    }
    p.qps = static_cast<double>(serve_queries) /
            (serve_timer.ElapsedMillis() / 1000.0);
    points.push_back(p);

    std::printf("k=%zu crit=%.1fms wall=%.1fms (merge=%.1f) qps=%.0f "
                "iceberg=%zu conflicts=%zu union_ok=%zu verified=%zu "
                "resampled=%zu\n",
                p.k, p.crit_ms, p.wall_ms, stats.merge_millis, p.qps,
                p.iceberg_cells, p.conflict_cells, p.union_accepted,
                p.verified, p.resampled);
    char row[160];
    std::snprintf(row, sizeof(row), "%zu,%.1f,%.1f,%.0f,%zu,%zu,%zu", p.k,
                  p.crit_ms, p.wall_ms, p.qps, p.iceberg_cells,
                  p.conflict_cells, p.resampled);
    PrintCsvRow(row);
  }

  // The merged cube must be the same cube at every K.
  bool cells_equal = true;
  for (const ShardPoint& p : points) {
    if (p.iceberg_cells != points.front().iceberg_cells) cells_equal = false;
  }
  const double speedup_k8 = points.back().crit_ms > 0.0
                                ? points.front().crit_ms / points.back().crit_ms
                                : 0.0;
  std::printf("K=8 build speedup vs K=1 (critical path): %.2fx; "
              "iceberg sets %s\n",
              speedup_k8, cells_equal ? "identical" : "DIVERGED");

  std::vector<std::string> entries;
  for (const ShardPoint& p : points) {
    entries.push_back(JsonObject()
                          .Set("k", static_cast<double>(p.k))
                          .Set("build_critical_path_ms", p.crit_ms)
                          .Set("build_wall_ms", p.wall_ms)
                          .Set("qps", p.qps)
                          .Set("iceberg_cells",
                               static_cast<double>(p.iceberg_cells))
                          .Set("conflict_cells",
                               static_cast<double>(p.conflict_cells))
                          .Set("union_accepted",
                               static_cast<double>(p.union_accepted))
                          .Set("verified", static_cast<double>(p.verified))
                          .Set("resampled", static_cast<double>(p.resampled))
                          .Render());
  }
  JsonObject payload;
  payload.Set("bench", std::string("shard_scaling"))
      .Set("rows", static_cast<double>(table->num_rows()))
      .Set("seed", static_cast<double>(config.seed))
      .Set("loss", std::string("mean_loss"))
      .Set("theta", theta)
      .Set("partition", std::string("hash"))
      .Set("build_critical_path_speedup_k8_vs_k1", speedup_k8)
      .SetRaw("shards", JsonArray(entries));
  WriteBenchJson("shard_scaling", payload);

  if (smoke) {
    if (!cells_equal) {
      std::printf("SMOKE FAIL: iceberg-cell counts diverge across K\n");
      return 1;
    }
    // The partitioned build's critical path may not regress >20% vs
    // single-instance: the coordinator's merge work must stay small
    // enough that splitting the build across K workers wins.
    if (speedup_k8 < 1.0 / 1.2) {
      std::printf("SMOKE FAIL: K=8 build critical path regressed >20%% "
                  "vs K=1 (speedup %.2fx)\n",
                  speedup_k8);
      return 1;
    }
    std::printf("SMOKE OK: speedup %.2fx, iceberg sets identical\n",
                speedup_k8);
  }
  return cells_equal ? 0 : 1;
}

/// Ablation: the sampling-cube initialization design choices.
///
///  (1) Dry-run shortcut: Tabula's one-scan + lattice roll-up vs the
///      literal 2^n-GroupBy pipeline (PartSamCube) at equal semantics.
///  (2) Cost-model path choice (Inequation 1): auto vs always-join vs
///      always-GroupBy in the real run.
///  (3) Representative-sample selection: initialization overhead and
///      memory saved, with the similarity-join candidate cap swept.
///  (4) Global-sample sizing (Serfling ε): smaller global samples
///      spawn more iceberg cells — the Section III-B1 trade-off.

#include "baselines/sample_cube.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/tabula.h"

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  TaxiGeneratorOptions gen;
  gen.num_rows = std::min<size_t>(config.rows, 30000);
  gen.seed = config.seed;
  auto table = TaxiGenerator(gen).Generate();
  auto attrs = Attributes(5);
  auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();
  const double theta = 0.25;  // $0.25: enough iceberg cells to matter

  std::printf("Cube-initialization ablations (rows=%zu, histogram loss, "
              "theta=$%.2f)\n",
              table->num_rows(), theta);

  // (1) Dry-run shortcut.
  PrintHeader("Ablation 1: dry-run shortcut vs literal 2^n GroupBys");
  PrintCsvHeader("ablation,variant,init_ms,memory_bytes");
  {
    TabulaOptions opts;
    opts.cubed_attributes = attrs;
    opts.loss = loss.get();
    opts.threshold = theta;
    Stopwatch t1;
    auto tabula = Tabula::Initialize(*table, opts);
    double tabula_ms = t1.ElapsedMillis();
    TABULA_CHECK(tabula.ok());
    MaterializedSampleCube part(*table, attrs, loss.get(), theta,
                                MaterializedSampleCube::Mode::kPartial);
    Stopwatch t2;
    TABULA_CHECK(part.Prepare().ok());
    double part_ms = t2.ElapsedMillis();
    std::printf("%-28s %10.0f ms   %12s\n", "Tabula (dry-run shortcut)",
                tabula_ms,
                HumanBytes(tabula.value()->init_stats().TotalBytes()).c_str());
    std::printf("%-28s %10.0f ms   %12s   (%.1fx slower)\n",
                "literal init query", part_ms,
                HumanBytes(part.MemoryBytes()).c_str(), part_ms / tabula_ms);
    char row[160];
    std::snprintf(row, sizeof(row), "dryrun,tabula,%.1f,%llu", tabula_ms,
                  static_cast<unsigned long long>(
                      tabula.value()->init_stats().TotalBytes()));
    PrintCsvRow(row);
    std::snprintf(row, sizeof(row), "dryrun,literal,%.1f,%llu", part_ms,
                  static_cast<unsigned long long>(part.MemoryBytes()));
    PrintCsvRow(row);
  }

  // (2) Cost-model path policy.
  PrintHeader("Ablation 2: real-run path policy (Inequation 1)");
  PrintCsvHeader("ablation,policy,real_run_ms");
  for (auto [policy, name] :
       {std::pair{RealRunPathPolicy::kAuto, "auto (cost model)"},
        std::pair{RealRunPathPolicy::kAlwaysJoin, "always equi-join"},
        std::pair{RealRunPathPolicy::kAlwaysGroupBy, "always GroupBy"}}) {
    TabulaOptions opts;
    opts.cubed_attributes = attrs;
    opts.loss = loss.get();
    opts.threshold = theta;
    opts.path_policy = policy;
    auto tabula = Tabula::Initialize(*table, opts);
    TABULA_CHECK(tabula.ok());
    double ms = tabula.value()->init_stats().real_run_millis;
    std::printf("%-28s %10.0f ms\n", name, ms);
    char row[96];
    std::snprintf(row, sizeof(row), "path,%s,%.1f", name, ms);
    PrintCsvRow(row);
  }

  // (3) Selection candidate cap.
  PrintHeader("Ablation 3: representative-selection similarity-join cap");
  PrintCsvHeader("ablation,cap,selection_ms,representatives,sample_bytes");
  for (size_t cap : {size_t{8}, size_t{32}, size_t{64}, size_t{256}}) {
    TabulaOptions opts;
    opts.cubed_attributes = attrs;
    opts.loss = loss.get();
    opts.threshold = theta;
    opts.selection.graph.max_candidates_per_vertex = cap;
    auto tabula = Tabula::Initialize(*table, opts);
    TABULA_CHECK(tabula.ok());
    const auto& s = tabula.value()->init_stats();
    std::printf("cap=%-4zu selection=%7.0f ms  reps=%5zu  sample_table=%s\n",
                cap, s.selection_millis, s.representative_samples,
                HumanBytes(s.sample_table_bytes).c_str());
    char row[128];
    std::snprintf(row, sizeof(row), "selection,%zu,%.1f,%zu,%llu", cap,
                  s.selection_millis, s.representative_samples,
                  static_cast<unsigned long long>(s.sample_table_bytes));
    PrintCsvRow(row);
  }

  // (4) Global-sample sizing.
  PrintHeader("Ablation 4: Serfling global-sample sizing");
  PrintCsvHeader("ablation,epsilon,global_tuples,iceberg_cells,init_ms");
  for (double eps : {0.15, 0.10, 0.05, 0.025}) {
    TabulaOptions opts;
    opts.cubed_attributes = attrs;
    opts.loss = loss.get();
    opts.threshold = theta;
    opts.serfling_epsilon = eps;
    auto tabula = Tabula::Initialize(*table, opts);
    TABULA_CHECK(tabula.ok());
    const auto& s = tabula.value()->init_stats();
    std::printf("eps=%-6.3f global=%5zu tuples  iceberg=%6zu  init=%7.0f ms\n",
                eps, s.global_sample_tuples, s.iceberg_cells,
                s.total_millis);
    char row[128];
    std::snprintf(row, sizeof(row), "serfling,%.3f,%zu,%zu,%.1f", eps,
                  s.global_sample_tuples, s.iceberg_cells, s.total_millis);
    PrintCsvRow(row);
  }
  return 0;
}

/// Reproduces Figure 14: statistical mean loss (relative error of
/// AVG(fare_amount), unit: percentage) — per-query data-system time (a)
/// and actual loss (b), sweeping θ ∈ {2.5, 5, 10, 20}% — including the
/// SnappyData-style AQP baseline, whose stratified column store makes it
/// competitive on this OLAP-style analysis.
///
/// Paper shapes to check: SnappyData's data-system time is comparable to
/// Tabula's (both answer from pre-built state) and it never exceeds the
/// bound thanks to its raw-table fallback; SamFly/Tabula never violate;
/// POIsam can.

#include "baselines/poisam.h"
#include "baselines/sample_first.h"
#include "baselines/sample_on_the_fly.h"
#include "baselines/snappy_like.h"
#include "baselines/tabula_approach.h"
#include "bench_approaches.h"

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  auto attrs = Attributes(5);
  MeanLoss loss("fare_amount");

  WorkloadOptions wopts;
  wopts.num_queries = config.queries;
  auto workload = GenerateWorkload(table, attrs, wopts);
  if (!workload.ok()) {
    std::printf("workload ERROR %s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 14 reproduction: statistical mean loss\n");
  std::printf("rows=%zu, %zu queries, %zu attributes\n", table.num_rows(),
              workload->size(), attrs.size());
  PrintCsvHeader(
      "figure,theta,approach,ds_ms,viz_ms,min_loss,avg_loss,max_loss,"
      "violations,tuples");

  DashboardOptions dashboard;
  dashboard.task = VisualTask::kMean;
  dashboard.target_column = "fare_amount";
  dashboard.loss = &loss;

  for (double theta : MeanThresholds()) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f%%", theta * 100.0);

    std::vector<ApproachRow> rows;
    auto add = [&](Approach* approach) {
      auto row =
          MeasureApproach(approach, table, *workload, dashboard, theta);
      if (row.ok()) {
        rows.push_back(std::move(row).value());
      } else {
        std::printf("%s ERROR %s\n", approach->name().c_str(),
                    row.status().ToString().c_str());
      }
    };

    SampleFirst sf100(table, Budget100MB(table), "SamFirst-100MB");
    SampleFirst sf1g(table, Budget1GB(table), "SamFirst-1GB");
    SampleOnTheFly fly(table, &loss, theta);
    PoiSam poisam(table, &loss, theta);
    SnappyLike snappy100(table, "fare_amount", attrs, Budget100MB(table),
                         theta, "SnappyData-100MB");
    SnappyLike snappy1g(table, "fare_amount", attrs, Budget1GB(table),
                        theta, "SnappyData-1GB");
    TabulaOptions topts;
    topts.cubed_attributes = attrs;
    topts.loss = &loss;
    topts.threshold = theta;
    TabulaApproach tabula(table, topts);
    TabulaApproach star(table, topts, /*enable_selection=*/false);

    add(&sf100);
    add(&sf1g);
    add(&fly);
    add(&poisam);
    add(&snappy100);
    add(&snappy1g);
    add(&tabula);
    add(&star);
    PrintApproachRows("14", label, rows);
  }
  return 0;
}

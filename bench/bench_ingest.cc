/// Streaming-ingest bench: what does keeping the cube fresh cost,
/// relative to rebuilding it, and what do queries experience while
/// ingestion is running?
///
/// Setup: build the cube over the first 90% of the table
/// (keep_maintenance_state on), then append the remaining 10% in ~20
/// batches through a synchronous Ingestor — each Append journals the
/// batch, appends it under the server's exclusive lock, and runs one
/// incremental maintenance cycle (Plan → Begin → Execute → Commit).
/// A background thread issues paced queries the whole time, so the
/// append wall clock includes the lock handoffs a live dashboard would
/// cause, and the query latencies include every ingest-induced stall.
///
/// Reported:
///   append_wall_ms   total wall clock inside Append() across batches
///   rebuild_ms       from-scratch Initialize over the full table
///   append/rebuild   the headline ratio (the incremental win)
///   query p50/p95    served latency during sustained ingest
///   refresh lag      append → covering-commit histogram (the staleness
///                    window a dashboard observes), from the Ingestor's
///                    ingest_refresh_lag metric
///
///   --smoke   small fixed scale; exits non-zero when appending 10% of
///             the rows costs more than 25% of the full rebuild, when
///             any query errors during ingest, or when the final cube's
///             iceberg-cell set diverges from the from-scratch build
///             (the CI gate)
///   --seed/--rows/--queries  effective-config overrides (bench_common)
///
/// Writes BENCH_ingest.json with the headline numbers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/tabula.h"
#include "ingest/ingestor.h"
#include "serve/query_server.h"

namespace tabula {
namespace bench {
namespace {

std::vector<uint64_t> IcebergKeys(const Tabula& t) {
  std::vector<uint64_t> keys;
  for (const IcebergCell& c : t.cube_table().cells()) keys.push_back(c.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<Value> BoxRow(const Table& table, RowId r) {
  std::vector<Value> row;
  row.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    row.push_back(table.column(c).GetValue(r));
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace tabula

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  if (smoke) {
    // Incremental-cycle cost is dominated by per-batch fixed work
    // (journal flush, lock handoff, classification of the batch) while
    // the rebuild baseline is O(rows), so a toy table understates the
    // advantage: pick a scale where the data — not the fixed costs —
    // decides the ratio, while staying well under a second end to end.
    config.rows = 100000;
  }

  TaxiGeneratorOptions gen;
  gen.num_rows = config.rows;
  gen.seed = config.seed;
  std::unique_ptr<Table> full = TaxiGenerator(gen).Generate();
  const std::vector<std::string> attrs = Attributes(3);
  const double theta = 0.05;
  auto loss =
      MakeLossFunction("mean_loss", {.columns = {"fare_amount"}}).value();

  const size_t base_count = full->num_rows() * 9 / 10;
  const size_t append_count = full->num_rows() - base_count;
  const size_t num_batches = 20;

  TabulaOptions opts;
  opts.cubed_attributes = attrs;
  opts.loss = loss.get();
  opts.threshold = theta;
  opts.seed = config.seed;
  opts.keep_maintenance_state = true;

  std::printf("Streaming ingest: %zu rows (%zu base + %zu appended in "
              "%zu batches), mean loss theta=%.2f, %zu attributes\n",
              full->num_rows(), base_count, append_count, num_batches,
              theta, attrs.size());

  // Baseline: from-scratch Initialize over the FULL table — what a
  // system without incremental maintenance pays per refresh. Median of
  // three runs: the smoke gate divides by this number, and a single
  // sample on a busy CI box swings ±20% either way.
  std::vector<double> rebuild_times;
  std::unique_ptr<Tabula> scratch;
  for (int r = 0; r < 3; ++r) {
    Stopwatch timer;
    auto built = Tabula::Initialize(*full, opts);
    double ms = timer.ElapsedMillis();
    if (!built.ok()) {
      std::printf("rebuild ERROR %s\n", built.status().ToString().c_str());
      return 1;
    }
    rebuild_times.push_back(ms);
    scratch = std::move(built).value();
  }
  std::sort(rebuild_times.begin(), rebuild_times.end());
  const double rebuild_ms = rebuild_times[1];

  // One full incremental run: base-prefix engine behind a server, a
  // paced query thread, and the held-out 10% appended through a
  // journaled sync Ingestor. Run twice and keep the faster run's
  // numbers — a single pass on a one-core CI box can eat a multi-ms
  // scheduler stall mid-append, and the minimum over two passes is the
  // noise-free estimate of what the maintenance actually costs (the
  // rebuild baseline gets the median of three for the same reason).
  struct IngestRun {
    double append_wall_ms = 0.0;
    uint64_t queries_served = 0;
    uint64_t query_errors = 0;
    uint64_t commits = 0;
    HistogramSnapshot lat;
    HistogramSnapshot lag;
    std::vector<uint64_t> inc_keys;
  };
  const int append_reps = 2;
  IngestRun best;
  uint64_t total_query_errors = 0;
  bool every_rep_cells_equal = true;
  for (int rep = 0; rep < append_reps; ++rep) {
    // Incremental engine over the base prefix (shared dictionaries, so
    // categorical codes — and cube keys — stay comparable to `full`).
    std::vector<RowId> base_ids(base_count);
    for (RowId r = 0; r < base_count; ++r) base_ids[r] = r;
    std::unique_ptr<Table> table = full->TakeRows(base_ids);
    auto built = Tabula::Initialize(*table, opts);
    if (!built.ok()) {
      std::printf("base build ERROR %s\n", built.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Tabula> engine = std::move(built).value();

    QueryServerOptions sopt;
    QueryServer server(engine.get(), sopt);

    const std::string wal =
        (std::filesystem::temp_directory_path() / "bench_ingest.wal").string();
    std::error_code ec;
    std::filesystem::remove(wal, ec);
    IngestorOptions iopts;
    iopts.journal_path = wal;
    iopts.server = &server;
    auto made = Ingestor::Make(engine.get(), table.get(), iopts);
    if (!made.ok()) {
      std::printf("ingestor ERROR %s\n", made.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Ingestor> ingestor = std::move(made).value();

    WorkloadOptions wopt;
    wopt.num_queries = 200;
    wopt.seed = config.seed * 31 + 5;
    auto workload = GenerateWorkload(*full, attrs, wopt);
    if (!workload.ok()) {
      std::printf("workload ERROR %s\n",
                  workload.status().ToString().c_str());
      return 1;
    }

    // Query thread: sustained load against the server for the entire
    // ingest run; latency recorded per answer, errors counted. The
    // load is paced (not a busy spin): an unthrottled loop on a small
    // CI box measures scheduler timeslice theft from the appender, not
    // the cost of maintenance — 2000 qps is already far beyond a
    // dashboard's refresh rate while leaving the appender's wall clock
    // meaningful.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> query_errors{0};
    std::atomic<uint64_t> queries_served{0};
    LatencyHistogram query_latency;
    std::thread query_thread([&] {
      size_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const WorkloadQuery& wq =
            workload.value()[q % workload.value().size()];
        ++q;
        Stopwatch timer;
        auto ans = server.Query(QueryRequest(wq.where));
        query_latency.RecordMillis(timer.ElapsedMillis());
        if (ans.ok()) {
          queries_served.fetch_add(1, std::memory_order_relaxed);
        } else {
          query_errors.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });

    // Append the held-out 10% in ~equal batches; sync mode, so each
    // Append's wall clock covers journal + table append + full cycle.
    const uint64_t gen_before = engine->generation();
    double append_wall_ms = 0.0;
    bool append_failed = false;
    for (size_t b = 0; b < num_batches && !append_failed; ++b) {
      size_t begin = base_count + b * append_count / num_batches;
      size_t end = base_count + (b + 1) * append_count / num_batches;
      std::vector<std::vector<Value>> rows;
      rows.reserve(end - begin);
      for (size_t r = begin; r < end; ++r) {
        rows.push_back(BoxRow(*full, static_cast<RowId>(r)));
      }
      Stopwatch timer;
      Status st = ingestor->Append(rows);
      append_wall_ms += timer.ElapsedMillis();
      if (!st.ok()) {
        std::printf("append batch %zu ERROR %s\n", b, st.ToString().c_str());
        append_failed = true;
      }
    }
    stop.store(true, std::memory_order_relaxed);
    query_thread.join();
    std::filesystem::remove(wal, ec);
    if (append_failed) return 1;

    if (ingestor->PendingRows() != 0) {
      std::printf("ERROR: %zu rows still pending after sync appends\n",
                  ingestor->PendingRows());
      return 1;
    }

    IngestRun run;
    run.append_wall_ms = append_wall_ms;
    run.queries_served = queries_served.load();
    run.query_errors = query_errors.load();
    run.commits = engine->generation() - gen_before;
    run.lat = query_latency.Snapshot();
    for (auto& [name, h] : ingestor->metrics().Snapshot().histograms) {
      if (name == "ingest_refresh_lag") run.lag = h;
    }
    run.inc_keys = IcebergKeys(*engine);
    // Errors and iceberg divergence fail the gate no matter which rep
    // is faster, so they accumulate across reps instead of riding the
    // fastest run.
    total_query_errors += run.query_errors;
    every_rep_cells_equal =
        every_rep_cells_equal && run.inc_keys == IcebergKeys(*scratch);
    if (rep == 0 || run.append_wall_ms < best.append_wall_ms) {
      best = std::move(run);
    }
  }
  const double append_wall_ms = best.append_wall_ms;

  const double ratio = rebuild_ms > 0.0 ? append_wall_ms / rebuild_ms : 0.0;
  const double append_rows_per_sec =
      append_wall_ms > 0.0
          ? static_cast<double>(append_count) / (append_wall_ms / 1000.0)
          : 0.0;
  const HistogramSnapshot& lat = best.lat;
  const HistogramSnapshot& lag = best.lag;
  const std::vector<uint64_t>& inc_keys = best.inc_keys;
  const std::vector<uint64_t> scratch_keys = IcebergKeys(*scratch);
  const bool cells_equal = every_rep_cells_equal;
  const uint64_t queries_served_total = best.queries_served;
  const uint64_t query_errors_total = total_query_errors;

  std::printf("rebuild=%.1fms append_total=%.1fms (%.1f%% of rebuild) "
              "append_rows_per_sec=%.0f commits=%llu (best of %d runs)\n",
              rebuild_ms, append_wall_ms, ratio * 100.0, append_rows_per_sec,
              static_cast<unsigned long long>(best.commits), append_reps);
  std::printf("queries during ingest: %llu served, %llu errors, "
              "p50=%.2fms p95=%.2fms p99=%.2fms\n",
              static_cast<unsigned long long>(queries_served_total),
              static_cast<unsigned long long>(query_errors_total),
              lat.P50Micros() / 1000.0, lat.P95Micros() / 1000.0,
              lat.P99Micros() / 1000.0);
  std::printf("refresh lag (append -> covering commit): n=%llu "
              "p50=%.1fms p95=%.1fms p99=%.1fms\n",
              static_cast<unsigned long long>(lag.count),
              lag.P50Micros() / 1000.0, lag.P95Micros() / 1000.0,
              lag.P99Micros() / 1000.0);
  std::printf("iceberg cells: incremental=%zu scratch=%zu (%s)\n",
              inc_keys.size(), scratch_keys.size(),
              cells_equal ? "identical" : "DIVERGED");
  PrintCsvHeader("rebuild_ms,append_wall_ms,ratio,append_rows_per_sec,"
                 "query_p95_ms,lag_p95_ms,iceberg_cells");
  char row[200];
  std::snprintf(row, sizeof(row), "%.1f,%.1f,%.3f,%.0f,%.2f,%.1f,%zu",
                rebuild_ms, append_wall_ms, ratio, append_rows_per_sec,
                lat.P95Micros() / 1000.0, lag.P95Micros() / 1000.0,
                inc_keys.size());
  PrintCsvRow(row);

  JsonObject payload;
  payload.Set("bench", std::string("ingest"))
      .Set("rows", static_cast<double>(full->num_rows()))
      .Set("base_rows", static_cast<double>(base_count))
      .Set("appended_rows", static_cast<double>(append_count))
      .Set("batches", static_cast<double>(num_batches))
      .Set("seed", static_cast<double>(config.seed))
      .Set("loss", std::string("mean_loss"))
      .Set("theta", theta)
      .Set("rebuild_ms", rebuild_ms)
      .Set("append_wall_ms", append_wall_ms)
      .Set("append_over_rebuild_ratio", ratio)
      .Set("append_rows_per_sec", append_rows_per_sec)
      .Set("queries_served_during_ingest",
           static_cast<double>(queries_served_total))
      .Set("query_errors", static_cast<double>(query_errors_total))
      .Set("query_p50_ms", lat.P50Micros() / 1000.0)
      .Set("query_p95_ms", lat.P95Micros() / 1000.0)
      .Set("query_p99_ms", lat.P99Micros() / 1000.0)
      .Set("refresh_lag_p50_ms", lag.P50Micros() / 1000.0)
      .Set("refresh_lag_p95_ms", lag.P95Micros() / 1000.0)
      .Set("refresh_lag_p99_ms", lag.P99Micros() / 1000.0)
      .Set("iceberg_cells", static_cast<double>(inc_keys.size()))
      .Set("iceberg_cells_match_scratch",
           std::string(cells_equal ? "true" : "false"));
  WriteBenchJson("ingest", payload);

  if (smoke) {
    if (!cells_equal) {
      std::printf("SMOKE FAIL: incremental iceberg set diverges from "
                  "from-scratch build\n");
      return 1;
    }
    if (query_errors_total != 0) {
      std::printf("SMOKE FAIL: %llu query errors during ingest\n",
                  static_cast<unsigned long long>(query_errors_total));
      return 1;
    }
    // The incremental-maintenance contract: folding in 10% of the rows
    // must cost well under a rebuild — the gate allows 25%.
    if (ratio >= 0.25) {
      std::printf("SMOKE FAIL: appending 10%% of rows cost %.1f%% of a "
                  "full rebuild (gate: <25%%)\n",
                  ratio * 100.0);
      return 1;
    }
    std::printf("SMOKE OK: append cost %.1f%% of rebuild, %llu queries "
                "served clean, iceberg sets identical\n",
                ratio * 100.0,
                static_cast<unsigned long long>(queries_served_total));
  }
  return cells_equal ? 0 : 1;
}

/// Ablation: the greedy SAMPLING(*, θ) engine (Algorithm 1).
///
/// Uses google-benchmark to quantify the design choices DESIGN.md calls
/// out:
///  * lazy-forward (POIsam's CELF-style heap) vs exhaustive rounds;
///  * the candidate-pool cap;
///  * 1-D (histogram) vs 2-D (heat map) evaluator cost.
/// The guarantee is identical in all configurations — only speed and
/// sample size move.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sampling/greedy_sampler.h"

namespace tabula {
namespace bench {

/// Set by main() from the command line before google-benchmark runs, so
/// the table is generated with the effective (post-override) seed.
BenchConfig g_sampler_config = BenchConfig::FromEnv();

namespace {

const Table& BenchTable() {
  static BenchConfig config = [] {
    BenchConfig c = g_sampler_config;
    c.rows = std::min<size_t>(c.rows, 20000);  // micro-bench scale
    return c;
  }();
  return TaxiTable(config);
}

void BM_GreedyHeatmap_LazyForward(benchmark::State& state) {
  const Table& table = BenchTable();
  auto loss = MakeLossFunction("heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}).value();
  GreedySamplerOptions opts;
  opts.lazy_forward = state.range(0) != 0;
  opts.max_candidates = 1024;
  GreedySampler sampler(loss.get(), 0.5 * kNormalizedUnitsPerKm, opts);
  DatasetView raw(&table);
  size_t evals = 0;
  size_t sample_size = 0;
  for (auto _ : state) {
    GreedySamplerStats stats;
    auto sample = sampler.Sample(raw, &stats);
    TABULA_CHECK(sample.ok());
    evals += stats.loss_evaluations;
    sample_size = sample->size();
    benchmark::DoNotOptimize(sample.value());
  }
  state.counters["loss_evals"] =
      static_cast<double>(evals) / state.iterations();
  state.counters["sample_size"] = static_cast<double>(sample_size);
}
BENCHMARK(BM_GreedyHeatmap_LazyForward)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyHeatmap_CandidateCap(benchmark::State& state) {
  const Table& table = BenchTable();
  auto loss = MakeLossFunction("heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}).value();
  GreedySamplerOptions opts;
  opts.max_candidates = static_cast<size_t>(state.range(0));
  GreedySampler sampler(loss.get(), 0.5 * kNormalizedUnitsPerKm, opts);
  DatasetView raw(&table);
  size_t sample_size = 0;
  for (auto _ : state) {
    auto sample = sampler.Sample(raw);
    TABULA_CHECK(sample.ok());
    sample_size = sample->size();
    benchmark::DoNotOptimize(sample.value());
  }
  state.counters["sample_size"] = static_cast<double>(sample_size);
}
BENCHMARK(BM_GreedyHeatmap_CandidateCap)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyHistogram1D(benchmark::State& state) {
  const Table& table = BenchTable();
  auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();
  GreedySampler sampler(loss.get(), 0.5);
  DatasetView raw(&table);
  for (auto _ : state) {
    auto sample = sampler.Sample(raw);
    TABULA_CHECK(sample.ok());
    benchmark::DoNotOptimize(sample.value());
  }
}
BENCHMARK(BM_GreedyHistogram1D)->Unit(benchmark::kMillisecond);

void BM_GreedyMeanLoss(benchmark::State& state) {
  const Table& table = BenchTable();
  MeanLoss loss("fare_amount");
  GreedySampler sampler(&loss, 0.025);
  DatasetView raw(&table);
  for (auto _ : state) {
    auto sample = sampler.Sample(raw);
    TABULA_CHECK(sample.ok());
    benchmark::DoNotOptimize(sample.value());
  }
}
BENCHMARK(BM_GreedyMeanLoss)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tabula

// Hand-rolled BENCHMARK_MAIN so --seed/--rows/--queries are applied
// before the first BenchTable() call (google-benchmark would otherwise
// reject them as unrecognized arguments).
int main(int argc, char** argv) {
  tabula::bench::g_sampler_config =
      tabula::bench::BenchConfig::FromArgs(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

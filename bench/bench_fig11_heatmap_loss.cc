/// Reproduces Figure 11: geospatial heat-map-aware loss — per-query
/// data-system time (a) and actual accuracy loss (b) for SampleFirst
/// (100MB / 1GB analogs), SampleOnTheFly, POIsam, Tabula, and Tabula*,
/// sweeping θ ∈ {0.25, 0.5, 1, 2} km (0.25 km ≈ 0.004 normalized).
///
/// Paper shapes to check: Tabula's data-system time is flat and 10–20×
/// below SamFly/POIsam; SamFirst is flat in θ; SamFly/Tabula never
/// exceed θ; POIsam's loss runs 1–5% above SamFly and occasionally
/// violates θ; SamFirst's loss is ~20× larger (omitted from the paper's
/// plot, printed here).

#include "baselines/poisam.h"
#include "baselines/sample_first.h"
#include "baselines/sample_on_the_fly.h"
#include "baselines/tabula_approach.h"
#include "bench_approaches.h"

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  auto attrs = Attributes(5);
  auto loss = MakeLossFunction("heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}).value();

  WorkloadOptions wopts;
  wopts.num_queries = config.queries;
  auto workload = GenerateWorkload(table, attrs, wopts);
  if (!workload.ok()) {
    std::printf("workload ERROR %s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 11 reproduction: geospatial heat-map-aware loss\n");
  std::printf("rows=%zu, %zu queries, %zu attributes\n", table.num_rows(),
              workload->size(), attrs.size());
  PrintCsvHeader(
      "figure,theta,approach,ds_ms,viz_ms,min_loss,avg_loss,max_loss,"
      "violations,tuples");

  DashboardOptions dashboard;
  dashboard.task = VisualTask::kHeatmap;
  dashboard.x_column = "pickup_x";
  dashboard.y_column = "pickup_y";
  dashboard.loss = loss.get();

  for (double km : HeatmapThresholdsKm()) {
    double theta = km * kNormalizedUnitsPerKm;
    char label[32];
    std::snprintf(label, sizeof(label), "%.2fkm", km);

    std::vector<ApproachRow> rows;
    auto add = [&](Approach* approach) {
      auto row = MeasureApproach(approach, table, *workload, dashboard,
                                 theta);
      if (row.ok()) {
        rows.push_back(std::move(row).value());
      } else {
        std::printf("%s ERROR %s\n", approach->name().c_str(),
                    row.status().ToString().c_str());
      }
    };

    SampleFirst sf100(table, Budget100MB(table), "SamFirst-100MB");
    SampleFirst sf1g(table, Budget1GB(table), "SamFirst-1GB");
    SampleOnTheFly fly(table, loss.get(), theta);
    PoiSam poisam(table, loss.get(), theta);
    TabulaOptions topts;
    topts.cubed_attributes = attrs;
    topts.loss = loss.get();
    topts.threshold = theta;
    TabulaApproach tabula(table, topts);
    TabulaApproach star(table, topts, /*enable_selection=*/false);

    add(&sf100);
    add(&sf1g);
    add(&fly);
    add(&poisam);
    add(&tabula);
    add(&star);
    PrintApproachRows("11", label, rows);
  }
  return 0;
}

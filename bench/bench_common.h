#ifndef TABULA_BENCH_BENCH_COMMON_H_
#define TABULA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/loss_registry.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "loss/regression_loss.h"

namespace tabula {
namespace bench {

/// Scaled-down stand-ins for the paper's experimental constants. The
/// authors ran 700M rows (100 GB) on a 5-node cluster; these defaults
/// target a single laptop core and are overridable via environment
/// variables (TABULA_SCALE, TABULA_QUERIES).
///
/// Pre-built sample budgets scale with the data: the paper's 100 MB and
/// 1 GB samples are 0.1% and 1% of its 100 GB table, so we use the same
/// fractions of our table's footprint and keep the paper's labels.
struct BenchConfig {
  size_t rows;
  size_t queries;
  uint64_t seed;

  static BenchConfig FromEnv() {
    BenchConfig config;
    config.rows =
        static_cast<size_t>(EnvInt64("TABULA_SCALE", 60000));
    config.queries = static_cast<size_t>(EnvInt64("TABULA_QUERIES", 50));
    config.seed = static_cast<uint64_t>(EnvInt64("TABULA_SEED", 7));
    return config;
  }

  /// FromEnv plus command-line overrides (`--seed N`, `--rows N`,
  /// `--queries N`; flags a bench doesn't know, e.g. `--smoke`, are left
  /// for its own parser). Benches must use THIS before the first
  /// TaxiTable() call so the seed the table is generated — and logged —
  /// with is the effective one, not the pre-override env default.
  static BenchConfig FromArgs(int argc, char** argv) {
    BenchConfig config = FromEnv();
    for (int i = 1; i + 1 < argc; ++i) {
      auto value = [&] {
        return static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
      };
      if (std::strcmp(argv[i], "--seed") == 0) {
        config.seed = value();
        ++i;
      } else if (std::strcmp(argv[i], "--rows") == 0) {
        config.rows = static_cast<size_t>(value());
        ++i;
      } else if (std::strcmp(argv[i], "--queries") == 0) {
        config.queries = static_cast<size_t>(value());
        ++i;
      }
    }
    return config;
  }
};

/// Generates (once per process) the synthetic NYCtaxi table.
inline const Table& TaxiTable(const BenchConfig& config) {
  static std::unique_ptr<Table> table = [&] {
    TaxiGeneratorOptions gen;
    gen.num_rows = config.rows;
    gen.seed = config.seed;
    std::fprintf(stderr,
                 "[bench] generating %zu taxi rides (seed=%llu)...\n",
                 config.rows,
                 static_cast<unsigned long long>(config.seed));
    return TaxiGenerator(gen).Generate();
  }();
  return *table;
}

/// First n of the paper's 7 experiment attributes.
inline std::vector<std::string> Attributes(size_t n) {
  auto all = TaxiGenerator::ExperimentAttributes();
  all.resize(n);
  return all;
}

/// The paper's threshold sweeps per loss function (Figures 8, 11, 13,
/// 14). Heat-map thresholds are in km, converted to normalized units.
inline std::vector<double> HeatmapThresholdsKm() {
  return {0.25, 0.5, 1.0, 2.0};
}
inline std::vector<double> MeanThresholds() { return {0.025, 0.05, 0.10, 0.20}; }
inline std::vector<double> RegressionThresholdsDeg() {
  return {1.0, 2.0, 4.0, 8.0};
}
inline std::vector<double> HistogramThresholdsDollar() {
  return {0.25, 0.5, 1.0, 2.0};
}

/// Pre-built sample budget fractions matching the paper's 100MB / 1GB on
/// a 100GB table.
inline uint64_t Budget100MB(const Table& table) {
  return std::max<uint64_t>(table.MemoryBytes() / 1000, 1);
}
inline uint64_t Budget1GB(const Table& table) {
  return std::max<uint64_t>(table.MemoryBytes() / 100, 1);
}

/// Renders a double as JSON: integral values print as integers so cell
/// counts and thread counts stay exact, timings keep microsecond detail.
inline std::string JsonNumber(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 9.0e15 && v > -9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

/// \brief Minimal ordered JSON-object builder for bench artifacts.
///
/// Benches write their headline numbers to `BENCH_<name>.json` in the
/// working directory so before/after comparisons (e.g. the legacy vs
/// flat-hash dry-run engines) are tracked as committed files and CI can
/// gate on them, instead of living only in scrollback.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double value) {
    fields_.emplace_back(key, JsonNumber(value));
    return *this;
  }
  JsonObject& Set(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    fields_.emplace_back(key, std::move(quoted));
    return *this;
  }
  /// Pre-serialized value (nested object or array).
  JsonObject& SetRaw(const std::string& key, std::string raw) {
    fields_.emplace_back(key, std::move(raw));
    return *this;
  }
  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Joins rendered objects into a JSON array.
inline std::string JsonArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  " + items[i];
  }
  out += "\n]";
  return out;
}

/// Writes `BENCH_<name>.json`; returns false (with a note on stderr)
/// when the file cannot be created.
inline bool WriteBenchJson(const std::string& name,
                           const JsonObject& payload) {
  std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return false;
  }
  std::string body = payload.Render();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return true;
}

/// Section header in the bench output.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// CSV block delimiter so EXPERIMENTS.md extraction is mechanical.
inline void PrintCsvHeader(const std::string& columns) {
  std::printf("csv,%s\n", columns.c_str());
}
inline void PrintCsvRow(const std::string& row) {
  std::printf("csv,%s\n", row.c_str());
}

}  // namespace bench
}  // namespace tabula

#endif  // TABULA_BENCH_BENCH_COMMON_H_

/// Reproduces Figure 12: impact of the number of cubed/query attributes
/// (4..7) on per-query data-system time (a) and actual loss (b), with
/// the histogram-aware loss at θ = $0.5 — plus the SnappyData-style AQP
/// baseline, which supports this loss's AVG-style analysis.
///
/// Paper shapes to check: Tabula's data-system time grows only slightly
/// with attributes (larger cube/sample tables); SamFirst is constant;
/// SamFly/POIsam constant (always a full scan); actual loss is
/// essentially independent of the attribute count.

#include "baselines/poisam.h"
#include "baselines/sample_first.h"
#include "baselines/sample_on_the_fly.h"
#include "baselines/snappy_like.h"
#include "baselines/tabula_approach.h"
#include "bench_approaches.h"

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();
  const double theta = 0.5;  // $0.5

  std::printf("Figure 12 reproduction: 4..7 attributes, histogram loss "
              "theta=$0.5\nrows=%zu, %zu queries\n",
              table.num_rows(), config.queries);
  PrintCsvHeader(
      "figure,attrs,approach,ds_ms,viz_ms,min_loss,avg_loss,max_loss,"
      "violations,tuples");

  DashboardOptions dashboard;
  dashboard.task = VisualTask::kHistogram;
  dashboard.target_column = "fare_amount";
  dashboard.loss = loss.get();

  for (size_t attrs_n = 4; attrs_n <= 7; ++attrs_n) {
    auto attrs = Attributes(attrs_n);
    WorkloadOptions wopts;
    wopts.num_queries = config.queries;
    auto workload = GenerateWorkload(table, attrs, wopts);
    if (!workload.ok()) {
      std::printf("workload ERROR %s\n",
                  workload.status().ToString().c_str());
      return 1;
    }

    std::vector<ApproachRow> rows;
    auto add = [&](Approach* approach) {
      auto row =
          MeasureApproach(approach, table, *workload, dashboard, theta);
      if (row.ok()) {
        rows.push_back(std::move(row).value());
      } else {
        std::printf("%s ERROR %s\n", approach->name().c_str(),
                    row.status().ToString().c_str());
      }
    };

    SampleFirst sf100(table, Budget100MB(table), "SamFirst-100MB");
    SampleFirst sf1g(table, Budget1GB(table), "SamFirst-1GB");
    SampleOnTheFly fly(table, loss.get(), theta);
    PoiSam poisam(table, loss.get(), theta);
    SnappyLike snappy100(table, "fare_amount", attrs, Budget100MB(table),
                         0.05, "SnappyData-100MB");
    SnappyLike snappy1g(table, "fare_amount", attrs, Budget1GB(table), 0.05,
                        "SnappyData-1GB");
    TabulaOptions topts;
    topts.cubed_attributes = attrs;
    topts.loss = loss.get();
    topts.threshold = theta;
    TabulaApproach tabula(table, topts);
    TabulaApproach star(table, topts, /*enable_selection=*/false);

    add(&sf100);
    add(&sf1g);
    add(&fly);
    add(&poisam);
    add(&snappy100);
    add(&snappy1g);
    add(&tabula);
    add(&star);
    PrintApproachRows("12", std::to_string(attrs_n) + "attrs", rows);
  }
  return 0;
}

/// Reproduces Figure 9: memory footprint of Tabula's three physical
/// components — global sample, cube table, sample table — plus Tabula*
/// (no sample selection), across the loss functions' threshold sweeps
/// and the 4..7-attribute sweep.
///
/// Paper shapes to check: memory grows as θ shrinks; the sample table
/// dominates the cube table by ≥100×; Tabula* is tens of times larger
/// than Tabula; the global sample is flat (it depends only on the
/// dataset cardinality).

#include "bench_common.h"
#include "common/string_util.h"
#include "core/tabula.h"

namespace tabula {
namespace bench {
namespace {

void RunSweep(const Table& table, const std::string& figure,
              const LossFunction& loss,
              const std::vector<double>& thresholds,
              const std::vector<std::string>& threshold_labels,
              size_t num_attrs) {
  PrintHeader("Figure 9" + figure + ": memory footprint, " + loss.name() +
              ", " + std::to_string(num_attrs) + " attributes");
  std::printf("%-12s %14s %14s %14s %14s %14s\n", "theta", "global",
              "cube_table", "sample_table", "tabula_total", "tabula_star");
  PrintCsvHeader(
      "figure,loss,theta,global_bytes,cube_table_bytes,sample_table_bytes,"
      "tabula_bytes,tabula_star_bytes");
  for (size_t i = 0; i < thresholds.size(); ++i) {
    TabulaOptions opts;
    opts.cubed_attributes = Attributes(num_attrs);
    opts.loss = &loss;
    opts.threshold = thresholds[i];

    auto tabula = Tabula::Initialize(table, opts);
    TabulaOptions star_opts = opts;
    star_opts.enable_sample_selection = false;
    auto star = Tabula::Initialize(table, star_opts);
    if (!tabula.ok() || !star.ok()) {
      std::printf("ERROR %s\n", tabula.status().ToString().c_str());
      continue;
    }
    const auto& s = tabula.value()->init_stats();
    const auto& ss = star.value()->init_stats();
    std::printf("%-12s %14s %14s %14s %14s %14s\n",
                threshold_labels[i].c_str(),
                HumanBytes(s.global_sample_bytes).c_str(),
                HumanBytes(s.cube_table_bytes).c_str(),
                HumanBytes(s.sample_table_bytes).c_str(),
                HumanBytes(s.TotalBytes()).c_str(),
                HumanBytes(ss.TotalBytes()).c_str());
    char row[256];
    std::snprintf(row, sizeof(row),
                  "9%s,%s,%s,%llu,%llu,%llu,%llu,%llu", figure.c_str(),
                  loss.name().c_str(), threshold_labels[i].c_str(),
                  static_cast<unsigned long long>(s.global_sample_bytes),
                  static_cast<unsigned long long>(s.cube_table_bytes),
                  static_cast<unsigned long long>(s.sample_table_bytes),
                  static_cast<unsigned long long>(s.TotalBytes()),
                  static_cast<unsigned long long>(ss.TotalBytes()));
    PrintCsvRow(row);
  }
}

}  // namespace
}  // namespace bench
}  // namespace tabula

int main(int argc, char** argv) {
  using namespace tabula;
  using namespace tabula::bench;

  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const Table& table = TaxiTable(config);
  std::printf("Figure 9 reproduction: memory footprint (log-scale plot in "
              "the paper)\nrows=%zu, table=%s\n",
              table.num_rows(), HumanBytes(table.MemoryBytes()).c_str());

  {
    auto loss = MakeLossFunction("heatmap_loss", {.columns = {"pickup_x", "pickup_y"}}).value();
    std::vector<double> thetas;
    std::vector<std::string> labels;
    for (double km : HeatmapThresholdsKm()) {
      thetas.push_back(km * kNormalizedUnitsPerKm);
      labels.push_back(std::to_string(km) + "km");
    }
    RunSweep(table, "a", *loss, thetas, labels, 5);
  }
  {
    MeanLoss loss("fare_amount");
    RunSweep(table, "b", loss, MeanThresholds(), {"2.5%", "5%", "10%", "20%"},
             5);
  }
  {
    RegressionLoss loss("fare_amount", "tip_amount");
    RunSweep(table, "c", loss, RegressionThresholdsDeg(),
             {"1deg", "2deg", "4deg", "8deg"}, 5);
  }
  {
    auto loss = MakeLossFunction("histogram_loss", {.columns = {"fare_amount"}}).value();
    for (size_t attrs = 4; attrs <= 7; ++attrs) {
      RunSweep(table, "d", *loss, {0.5}, {"$0.5/" + std::to_string(attrs)},
               attrs);
    }
  }
  return 0;
}

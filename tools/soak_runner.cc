/// Seed-reproducible stress/soak driver for the Tabula stack.
///
/// Runs RunSoak (src/testing/scenario.h): a randomized table + schema
/// derived from one seed, an interleaved op mix (Query / BatchQuery /
/// Refresh / Save / Load) under injected faults and delays, with the
/// core invariants checked after every op. Exit code 0 means every
/// invariant held.
///
///   soak_runner --seed 1 --steps 200            # the CI smoke run
///   soak_runner --seed 7 --steps 2000 --trace   # long run, full trace
///   soak_runner --seed 7 --steps 2000 --no-faults
///
/// A failing run prints its seed; replaying with the same --seed
/// --steps reproduces the identical scenario trace (the fault schedule
/// included), so every soak failure is a deterministic repro.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testing/scenario.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--steps N] [--no-faults] [--check-every N]\n"
      "          [--rows N] [--shards K] [--ingest] [--trace] [--verbose]\n"
      "  --seed N         scenario seed (default 1)\n"
      "  --steps N        ops to run (default 200)\n"
      "  --no-faults      same op mix without fault injection\n"
      "  --check-every N  theta-check every Nth answer (default 1)\n"
      "  --rows N         initial table rows (default 3000)\n"
      "  --shards K       run a ShardedTabula with K shards (default:\n"
      "                   plain single-instance engine; K>1 adds shard\n"
      "                   fault seams to the toggle mix)\n"
      "  --ingest         route appends through the streaming Ingestor\n"
      "                   (WAL + incremental maintenance) instead of\n"
      "                   Refresh; adds the ingest.* fault seams and the\n"
      "                   progressive-answer invariants to the run\n"
      "  --trace          print the full scenario trace at the end\n"
      "  --verbose        stream trace lines as they happen\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  tabula::SoakOptions options;
  bool print_trace = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_u64 = [&](uint64_t* out) {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      *out = std::strtoull(argv[++i], nullptr, 10);
    };
    uint64_t v = 0;
    if (arg == "--seed") {
      next_u64(&options.seed);
    } else if (arg == "--steps") {
      next_u64(&v);
      options.steps = static_cast<size_t>(v);
    } else if (arg == "--rows") {
      next_u64(&v);
      options.base_rows = static_cast<size_t>(v);
    } else if (arg == "--shards") {
      next_u64(&v);
      options.shards = static_cast<size_t>(v);
    } else if (arg == "--check-every") {
      next_u64(&v);
      options.check_every = std::max<size_t>(1, static_cast<size_t>(v));
    } else if (arg == "--ingest") {
      options.ingest = true;
    } else if (arg == "--no-faults") {
      options.faults = false;
    } else if (arg == "--trace") {
      print_trace = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  tabula::Result<tabula::SoakReport> run = tabula::RunSoak(options);
  if (!run.ok()) {
    std::fprintf(stderr, "soak harness failed to run (seed=%llu): %s\n",
                 static_cast<unsigned long long>(options.seed),
                 run.status().ToString().c_str());
    return 2;
  }
  const tabula::SoakReport& report = run.value();

  if (print_trace) {
    for (const std::string& line : report.trace) {
      std::printf("%s\n", line.c_str());
    }
  }
  std::printf(
      "soak seed=%llu steps=%zu faults=%s: %zu queries, %zu batches "
      "(%zu items), %zu refreshes (%zu injected failures), "
      "%zu ingests (%zu injected failures), %zu saves "
      "(%zu injected failures), %zu loads, %zu fault toggles, "
      "%zu theta checks, final generation %llu\n",
      static_cast<unsigned long long>(options.seed), report.steps_run,
      options.faults ? "on" : "off", report.queries, report.batches,
      report.batch_items, report.refreshes,
      report.injected_refresh_failures, report.ingests,
      report.injected_ingest_failures, report.saves,
      report.injected_save_failures, report.loads, report.fault_toggles,
      report.theta_checks,
      static_cast<unsigned long long>(report.final_generation));

  if (!report.ok()) {
    std::fprintf(stderr, "%zu INVARIANT VIOLATION(S) — replay with "
                         "--seed %llu --steps %zu --trace:\n",
                 report.violations.size(),
                 static_cast<unsigned long long>(options.seed),
                 report.steps_run);
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("all invariants held\n");
  return 0;
}

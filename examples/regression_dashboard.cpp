/// Regression-analysis dashboard — the paper's "tip amount vs fare
/// amount" visual effect (Figure 1, Function 3).
///
///   $ ./regression_dashboard
///
/// A sampling cube built under the regression-angle loss serves samples
/// whose fitted tip-vs-fare line is guaranteed within 2 degrees of the
/// true population's line. The session fits lines per payment type and
/// per vendor from Tabula's samples and compares them to the raw-data
/// fit, alongside the time both take — the data-to-visualization gap the
/// paper targets.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/loss_registry.h"
#include "viz/analysis.h"

using namespace tabula;

int main() {
  std::printf("Generating 250k taxi rides...\n");
  TaxiGeneratorOptions gen;
  gen.num_rows = 250000;
  auto table = TaxiGenerator(gen).Generate();

  auto loss_result = MakeLossFunction(
      "regression_loss", {.columns = {"fare_amount", "tip_amount"}});
  if (!loss_result.ok()) return 1;
  TabulaOptions options;
  options.cubed_attributes = {"payment_type", "vendor_name",
                              "pickup_weekday"};
  options.owned_loss = std::move(loss_result).value();
  options.threshold = 2.0;  // degrees

  std::printf("Initializing Tabula (regression loss, theta = 2 deg)...\n");
  auto tabula = Tabula::Initialize(*table, options);
  if (!tabula.ok()) {
    std::printf("init failed: %s\n", tabula.status().ToString().c_str());
    return 1;
  }
  std::printf("  done in %.0f ms\n\n",
              tabula.value()->init_stats().total_millis);

  struct Panel {
    const char* label;
    std::vector<PredicateTerm> where;
  };
  std::vector<Panel> panels = {
      {"Credit rides", {{"payment_type", CompareOp::kEq, Value("Credit")}}},
      {"Cash rides", {{"payment_type", CompareOp::kEq, Value("Cash")}}},
      {"Credit @ CMT",
       {{"payment_type", CompareOp::kEq, Value("Credit")},
        {"vendor_name", CompareOp::kEq, Value("CMT")}}},
      {"Disputes", {{"payment_type", CompareOp::kEq, Value("Dispute")}}},
  };

  std::printf("%-14s | %21s | %25s | speedup\n", "panel",
              "sample fit (angle)", "raw fit (angle)");
  for (const auto& panel : panels) {
    Stopwatch fast;
    auto answer = tabula.value()->Query(QueryRequest(panel.where));
    if (!answer.ok()) return 1;
    auto sample_line =
        FitRegression(answer->result.sample, "fare_amount", "tip_amount");
    double fast_ms = fast.ElapsedMillis();

    Stopwatch slow;
    auto pred = BoundPredicate::Bind(*table, panel.where);
    DatasetView truth(table.get(), pred->FilterAll());
    auto true_line = FitRegression(truth, "fare_amount", "tip_amount");
    double slow_ms = slow.ElapsedMillis();
    if (!sample_line.ok() || !true_line.ok()) return 1;

    std::printf(
        "%-14s | y=%.3fx%+.2f (%5.2f°) | y=%.3fx%+.2f (%5.2f°)    | %6.1fx "
        "(%.2f ms vs %.2f ms), angle err %.2f° <= 2°\n",
        panel.label, sample_line->slope, sample_line->intercept,
        sample_line->angle_degrees, true_line->slope, true_line->intercept,
        true_line->angle_degrees, slow_ms / std::max(fast_ms, 1e-6), fast_ms,
        slow_ms,
        std::abs(sample_line->angle_degrees - true_line->angle_degrees));
  }
  std::printf(
      "\nCredit rides trend at ~20%% tips while cash rides are flat — the\n"
      "two dashboards differ, and every sampled fit stays within the\n"
      "2-degree guarantee.\n");
  return 0;
}

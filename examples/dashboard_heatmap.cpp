/// Geospatial dashboard session — the paper's running example and its
/// Figure 2 comparison.
///
///   $ ./dashboard_heatmap [output_dir]
///
/// Simulates a user exploring pickup-location heat maps with successive
/// filters (cash rides, credit rides, airport rides), answered three
/// ways: the raw data system (ground truth), the SampleFirst baseline
/// (pre-built random sample — misses the airport hotspot), and Tabula
/// (guaranteed within 0.25 km). Writes PPM images you can open with any
/// viewer and prints the dashboard-visible divergence of each answer.

#include <cstdio>
#include <string>

#include "baselines/sample_first.h"
#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/loss_registry.h"
#include "viz/heatmap.h"

using namespace tabula;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  std::printf("Generating 150k taxi rides...\n");
  TaxiGeneratorOptions gen;
  gen.num_rows = 150000;
  auto table = TaxiGenerator(gen).Generate();

  auto loss_result = MakeLossFunction(
      "heatmap_loss", {.columns = {"pickup_x", "pickup_y"}});
  if (!loss_result.ok()) return 1;
  std::shared_ptr<const LossFunction> loss = std::move(loss_result).value();
  const double theta = 0.25 * kNormalizedUnitsPerKm;  // 0.25 km

  std::printf("Initializing Tabula (heat-map loss, theta = 0.25 km)...\n");
  TabulaOptions options;
  options.cubed_attributes = {"payment_type", "rate_code"};
  options.owned_loss = loss;
  options.threshold = theta;
  auto tabula = Tabula::Initialize(*table, options);
  if (!tabula.ok()) {
    std::printf("init failed: %s\n", tabula.status().ToString().c_str());
    return 1;
  }
  std::printf("  done in %.0f ms (%zu iceberg cells)\n\n",
              tabula.value()->init_stats().total_millis,
              tabula.value()->init_stats().iceberg_cells);

  // The SampleFirst strawman: a 2000-tuple pre-built random sample.
  SampleFirst sample_first(*table, 2000 * TupleBytes(*table), "SamFirst");
  if (!sample_first.Prepare().ok()) return 1;

  struct Interaction {
    const char* label;
    std::vector<PredicateTerm> where;
  };
  std::vector<Interaction> session = {
      {"cash", {{"payment_type", CompareOp::kEq, Value("Cash")}}},
      {"credit", {{"payment_type", CompareOp::kEq, Value("Credit")}}},
      {"jfk", {{"rate_code", CompareOp::kEq, Value("JFK")}}},
  };

  for (const auto& step : session) {
    auto pred = BoundPredicate::Bind(*table, step.where);
    DatasetView truth(table.get(), pred->FilterAll());

    auto tabula_answer = tabula.value()->Query(QueryRequest(step.where));
    auto samfirst_answer = sample_first.Execute(step.where);
    if (!tabula_answer.ok() || !samfirst_answer.ok()) return 1;

    Heatmap truth_map, tabula_map, samfirst_map;
    truth_map.Render(truth, "pickup_x", "pickup_y").ok();
    tabula_map.Render(tabula_answer->result.sample, "pickup_x", "pickup_y")
        .ok();
    samfirst_map.Render(*samfirst_answer, "pickup_x", "pickup_y").ok();

    std::string base = out_dir + "/heatmap_" + step.label;
    truth_map.WritePpm(base + "_truth.ppm").ok();
    tabula_map.WritePpm(base + "_tabula.ppm").ok();
    samfirst_map.WritePpm(base + "_samfirst.ppm").ok();

    double tabula_loss = loss->Loss(truth, tabula_answer->result.sample).value();
    double samfirst_loss = loss->Loss(truth, *samfirst_answer).value();
    std::printf("filter %-8s population=%7zu\n", step.label, truth.size());
    std::printf("  Tabula    %5zu tuples in %.3f ms, loss %.5f (bound %.5f)\n",
                tabula_answer->result.sample.size(),
                tabula_answer->result.data_system_millis, tabula_loss, theta);
    std::printf("  SamFirst  %5zu tuples, loss %.5f (%.0fx worse)\n",
                samfirst_answer->size(), samfirst_loss,
                samfirst_loss / std::max(tabula_loss, 1e-9));
    std::printf("  images: %s_{truth,tabula,samfirst}.ppm\n\n", base.c_str());
  }
  std::printf(
      "Open heatmap_jfk_*.ppm: SampleFirst thins out or misses the JFK "
      "hotspot (the paper's Figure 2 red circle); Tabula preserves it.\n");
  return 0;
}

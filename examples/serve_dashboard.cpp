/// The serving layer end-to-end: a QueryServer in front of the Tabula
/// middleware handling a simulated dashboard session — batched heatmap
/// tiles, repeat filters served from the result cache, a mid-session
/// Refresh() that fences the cache, and the metrics text a scrape
/// endpoint would expose.
///
///   $ ./serve_dashboard

#include <cstdio>
#include <string>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/mean_loss.h"
#include "serve/query_server.h"

using namespace tabula;

int main() {
  std::printf("Generating 100k taxi rides...\n");
  TaxiGeneratorOptions gen;
  gen.num_rows = 100000;
  auto table = TaxiGenerator(gen).Generate();

  MeanLoss loss("fare_amount");
  TabulaOptions options;
  options.cubed_attributes = {"payment_type", "rate_code", "pickup_weekday"};
  options.loss = &loss;
  options.threshold = 0.05;
  options.keep_maintenance_state = true;

  std::printf("Initializing Tabula (mean loss, theta = 5%%)...\n");
  auto tabula = Tabula::Initialize(*table, options);
  if (!tabula.ok()) {
    std::printf("init failed: %s\n", tabula.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu iceberg cells in %.0f ms\n\n",
              tabula.value()->init_stats().iceberg_cells,
              tabula.value()->init_stats().total_millis);

  QueryServerOptions sopts;
  sopts.cache.max_bytes = 16ull << 20;
  QueryServer server(tabula.value().get(), sopts);

  // A dashboard pan: all visible tiles in one batched request instead
  // of N serial Query() calls.
  WorkloadOptions wopts;
  wopts.num_queries = 16;
  auto workload =
      GenerateWorkload(*table, options.cubed_attributes, wopts);
  if (!workload.ok()) return 1;
  std::vector<std::vector<PredicateTerm>> tiles;
  for (const auto& q : *workload) tiles.push_back(q.where);

  auto pan = server.BatchQuery(tiles);
  if (!pan.ok()) {
    std::printf("pan failed: %s\n", pan.status().ToString().c_str());
    return 1;
  }
  size_t local = 0, global = 0;
  for (const auto& item : *pan) {
    if (!item.status.ok()) continue;
    item.answer.result->from_local_sample ? ++local : ++global;
  }
  std::printf("Pan of %zu tiles answered in one batch: %zu local samples, "
              "%zu global-sample tiles\n",
              tiles.size(), local, global);

  // The user flips back and forth between two filters — the second
  // visit of each is a cache hit (a pointer copy, no cube probe).
  std::vector<PredicateTerm> cash = {
      {"payment_type", CompareOp::kEq, Value("Cash")}};
  std::vector<PredicateTerm> credit = {
      {"payment_type", CompareOp::kEq, Value("Credit")}};
  for (int round = 0; round < 3; ++round) {
    for (const auto& where : {cash, credit}) {
      auto answer = server.Query(where);
      if (!answer.ok()) return 1;
      std::printf("  %-22s %5zu tuples  %s  %.3f ms\n",
                  where[0].literal.ToString().c_str(),
                  answer->result->sample.size(),
                  answer->cache_hit ? "cache hit " : "cube probe",
                  answer->total_millis);
    }
  }

  // New rides stream in; Refresh() re-validates the cube and fences
  // every cached answer so nothing stale is ever served.
  std::printf("\nAppending 5000 rides and refreshing...\n");
  TaxiGeneratorOptions more;
  more.num_rows = 5000;
  more.seed = gen.seed + 1;
  auto extra = TaxiGenerator(more).Generate();
  for (RowId r = 0; r < extra->num_rows(); ++r) {
    if (!table->AppendRowFrom(*extra, r).ok()) return 1;
  }
  Tabula::RefreshStats rstats;
  if (!server.Refresh(&rstats).ok()) return 1;
  std::printf("  refresh: %zu new rows, %zu new iceberg cells, %.0f ms; "
              "cache generation -> %llu\n",
              rstats.new_rows, rstats.new_iceberg_cells, rstats.millis,
              static_cast<unsigned long long>(server.cache().generation()));

  auto post = server.Query(cash);
  if (!post.ok()) return 1;
  std::printf("  'Cash' after refresh: %s (stale entry fenced)\n\n",
              post->cache_hit ? "cache hit — BUG" : "cube probe");

  std::printf("Metrics endpoint:\n%s", server.MetricsText().c_str());
  return 0;
}

/// The serving layer end-to-end: a QueryServer in front of the Tabula
/// middleware handling a simulated dashboard session — batched heatmap
/// tiles, repeat filters served from the result cache, a mid-session
/// Refresh() that fences the cache, per-request tracing with an OTLP
/// JSON export, the slow-query log, and the metrics text a scrape
/// endpoint would expose.
///
///   $ ./serve_dashboard

#include <cstdio>
#include <string>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/loss_registry.h"
#include "obs/export.h"
#include "serve/query_server.h"

using namespace tabula;

int main() {
  std::printf("Generating 100k taxi rides...\n");
  TaxiGeneratorOptions gen;
  gen.num_rows = 100000;
  auto table = TaxiGenerator(gen).Generate();

  // kOnDemand: only requests that set QueryRequest::trace = true are
  // recorded, so steady-state serving stays near the untraced cost.
  Tracer tracer(TracerOptions{TraceMode::kOnDemand, 4096});

  auto loss_result =
      MakeLossFunction("mean_loss", {.columns = {"fare_amount"}});
  if (!loss_result.ok()) return 1;
  TabulaOptions options;
  options.cubed_attributes = {"payment_type", "rate_code", "pickup_weekday"};
  options.owned_loss = std::move(loss_result).value();
  options.threshold = 0.05;
  options.keep_maintenance_state = true;
  options.tracer = &tracer;

  std::printf("Initializing Tabula (mean loss, theta = 5%%)...\n");
  auto tabula = Tabula::Initialize(*table, options);
  if (!tabula.ok()) {
    std::printf("init failed: %s\n", tabula.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu iceberg cells in %.0f ms\n",
              tabula.value()->init_stats().iceberg_cells,
              tabula.value()->init_stats().total_millis);
  // Stage timings ARE the init spans' durations:
  std::printf("%s\n",
              RenderSpanTree(tabula.value()->init_trace()).c_str());

  QueryServerOptions sopts;
  sopts.cache.max_bytes = 16ull << 20;
  sopts.tracer = &tracer;
  sopts.slow_query_ms = 0.01;  // absurdly low, to demo the log
  QueryServer server(tabula.value().get(), sopts);

  // A dashboard pan: all visible tiles in one batched request instead
  // of N serial Query() calls.
  WorkloadOptions wopts;
  wopts.num_queries = 16;
  auto workload =
      GenerateWorkload(*table, options.cubed_attributes, wopts);
  if (!workload.ok()) return 1;
  std::vector<std::vector<PredicateTerm>> tiles;
  for (const auto& q : *workload) tiles.push_back(q.where);

  auto pan = server.BatchQuery(tiles);
  if (!pan.ok()) {
    std::printf("pan failed: %s\n", pan.status().ToString().c_str());
    return 1;
  }
  size_t local = 0, global = 0;
  for (const auto& item : *pan) {
    if (!item.status.ok()) continue;
    item.answer.result->from_local_sample ? ++local : ++global;
  }
  std::printf("Pan of %zu tiles answered in one batch: %zu local samples, "
              "%zu global-sample tiles\n",
              tiles.size(), local, global);

  // The user flips back and forth between two filters — the second
  // visit of each is a cache hit (a pointer copy, no cube probe).
  std::vector<PredicateTerm> cash = {
      {"payment_type", CompareOp::kEq, Value("Cash")}};
  std::vector<PredicateTerm> credit = {
      {"payment_type", CompareOp::kEq, Value("Credit")}};
  for (int round = 0; round < 3; ++round) {
    for (const auto& where : {cash, credit}) {
      QueryRequest request(where);
      auto answer = server.Query(request);
      if (!answer.ok()) return 1;
      std::printf("  %-22s %5zu tuples  %s  %.3f ms\n",
                  where[0].literal.ToString().c_str(),
                  answer->result->sample.size(),
                  answer->cache_hit ? "cache hit " : "cube probe",
                  answer->total_millis);
    }
  }

  // One traced request: QueryRequest::trace opts it into the kOnDemand
  // tracer; kBypassCache forces the full serve → cube path so the span
  // tree shows the middleware child too.
  QueryRequest traced(cash);
  traced.trace = true;
  traced.consistency = ConsistencyHint::kBypassCache;
  auto traced_answer = server.Query(traced);
  if (!traced_answer.ok()) return 1;
  std::printf("\nTraced request (span %llu):\n%s",
              static_cast<unsigned long long>(traced_answer->span_id),
              RenderSpanTree(SpanSubtree(tracer.Snapshot(),
                                         traced_answer->span_id))
                  .c_str());

  // New rides stream in; Refresh() re-validates the cube and fences
  // every cached answer so nothing stale is ever served.
  std::printf("\nAppending 5000 rides and refreshing...\n");
  TaxiGeneratorOptions more;
  more.num_rows = 5000;
  more.seed = gen.seed + 1;
  auto extra = TaxiGenerator(more).Generate();
  for (RowId r = 0; r < extra->num_rows(); ++r) {
    if (!table->AppendRowFrom(*extra, r).ok()) return 1;
  }
  Tabula::RefreshStats rstats;
  if (!server.Refresh(&rstats).ok()) return 1;
  std::printf("  refresh: %zu new rows, %zu new iceberg cells, %.0f ms; "
              "cache generation -> %llu\n",
              rstats.new_rows, rstats.new_iceberg_cells, rstats.millis,
              static_cast<unsigned long long>(server.cache().generation()));

  auto post = server.Query(cash);
  if (!post.ok()) return 1;
  std::printf("  'Cash' after refresh: %s (stale entry fenced)\n\n",
              post->cache_hit ? "cache hit — BUG" : "cube probe");

  // The slow-query log caught everything over the demo threshold, with
  // span trees for traced entries.
  std::printf("Slow-query log (threshold %.2f ms, %llu logged):\n%s\n",
              sopts.slow_query_ms,
              static_cast<unsigned long long>(
                  server.slow_query_log().total_logged()),
              server.slow_query_log().RenderText().c_str());

  // OTLP-flavoured JSON export for external tooling.
  const std::string trace_path = "serve_trace.json";
  if (WriteOtlpJsonFile(tracer, trace_path).ok()) {
    std::printf("Trace exported to %s\n\n", trace_path.c_str());
  }

  std::printf("Metrics endpoint:\n%s", server.MetricsText().c_str());
  return 0;
}

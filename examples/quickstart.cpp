/// Quickstart: build a Tabula sampling cube over synthetic NYC taxi
/// rides and answer dashboard queries with the deterministic accuracy
/// guarantee.
///
///   $ ./quickstart
///
/// Walks through the paper's workflow (Section II): pick a loss function
/// and threshold, initialize the cube once, then serve every filter
/// combination from pre-materialized samples.

#include <cstdio>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/loss_registry.h"

using namespace tabula;

int main() {
  // 1. Load data — here, 200k synthetic NYC taxi rides (the paper's
  //    dataset has 700M; swap in your own Table).
  std::printf("Generating 200k taxi rides...\n");
  TaxiGeneratorOptions gen;
  gen.num_rows = 200000;
  auto table = TaxiGenerator(gen).Generate();

  // 2. Choose an accuracy loss function and threshold. Here: the
  //    relative error of AVG(fare_amount) must never exceed 5%. The
  //    registry owns construction; owned_loss ties its lifetime to the
  //    cube (no raw-pointer footgun).
  auto loss_result =
      MakeLossFunction("mean_loss", {.columns = {"fare_amount"}});
  if (!loss_result.ok()) {
    std::printf("loss setup failed: %s\n",
                loss_result.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const LossFunction> loss = std::move(loss_result).value();

  TabulaOptions options;
  options.cubed_attributes = {"payment_type", "rate_code",
                              "passenger_count"};
  options.owned_loss = loss;
  options.threshold = 0.05;

  // 3. Initialize the sampling cube (the SQL equivalent is
  //    CREATE TABLE cube AS SELECT ..., SAMPLING(*, 0.05) ...
  //    GROUP BY CUBE(...) HAVING mean_loss(fare_amount, SAM_GLOBAL) > 0.05).
  std::printf("Initializing Tabula...\n");
  auto tabula = Tabula::Initialize(*table, options);
  if (!tabula.ok()) {
    std::printf("initialization failed: %s\n",
                tabula.status().ToString().c_str());
    return 1;
  }
  const auto& stats = tabula.value()->init_stats();
  std::printf(
      "  %zu cube cells, %zu iceberg cells, %zu representative samples\n"
      "  dry run %.0f ms | real run %.0f ms | selection %.0f ms\n\n",
      stats.total_cells, stats.iceberg_cells, stats.representative_samples,
      stats.dry_run_millis, stats.real_run_millis, stats.selection_millis);

  // 4. Answer dashboard queries from the cube.
  struct Demo {
    const char* label;
    std::vector<PredicateTerm> where;
  };
  std::vector<Demo> demos = {
      {"all rides", {}},
      {"payment_type = Cash",
       {{"payment_type", CompareOp::kEq, Value("Cash")}}},
      {"rate_code = JFK", {{"rate_code", CompareOp::kEq, Value("JFK")}}},
      {"Credit AND JFK",
       {{"payment_type", CompareOp::kEq, Value("Credit")},
        {"rate_code", CompareOp::kEq, Value("JFK")}}},
  };
  for (const auto& demo : demos) {
    auto answer = tabula.value()->Query(QueryRequest(demo.where));
    if (!answer.ok()) {
      std::printf("query failed: %s\n", answer.status().ToString().c_str());
      continue;
    }
    const TabulaQueryResult& result = answer->result;
    // Verify the guarantee against the true query result.
    auto pred = BoundPredicate::Bind(*table, demo.where);
    DatasetView truth(table.get(), pred->FilterAll());
    double actual = loss->Loss(truth, result.sample).value();
    std::printf(
        "%-24s -> %5zu sample tuples from %s in %.3f ms, actual loss "
        "%.4f (<= 0.05 guaranteed)\n",
        demo.label, result.sample.size(),
        result.from_local_sample ? "local sample " : "global sample",
        result.data_system_millis, actual);
  }
  return 0;
}

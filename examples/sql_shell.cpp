/// Interactive SQL shell over the embedded data system and Tabula
/// middleware — a minimal psql-style REPL.
///
///   $ ./sql_shell [num_rows]
///   tabula> SELECT payment_type, COUNT(*) FROM nyctaxi GROUP BY payment_type
///   tabula> CREATE TABLE c AS SELECT payment_type, SAMPLING(*, 0.05) AS sample
///           FROM nyctaxi GROUP BY CUBE(payment_type)
///           HAVING mean_loss(fare_amount, SAM_GLOBAL) > 0.05
///   tabula> SELECT sample FROM c WHERE payment_type = 'Cash'
///   tabula> \q
///
/// Statements may span lines; an empty line or a line ending in ';'
/// submits. `\q` quits, `\help` lists the dialect.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "data/taxi_gen.h"
#include "sql/engine.h"

using namespace tabula;

namespace {

void PrintTable(const Table& t, size_t max_rows = 20) {
  const Schema& schema = t.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    std::printf("%s%s", c == 0 ? "" : " | ", schema.field(c).name.c_str());
  }
  std::printf("\n");
  size_t show = std::min(t.num_rows(), max_rows);
  for (size_t r = 0; r < show; ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      std::printf("%s%s", c == 0 ? "" : " | ",
                  t.GetValue(c, r).ToString().c_str());
    }
    std::printf("\n");
  }
  if (t.num_rows() > show) {
    std::printf("... (%zu rows total)\n", t.num_rows());
  }
}

void PrintHelp() {
  std::printf(
      "Statements:\n"
      "  SELECT cols|aggs FROM tbl [WHERE ...] [GROUP BY ...]\n"
      "  CREATE AGGREGATE name(Raw, Sam) RETURN decimal_value AS\n"
      "    BEGIN <expr over AVG/SUM/COUNT/MIN/MAX/STD_DEV/ANGLE of Raw|Sam>"
      " END\n"
      "  CREATE TABLE cube AS SELECT attrs..., SAMPLING(*, theta) AS sample\n"
      "    FROM tbl GROUP BY CUBE(attrs...)\n"
      "    HAVING loss(attr[, attr2], SAM_GLOBAL) > theta\n"
      "  SELECT sample FROM cube [WHERE attr = 'v' AND ...]\n"
      "Built-in losses: mean_loss, heatmap_loss, histogram_loss, "
      "regression_loss\n"
      "Meta: \\q quit, \\help this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  std::printf("Loading %zu synthetic NYC taxi rides as table 'nyctaxi'...\n",
              rows);
  sql::SqlEngine engine;
  TaxiGeneratorOptions gen;
  gen.num_rows = rows;
  if (!engine.RegisterTable("nyctaxi", TaxiGenerator(gen).Generate()).ok()) {
    return 1;
  }
  std::printf("Ready. Type \\help for the dialect, \\q to quit.\n");

  std::string buffer;
  std::string line;
  for (;;) {
    std::printf(buffer.empty() ? "tabula> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "\\q" || line == "\\quit") break;
    if (line == "\\help") {
      PrintHelp();
      continue;
    }
    if (!line.empty()) {
      buffer += line;
      buffer += ' ';
    }
    bool submit = line.empty() ||
                  (!line.empty() && line.back() == ';');
    if (!submit || buffer.find_first_not_of(" ;") == std::string::npos) {
      if (submit) buffer.clear();
      continue;
    }
    // Strip trailing semicolon.
    while (!buffer.empty() && (buffer.back() == ' ' || buffer.back() == ';')) {
      buffer.pop_back();
    }
    Stopwatch timer;
    auto result = engine.Execute(buffer);
    double ms = timer.ElapsedMillis();
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->table != nullptr) PrintTable(*result->table);
    if (!result->message.empty()) {
      std::printf("%s (%.2f ms)\n", result->message.c_str(), ms);
    }
  }
  std::printf("\nbye\n");
  return 0;
}

/// Driving Tabula entirely through SQL — the middleware's front door.
///
///   $ ./sql_dashboard
///
/// Shows the three statement forms of Section II: registering a custom
/// accuracy loss with CREATE AGGREGATE, initializing the sampling cube
/// with CREATE TABLE ... SAMPLING(*, θ) ... GROUP BY CUBE ... HAVING,
/// and serving dashboard queries with SELECT sample FROM ... WHERE.
/// Plain SELECTs against the embedded data system run too.

#include <cstdio>
#include <string>
#include <vector>

#include "data/taxi_gen.h"
#include "sql/engine.h"

using namespace tabula;

namespace {
void Run(sql::SqlEngine* engine, const std::string& statement) {
  std::printf("sql> %s\n", statement.c_str());
  auto result = engine->Execute(statement);
  if (!result.ok()) {
    std::printf("  !! %s\n\n", result.status().ToString().c_str());
    return;
  }
  if (!result->message.empty()) {
    std::printf("  -> %s\n", result->message.c_str());
  }
  if (result->table != nullptr) {
    const Table& t = *result->table;
    size_t show = std::min<size_t>(t.num_rows(), 6);
    for (size_t r = 0; r < show; ++r) {
      std::printf("     ");
      for (size_t c = 0; c < t.num_columns(); ++c) {
        std::printf("%s%s", c == 0 ? "" : " | ",
                    t.GetValue(c, r).ToString().c_str());
      }
      std::printf("\n");
    }
    if (t.num_rows() > show) {
      std::printf("     ... (%zu rows total)\n", t.num_rows());
    }
  }
  std::printf("\n");
}
}  // namespace

int main() {
  std::printf("Loading 100k taxi rides into the embedded data system...\n\n");
  sql::SqlEngine engine;
  TaxiGeneratorOptions gen;
  gen.num_rows = 100000;
  if (!engine.RegisterTable("nyctaxi", TaxiGenerator(gen).Generate()).ok()) {
    return 1;
  }

  // Plain data-system queries.
  Run(&engine,
      "SELECT payment_type, COUNT(*), AVG(fare_amount) FROM nyctaxi "
      "GROUP BY payment_type");

  // A user-defined accuracy loss: the paper's Function 1 verbatim.
  Run(&engine,
      "CREATE AGGREGATE my_loss(Raw, Sam) RETURN decimal_value AS "
      "BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END");

  // Initialize the sampling cube (paper Query 1).
  Run(&engine,
      "CREATE TABLE SamplingCube AS "
      "SELECT payment_type, rate_code, passenger_count, "
      "SAMPLING(*, 0.05) AS sample "
      "FROM nyctaxi "
      "GROUPBY CUBE(payment_type, rate_code, passenger_count) "
      "HAVING my_loss(fare_amount, SAM_GLOBAL) > 0.05");

  // Dashboard interactions (paper Query 2).
  Run(&engine, "SELECT sample FROM SamplingCube WHERE payment_type = 'Cash'");
  Run(&engine,
      "SELECT sample FROM SamplingCube "
      "WHERE rate_code = 'JFK' AND passenger_count = '1'");
  Run(&engine, "SELECT sample FROM SamplingCube");

  // A second cube with a built-in loss: regression (tip vs fare).
  Run(&engine,
      "CREATE TABLE RegressionCube AS "
      "SELECT payment_type, vendor_name, SAMPLING(*, 2) AS sample "
      "FROM nyctaxi GROUP BY CUBE(payment_type, vendor_name) "
      "HAVING regression_loss(fare_amount, tip_amount, SAM_GLOBAL) > 2");
  Run(&engine,
      "SELECT sample FROM RegressionCube WHERE payment_type = 'Credit'");
  return 0;
}

#include "storage/value.h"

#include <cstdio>

namespace tabula {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kCategorical:
      return "CATEGORICAL";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  if (is_null()) return "(null)";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
    return buf;
  }
  return AsString();
}

}  // namespace tabula

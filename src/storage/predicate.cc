#include "storage/predicate.h"

#include <mutex>

#include "common/thread_pool.h"

namespace tabula {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<BoundPredicate> BoundPredicate::Bind(
    const Table& table, const std::vector<PredicateTerm>& terms) {
  BoundPredicate pred;
  pred.table_ = &table;
  pred.bound_.reserve(terms.size());
  for (const auto& term : terms) {
    TABULA_ASSIGN_OR_RETURN(size_t idx,
                            table.schema().FieldIndex(term.column));
    BoundTerm bt;
    bt.column = &table.column(idx);
    bt.op = term.op;
    bt.type = bt.column->type();
    switch (bt.type) {
      case DataType::kCategorical: {
        if (!term.literal.is_string()) {
          return Status::TypeMismatch("categorical column '" + term.column +
                                      "' compared to non-string literal");
        }
        if (term.op != CompareOp::kEq && term.op != CompareOp::kNe) {
          return Status::InvalidArgument(
              "categorical column '" + term.column +
              "' only supports = and <>");
        }
        auto code = bt.column->As<CategoricalColumn>()->dict().Find(
            term.literal.AsString());
        bt.code_valid = code.ok();
        if (code.ok()) bt.code = code.value();
        break;
      }
      case DataType::kInt64: {
        if (!term.literal.is_int64() && !term.literal.is_double()) {
          return Status::TypeMismatch("integer column '" + term.column +
                                      "' compared to non-numeric literal");
        }
        bt.i64 = term.literal.is_int64()
                     ? term.literal.AsInt64()
                     : static_cast<int64_t>(term.literal.AsDouble());
        break;
      }
      case DataType::kDouble: {
        if (!term.literal.is_int64() && !term.literal.is_double()) {
          return Status::TypeMismatch("double column '" + term.column +
                                      "' compared to non-numeric literal");
        }
        bt.f64 = term.literal.AsDouble();
        break;
      }
    }
    pred.bound_.push_back(bt);
  }
  return pred;
}

namespace {
template <typename T>
bool Compare(CompareOp op, T lhs, T rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}
}  // namespace

bool BoundPredicate::MatchesTerm(const BoundTerm& t, RowId row) const {
  switch (t.type) {
    case DataType::kCategorical: {
      const auto* col = static_cast<const CategoricalColumn*>(t.column);
      if (!t.code_valid) return t.op == CompareOp::kNe;
      bool eq = col->CodeAt(row) == t.code;
      return t.op == CompareOp::kEq ? eq : !eq;
    }
    case DataType::kInt64: {
      const auto* col = static_cast<const Int64Column*>(t.column);
      return Compare<int64_t>(t.op, col->At(row), t.i64);
    }
    case DataType::kDouble: {
      const auto* col = static_cast<const DoubleColumn*>(t.column);
      return Compare<double>(t.op, col->At(row), t.f64);
    }
  }
  return false;
}

bool BoundPredicate::Matches(RowId row) const {
  for (const auto& t : bound_) {
    if (!MatchesTerm(t, row)) return false;
  }
  return true;
}

std::vector<RowId> BoundPredicate::FilterAll() const {
  size_t n = table_->num_rows();
  auto& pool = ThreadPool::Global();
  std::vector<std::vector<RowId>> partials(pool.num_threads() + 1);
  pool.ParallelForChunked(n, [&](size_t chunk, size_t begin, size_t end) {
    auto& out = partials[chunk];
    for (size_t r = begin; r < end; ++r) {
      if (Matches(static_cast<RowId>(r))) out.push_back(static_cast<RowId>(r));
    }
  });
  std::vector<RowId> result;
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  result.reserve(total);
  for (const auto& p : partials) {
    result.insert(result.end(), p.begin(), p.end());
  }
  return result;
}

std::vector<RowId> BoundPredicate::FilterRows(
    const std::vector<RowId>& candidates) const {
  std::vector<RowId> out;
  out.reserve(candidates.size() / 4 + 1);
  for (RowId r : candidates) {
    if (Matches(r)) out.push_back(r);
  }
  return out;
}

}  // namespace tabula

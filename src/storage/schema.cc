#include "storage/schema.h"

namespace tabula {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace tabula

#ifndef TABULA_STORAGE_PREDICATE_H_
#define TABULA_STORAGE_PREDICATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace tabula {

/// Comparison operator for a predicate term.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// One `column <op> literal` term.
struct PredicateTerm {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// \brief A conjunction of comparison terms, bound to a table.
///
/// Dashboard filters translate into conjunctive equality predicates on the
/// cubed attributes (Section II); the data system also supports range
/// operators for general SELECTs.
class BoundPredicate {
 public:
  /// Resolves column names and (for categoricals) literal dictionary codes
  /// against `table`. A categorical literal not present in the dictionary
  /// yields a predicate that matches nothing for kEq (and everything for
  /// kNe), which is the correct SQL semantics.
  static Result<BoundPredicate> Bind(const Table& table,
                                     const std::vector<PredicateTerm>& terms);

  /// True iff the row satisfies every term.
  bool Matches(RowId row) const;

  /// All matching rows, scanned in parallel on the global thread pool.
  std::vector<RowId> FilterAll() const;

  /// Matching rows among `candidates`.
  std::vector<RowId> FilterRows(const std::vector<RowId>& candidates) const;

  size_t num_terms() const { return bound_.size(); }

 private:
  struct BoundTerm {
    const Column* column;
    CompareOp op;
    // Pre-resolved comparison payloads per type.
    DataType type;
    uint32_t code = 0;       // categorical
    bool code_valid = false; // literal present in dictionary
    int64_t i64 = 0;
    double f64 = 0.0;
  };

  bool MatchesTerm(const BoundTerm& t, RowId row) const;

  const Table* table_ = nullptr;
  std::vector<BoundTerm> bound_;
};

}  // namespace tabula

#endif  // TABULA_STORAGE_PREDICATE_H_

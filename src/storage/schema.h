#ifndef TABULA_STORAGE_SCHEMA_H_
#define TABULA_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace tabula {

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type;
};

/// \brief Ordered collection of fields describing a table layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or a NotFound status.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True iff a column with this name exists.
  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace tabula

#endif  // TABULA_STORAGE_SCHEMA_H_

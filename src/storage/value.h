#ifndef TABULA_STORAGE_VALUE_H_
#define TABULA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace tabula {

/// Physical type of a column.
enum class DataType {
  /// Dictionary-encoded low-cardinality string (vendor, payment type, ...).
  kCategorical,
  /// 64-bit signed integer (passenger count, weekday, ...).
  kInt64,
  /// IEEE double (fare amount, coordinates, ...).
  kDouble,
};

/// Returns the SQL-ish name of a DataType ("CATEGORICAL", "BIGINT",
/// "DOUBLE").
const char* DataTypeName(DataType type);

/// \brief A dynamically typed cell value.
///
/// Used at API boundaries (predicates, query results, CSV import). The hot
/// paths operate on raw column vectors instead.
class Value {
 public:
  /// Null value ('*' in cube cell keys).
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}             // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t AsInt64() const {
    TABULA_CHECK(is_int64());
    return std::get<int64_t>(data_);
  }
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(std::get<int64_t>(data_));
    TABULA_CHECK(is_double());
    return std::get<double>(data_);
  }
  const std::string& AsString() const {
    TABULA_CHECK(is_string());
    return std::get<std::string>(data_);
  }

  /// Renders the value for display ("(null)" for nulls, matching the
  /// paper's cube tables).
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace tabula

#endif  // TABULA_STORAGE_VALUE_H_

#ifndef TABULA_STORAGE_TABLE_H_
#define TABULA_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace tabula {

/// Row identifier into a Table.
using RowId = uint32_t;

/// \brief Immutable-after-build, column-oriented in-memory table.
///
/// The embedded data system's storage unit; plays the role the cached
/// Spark DataFrame plays in the paper's testbed.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const { return *columns_[i]; }
  Column* mutable_column(size_t i) { return columns_[i].get(); }

  /// Column by name (NotFound when absent).
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Boxed cell accessor (slow path; use typed columns in loops).
  Value GetValue(size_t col, size_t row) const {
    return columns_[col]->GetValue(row);
  }

  /// Appends one row of boxed values; must match the schema arity/types.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends a batch of boxed rows column-major (one column's values
  /// land back to back, so its dictionary and tail stay hot) after an
  /// up-front arity check over the whole batch. A type mismatch
  /// mid-batch still fails with columns partially appended — callers
  /// needing batch atomicity validate types first (see
  /// Ingestor::ValidateBatch).
  Status AppendRows(const std::vector<std::vector<Value>>& rows);

  /// Appends row `row` of `other`; schemas must be compatible.
  Status AppendRowFrom(const Table& other, RowId row);

  /// Total bytes held by all columns (capacity-based, like the paper's
  /// "memory footprint" metric).
  uint64_t MemoryBytes() const;

  void Reserve(size_t n);

  /// Creates an empty table with the same schema, sharing categorical
  /// dictionaries so codes stay comparable across tables.
  std::unique_ptr<Table> NewEmptyLike() const;

  /// Materializes the given rows into a new table (shared dictionaries).
  std::unique_ptr<Table> TakeRows(const std::vector<RowId>& rows) const;

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

/// \brief A subset of a table's rows, without copying them.
///
/// Tabula stores "cell raw data" as row-id vectors into the base table
/// (see DESIGN.md §5); DatasetView is the common currency between the
/// cube builder, loss functions, and samplers.
class DatasetView {
 public:
  DatasetView() : table_(nullptr) {}
  /// View over all rows of `table`.
  explicit DatasetView(const Table* table);
  /// View over the listed rows of `table`.
  DatasetView(const Table* table, std::vector<RowId> rows)
      : table_(table), rows_(std::move(rows)), all_rows_(false) {}

  const Table* table() const { return table_; }
  bool covers_all_rows() const { return all_rows_; }
  size_t size() const {
    return all_rows_ ? (table_ ? table_->num_rows() : 0) : rows_.size();
  }
  bool empty() const { return size() == 0; }

  /// Base-table row id of the i-th row in this view.
  RowId row(size_t i) const {
    return all_rows_ ? static_cast<RowId>(i) : rows_[i];
  }

  /// The explicit row-id vector (materializes one for all-row views).
  std::vector<RowId> ToRowIds() const;

  /// Copies the viewed rows into a standalone table.
  std::unique_ptr<Table> Materialize() const;

  uint64_t MemoryBytes() const {
    return all_rows_ ? 0 : rows_.capacity() * sizeof(RowId);
  }

 private:
  const Table* table_;
  std::vector<RowId> rows_;
  bool all_rows_ = false;
};

}  // namespace tabula

#endif  // TABULA_STORAGE_TABLE_H_

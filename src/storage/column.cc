#include "storage/column.h"

namespace tabula {

uint32_t Dictionary::GetOrAdd(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(s);
  index_.emplace(s, code);
  return code;
}

Result<uint32_t> Dictionary::Find(const std::string& s) const {
  auto it = index_.find(s);
  if (it == index_.end()) {
    return Status::NotFound("dictionary has no value '" + s + "'");
  }
  return it->second;
}

uint64_t Dictionary::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& v : values_) bytes += v.size() + sizeof(std::string);
  bytes += index_.size() * (sizeof(std::string) + sizeof(uint32_t) + 16);
  return bytes;
}

Status CategoricalColumn::AppendValue(const Value& v) {
  if (!v.is_string()) {
    return Status::TypeMismatch("categorical column expects string values");
  }
  codes_.push_back(dict_->GetOrAdd(v.AsString()));
  return Status::OK();
}

Status CategoricalColumn::AppendFrom(const Column& other, size_t row) {
  const auto* col = other.As<CategoricalColumn>();
  if (col == nullptr) return Status::TypeMismatch("expected categorical");
  if (col->dict_.get() == dict_.get()) {
    codes_.push_back(col->codes_[row]);
  } else {
    codes_.push_back(dict_->GetOrAdd(col->dict_->At(col->codes_[row])));
  }
  return Status::OK();
}

uint64_t CategoricalColumn::MemoryBytes() const {
  return codes_.capacity() * sizeof(uint32_t) + dict_->MemoryBytes();
}

Status Int64Column::AppendValue(const Value& v) {
  if (!v.is_int64()) {
    return Status::TypeMismatch("int64 column expects integer values");
  }
  data_.push_back(v.AsInt64());
  return Status::OK();
}

Status Int64Column::AppendFrom(const Column& other, size_t row) {
  const auto* col = other.As<Int64Column>();
  if (col == nullptr) return Status::TypeMismatch("expected int64");
  data_.push_back(col->data_[row]);
  return Status::OK();
}

Status DoubleColumn::AppendValue(const Value& v) {
  if (!v.is_double() && !v.is_int64()) {
    return Status::TypeMismatch("double column expects numeric values");
  }
  data_.push_back(v.AsDouble());
  return Status::OK();
}

Status DoubleColumn::AppendFrom(const Column& other, size_t row) {
  const auto* col = other.As<DoubleColumn>();
  if (col == nullptr) return Status::TypeMismatch("expected double");
  data_.push_back(col->data_[row]);
  return Status::OK();
}

std::unique_ptr<Column> MakeColumn(DataType type) {
  switch (type) {
    case DataType::kCategorical:
      return std::make_unique<CategoricalColumn>();
    case DataType::kInt64:
      return std::make_unique<Int64Column>();
    case DataType::kDouble:
      return std::make_unique<DoubleColumn>();
  }
  return nullptr;
}

}  // namespace tabula

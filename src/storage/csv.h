#ifndef TABULA_STORAGE_CSV_H_
#define TABULA_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace tabula {

/// Writes `table` (or the subset in `view`) as a header-first CSV file.
Status WriteCsv(const Table& table, const std::string& path);
Status WriteCsv(const DatasetView& view, const std::string& path);

/// Reads a CSV with a header row into a table with the given schema.
/// Column order must match the header; extra columns are an error.
Result<std::unique_ptr<Table>> ReadCsv(const Schema& schema,
                                       const std::string& path);

}  // namespace tabula

#endif  // TABULA_STORAGE_CSV_H_

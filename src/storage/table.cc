#include "storage/table.h"

#include <numeric>

namespace tabula {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.push_back(MakeColumn(schema_.field(i).type));
  }
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  TABULA_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return columns_[idx].get();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    TABULA_RETURN_NOT_OK(columns_[i]->AppendValue(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRows(const std::vector<std::vector<Value>>& rows) {
  for (const auto& row : rows) {
    if (row.size() != columns_.size()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
  }
  // No up-front Reserve: repeated small batches would then reallocate
  // to exact size every time, trading push_back's amortized-O(1)
  // geometric growth for quadratic copying.
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column* col = columns_[c].get();
    for (const auto& row : rows) {
      TABULA_RETURN_NOT_OK(col->AppendValue(row[c]));
    }
  }
  num_rows_ += rows.size();
  return Status::OK();
}

Status Table::AppendRowFrom(const Table& other, RowId row) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("column count mismatch");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    TABULA_RETURN_NOT_OK(columns_[i]->AppendFrom(other.column(i), row));
  }
  ++num_rows_;
  return Status::OK();
}

uint64_t Table::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& c : columns_) bytes += c->MemoryBytes();
  return bytes;
}

void Table::Reserve(size_t n) {
  for (auto& c : columns_) c->Reserve(n);
}

std::unique_ptr<Table> Table::NewEmptyLike() const {
  auto out = std::make_unique<Table>(schema_);
  // Share dictionaries so categorical codes remain comparable.
  for (size_t i = 0; i < columns_.size(); ++i) {
    const auto* cat = columns_[i]->As<CategoricalColumn>();
    if (cat != nullptr) {
      out->columns_[i] =
          std::make_unique<CategoricalColumn>(cat->shared_dict());
    }
  }
  return out;
}

std::unique_ptr<Table> Table::TakeRows(const std::vector<RowId>& rows) const {
  auto out = NewEmptyLike();
  out->Reserve(rows.size());
  for (RowId r : rows) {
    Status st = out->AppendRowFrom(*this, r);
    TABULA_CHECK(st.ok());
  }
  return out;
}

DatasetView::DatasetView(const Table* table)
    : table_(table), all_rows_(true) {}

std::vector<RowId> DatasetView::ToRowIds() const {
  if (!all_rows_) return rows_;
  std::vector<RowId> out(table_ ? table_->num_rows() : 0);
  std::iota(out.begin(), out.end(), 0u);
  return out;
}

std::unique_ptr<Table> DatasetView::Materialize() const {
  TABULA_CHECK(table_ != nullptr);
  return table_->TakeRows(ToRowIds());
}

}  // namespace tabula

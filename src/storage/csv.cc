#include "storage/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace tabula {

namespace {
Status WriteRows(const Table& table, const DatasetView* view,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c != 0) out << ',';
    out << schema.field(c).name;
  }
  out << '\n';
  size_t n = view != nullptr ? view->size() : table.num_rows();
  for (size_t i = 0; i < n; ++i) {
    RowId r = view != nullptr ? view->row(i) : static_cast<RowId>(i);
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c != 0) out << ',';
      out << table.GetValue(c, r).ToString();
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}
}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  return WriteRows(table, nullptr, path);
}

Status WriteCsv(const DatasetView& view, const std::string& path) {
  if (view.table() == nullptr) {
    return Status::InvalidArgument("view has no table");
  }
  return WriteRows(*view.table(), &view, path);
}

Result<std::unique_ptr<Table>> ReadCsv(const Schema& schema,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("'" + path + "' is empty (no header)");
  }
  auto header = SplitString(line, ',');
  if (header.size() != schema.num_fields()) {
    return Status::ParseError("'" + path + "' header has " +
                              std::to_string(header.size()) +
                              " columns, schema expects " +
                              std::to_string(schema.num_fields()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (std::string(TrimView(header[c])) != schema.field(c).name) {
      return Status::ParseError("header column '" + header[c] +
                                "' does not match schema field '" +
                                schema.field(c).name + "'");
    }
  }
  auto table = std::make_unique<Table>(schema);
  size_t line_no = 1;
  std::vector<Value> row(schema.num_fields());
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitString(line, ',');
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": wrong column count");
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      std::string cell(TrimView(fields[c]));
      switch (schema.field(c).type) {
        case DataType::kCategorical:
          row[c] = Value(cell);
          break;
        case DataType::kInt64: {
          char* end = nullptr;
          long long v = std::strtoll(cell.c_str(), &end, 10);
          if (end == cell.c_str()) {
            return Status::ParseError(path + ":" + std::to_string(line_no) +
                                      ": '" + cell + "' is not an integer");
          }
          row[c] = Value(static_cast<int64_t>(v));
          break;
        }
        case DataType::kDouble: {
          char* end = nullptr;
          double v = std::strtod(cell.c_str(), &end);
          if (end == cell.c_str()) {
            return Status::ParseError(path + ":" + std::to_string(line_no) +
                                      ": '" + cell + "' is not a number");
          }
          row[c] = Value(v);
          break;
        }
      }
    }
    TABULA_RETURN_NOT_OK(table->AppendRow(row));
  }
  return table;
}

}  // namespace tabula

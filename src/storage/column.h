#ifndef TABULA_STORAGE_COLUMN_H_
#define TABULA_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace tabula {

/// \brief String <-> dense-code mapping for a categorical column.
///
/// Codes are assigned in first-seen order and are stable for the lifetime
/// of the dictionary. Low-cardinality attributes (payment type, weekday,
/// vendor, ...) store only a uint32 code per row.
class Dictionary {
 public:
  /// Code of `s`, inserting it if absent.
  uint32_t GetOrAdd(const std::string& s);

  /// Code of `s`, or NotFound if it was never inserted.
  Result<uint32_t> Find(const std::string& s) const;

  /// The string for a valid code.
  const std::string& At(uint32_t code) const { return values_[code]; }

  /// Number of distinct values.
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  uint64_t MemoryBytes() const;

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// \brief Base class for in-memory columns.
///
/// Hot paths downcast via As<...>() and read the raw vectors; the virtual
/// interface exists for schema-generic code (CSV import, result printing).
class Column {
 public:
  virtual ~Column() = default;

  virtual DataType type() const = 0;
  virtual size_t size() const = 0;
  /// Boxed value at `row` (dictionary-decoded for categoricals).
  virtual Value GetValue(size_t row) const = 0;
  /// Appends a boxed value; TypeMismatch if incompatible.
  virtual Status AppendValue(const Value& v) = 0;
  /// Appends row `row` of `other` (same concrete type) to this column.
  virtual Status AppendFrom(const Column& other, size_t row) = 0;
  virtual uint64_t MemoryBytes() const = 0;
  virtual void Reserve(size_t n) = 0;

  template <typename T>
  const T* As() const {
    return dynamic_cast<const T*>(this);
  }
  template <typename T>
  T* As() {
    return dynamic_cast<T*>(this);
  }
};

/// Dictionary-encoded string column.
class CategoricalColumn final : public Column {
 public:
  CategoricalColumn() : dict_(std::make_shared<Dictionary>()) {}
  explicit CategoricalColumn(std::shared_ptr<Dictionary> dict)
      : dict_(std::move(dict)) {}

  DataType type() const override { return DataType::kCategorical; }
  size_t size() const override { return codes_.size(); }
  Value GetValue(size_t row) const override {
    return Value(dict_->At(codes_[row]));
  }
  Status AppendValue(const Value& v) override;
  Status AppendFrom(const Column& other, size_t row) override;
  uint64_t MemoryBytes() const override;
  void Reserve(size_t n) override { codes_.reserve(n); }

  void AppendCode(uint32_t code) { codes_.push_back(code); }
  uint32_t CodeAt(size_t row) const { return codes_[row]; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const Dictionary& dict() const { return *dict_; }
  Dictionary* mutable_dict() { return dict_.get(); }
  std::shared_ptr<Dictionary> shared_dict() const { return dict_; }

 private:
  std::shared_ptr<Dictionary> dict_;
  std::vector<uint32_t> codes_;
};

/// 64-bit integer column.
class Int64Column final : public Column {
 public:
  DataType type() const override { return DataType::kInt64; }
  size_t size() const override { return data_.size(); }
  Value GetValue(size_t row) const override { return Value(data_[row]); }
  Status AppendValue(const Value& v) override;
  Status AppendFrom(const Column& other, size_t row) override;
  uint64_t MemoryBytes() const override {
    return data_.capacity() * sizeof(int64_t);
  }
  void Reserve(size_t n) override { data_.reserve(n); }

  void Append(int64_t v) { data_.push_back(v); }
  int64_t At(size_t row) const { return data_[row]; }
  const std::vector<int64_t>& data() const { return data_; }

 private:
  std::vector<int64_t> data_;
};

/// IEEE double column.
class DoubleColumn final : public Column {
 public:
  DataType type() const override { return DataType::kDouble; }
  size_t size() const override { return data_.size(); }
  Value GetValue(size_t row) const override { return Value(data_[row]); }
  Status AppendValue(const Value& v) override;
  Status AppendFrom(const Column& other, size_t row) override;
  uint64_t MemoryBytes() const override {
    return data_.capacity() * sizeof(double);
  }
  void Reserve(size_t n) override { data_.reserve(n); }

  void Append(double v) { data_.push_back(v); }
  double At(size_t row) const { return data_[row]; }
  const std::vector<double>& data() const { return data_; }

 private:
  std::vector<double> data_;
};

/// Creates an empty column of the given type.
std::unique_ptr<Column> MakeColumn(DataType type);

}  // namespace tabula

#endif  // TABULA_STORAGE_COLUMN_H_

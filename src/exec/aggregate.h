#ifndef TABULA_EXEC_AGGREGATE_H_
#define TABULA_EXEC_AGGREGATE_H_

#include <algorithm>
#include <cmath>
#include <limits>

namespace tabula {

/// \brief Distributive/algebraic aggregate state over one numeric column.
///
/// Covers the aggregates the paper allows inside accuracy loss functions
/// (Section II: SUM, COUNT, AVG, STD_DEV, MIN, MAX — all distributive or
/// algebraic). States merge, which is what lets the dry-run stage roll a
/// finest-cuboid GroupBy up through the whole lattice (Section III-B1).
struct NumericAggState {
  double count = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    count += 1.0;
    sum += v;
    sum_sq += v * v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void Merge(const NumericAggState& o) {
    count += o.count;
    sum += o.sum;
    sum_sq += o.sum_sq;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  double Avg() const { return count > 0 ? sum / count : 0.0; }

  /// Population standard deviation.
  double StdDev() const {
    if (count <= 0) return 0.0;
    double mean = Avg();
    double var = sum_sq / count - mean * mean;
    return var > 0 ? std::sqrt(var) : 0.0;
  }
};

/// \brief Algebraic state for simple linear regression y = slope*x + b.
///
/// Implements the paper's slope formula (Section II, Function 3):
///   slope = (n*Σxy − Σx*Σy) / (n*Σx² − (Σx)²)
/// and its conversion to an angle in degrees.
struct RegressionAggState {
  double n = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sxy = 0.0;
  double sxx = 0.0;

  void Add(double x, double y) {
    n += 1.0;
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
  }

  void Merge(const RegressionAggState& o) {
    n += o.n;
    sx += o.sx;
    sy += o.sy;
    sxy += o.sxy;
    sxx += o.sxx;
  }

  /// Least-squares slope; 0 when degenerate (vertical/empty data).
  double Slope() const {
    double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-12) return 0.0;
    return (n * sxy - sx * sy) / denom;
  }

  /// Regression-line angle in degrees, in (-90, 90).
  double AngleDegrees() const {
    return std::atan(Slope()) * 180.0 / M_PI;
  }

  double Intercept() const {
    if (n <= 0) return 0.0;
    return (sy - Slope() * sx) / n;
  }
};

}  // namespace tabula

#endif  // TABULA_EXEC_AGGREGATE_H_

#include "exec/group_by.h"

namespace tabula {

namespace {
/// Bits needed to represent values [0, n] (n inclusive).
uint32_t BitsFor(uint32_t n) {
  uint32_t bits = 1;
  while ((1ull << bits) <= n) ++bits;
  return bits;
}
}  // namespace

Result<KeyPacker> KeyPacker::Make(const KeyEncoder& enc,
                                  std::vector<size_t> key_cols) {
  KeyPacker p;
  p.key_cols_ = std::move(key_cols);
  uint32_t shift = 0;
  for (size_t col : p.key_cols_) {
    uint32_t card = enc.Cardinality(col);
    // Reserve one extra pattern (== card) for the '*' marker.
    uint32_t bits = BitsFor(card);
    if (shift + bits > 64) {
      return Status::OutOfRange(
          "packed group key exceeds 64 bits; reduce cubed attributes or "
          "their cardinalities");
    }
    p.masks_.push_back((1ull << bits) - 1);
    p.shifts_.push_back(shift);
    p.null_patterns_.push_back(card);
    shift += bits;
  }
  return p;
}

uint64_t KeyPacker::PackCodes(const std::vector<uint32_t>& codes) const {
  uint64_t key = 0;
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    uint32_t code = codes[i] == kNullCode ? null_patterns_[i] : codes[i];
    key |= static_cast<uint64_t>(code) << shifts_[i];
  }
  return key;
}

std::vector<uint32_t> KeyPacker::Unpack(uint64_t key) const {
  std::vector<uint32_t> codes(key_cols_.size());
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    codes[i] = CodeAt(key, i);
  }
  return codes;
}

GroupedRows GroupRows(const KeyEncoder& enc, const KeyPacker& packer,
                      const DatasetView& view, size_t expected_groups) {
  auto& pool = ThreadPool::Global();
  size_t n = view.size();
  using LocalMap = FlatHashMap<std::vector<RowId>>;
  size_t chunks = ThreadPool::DeterministicChunkCount(n);
  std::vector<LocalMap> partials(chunks);
  pool.ParallelForDeterministic(n, [&](size_t chunk, size_t begin,
                                       size_t end) {
    auto& map = partials[chunk];
    if (expected_groups > 0) {
      map.reserve(std::min(expected_groups, end - begin));
    }
    for (size_t i = begin; i < end; ++i) {
      RowId r = view.row(i);
      map[packer.PackRow(enc, r)].push_back(r);
    }
  });
  GroupedRows out;
  if (chunks == 0) return out;
  // Merging in ascending chunk order keeps every group's row list in view
  // order; sorting the final keys makes group order independent of hash
  // layout and thread count.
  LocalMap merged = std::move(partials[0]);
  if (expected_groups > 0) merged.reserve(expected_groups);
  for (size_t c = 1; c < chunks; ++c) {
    partials[c].ForEach([&](uint64_t key, std::vector<RowId>& rows) {
      auto [slot, inserted] = merged.TryEmplace(key);
      if (inserted) {
        *slot = std::move(rows);
      } else {
        slot->insert(slot->end(), rows.begin(), rows.end());
      }
    });
  }
  auto entries = merged.ExtractSorted();
  out.keys.reserve(entries.size());
  out.rows.reserve(entries.size());
  for (auto& [key, rows] : entries) {
    out.keys.push_back(key);
    out.rows.push_back(std::move(rows));
  }
  return out;
}

}  // namespace tabula

#include "exec/group_by.h"

namespace tabula {

namespace {
/// Bits needed to represent values [0, n] (n inclusive).
uint32_t BitsFor(uint32_t n) {
  uint32_t bits = 1;
  while ((1ull << bits) <= n) ++bits;
  return bits;
}
}  // namespace

Result<KeyPacker> KeyPacker::Make(const KeyEncoder& enc,
                                  std::vector<size_t> key_cols) {
  KeyPacker p;
  p.key_cols_ = std::move(key_cols);
  uint32_t shift = 0;
  for (size_t col : p.key_cols_) {
    uint32_t card = enc.Cardinality(col);
    // Reserve one extra pattern (== card) for the '*' marker.
    uint32_t bits = BitsFor(card);
    if (shift + bits > 64) {
      return Status::OutOfRange(
          "packed group key exceeds 64 bits; reduce cubed attributes or "
          "their cardinalities");
    }
    p.masks_.push_back((1ull << bits) - 1);
    p.shifts_.push_back(shift);
    p.null_patterns_.push_back(card);
    shift += bits;
  }
  return p;
}

uint64_t KeyPacker::PackCodes(const std::vector<uint32_t>& codes) const {
  uint64_t key = 0;
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    uint32_t code = codes[i] == kNullCode ? null_patterns_[i] : codes[i];
    key |= static_cast<uint64_t>(code) << shifts_[i];
  }
  return key;
}

std::vector<uint32_t> KeyPacker::Unpack(uint64_t key) const {
  std::vector<uint32_t> codes(key_cols_.size());
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    codes[i] = CodeAt(key, i);
  }
  return codes;
}

GroupedRows GroupRows(const KeyEncoder& enc, const KeyPacker& packer,
                      const DatasetView& view) {
  auto& pool = ThreadPool::Global();
  size_t n = view.size();
  using LocalMap = std::unordered_map<uint64_t, std::vector<RowId>>;
  std::vector<LocalMap> partials(pool.num_threads() + 1);
  pool.ParallelForChunked(n, [&](size_t chunk, size_t begin, size_t end) {
    auto& map = partials[chunk];
    for (size_t i = begin; i < end; ++i) {
      RowId r = view.row(i);
      map[packer.PackRow(enc, r)].push_back(r);
    }
  });
  LocalMap merged;
  for (auto& partial : partials) {
    if (merged.empty()) {
      merged = std::move(partial);
      continue;
    }
    for (auto& [key, rows] : partial) {
      auto& dst = merged[key];
      dst.insert(dst.end(), rows.begin(), rows.end());
    }
  }
  GroupedRows out;
  out.keys.reserve(merged.size());
  out.rows.reserve(merged.size());
  for (auto& [key, rows] : merged) {
    out.keys.push_back(key);
    out.rows.push_back(std::move(rows));
  }
  return out;
}

}  // namespace tabula

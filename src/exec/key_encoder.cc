#include "exec/key_encoder.h"

namespace tabula {

Result<KeyEncoder> KeyEncoder::Make(const Table& table,
                                    const std::vector<std::string>& columns) {
  KeyEncoder enc;
  enc.names_ = columns;
  enc.cols_.resize(columns.size());
  for (size_t k = 0; k < columns.size(); ++k) {
    TABULA_ASSIGN_OR_RETURN(size_t idx,
                            table.schema().FieldIndex(columns[k]));
    const Column& col = table.column(idx);
    ColumnCodec& codec = enc.cols_[k];
    switch (col.type()) {
      case DataType::kCategorical: {
        codec.categorical = col.As<CategoricalColumn>();
        codec.cardinality = codec.categorical->dict().size();
        break;
      }
      case DataType::kInt64: {
        const auto* int_col = col.As<Int64Column>();
        codec.int_codes.reserve(int_col->size());
        for (size_t r = 0; r < int_col->size(); ++r) {
          int64_t v = int_col->At(r);
          auto [it, inserted] = codec.int_index.try_emplace(
              v, static_cast<uint32_t>(codec.int_values.size()));
          if (inserted) codec.int_values.push_back(v);
          codec.int_codes.push_back(it->second);
        }
        codec.cardinality = static_cast<uint32_t>(codec.int_values.size());
        break;
      }
      case DataType::kDouble:
        return Status::InvalidArgument(
            "cubed attribute '" + columns[k] +
            "' is continuous; bin it into a categorical first");
    }
  }
  return enc;
}

Value KeyEncoder::Decode(size_t k, uint32_t code) const {
  if (code == kNullCode) return Value();
  const ColumnCodec& c = cols_[k];
  if (c.categorical != nullptr) return Value(c.categorical->dict().At(code));
  return Value(c.int_values[code]);
}

Result<uint32_t> KeyEncoder::CodeForValue(size_t k, const Value& v) const {
  const ColumnCodec& c = cols_[k];
  if (c.categorical != nullptr) {
    if (!v.is_string()) {
      return Status::TypeMismatch("categorical key expects a string literal");
    }
    return c.categorical->dict().Find(v.AsString());
  }
  if (!v.is_int64()) {
    return Status::TypeMismatch("integer key expects an integer literal");
  }
  auto it = c.int_index.find(v.AsInt64());
  if (it == c.int_index.end()) {
    return Status::NotFound("value " + v.ToString() +
                            " never occurs in key column " + names_[k]);
  }
  return it->second;
}

uint64_t KeyEncoder::KeySpaceSize() const {
  uint64_t total = 1;
  for (const auto& c : cols_) {
    total *= std::max<uint64_t>(1, c.cardinality);
  }
  return total;
}

}  // namespace tabula

#ifndef TABULA_EXEC_GROUP_BY_H_
#define TABULA_EXEC_GROUP_BY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/key_encoder.h"
#include "storage/table.h"

namespace tabula {

/// \brief Packs multi-column group keys into a uint64.
///
/// Bit widths come from the encoder cardinalities (+1 spare pattern per
/// column for the '*' roll-up marker). With the paper's 7 categorical taxi
/// attributes the packed key needs well under 64 bits; wider key spaces are
/// rejected at construction so callers can fall back to fewer attributes.
class KeyPacker {
 public:
  /// \param key_cols indices into the encoder's column list forming this
  ///        (sub-)key, e.g. a cuboid's grouping list.
  static Result<KeyPacker> Make(const KeyEncoder& enc,
                                std::vector<size_t> key_cols);

  size_t num_cols() const { return key_cols_.size(); }
  const std::vector<size_t>& key_cols() const { return key_cols_; }

  /// Packs the row's codes on the key columns.
  uint64_t PackRow(const KeyEncoder& enc, RowId row) const {
    uint64_t key = 0;
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      key |= static_cast<uint64_t>(enc.Encode(key_cols_[i], row)) << shifts_[i];
    }
    return key;
  }

  /// Packs explicit codes (one per key column; kNullCode allowed and maps
  /// to the column's reserved '*' pattern).
  uint64_t PackCodes(const std::vector<uint32_t>& codes) const;

  /// Packs rows [begin, end) of `view` into `out[begin..end)`, one key
  /// column at a time. Columnar order turns the per-row 7-column gather of
  /// PackRow into sequential streaming passes (one branch-free inner loop
  /// per column), which is how the cube-build fold amortizes key packing
  /// over the whole table.
  void PackRows(const KeyEncoder& enc, const DatasetView& view, size_t begin,
                size_t end, uint64_t* out) const {
    for (size_t i = begin; i < end; ++i) out[i] = 0;
    for (size_t c = 0; c < key_cols_.size(); ++c) {
      const size_t col = key_cols_[c];
      const uint32_t shift = shifts_[c];
      for (size_t i = begin; i < end; ++i) {
        out[i] |= static_cast<uint64_t>(enc.Encode(col, view.row(i))) << shift;
      }
    }
  }

  /// Packs a row's codes keeping only the key columns whose bit is set in
  /// `grouped` (by key-column index); others take the '*' pattern. This is
  /// how one full-width packer serves every cuboid of the lattice.
  uint64_t PackRowMasked(const KeyEncoder& enc, RowId row,
                         uint32_t grouped) const {
    uint64_t key = 0;
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      uint32_t code = (grouped & (uint32_t{1} << i))
                          ? enc.Encode(key_cols_[i], row)
                          : null_patterns_[i];
      key |= static_cast<uint64_t>(code) << shifts_[i];
    }
    return key;
  }

  /// Unpacks to one code per key column (kNullCode for '*').
  std::vector<uint32_t> Unpack(uint64_t key) const;

  /// Code of key column i inside the packed key.
  uint32_t CodeAt(uint64_t key, size_t i) const {
    uint32_t raw = static_cast<uint32_t>((key >> shifts_[i]) & masks_[i]);
    return raw == null_patterns_[i] ? kNullCode : raw;
  }

  /// Replaces key column i with the '*' pattern (roll-up step).
  uint64_t WithNull(uint64_t key, size_t i) const {
    key &= ~(masks_[i] << shifts_[i]);
    key |= static_cast<uint64_t>(null_patterns_[i]) << shifts_[i];
    return key;
  }

 private:
  std::vector<size_t> key_cols_;
  std::vector<uint64_t> masks_;          // per-col value mask (unshifted)
  std::vector<uint32_t> shifts_;
  std::vector<uint32_t> null_patterns_;  // reserved '*' bit pattern
};

/// Result of a GroupBy that materializes per-group row lists. Groups are
/// in ascending packed-key order; rows within a group are in view order —
/// both independent of thread count.
struct GroupedRows {
  /// Packed key per group (see KeyPacker), ascending.
  std::vector<uint64_t> keys;
  /// Row ids per group, parallel to `keys`.
  std::vector<std::vector<RowId>> rows;
};

/// Hash GroupBy over `view`, grouping on the packer's key columns and
/// collecting row-id lists. Runs on the global thread pool with
/// deterministic chunking; output is sorted by packed key.
///
/// \param expected_groups optional pre-size hint (e.g. the packer's key
///        space, or a prior group count) so the hash tables never rehash
///        mid-build; 0 means "unknown".
GroupedRows GroupRows(const KeyEncoder& enc, const KeyPacker& packer,
                      const DatasetView& view, size_t expected_groups = 0);

/// Hash GroupBy that folds rows straight into a mergeable accumulator
/// state instead of materializing row lists — the dry-run stage's workhorse
/// (the loss measure is algebraic, so states merge).
///
/// Builds one FlatHashMap per deterministic chunk and merges them in
/// ascending chunk order, so the merged map — including the order of
/// floating-point Merge() folds per key — is byte-identical at any
/// thread count.
///
/// \tparam State default-constructible, with Merge(const State&).
/// \param add  invoked as add(&state, row) for every row.
/// \param expected_groups optional pre-size hint (see GroupRows).
template <typename State, typename AddFn>
FlatHashMap<State> GroupAccumulate(const KeyEncoder& enc,
                                   const KeyPacker& packer,
                                   const DatasetView& view, const AddFn& add,
                                   size_t expected_groups = 0) {
  auto& pool = ThreadPool::Global();
  size_t n = view.size();
  size_t chunks = ThreadPool::DeterministicChunkCount(n);
  std::vector<FlatHashMap<State>> partials(chunks);
  pool.ParallelForDeterministic(n, [&](size_t chunk, size_t begin,
                                       size_t end) {
    auto& map = partials[chunk];
    // Pre-size only from a *tight* hint. Statistics bounds routinely
    // saturate at the row count (e.g. a 7-attribute key space), and a
    // loose reserve is worse than growing: probes scatter across a
    // mostly-empty key array instead of staying cache-resident, and every
    // fresh page the oversized arrays touch is a fault the dense map
    // never takes. Geometric growth moves only live values, so sizing by
    // growth costs at most one extra pass over the data.
    if (expected_groups > 0 && expected_groups < (end - begin) / 8) {
      map.reserve(expected_groups);
    }
    for (size_t i = begin; i < end; ++i) {
      RowId r = view.row(i);
      uint64_t key = packer.PackRow(enc, r);
      add(&map[key], r);
    }
  });
  if (chunks == 0) return FlatHashMap<State>();
  // No pre-size for the merge either: partials[0] is already within a
  // factor of the final group count, so the merge rehashes at most a
  // couple of times, and the result stays dense for the roll-up scans
  // that consume it.
  FlatHashMap<State> merged = std::move(partials[0]);
  for (size_t c = 1; c < chunks; ++c) {
    partials[c].ForEach([&](uint64_t key, State& state) {
      auto [slot, inserted] = merged.TryEmplace(key, std::move(state));
      if (!inserted) slot->Merge(state);
    });
  }
  return merged;
}

/// Dense GroupBy output: cells as parallel key/state arrays in ascending
/// packed-key order — the layout the dry-run roll-up and every
/// deterministic output path consume directly.
template <typename State>
struct GroupedStates {
  std::vector<uint64_t> keys;
  std::vector<State> states;
};

/// GroupAccumulate variant that returns dense sorted arrays instead of a
/// hash map. The accumulation keeps states in append-only arrays and
/// probes a FlatHashMap<uint32_t> position index, so hash-table slots stay
/// 12 bytes (probe arrays remain cache-resident; a growth rehash moves
/// uint32 indices, never a state) and states are written sequentially.
/// Chunking and chunk-order merging are identical to GroupAccumulate, so
/// the result — including per-key floating-point Merge order — is
/// byte-identical at any thread count.
template <typename State, typename AddFn>
GroupedStates<State> GroupAccumulateSorted(const KeyEncoder& enc,
                                           const KeyPacker& packer,
                                           const DatasetView& view,
                                           const AddFn& add) {
  struct Chunk {
    FlatHashMap<uint32_t> index;
    std::vector<uint64_t> keys;
    std::vector<State> states;
  };
  auto& pool = ThreadPool::Global();
  size_t n = view.size();

  // Each chunk first materializes its rows' packed keys with columnar
  // streaming passes (PackRows turns the per-row multi-column gather into
  // one branch-predictable inner loop per column), then folds over the
  // pre-packed keys. Both happen inside one deterministic dispatch;
  // row_keys writes are disjoint across chunks.
  std::vector<uint64_t> row_keys(n);
  size_t chunks = ThreadPool::DeterministicChunkCount(n);
  std::vector<Chunk> partials(chunks);
  pool.ParallelForDeterministic(n, [&](size_t chunk, size_t begin,
                                       size_t end) {
    packer.PackRows(enc, view, begin, end, row_keys.data());
    Chunk& c = partials[chunk];
    for (size_t i = begin; i < end; ++i) {
      RowId r = view.row(i);
      uint64_t key = row_keys[i];
      auto [slot, inserted] =
          c.index.TryEmplace(key, static_cast<uint32_t>(c.keys.size()));
      if (inserted) {
        c.keys.push_back(key);
        c.states.emplace_back();
        add(&c.states.back(), r);
      } else {
        add(&c.states[*slot], r);
      }
    }
  });
  GroupedStates<State> result;
  if (chunks == 0) return result;

  // Merge in ascending chunk order through the first chunk's index.
  Chunk merged = std::move(partials[0]);
  for (size_t c = 1; c < chunks; ++c) {
    Chunk& part = partials[c];
    for (size_t i = 0; i < part.keys.size(); ++i) {
      auto [slot, inserted] = merged.index.TryEmplace(
          part.keys[i], static_cast<uint32_t>(merged.keys.size()));
      if (inserted) {
        merged.keys.push_back(part.keys[i]);
        merged.states.push_back(std::move(part.states[i]));
      } else {
        merged.states[*slot].Merge(part.states[i]);
      }
    }
  }

  // Emit in ascending key order: sort (key, position) pairs — 16-byte
  // PODs — then move each state once into its final slot.
  std::vector<std::pair<uint64_t, uint32_t>> order(merged.keys.size());
  for (size_t i = 0; i < merged.keys.size(); ++i) {
    order[i] = {merged.keys[i], static_cast<uint32_t>(i)};
  }
  std::sort(order.begin(), order.end());
  result.keys.reserve(order.size());
  result.states.reserve(order.size());
  for (const auto& [key, pos] : order) {
    result.keys.push_back(key);
    result.states.push_back(std::move(merged.states[pos]));
  }
  return result;
}

}  // namespace tabula

#endif  // TABULA_EXEC_GROUP_BY_H_

#ifndef TABULA_EXEC_GROUP_BY_H_
#define TABULA_EXEC_GROUP_BY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/key_encoder.h"
#include "storage/table.h"

namespace tabula {

/// \brief Packs multi-column group keys into a uint64.
///
/// Bit widths come from the encoder cardinalities (+1 spare pattern per
/// column for the '*' roll-up marker). With the paper's 7 categorical taxi
/// attributes the packed key needs well under 64 bits; wider key spaces are
/// rejected at construction so callers can fall back to fewer attributes.
class KeyPacker {
 public:
  /// \param key_cols indices into the encoder's column list forming this
  ///        (sub-)key, e.g. a cuboid's grouping list.
  static Result<KeyPacker> Make(const KeyEncoder& enc,
                                std::vector<size_t> key_cols);

  size_t num_cols() const { return key_cols_.size(); }
  const std::vector<size_t>& key_cols() const { return key_cols_; }

  /// Packs the row's codes on the key columns.
  uint64_t PackRow(const KeyEncoder& enc, RowId row) const {
    uint64_t key = 0;
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      key |= static_cast<uint64_t>(enc.Encode(key_cols_[i], row)) << shifts_[i];
    }
    return key;
  }

  /// Packs explicit codes (one per key column; kNullCode allowed and maps
  /// to the column's reserved '*' pattern).
  uint64_t PackCodes(const std::vector<uint32_t>& codes) const;

  /// Packs a row's codes keeping only the key columns whose bit is set in
  /// `grouped` (by key-column index); others take the '*' pattern. This is
  /// how one full-width packer serves every cuboid of the lattice.
  uint64_t PackRowMasked(const KeyEncoder& enc, RowId row,
                         uint32_t grouped) const {
    uint64_t key = 0;
    for (size_t i = 0; i < key_cols_.size(); ++i) {
      uint32_t code = (grouped & (uint32_t{1} << i))
                          ? enc.Encode(key_cols_[i], row)
                          : null_patterns_[i];
      key |= static_cast<uint64_t>(code) << shifts_[i];
    }
    return key;
  }

  /// Unpacks to one code per key column (kNullCode for '*').
  std::vector<uint32_t> Unpack(uint64_t key) const;

  /// Code of key column i inside the packed key.
  uint32_t CodeAt(uint64_t key, size_t i) const {
    uint32_t raw = static_cast<uint32_t>((key >> shifts_[i]) & masks_[i]);
    return raw == null_patterns_[i] ? kNullCode : raw;
  }

  /// Replaces key column i with the '*' pattern (roll-up step).
  uint64_t WithNull(uint64_t key, size_t i) const {
    key &= ~(masks_[i] << shifts_[i]);
    key |= static_cast<uint64_t>(null_patterns_[i]) << shifts_[i];
    return key;
  }

 private:
  std::vector<size_t> key_cols_;
  std::vector<uint64_t> masks_;          // per-col value mask (unshifted)
  std::vector<uint32_t> shifts_;
  std::vector<uint32_t> null_patterns_;  // reserved '*' bit pattern
};

/// Result of a GroupBy that materializes per-group row lists.
struct GroupedRows {
  /// Packed key per group (see KeyPacker).
  std::vector<uint64_t> keys;
  /// Row ids per group, parallel to `keys`.
  std::vector<std::vector<RowId>> rows;
};

/// Hash GroupBy over `view`, grouping on the packer's key columns and
/// collecting row-id lists. Runs chunked on the global thread pool.
GroupedRows GroupRows(const KeyEncoder& enc, const KeyPacker& packer,
                      const DatasetView& view);

/// Hash GroupBy that folds rows straight into a mergeable accumulator
/// state instead of materializing row lists — the dry-run stage's workhorse
/// (the loss measure is algebraic, so states merge).
///
/// \tparam State default-constructible, with Merge(const State&).
/// \param add  invoked as add(&state, row) for every row.
template <typename State, typename AddFn>
std::unordered_map<uint64_t, State> GroupAccumulate(const KeyEncoder& enc,
                                                    const KeyPacker& packer,
                                                    const DatasetView& view,
                                                    const AddFn& add) {
  auto& pool = ThreadPool::Global();
  size_t n = view.size();
  std::vector<std::unordered_map<uint64_t, State>> partials(
      pool.num_threads() + 1);
  pool.ParallelForChunked(n, [&](size_t chunk, size_t begin, size_t end) {
    auto& map = partials[chunk];
    for (size_t i = begin; i < end; ++i) {
      RowId r = view.row(i);
      uint64_t key = packer.PackRow(enc, r);
      add(&map[key], r);
    }
  });
  std::unordered_map<uint64_t, State> merged;
  for (auto& partial : partials) {
    if (merged.empty()) {
      merged = std::move(partial);
      continue;
    }
    for (auto& [key, state] : partial) {
      auto [it, inserted] = merged.try_emplace(key, std::move(state));
      if (!inserted) it->second.Merge(state);
    }
  }
  return merged;
}

}  // namespace tabula

#endif  // TABULA_EXEC_GROUP_BY_H_

#ifndef TABULA_EXEC_KEY_ENCODER_H_
#define TABULA_EXEC_KEY_ENCODER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace tabula {

/// Sentinel code meaning '*' (ALL / rolled-up) in cube cell keys.
inline constexpr uint32_t kNullCode = 0xFFFFFFFFu;

/// \brief Maps the values of the cubed attributes to dense uint32 codes.
///
/// Categorical columns reuse their dictionary codes; int64 columns get a
/// value→code mapping built in one pre-pass. Double columns are rejected —
/// continuous attributes must be binned into categoricals first, exactly as
/// the paper bins trip distance into [0,5), [5,10), ... .
class KeyEncoder {
 public:
  /// Builds an encoder for `columns` of `table`.
  static Result<KeyEncoder> Make(const Table& table,
                                 const std::vector<std::string>& columns);

  size_t num_columns() const { return cols_.size(); }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Dense code of column `k` (index within the key, not the table) at
  /// `row`.
  uint32_t Encode(size_t k, RowId row) const {
    const ColumnCodec& c = cols_[k];
    if (c.categorical != nullptr) return c.categorical->CodeAt(row);
    return c.int_codes[row];
  }

  /// Number of distinct codes of key column `k`.
  uint32_t Cardinality(size_t k) const { return cols_[k].cardinality; }

  /// Original value for a code of key column `k` (Value() for kNullCode).
  Value Decode(size_t k, uint32_t code) const;

  /// Resolves a literal to its code in key column `k`; NotFound when the
  /// value never occurs in the data.
  Result<uint32_t> CodeForValue(size_t k, const Value& v) const;

  /// Product of cardinalities — the size of the finest cuboid's key space.
  uint64_t KeySpaceSize() const;

 private:
  struct ColumnCodec {
    const CategoricalColumn* categorical = nullptr;  // fast path
    std::vector<uint32_t> int_codes;                 // per-row codes
    std::vector<int64_t> int_values;                 // code -> value
    std::unordered_map<int64_t, uint32_t> int_index;
    uint32_t cardinality = 0;
  };

  std::vector<std::string> names_;
  std::vector<ColumnCodec> cols_;
};

}  // namespace tabula

#endif  // TABULA_EXEC_KEY_ENCODER_H_

#ifndef TABULA_SQL_PARSER_H_
#define TABULA_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace tabula {
namespace sql {

/// \brief Recursive-descent parser for the Tabula SQL dialect.
///
/// Grammar (keywords case-insensitive):
///
///   stmt := create_aggregate | create_cube | select_sample | select
///
///   create_aggregate :=
///     CREATE AGGREGATE ident '(' Raw ',' Sam ')'
///     RETURN ident AS BEGIN expr END
///
///   create_cube :=
///     CREATE TABLE ident AS SELECT ident (',' ident)* ','
///       SAMPLING '(' '*' ',' number ')' AS ident
///     FROM ident GROUP BY CUBE '(' ident (',' ident)* ')'
///     HAVING ident '(' ident (',' ident)* ',' SAM_GLOBAL ')' '>' number
///
///   select_sample := SELECT sample FROM ident [WHERE conj]
///   select := SELECT (item (',' item)* | '*') FROM ident
///             [WHERE conj] [GROUP BY ident (',' ident)*]
///   conj   := pred (AND pred)*
///   pred   := ident op literal       op := = | <> | < | <= | > | >=
///
///   expr   := term (('+'|'-') term)*
///   term   := factor (('*'|'/') factor)*
///   factor := number | '(' expr ')' | ABS '(' expr ')' | '-' factor
///           | aggfunc '(' (Raw|Sam) ')'
///   aggfunc := AVG | SUM | COUNT | MIN | MAX | STD_DEV | ANGLE
Result<Statement> ParseStatement(const std::string& input);

}  // namespace sql
}  // namespace tabula

#endif  // TABULA_SQL_PARSER_H_

#include "sql/engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/group_by.h"
#include "loss/loss_registry.h"
#include "sql/expression.h"
#include "sql/parser.h"

namespace tabula {
namespace sql {

SqlEngine::SqlEngine() = default;

Status SqlEngine::RegisterTable(const std::string& name,
                                std::unique_ptr<Table> table) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

const Table* SqlEngine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it != tables_.end() ? it->second.get() : nullptr;
}

const Tabula* SqlEngine::GetCube(const std::string& name) const {
  auto it = cubes_.find(name);
  return it != cubes_.end() ? it->second.cube.get() : nullptr;
}

Result<SqlEngine::ExecResult> SqlEngine::Execute(
    const std::string& statement) {
  TABULA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  if (auto* agg = std::get_if<CreateAggregateStmt>(&stmt)) {
    return ExecCreateAggregate(std::move(*agg));
  }
  if (auto* cube = std::get_if<CreateSamplingCubeStmt>(&stmt)) {
    return ExecCreateCube(*cube);
  }
  if (auto* sample = std::get_if<SelectSampleStmt>(&stmt)) {
    return ExecSelectSample(*sample);
  }
  return ExecSelect(std::get<SelectStmt>(stmt));
}

Result<SqlEngine::ExecResult> SqlEngine::ExecCreateAggregate(
    CreateAggregateStmt stmt) {
  std::string key = ToLower(stmt.name);
  if (user_aggregates_.count(key) > 0) {
    return Status::AlreadyExists("aggregate '" + stmt.name +
                                 "' already exists");
  }
  user_aggregates_.emplace(key,
                           std::shared_ptr<const Expr>(std::move(stmt.body)));
  ExecResult result;
  result.message = "accuracy loss aggregate '" + stmt.name + "' registered";
  return result;
}

Result<std::unique_ptr<LossFunction>> SqlEngine::MakeLoss(
    const std::string& name, const std::vector<std::string>& attrs) const {
  std::string key = ToLower(name);
  // Registry built-ins first; CREATE AGGREGATE losses shadow nothing
  // (registration under a built-in name is rejected by name lookup
  // order here, mirroring how SQL built-ins usually win).
  if (IsRegisteredLossName(key)) {
    LossParams params;
    params.columns = attrs;
    return MakeLossFunction(key, params);
  }
  auto it = user_aggregates_.find(key);
  if (it == user_aggregates_.end()) {
    return Status::NotFound(
        "unknown loss '" + name +
        "' (built-ins: mean_loss, heatmap_loss, histogram_loss, "
        "regression_loss, topk_loss; or CREATE AGGREGATE it first)");
  }
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<ExpressionLoss> loss,
                          ExpressionLoss::Make(name, it->second, attrs));
  return std::unique_ptr<LossFunction>(std::move(loss));
}

Result<SqlEngine::ExecResult> SqlEngine::ExecCreateCube(
    const CreateSamplingCubeStmt& stmt) {
  if (cubes_.count(stmt.cube_name) > 0) {
    return Status::AlreadyExists("cube '" + stmt.cube_name +
                                 "' already exists");
  }
  const Table* table = GetTable(stmt.table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table_name + "' not registered");
  }
  if (stmt.sampling_threshold != stmt.having_threshold) {
    return Status::InvalidArgument(
        "SAMPLING(*, θ) and HAVING ... > θ must use the same threshold");
  }
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<LossFunction> loss,
                          MakeLoss(stmt.loss_name, stmt.loss_attributes));

  TabulaOptions options = cube_defaults_;
  options.cubed_attributes = stmt.cubed_attributes;
  // Owning handoff: the cube (and any rebuild Refresh() makes from a
  // copy of its options) keeps the loss alive.
  options.owned_loss = std::shared_ptr<const LossFunction>(std::move(loss));
  options.threshold = stmt.having_threshold;
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<Tabula> cube,
                          Tabula::Initialize(*table, std::move(options)));

  ExecResult result;
  const auto& stats = cube->init_stats();
  result.message =
      "sampling cube '" + stmt.cube_name + "' created: " +
      std::to_string(stats.total_cells) + " cells, " +
      std::to_string(stats.iceberg_cells) + " iceberg cells, " +
      std::to_string(stats.representative_samples) +
      " representative samples, " + HumanBytes(stats.TotalBytes()) +
      " in " + HumanMillis(stats.total_millis);
  cubes_.emplace(stmt.cube_name, CubeEntry{std::move(cube)});
  return result;
}

Result<SqlEngine::ExecResult> SqlEngine::ExecSelectSample(
    const SelectSampleStmt& stmt) {
  auto it = cubes_.find(stmt.cube_name);
  if (it == cubes_.end()) {
    return Status::NotFound("sampling cube '" + stmt.cube_name +
                            "' not found");
  }
  TABULA_ASSIGN_OR_RETURN(QueryResponse response,
                          it->second.cube->Query(QueryRequest(stmt.where)));
  TabulaQueryResult& answer = response.result;
  ExecResult result;
  result.sample = answer.sample;
  result.has_sample = true;
  result.from_local_sample = answer.from_local_sample;
  result.message = std::to_string(answer.sample.size()) + " sample tuples (" +
                   (answer.empty_cell
                        ? "empty cell"
                        : (answer.from_local_sample ? "local sample"
                                                    : "global sample")) +
                   ", " + HumanMillis(answer.data_system_millis) + ")";
  return result;
}

namespace {

Result<NumericAggState> AggregateColumn(const Table& table,
                                        const DatasetView& view,
                                        const std::string& column) {
  TABULA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column));
  NumericAggState state;
  for (size_t i = 0; i < view.size(); ++i) {
    RowId r = view.row(i);
    switch (col->type()) {
      case DataType::kDouble:
        state.Add(col->As<DoubleColumn>()->At(r));
        break;
      case DataType::kInt64:
        state.Add(static_cast<double>(col->As<Int64Column>()->At(r)));
        break;
      case DataType::kCategorical:
        return Status::TypeMismatch("cannot aggregate categorical column '" +
                                    column + "'");
    }
  }
  return state;
}

double AggResult(AggFunc func, const NumericAggState& state) {
  switch (func) {
    case AggFunc::kAvg:
      return state.Avg();
    case AggFunc::kSum:
      return state.sum;
    case AggFunc::kCount:
      return state.count;
    case AggFunc::kMin:
      return state.count > 0 ? state.min : 0.0;
    case AggFunc::kMax:
      return state.count > 0 ? state.max : 0.0;
    case AggFunc::kStdDev:
      return state.StdDev();
    case AggFunc::kAngle:
      return 0.0;  // not supported in plain SELECT
  }
  return 0.0;
}

const char* AggName(AggFunc func) {
  switch (func) {
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kStdDev:
      return "std_dev";
    case AggFunc::kAngle:
      return "angle";
  }
  return "agg";
}

/// Applies ORDER BY / LIMIT to a finished result table.
Status ApplyOrderLimit(const SelectStmt& stmt,
                       std::unique_ptr<Table>* table) {
  if (*table == nullptr) return Status::OK();
  if (stmt.order_by.empty() &&
      (stmt.limit < 0 ||
       static_cast<size_t>(stmt.limit) >= (*table)->num_rows())) {
    return Status::OK();
  }
  const Table& t = **table;
  std::vector<RowId> order(t.num_rows());
  for (RowId r = 0; r < t.num_rows(); ++r) order[r] = r;
  if (!stmt.order_by.empty()) {
    TABULA_ASSIGN_OR_RETURN(size_t idx,
                            t.schema().FieldIndex(stmt.order_by));
    const Column& col = t.column(idx);
    auto less = [&](RowId a, RowId b) {
      switch (col.type()) {
        case DataType::kDouble:
          return col.As<DoubleColumn>()->At(a) <
                 col.As<DoubleColumn>()->At(b);
        case DataType::kInt64:
          return col.As<Int64Column>()->At(a) <
                 col.As<Int64Column>()->At(b);
        case DataType::kCategorical: {
          const auto* cat = col.As<CategoricalColumn>();
          return cat->dict().At(cat->CodeAt(a)) <
                 cat->dict().At(cat->CodeAt(b));
        }
      }
      return false;
    };
    std::stable_sort(order.begin(), order.end(), [&](RowId a, RowId b) {
      return stmt.order_desc ? less(b, a) : less(a, b);
    });
  }
  if (stmt.limit >= 0 && order.size() > static_cast<size_t>(stmt.limit)) {
    order.resize(static_cast<size_t>(stmt.limit));
  }
  *table = t.TakeRows(order);
  return Status::OK();
}

}  // namespace

Result<SqlEngine::ExecResult> SqlEngine::ExecSelect(const SelectStmt& stmt) {
  const Table* table = GetTable(stmt.table_name);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table_name + "' not registered");
  }
  // WHERE filter.
  DatasetView view(table);
  if (!stmt.where.empty()) {
    TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                            BoundPredicate::Bind(*table, stmt.where));
    view = DatasetView(table, pred.FilterAll());
  }

  ExecResult result;
  bool any_agg = stmt.select_star
                     ? false
                     : std::any_of(stmt.items.begin(), stmt.items.end(),
                                   [](const SelectItem& i) {
                                     return i.is_aggregate;
                                   });

  if (stmt.select_star || (!any_agg && stmt.group_by.empty())) {
    // Row projection.
    std::vector<size_t> col_idx;
    std::vector<Field> fields;
    if (stmt.select_star) {
      for (size_t c = 0; c < table->schema().num_fields(); ++c) {
        col_idx.push_back(c);
        fields.push_back(table->schema().field(c));
      }
    } else {
      for (const auto& item : stmt.items) {
        TABULA_ASSIGN_OR_RETURN(size_t idx,
                                table->schema().FieldIndex(item.column));
        col_idx.push_back(idx);
        fields.push_back(table->schema().field(idx));
      }
    }
    auto out = std::make_unique<Table>(Schema(std::move(fields)));
    out->Reserve(view.size());
    std::vector<Value> row(col_idx.size());
    for (size_t i = 0; i < view.size(); ++i) {
      RowId r = view.row(i);
      for (size_t c = 0; c < col_idx.size(); ++c) {
        row[c] = table->GetValue(col_idx[c], r);
      }
      TABULA_RETURN_NOT_OK(out->AppendRow(row));
    }
    result.table = std::move(out);
    TABULA_RETURN_NOT_OK(ApplyOrderLimit(stmt, &result.table));
    result.message = std::to_string(result.table->num_rows()) + " rows";
    return result;
  }

  if (!any_agg) {
    return Status::InvalidArgument(
        "GROUP BY requires aggregate functions in the projection");
  }
  // Non-aggregate projection items must be GROUP BY columns.
  for (const auto& item : stmt.items) {
    if (!item.is_aggregate &&
        std::find(stmt.group_by.begin(), stmt.group_by.end(), item.column) ==
            stmt.group_by.end()) {
      return Status::InvalidArgument("column '" + item.column +
                                     "' must appear in GROUP BY");
    }
  }

  if (stmt.group_by.empty()) {
    // Single aggregate row.
    std::vector<Field> fields;
    std::vector<Value> row;
    for (const auto& item : stmt.items) {
      fields.push_back({std::string(AggName(item.func)) +
                            (item.column.empty() ? "" : "_" + item.column),
                        DataType::kDouble});
      if (item.func == AggFunc::kCount && item.column.empty()) {
        row.push_back(Value(static_cast<double>(view.size())));
      } else {
        TABULA_ASSIGN_OR_RETURN(NumericAggState state,
                                AggregateColumn(*table, view, item.column));
        row.push_back(Value(AggResult(item.func, state)));
      }
    }
    auto out = std::make_unique<Table>(Schema(std::move(fields)));
    TABULA_RETURN_NOT_OK(out->AppendRow(row));
    result.message = "1 row";
    result.table = std::move(out);
    TABULA_RETURN_NOT_OK(ApplyOrderLimit(stmt, &result.table));
    return result;
  }

  // Grouped aggregation (plain GROUP BY or the CUBE operator).
  TABULA_ASSIGN_OR_RETURN(KeyEncoder enc,
                          KeyEncoder::Make(*table, stmt.group_by));
  std::vector<size_t> key_cols(stmt.group_by.size());
  for (size_t i = 0; i < key_cols.size(); ++i) key_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(KeyPacker packer, KeyPacker::Make(enc, key_cols));

  std::vector<Field> fields;
  for (const auto& col : stmt.group_by) {
    if (stmt.group_by_cube) {
      // CUBE output stringifies group values so rolled-up positions can
      // render as "(null)", matching the paper's cube tables.
      fields.push_back({col, DataType::kCategorical});
    } else {
      TABULA_ASSIGN_OR_RETURN(size_t idx, table->schema().FieldIndex(col));
      fields.push_back(table->schema().field(idx));
    }
  }
  for (const auto& item : stmt.items) {
    if (!item.is_aggregate) continue;
    fields.push_back({std::string(AggName(item.func)) +
                          (item.column.empty() ? "" : "_" + item.column),
                      DataType::kDouble});
  }
  auto out = std::make_unique<Table>(Schema(std::move(fields)));

  auto emit_groups = [&](const GroupedRows& groups) -> Status {
    for (size_t g = 0; g < groups.keys.size(); ++g) {
      std::vector<Value> row;
      auto codes = packer.Unpack(groups.keys[g]);
      for (size_t k = 0; k < stmt.group_by.size(); ++k) {
        Value v = enc.Decode(k, codes[k]);
        row.push_back(stmt.group_by_cube ? Value(v.ToString()) : v);
      }
      DatasetView group_view(table, groups.rows[g]);
      for (const auto& item : stmt.items) {
        if (!item.is_aggregate) continue;
        if (item.func == AggFunc::kCount && item.column.empty()) {
          row.push_back(Value(static_cast<double>(group_view.size())));
        } else {
          TABULA_ASSIGN_OR_RETURN(
              NumericAggState state,
              AggregateColumn(*table, group_view, item.column));
          row.push_back(Value(AggResult(item.func, state)));
        }
      }
      TABULA_RETURN_NOT_OK(out->AppendRow(row));
    }
    return Status::OK();
  };

  if (!stmt.group_by_cube) {
    TABULA_RETURN_NOT_OK(emit_groups(GroupRows(enc, packer, view)));
  } else {
    // The classic CUBE plan: one GroupBy per cuboid. (Tabula's dry run
    // deliberately avoids this; the plain operator implements it for
    // general analytics.)
    const uint32_t num_cuboids = uint32_t{1} << stmt.group_by.size();
    for (uint32_t mask = 0; mask < num_cuboids; ++mask) {
      FlatHashMap<std::vector<RowId>> cells;
      for (size_t i = 0; i < view.size(); ++i) {
        RowId r = view.row(i);
        cells[packer.PackRowMasked(enc, r, mask)].push_back(r);
      }
      GroupedRows groups;
      for (auto& [key, rows] : cells.ExtractSorted()) {
        groups.keys.push_back(key);
        groups.rows.push_back(std::move(rows));
      }
      TABULA_RETURN_NOT_OK(emit_groups(groups));
    }
  }
  result.table = std::move(out);
  TABULA_RETURN_NOT_OK(ApplyOrderLimit(stmt, &result.table));
  result.message = std::to_string(result.table->num_rows()) +
                   (stmt.group_by_cube ? " cube cells" : " groups");
  return result;
}

}  // namespace sql
}  // namespace tabula

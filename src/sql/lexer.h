#ifndef TABULA_SQL_LEXER_H_
#define TABULA_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tabula {
namespace sql {

/// Token categories of the Tabula SQL dialect.
enum class TokenType {
  kIdentifier,  ///< bare word (keywords are identifiers; parser matches
                ///< case-insensitively)
  kString,      ///< 'single quoted'
  kNumber,      ///< integer or decimal literal
  kSymbol,      ///< punctuation: ( ) , * = < > <= >= <> + - / .
  kEnd,
};

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;

  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword/identifier match.
  bool IsWord(const char* word) const;
};

/// Tokenizes `input`; fails on unterminated strings or stray characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace tabula

#endif  // TABULA_SQL_LEXER_H_

#include "sql/expression.h"

#include <cmath>

namespace tabula {
namespace sql {

AggValues AggValues::From(const NumericAggState& num,
                          const RegressionAggState& reg) {
  AggValues v;
  v.count = num.count;
  v.sum = num.sum;
  v.avg = num.Avg();
  v.min = num.count > 0 ? num.min : 0.0;
  v.max = num.count > 0 ? num.max : 0.0;
  v.stddev = num.StdDev();
  v.angle = reg.AngleDegrees();
  return v;
}

namespace {
double EvalAgg(AggFunc func, const AggValues& v) {
  switch (func) {
    case AggFunc::kAvg:
      return v.avg;
    case AggFunc::kSum:
      return v.sum;
    case AggFunc::kCount:
      return v.count;
    case AggFunc::kMin:
      return v.min;
    case AggFunc::kMax:
      return v.max;
    case AggFunc::kStdDev:
      return v.stddev;
    case AggFunc::kAngle:
      return v.angle;
  }
  return 0.0;
}

double EvalNode(const Expr& e, const AggValues& raw, const AggValues& sam) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.number;
    case Expr::Kind::kAggRef:
      return EvalAgg(e.func, e.source == AggSource::kRaw ? raw : sam);
    case Expr::Kind::kAbs:
      return std::abs(EvalNode(*e.left, raw, sam));
    case Expr::Kind::kNegate:
      return -EvalNode(*e.left, raw, sam);
    case Expr::Kind::kAdd:
      return EvalNode(*e.left, raw, sam) + EvalNode(*e.right, raw, sam);
    case Expr::Kind::kSub:
      return EvalNode(*e.left, raw, sam) - EvalNode(*e.right, raw, sam);
    case Expr::Kind::kMul:
      return EvalNode(*e.left, raw, sam) * EvalNode(*e.right, raw, sam);
    case Expr::Kind::kDiv:
      return EvalNode(*e.left, raw, sam) / EvalNode(*e.right, raw, sam);
  }
  return 0.0;
}
}  // namespace

double EvaluateExpr(const Expr& expr, const AggValues& raw,
                    const AggValues& sam) {
  double v = EvalNode(expr, raw, sam);
  if (std::isnan(v)) return kInfiniteLoss;
  return v;
}

bool UsesAngle(const Expr& expr) {
  if (expr.kind == Expr::Kind::kAggRef) return expr.func == AggFunc::kAngle;
  if (expr.left != nullptr && UsesAngle(*expr.left)) return true;
  if (expr.right != nullptr && UsesAngle(*expr.right)) return true;
  return false;
}

namespace {

class ExpressionBoundLoss final : public BoundLoss {
 public:
  ExpressionBoundLoss(std::shared_ptr<const Expr> body,
                      const DoubleColumn* x_col, const DoubleColumn* y_col,
                      AggValues sam_values, bool sam_empty)
      : body_(std::move(body)),
        x_col_(x_col),
        y_col_(y_col),
        sam_values_(sam_values),
        sam_empty_(sam_empty) {}

  void Accumulate(LossState* state, RowId row) const override {
    double x = x_col_->At(row);
    state->num.Add(x);
    if (y_col_ != nullptr) state->reg.Add(x, y_col_->At(row));
  }

  double Finalize(const LossState& state) const override {
    if (state.num.count == 0) return 0.0;  // empty cell loses nothing
    if (sam_empty_) return kInfiniteLoss;
    return EvaluateExpr(*body_, AggValues::From(state.num, state.reg),
                        sam_values_);
  }

 private:
  std::shared_ptr<const Expr> body_;
  const DoubleColumn* x_col_;
  const DoubleColumn* y_col_;
  AggValues sam_values_;
  bool sam_empty_;
};

class ExpressionGreedyEvaluator final : public GreedyLossEvaluator {
 public:
  ExpressionGreedyEvaluator(std::shared_ptr<const Expr> body,
                            const DatasetView& raw, const DoubleColumn* x_col,
                            const DoubleColumn* y_col, AggValues raw_values)
      : body_(std::move(body)),
        raw_(raw),
        x_col_(x_col),
        y_col_(y_col),
        raw_values_(raw_values) {}

  double CurrentLoss() const override {
    if (chosen_num_.count == 0) return kInfiniteLoss;
    return EvaluateExpr(*body_, raw_values_,
                        AggValues::From(chosen_num_, chosen_reg_));
  }

  double LossWithCandidate(size_t candidate) const override {
    RowId r = raw_.row(candidate);
    NumericAggState num = chosen_num_;
    RegressionAggState reg = chosen_reg_;
    double x = x_col_->At(r);
    num.Add(x);
    if (y_col_ != nullptr) reg.Add(x, y_col_->At(r));
    return EvaluateExpr(*body_, raw_values_, AggValues::From(num, reg));
  }

  void Add(size_t candidate) override {
    RowId r = raw_.row(candidate);
    double x = x_col_->At(r);
    chosen_num_.Add(x);
    if (y_col_ != nullptr) chosen_reg_.Add(x, y_col_->At(r));
  }

  size_t raw_size() const override { return raw_.size(); }

 private:
  std::shared_ptr<const Expr> body_;
  DatasetView raw_;
  const DoubleColumn* x_col_;
  const DoubleColumn* y_col_;
  AggValues raw_values_;
  NumericAggState chosen_num_;
  RegressionAggState chosen_reg_;
};

}  // namespace

Result<std::unique_ptr<ExpressionLoss>> ExpressionLoss::Make(
    std::string name, std::shared_ptr<const Expr> body,
    std::vector<std::string> attributes) {
  if (body == nullptr) {
    return Status::InvalidArgument("loss expression body is null");
  }
  if (attributes.empty() || attributes.size() > 2) {
    return Status::InvalidArgument(
        "expression loss takes 1 or 2 target attributes");
  }
  if (UsesAngle(*body) && attributes.size() != 2) {
    return Status::InvalidArgument(
        "ANGLE(...) requires two target attributes (x, y)");
  }
  return std::unique_ptr<ExpressionLoss>(new ExpressionLoss(
      std::move(name), std::move(body), std::move(attributes)));
}

Result<std::pair<const DoubleColumn*, const DoubleColumn*>>
ExpressionLoss::Columns(const Table& table) const {
  TABULA_ASSIGN_OR_RETURN(const Column* xc,
                          table.ColumnByName(attributes_[0]));
  const auto* x_col = xc->As<DoubleColumn>();
  if (x_col == nullptr) {
    return Status::TypeMismatch("loss attribute '" + attributes_[0] +
                                "' must be DOUBLE");
  }
  const DoubleColumn* y_col = nullptr;
  if (attributes_.size() == 2) {
    TABULA_ASSIGN_OR_RETURN(const Column* yc,
                            table.ColumnByName(attributes_[1]));
    y_col = yc->As<DoubleColumn>();
    if (y_col == nullptr) {
      return Status::TypeMismatch("loss attribute '" + attributes_[1] +
                                  "' must be DOUBLE");
    }
  }
  return std::make_pair(x_col, y_col);
}

Result<std::pair<NumericAggState, RegressionAggState>>
ExpressionLoss::Accumulate(const DatasetView& view) const {
  if (view.table() == nullptr) {
    return Status::InvalidArgument("view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(auto cols, Columns(*view.table()));
  NumericAggState num;
  RegressionAggState reg;
  for (size_t i = 0; i < view.size(); ++i) {
    RowId r = view.row(i);
    double x = cols.first->At(r);
    num.Add(x);
    if (cols.second != nullptr) reg.Add(x, cols.second->At(r));
  }
  return std::make_pair(num, reg);
}

Result<std::unique_ptr<BoundLoss>> ExpressionLoss::Bind(
    const Table& table, const DatasetView& ref) const {
  TABULA_ASSIGN_OR_RETURN(auto cols, Columns(table));
  TABULA_ASSIGN_OR_RETURN(auto states, Accumulate(ref));
  return std::unique_ptr<BoundLoss>(std::make_unique<ExpressionBoundLoss>(
      body_, cols.first, cols.second,
      AggValues::From(states.first, states.second), states.first.count == 0));
}

Result<double> ExpressionLoss::Loss(const DatasetView& raw,
                                    const DatasetView& sample) const {
  TABULA_ASSIGN_OR_RETURN(auto raw_states, Accumulate(raw));
  TABULA_ASSIGN_OR_RETURN(auto sam_states, Accumulate(sample));
  if (raw_states.first.count == 0) return 0.0;
  if (sam_states.first.count == 0) return kInfiniteLoss;
  return EvaluateExpr(*body_,
                      AggValues::From(raw_states.first, raw_states.second),
                      AggValues::From(sam_states.first, sam_states.second));
}

Result<std::unique_ptr<GreedyLossEvaluator>>
ExpressionLoss::MakeGreedyEvaluator(const DatasetView& raw) const {
  if (raw.table() == nullptr) {
    return Status::InvalidArgument("raw view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(auto cols, Columns(*raw.table()));
  TABULA_ASSIGN_OR_RETURN(auto states, Accumulate(raw));
  return std::unique_ptr<GreedyLossEvaluator>(
      std::make_unique<ExpressionGreedyEvaluator>(
          body_, raw, cols.first, cols.second,
          AggValues::From(states.first, states.second)));
}

std::vector<double> ExpressionLoss::Signature(const DatasetView& view) const {
  auto states = Accumulate(view);
  if (!states.ok()) return {0.0, 0.0};
  return {states.value().first.Avg(), states.value().second.AngleDegrees()};
}

}  // namespace sql
}  // namespace tabula

#ifndef TABULA_SQL_ENGINE_H_
#define TABULA_SQL_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/tabula.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace tabula {
namespace sql {

/// \brief The SQL front door of the middleware stack.
///
/// Owns named base tables, user-registered loss aggregates, and
/// initialized sampling cubes, and executes the four statement forms of
/// the dialect (see parser.h). This is how a dashboard that only speaks
/// SQL drives Tabula end to end:
///
///   CREATE AGGREGATE my_loss(Raw, Sam) RETURN decimal_value AS
///     BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END
///   CREATE TABLE cube AS SELECT payment_type, rate_code,
///       SAMPLING(*, 0.05) AS sample
///     FROM rides GROUP BY CUBE(payment_type, rate_code)
///     HAVING my_loss(fare_amount, SAM_GLOBAL) > 0.05
///   SELECT sample FROM cube WHERE payment_type = 'Cash'
class SqlEngine {
 public:
  SqlEngine();

  /// Registers a base table under `name` (takes ownership).
  Status RegisterTable(const std::string& name, std::unique_ptr<Table> table);

  /// Registered table, or nullptr.
  const Table* GetTable(const std::string& name) const;

  /// Initialized sampling cube, or nullptr.
  const Tabula* GetCube(const std::string& name) const;

  /// Engine knobs applied to cubes created via SQL.
  TabulaOptions* mutable_cube_defaults() { return &cube_defaults_; }

  /// Result of one statement.
  struct ExecResult {
    /// Human-readable outcome ("sampling cube 'c' created: ...").
    std::string message;
    /// Plain-SELECT result rows (null otherwise).
    std::unique_ptr<Table> table;
    /// SELECT sample ... answer (valid when has_sample).
    DatasetView sample;
    bool has_sample = false;
    bool from_local_sample = false;
  };

  /// Parses and executes one statement.
  Result<ExecResult> Execute(const std::string& statement);

 private:
  Result<ExecResult> ExecCreateAggregate(CreateAggregateStmt stmt);
  Result<ExecResult> ExecCreateCube(const CreateSamplingCubeStmt& stmt);
  Result<ExecResult> ExecSelectSample(const SelectSampleStmt& stmt);
  Result<ExecResult> ExecSelect(const SelectStmt& stmt);

  /// Instantiates a loss by name: the central registry's built-ins
  /// (loss/loss_registry.h) or a CREATE AGGREGATE registration.
  Result<std::unique_ptr<LossFunction>> MakeLoss(
      const std::string& name, const std::vector<std::string>& attrs) const;

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<const Expr>>
      user_aggregates_;

  /// The cube keeps its loss alive via TabulaOptions::owned_loss.
  struct CubeEntry {
    std::unique_ptr<Tabula> cube;
  };
  std::unordered_map<std::string, CubeEntry> cubes_;
  TabulaOptions cube_defaults_;
};

}  // namespace sql
}  // namespace tabula

#endif  // TABULA_SQL_ENGINE_H_

#ifndef TABULA_SQL_EXPRESSION_H_
#define TABULA_SQL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "loss/loss_function.h"
#include "sql/ast.h"

namespace tabula {
namespace sql {

/// Aggregate values of one side (Raw or Sam) that a loss expression can
/// reference.
struct AggValues {
  double avg = 0.0;
  double sum = 0.0;
  double count = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double angle = 0.0;

  static AggValues From(const NumericAggState& num,
                        const RegressionAggState& reg);
};

/// Evaluates a loss expression; NaN (e.g. 0/0) maps to +inf so degenerate
/// cells never silently pass a threshold.
double EvaluateExpr(const Expr& expr, const AggValues& raw,
                    const AggValues& sam);

/// True iff the expression references ANGLE(...) — which needs two target
/// attributes (x, y).
bool UsesAngle(const Expr& expr);

/// \brief A user-defined accuracy loss compiled from
/// CREATE AGGREGATE ... BEGIN <expr> END (Section II).
///
/// The expression is a scalar over algebraic aggregates of Raw and Sam on
/// the target attribute(s), so the compiled loss satisfies the paper's
/// algebraic requirement by construction: its per-cell state is
/// (NumericAggState, RegressionAggState), which merges along the cube
/// lattice. The greedy evaluator is O(1) per candidate.
class ExpressionLoss final : public LossFunction {
 public:
  /// \param attributes one column (scalar aggregates) or two (when the
  ///        body uses ANGLE: x then y).
  static Result<std::unique_ptr<ExpressionLoss>> Make(
      std::string name, std::shared_ptr<const Expr> body,
      std::vector<std::string> attributes);

  std::string name() const override { return name_; }
  Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const override;
  Result<double> Loss(const DatasetView& raw,
                      const DatasetView& sample) const override;
  Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const override;
  std::vector<std::string> InputColumns() const override {
    return attributes_;
  }
  std::vector<double> Signature(const DatasetView& view) const override;

 private:
  ExpressionLoss(std::string name, std::shared_ptr<const Expr> body,
                 std::vector<std::string> attributes)
      : name_(std::move(name)),
        body_(std::move(body)),
        attributes_(std::move(attributes)) {}

  /// Resolves the target column(s); y is null for 1-attribute losses.
  Result<std::pair<const DoubleColumn*, const DoubleColumn*>> Columns(
      const Table& table) const;

  /// Accumulates states over a view.
  Result<std::pair<NumericAggState, RegressionAggState>> Accumulate(
      const DatasetView& view) const;

  std::string name_;
  std::shared_ptr<const Expr> body_;
  std::vector<std::string> attributes_;
};

}  // namespace sql
}  // namespace tabula

#endif  // TABULA_SQL_EXPRESSION_H_

#ifndef TABULA_SQL_AST_H_
#define TABULA_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "storage/predicate.h"

namespace tabula {
namespace sql {

// ---------------------------------------------------------------------------
// Loss-expression AST (the body of CREATE AGGREGATE, Section II)
// ---------------------------------------------------------------------------

/// Which dataset an aggregate term reads.
enum class AggSource { kRaw, kSam };

/// Aggregate functions usable inside a user-defined loss expression. All
/// are distributive or algebraic, as the paper requires; ANGLE is the
/// paper's regression-line angle (an algebraic measure over the two
/// target attributes).
enum class AggFunc { kAvg, kSum, kCount, kMin, kMax, kStdDev, kAngle };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Scalar expression node: number literal, aggregate reference, unary
/// (ABS, negate) or binary (+ - * /) operation.
struct Expr {
  enum class Kind { kNumber, kAggRef, kAbs, kNegate, kAdd, kSub, kMul, kDiv };
  Kind kind = Kind::kNumber;
  double number = 0.0;       // kNumber
  AggFunc func = AggFunc::kAvg;  // kAggRef
  AggSource source = AggSource::kRaw;  // kAggRef
  ExprPtr left;   // unary operand / binary lhs
  ExprPtr right;  // binary rhs
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// CREATE AGGREGATE name(Raw, Sam) RETURN decimal_value AS
/// BEGIN <expr> END
struct CreateAggregateStmt {
  std::string name;
  ExprPtr body;
};

/// CREATE TABLE cube AS SELECT attrs..., SAMPLING(*, θ) AS sample
/// FROM tbl GROUP BY CUBE(attrs...)
/// HAVING loss(attr[, attr2], SAM_GLOBAL) > θ
struct CreateSamplingCubeStmt {
  std::string cube_name;
  std::string table_name;
  std::vector<std::string> cubed_attributes;
  double sampling_threshold = 0.0;
  std::string loss_name;
  /// Target attribute(s) of the loss (1 for mean/histogram, 2 for
  /// heat map / regression / ANGLE-based expressions).
  std::vector<std::string> loss_attributes;
  double having_threshold = 0.0;
};

/// SELECT sample FROM cube WHERE a = 'x' AND b = 'y'
struct SelectSampleStmt {
  std::string cube_name;
  std::vector<PredicateTerm> where;
};

/// One projection item of a plain SELECT: a column or AGG(column) /
/// COUNT(*).
struct SelectItem {
  bool is_aggregate = false;
  AggFunc func = AggFunc::kAvg;
  std::string column;  // empty for COUNT(*)
};

/// Plain data-system query:
/// SELECT items FROM tbl [WHERE conj] [GROUP BY [CUBE(]cols[)]]
struct SelectStmt {
  std::vector<SelectItem> items;
  bool select_star = false;
  std::string table_name;
  std::vector<PredicateTerm> where;
  std::vector<std::string> group_by;
  /// GROUP BY CUBE(...): aggregate every subset of the grouping list
  /// (2^n cuboids); rolled-up positions render as "(null)".
  bool group_by_cube = false;
  /// ORDER BY column of the *output* schema (aggregate columns use their
  /// output names, e.g. "avg_fare_amount"); empty = unsorted.
  std::string order_by;
  bool order_desc = false;
  /// LIMIT row cap; negative = unlimited.
  int64_t limit = -1;
};

/// Any parsed statement.
using Statement = std::variant<CreateAggregateStmt, CreateSamplingCubeStmt,
                               SelectSampleStmt, SelectStmt>;

}  // namespace sql
}  // namespace tabula

#endif  // TABULA_SQL_AST_H_

#include "sql/parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace tabula {
namespace sql {

namespace {

/// Token-stream cursor with convenience matchers.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool MatchWord(const char* word) {
    if (Peek().IsWord(word)) {
      Next();
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      Next();
      return true;
    }
    return false;
  }

  Status ExpectWord(const char* word) {
    if (!MatchWord(word)) {
      return Status::ParseError(std::string("expected '") + word +
                                "' near offset " +
                                std::to_string(Peek().offset) + " (got '" +
                                Peek().text + "')");
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* symbol) {
    if (!MatchSymbol(symbol)) {
      return Status::ParseError(std::string("expected '") + symbol +
                                "' near offset " +
                                std::to_string(Peek().offset) + " (got '" +
                                Peek().text + "')");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near offset " +
                                std::to_string(Peek().offset));
    }
    return Next().text;
  }

  Result<double> ExpectNumber() {
    if (Peek().type != TokenType::kNumber) {
      return Status::ParseError("expected number near offset " +
                                std::to_string(Peek().offset));
    }
    return std::strtod(Next().text.c_str(), nullptr);
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<AggFunc> AggFuncFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "AVG")) return AggFunc::kAvg;
  if (EqualsIgnoreCase(name, "SUM")) return AggFunc::kSum;
  if (EqualsIgnoreCase(name, "COUNT")) return AggFunc::kCount;
  if (EqualsIgnoreCase(name, "MIN")) return AggFunc::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggFunc::kMax;
  if (EqualsIgnoreCase(name, "STD_DEV") || EqualsIgnoreCase(name, "STDDEV")) {
    return AggFunc::kStdDev;
  }
  if (EqualsIgnoreCase(name, "ANGLE")) return AggFunc::kAngle;
  return Status::ParseError("unknown aggregate function '" + name + "'");
}

bool IsAggFuncName(const std::string& name) {
  return AggFuncFromName(name).ok();
}

// ----- loss expression -----

Result<ExprPtr> ParseExpr(Cursor* cur);

Result<ExprPtr> ParseFactor(Cursor* cur) {
  if (cur->Peek().type == TokenType::kNumber) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kNumber;
    TABULA_ASSIGN_OR_RETURN(expr->number, cur->ExpectNumber());
    return expr;
  }
  if (cur->MatchSymbol("-")) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kNegate;
    TABULA_ASSIGN_OR_RETURN(expr->left, ParseFactor(cur));
    return expr;
  }
  if (cur->MatchSymbol("(")) {
    TABULA_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr(cur));
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
    return inner;
  }
  if (cur->Peek().IsWord("ABS")) {
    cur->Next();
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kAbs;
    TABULA_ASSIGN_OR_RETURN(expr->left, ParseExpr(cur));
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
    return expr;
  }
  if (cur->Peek().type == TokenType::kIdentifier &&
      IsAggFuncName(cur->Peek().text)) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kAggRef;
    TABULA_ASSIGN_OR_RETURN(std::string fname, cur->ExpectIdentifier());
    TABULA_ASSIGN_OR_RETURN(expr->func, AggFuncFromName(fname));
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
    TABULA_ASSIGN_OR_RETURN(std::string src, cur->ExpectIdentifier());
    if (EqualsIgnoreCase(src, "Raw")) {
      expr->source = AggSource::kRaw;
    } else if (EqualsIgnoreCase(src, "Sam")) {
      expr->source = AggSource::kSam;
    } else {
      return Status::ParseError("aggregate argument must be Raw or Sam, got '" +
                                src + "'");
    }
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
    return expr;
  }
  return Status::ParseError("unexpected token '" + cur->Peek().text +
                            "' in loss expression near offset " +
                            std::to_string(cur->Peek().offset));
}

Result<ExprPtr> ParseTerm(Cursor* cur) {
  TABULA_ASSIGN_OR_RETURN(ExprPtr left, ParseFactor(cur));
  for (;;) {
    Expr::Kind kind;
    if (cur->Peek().IsSymbol("*")) {
      kind = Expr::Kind::kMul;
    } else if (cur->Peek().IsSymbol("/")) {
      kind = Expr::Kind::kDiv;
    } else {
      return left;
    }
    cur->Next();
    auto node = std::make_unique<Expr>();
    node->kind = kind;
    node->left = std::move(left);
    TABULA_ASSIGN_OR_RETURN(node->right, ParseFactor(cur));
    left = std::move(node);
  }
}

Result<ExprPtr> ParseExpr(Cursor* cur) {
  TABULA_ASSIGN_OR_RETURN(ExprPtr left, ParseTerm(cur));
  for (;;) {
    Expr::Kind kind;
    if (cur->Peek().IsSymbol("+")) {
      kind = Expr::Kind::kAdd;
    } else if (cur->Peek().IsSymbol("-")) {
      kind = Expr::Kind::kSub;
    } else {
      return left;
    }
    cur->Next();
    auto node = std::make_unique<Expr>();
    node->kind = kind;
    node->left = std::move(left);
    TABULA_ASSIGN_OR_RETURN(node->right, ParseTerm(cur));
    left = std::move(node);
  }
}

// ----- predicates -----

Result<CompareOp> ParseCompareOp(Cursor* cur) {
  const Token& token = cur->Peek();
  if (token.type != TokenType::kSymbol) {
    return Status::ParseError("expected comparison operator near offset " +
                              std::to_string(token.offset));
  }
  CompareOp op;
  if (token.text == "=") {
    op = CompareOp::kEq;
  } else if (token.text == "<>") {
    op = CompareOp::kNe;
  } else if (token.text == "<") {
    op = CompareOp::kLt;
  } else if (token.text == "<=") {
    op = CompareOp::kLe;
  } else if (token.text == ">") {
    op = CompareOp::kGt;
  } else if (token.text == ">=") {
    op = CompareOp::kGe;
  } else {
    return Status::ParseError("unknown operator '" + token.text + "'");
  }
  cur->Next();
  return op;
}

Result<Value> ParseLiteral(Cursor* cur) {
  const Token& token = cur->Peek();
  if (token.type == TokenType::kString) {
    Value v(cur->Next().text);
    return v;
  }
  if (token.type == TokenType::kNumber) {
    std::string text = cur->Next().text;
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find('E') == std::string::npos) {
      return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr,
                                                     10)));
    }
    return Value(std::strtod(text.c_str(), nullptr));
  }
  return Status::ParseError("expected literal near offset " +
                            std::to_string(token.offset));
}

Result<std::vector<PredicateTerm>> ParseWhere(Cursor* cur) {
  std::vector<PredicateTerm> terms;
  do {
    PredicateTerm term;
    TABULA_ASSIGN_OR_RETURN(term.column, cur->ExpectIdentifier());
    TABULA_ASSIGN_OR_RETURN(term.op, ParseCompareOp(cur));
    TABULA_ASSIGN_OR_RETURN(term.literal, ParseLiteral(cur));
    terms.push_back(std::move(term));
  } while (cur->MatchWord("AND"));
  return terms;
}

// ----- statements -----

Result<Statement> ParseCreateAggregate(Cursor* cur) {
  CreateAggregateStmt stmt;
  TABULA_ASSIGN_OR_RETURN(stmt.name, cur->ExpectIdentifier());
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("Raw"));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(","));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("Sam"));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("RETURN"));
  TABULA_ASSIGN_OR_RETURN(std::string ret, cur->ExpectIdentifier());
  (void)ret;  // "decimal_value" per the paper's syntax; informational
  TABULA_RETURN_NOT_OK(cur->ExpectWord("AS"));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("BEGIN"));
  TABULA_ASSIGN_OR_RETURN(stmt.body, ParseExpr(cur));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("END"));
  return Statement(std::move(stmt));
}

Result<Statement> ParseCreateSamplingCube(Cursor* cur) {
  CreateSamplingCubeStmt stmt;
  TABULA_ASSIGN_OR_RETURN(stmt.cube_name, cur->ExpectIdentifier());
  TABULA_RETURN_NOT_OK(cur->ExpectWord("AS"));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("SELECT"));
  // Projection: cubed attributes then SAMPLING(*, θ) AS sample.
  for (;;) {
    if (cur->Peek().IsWord("SAMPLING")) break;
    TABULA_ASSIGN_OR_RETURN(std::string attr, cur->ExpectIdentifier());
    stmt.cubed_attributes.push_back(std::move(attr));
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol(","));
  }
  TABULA_RETURN_NOT_OK(cur->ExpectWord("SAMPLING"));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol("*"));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(","));
  TABULA_ASSIGN_OR_RETURN(stmt.sampling_threshold, cur->ExpectNumber());
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("AS"));
  TABULA_ASSIGN_OR_RETURN(std::string alias, cur->ExpectIdentifier());
  (void)alias;
  TABULA_RETURN_NOT_OK(cur->ExpectWord("FROM"));
  TABULA_ASSIGN_OR_RETURN(stmt.table_name, cur->ExpectIdentifier());
  if (!cur->MatchWord("GROUPBY")) {
    TABULA_RETURN_NOT_OK(cur->ExpectWord("GROUP"));
    TABULA_RETURN_NOT_OK(cur->ExpectWord("BY"));
  }
  TABULA_RETURN_NOT_OK(cur->ExpectWord("CUBE"));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
  std::vector<std::string> cube_attrs;
  do {
    TABULA_ASSIGN_OR_RETURN(std::string attr, cur->ExpectIdentifier());
    cube_attrs.push_back(std::move(attr));
  } while (cur->MatchSymbol(","));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
  if (cube_attrs != stmt.cubed_attributes) {
    return Status::ParseError(
        "CUBE(...) attributes must match the SELECT projection list");
  }
  TABULA_RETURN_NOT_OK(cur->ExpectWord("HAVING"));
  TABULA_ASSIGN_OR_RETURN(stmt.loss_name, cur->ExpectIdentifier());
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
  for (;;) {
    TABULA_ASSIGN_OR_RETURN(std::string arg, cur->ExpectIdentifier());
    if (EqualsIgnoreCase(arg, "SAM_GLOBAL") ||
        EqualsIgnoreCase(arg, "Sam_global")) {
      break;
    }
    stmt.loss_attributes.push_back(std::move(arg));
    TABULA_RETURN_NOT_OK(cur->ExpectSymbol(","));
  }
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
  TABULA_RETURN_NOT_OK(cur->ExpectSymbol(">"));
  TABULA_ASSIGN_OR_RETURN(stmt.having_threshold, cur->ExpectNumber());
  if (stmt.loss_attributes.empty()) {
    return Status::ParseError(
        "HAVING loss(...) needs at least one target attribute before "
        "SAM_GLOBAL");
  }
  return Statement(std::move(stmt));
}

Result<Statement> ParsePlainSelect(Cursor* cur, std::vector<SelectItem> items,
                                   bool star) {
  SelectStmt stmt;
  stmt.items = std::move(items);
  stmt.select_star = star;
  TABULA_ASSIGN_OR_RETURN(stmt.table_name, cur->ExpectIdentifier());
  if (cur->MatchWord("WHERE")) {
    TABULA_ASSIGN_OR_RETURN(stmt.where, ParseWhere(cur));
  }
  bool has_group_by = cur->MatchWord("GROUPBY");
  if (!has_group_by && cur->MatchWord("GROUP")) {
    TABULA_RETURN_NOT_OK(cur->ExpectWord("BY"));
    has_group_by = true;
  }
  if (has_group_by) {
    if (cur->MatchWord("CUBE")) {
      stmt.group_by_cube = true;
      TABULA_RETURN_NOT_OK(cur->ExpectSymbol("("));
    }
    do {
      TABULA_ASSIGN_OR_RETURN(std::string col, cur->ExpectIdentifier());
      stmt.group_by.push_back(std::move(col));
    } while (cur->MatchSymbol(","));
    if (stmt.group_by_cube) {
      TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
    }
  }
  if (cur->MatchWord("ORDER")) {
    TABULA_RETURN_NOT_OK(cur->ExpectWord("BY"));
    TABULA_ASSIGN_OR_RETURN(stmt.order_by, cur->ExpectIdentifier());
    if (cur->MatchWord("DESC")) {
      stmt.order_desc = true;
    } else {
      cur->MatchWord("ASC");
    }
  }
  if (cur->MatchWord("LIMIT")) {
    TABULA_ASSIGN_OR_RETURN(double n, cur->ExpectNumber());
    if (n < 0) return Status::ParseError("LIMIT must be non-negative");
    stmt.limit = static_cast<int64_t>(n);
  }
  return Statement(std::move(stmt));
}

Result<Statement> ParseSelect(Cursor* cur) {
  // Distinguish `SELECT sample FROM <cube>` from plain SELECTs.
  if (cur->Peek().IsWord("sample")) {
    cur->Next();
    if (cur->Peek().IsWord("FROM")) {
      cur->Next();
      SelectSampleStmt stmt;
      TABULA_ASSIGN_OR_RETURN(stmt.cube_name, cur->ExpectIdentifier());
      if (cur->MatchWord("WHERE")) {
        TABULA_ASSIGN_OR_RETURN(stmt.where, ParseWhere(cur));
      }
      return Statement(std::move(stmt));
    }
    return Status::ParseError("expected FROM after 'sample'");
  }
  if (cur->MatchSymbol("*")) {
    TABULA_RETURN_NOT_OK(cur->ExpectWord("FROM"));
    return ParsePlainSelect(cur, {}, /*star=*/true);
  }
  std::vector<SelectItem> items;
  do {
    SelectItem item;
    TABULA_ASSIGN_OR_RETURN(std::string name, cur->ExpectIdentifier());
    if (cur->MatchSymbol("(")) {
      TABULA_ASSIGN_OR_RETURN(item.func, AggFuncFromName(name));
      item.is_aggregate = true;
      if (cur->MatchSymbol("*")) {
        if (item.func != AggFunc::kCount) {
          return Status::ParseError("only COUNT(*) supports '*'");
        }
      } else {
        TABULA_ASSIGN_OR_RETURN(item.column, cur->ExpectIdentifier());
      }
      TABULA_RETURN_NOT_OK(cur->ExpectSymbol(")"));
    } else {
      item.column = std::move(name);
    }
    items.push_back(std::move(item));
  } while (cur->MatchSymbol(","));
  TABULA_RETURN_NOT_OK(cur->ExpectWord("FROM"));
  return ParsePlainSelect(cur, std::move(items), /*star=*/false);
}

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  TABULA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Cursor cur(std::move(tokens));
  Result<Statement> result = [&]() -> Result<Statement> {
    if (cur.MatchWord("CREATE")) {
      if (cur.MatchWord("AGGREGATE")) return ParseCreateAggregate(&cur);
      if (cur.MatchWord("TABLE")) return ParseCreateSamplingCube(&cur);
      return Status::ParseError("expected AGGREGATE or TABLE after CREATE");
    }
    if (cur.MatchWord("SELECT")) return ParseSelect(&cur);
    return Status::ParseError("statement must start with CREATE or SELECT");
  }();
  TABULA_RETURN_NOT_OK(result.status());
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing tokens after statement: '" +
                              cur.Peek().text + "'");
  }
  return result;
}

}  // namespace sql
}  // namespace tabula

#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace tabula {
namespace sql {

bool Token::IsWord(const char* word) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, word);
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // SQL line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      token.type = TokenType::kIdentifier;
      token.text = input.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !seen_dot) ||
                       input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        if (input[i] == '.') seen_dot = true;
        ++i;
      }
      token.type = TokenType::kNumber;
      token.text = input.substr(start, i - start);
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < n && input[i] != '\'') ++i;
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.offset));
      }
      token.type = TokenType::kString;
      token.text = input.substr(start, i - start);
      ++i;  // closing quote
    } else {
      // Multi-char comparison operators first.
      if ((c == '<' && i + 1 < n &&
           (input[i + 1] == '=' || input[i + 1] == '>')) ||
          (c == '>' && i + 1 < n && input[i + 1] == '=')) {
        token.text = input.substr(i, 2);
        i += 2;
      } else if (std::string("(),*=<>+-/.[]").find(c) != std::string::npos) {
        token.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      token.type = TokenType::kSymbol;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace tabula

#ifndef TABULA_INGEST_INGEST_JOURNAL_H_
#define TABULA_INGEST_INGEST_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "storage/value.h"

namespace tabula {

/// Outcome of replaying a journal into a base table.
struct JournalReplayStats {
  /// Intact batch records found in the file.
  size_t batches = 0;
  /// Rows those batches carry (including rows the table already had).
  size_t rows = 0;
  /// Rows actually appended (journal rows beyond the table's tail).
  size_t appended_rows = 0;
  /// True when the file ended mid-record (crash mid-write); everything
  /// before the torn record replayed normally.
  bool truncated_tail = false;
};

/// \brief Write-ahead batch journal for streaming ingestion.
///
/// The base table is an in-memory column store, so rows appended after
/// the last durable cube Save() would be lost on a crash. The Ingestor
/// writes every accepted batch here BEFORE touching the table: on
/// restart, Replay() re-appends the journaled rows the base data does
/// not cover, then the cube is loaded with `resume_partial` and one
/// Refresh()/ingest cycle catches it up.
///
/// Format (little-endian, via common/binary_io.h):
///   header:  magic "TBLJ" · version · base_rows · schema (field name +
///            type per column)
///   record:  marker "BATC" · row count · row-major values (typed per
///            the schema; categoricals as strings) · FNV-1a checksum
///            over the record's logical content
///
/// Each record is flushed after it is written; a record that fails to
/// write (disk error, or the `ingest.journal.write` fault seam) is
/// truncated back off the file, so the journal always ends on a record
/// boundary from the writer's point of view. Replay additionally
/// tolerates a torn tail record (crash mid-flush) by dropping it.
///
/// Thread-safety: externally serialized (the Ingestor appends from one
/// cycle at a time).
class IngestJournal {
 public:
  /// Opens `path` for appending. A missing/empty file is initialized
  /// with a fresh header at `table.num_rows()` base rows. An existing
  /// file must carry a matching schema and must already be replayed
  /// into `table` (its intact rows must all be <= the table's tail);
  /// a torn tail record is truncated off before appending resumes.
  static Result<std::unique_ptr<IngestJournal>> Open(const std::string& path,
                                                     const Table& table);

  /// Replays the journal at `path` into `table`: rows the table already
  /// holds (row index < num_rows) are skipped, the rest are appended in
  /// journal order. A missing file replays zero batches successfully.
  /// The table must hold at least the journal's base row count.
  static Result<JournalReplayStats> Replay(const std::string& path,
                                           Table* table);

  /// Appends one batch record and flushes it. `rows` must match the
  /// schema (the Ingestor validates before calling). On failure —
  /// including the `ingest.journal.write` fault seam — the partial
  /// record is truncated back off and the journal is unchanged.
  Status AppendBatch(const std::vector<std::vector<Value>>& rows);

  /// Restarts the journal with a fresh header at `base_rows` (after the
  /// cube + base data were checkpointed durably, the old records are
  /// dead weight).
  Status Reset(uint64_t base_rows);

  const std::string& path() const { return path_; }
  uint64_t base_rows() const { return base_rows_; }
  /// Rows recorded across the journal's intact records (diagnostics).
  uint64_t journaled_rows() const { return journaled_rows_; }

 private:
  IngestJournal() = default;

  Status WriteHeader(uint64_t base_rows);

  std::string path_;
  std::ofstream out_;
  /// Schema snapshot (field name + type) the journal was opened with.
  std::vector<std::pair<std::string, DataType>> fields_;
  uint64_t base_rows_ = 0;
  uint64_t journaled_rows_ = 0;
};

}  // namespace tabula

#endif  // TABULA_INGEST_INGEST_JOURNAL_H_

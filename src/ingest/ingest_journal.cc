#include "ingest/ingest_journal.h"

#include <cstring>
#include <filesystem>
#include <functional>

#include "common/binary_io.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {

constexpr uint32_t kJournalMagic = 0x544A424C;  // "TBLJ" (LE bytes LBJT)
constexpr uint32_t kJournalVersion = 1;
constexpr uint32_t kBatchMarker = 0x42415443;  // "BATC"

/// FNV-1a fold over a batch's logical content; computed identically by
/// the writer and the reader so a torn or bit-flipped record is caught.
class Fnv {
 public:
  void Mix(uint64_t v) {
    h_ ^= v;
    h_ *= 1099511628211ull;
  }
  void MixDouble(double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    for (char c : s) Mix(static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ull;  // FNV offset basis
};

std::vector<std::pair<std::string, DataType>> SchemaFields(
    const Schema& schema) {
  std::vector<std::pair<std::string, DataType>> fields;
  fields.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) fields.emplace_back(f.name, f.type);
  return fields;
}

/// Everything a pass over a journal file learns.
struct ScanInfo {
  std::vector<std::pair<std::string, DataType>> fields;
  uint64_t base_rows = 0;
  /// Byte offset just past the last intact record (= where appending
  /// may resume; anything beyond is a torn tail).
  std::streamoff valid_end = 0;
  size_t batches = 0;
  uint64_t rows = 0;
  bool truncated = false;
};

/// Reads the header and every intact batch record, invoking `cb` (when
/// non-null) with each batch's parsed rows. A torn tail record sets
/// `truncated` and stops the scan without failing it; a malformed
/// header or schema fails the whole call.
Status ScanJournal(
    const std::string& path, ScanInfo* info,
    const std::function<Status(const std::vector<std::vector<Value>>&)>& cb) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  BinaryReader r(&in);

  TABULA_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kJournalMagic) {
    return Status::ParseError("'" + path + "' is not a Tabula ingest journal");
  }
  TABULA_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kJournalVersion) {
    return Status::ParseError("unsupported ingest journal version " +
                              std::to_string(version));
  }
  TABULA_ASSIGN_OR_RETURN(info->base_rows, r.ReadU64());
  TABULA_ASSIGN_OR_RETURN(uint64_t num_fields, r.ReadU64());
  info->fields.clear();
  for (uint64_t i = 0; i < num_fields; ++i) {
    TABULA_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    TABULA_ASSIGN_OR_RETURN(uint32_t type, r.ReadU32());
    if (type > static_cast<uint32_t>(DataType::kDouble)) {
      return Status::ParseError("ingest journal names unknown column type " +
                                std::to_string(type));
    }
    info->fields.emplace_back(std::move(name), static_cast<DataType>(type));
  }
  info->valid_end = in.tellg();

  // Records until the file ends. Any mid-record failure (short read,
  // bad marker, checksum mismatch) is a torn tail: the writer flushes
  // per record and truncates failed writes back, so a broken record can
  // only be the crash frontier — drop it, keep everything before.
  while (true) {
    if (in.peek() == std::ifstream::traits_type::eof()) break;
    auto marker = r.ReadU32();
    if (!marker.ok() || marker.value() != kBatchMarker) {
      info->truncated = true;
      break;
    }
    auto nrows = r.ReadU64();
    if (!nrows.ok()) {
      info->truncated = true;
      break;
    }
    Fnv fnv;
    fnv.Mix(nrows.value());
    std::vector<std::vector<Value>> batch;
    batch.reserve(nrows.value());
    bool torn = false;
    for (uint64_t row = 0; row < nrows.value() && !torn; ++row) {
      std::vector<Value> values;
      values.reserve(info->fields.size());
      for (const auto& [name, type] : info->fields) {
        switch (type) {
          case DataType::kCategorical: {
            auto s = r.ReadString();
            if (!s.ok()) {
              torn = true;
              break;
            }
            fnv.MixString(s.value());
            values.emplace_back(std::move(s).value());
            break;
          }
          case DataType::kInt64: {
            auto v = r.ReadU64();
            if (!v.ok()) {
              torn = true;
              break;
            }
            fnv.Mix(v.value());
            values.emplace_back(static_cast<int64_t>(v.value()));
            break;
          }
          case DataType::kDouble: {
            auto v = r.ReadDouble();
            if (!v.ok()) {
              torn = true;
              break;
            }
            fnv.MixDouble(v.value());
            values.emplace_back(v.value());
            break;
          }
        }
        if (torn) break;
      }
      if (!torn) batch.push_back(std::move(values));
    }
    auto checksum = r.ReadU64();
    if (torn || !checksum.ok() || checksum.value() != fnv.value()) {
      info->truncated = true;
      break;
    }
    ++info->batches;
    info->rows += nrows.value();
    info->valid_end = in.tellg();
    if (cb != nullptr) {
      TABULA_RETURN_NOT_OK(cb(batch));
    }
  }
  return Status::OK();
}

Status ValidateSchemaMatch(
    const std::vector<std::pair<std::string, DataType>>& journal_fields,
    const Schema& schema) {
  bool match = journal_fields.size() == schema.num_fields();
  for (size_t i = 0; match && i < journal_fields.size(); ++i) {
    match = journal_fields[i].first == schema.field(i).name &&
            journal_fields[i].second == schema.field(i).type;
  }
  if (!match) {
    return Status::InvalidArgument(
        "ingest journal schema differs from the table's (" +
        schema.ToString() + ")");
  }
  return Status::OK();
}

}  // namespace

Status IngestJournal::WriteHeader(uint64_t base_rows) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return Status::IOError("cannot open '" + path_ + "' for writing");
  }
  BinaryWriter w(&out_);
  w.WriteU32(kJournalMagic);
  w.WriteU32(kJournalVersion);
  w.WriteU64(base_rows);
  w.WriteU64(fields_.size());
  for (const auto& [name, type] : fields_) {
    w.WriteString(name);
    w.WriteU32(static_cast<uint32_t>(type));
  }
  out_.flush();
  if (!w.ok() || !out_) {
    return Status::IOError("write failed for '" + path_ + "'");
  }
  base_rows_ = base_rows;
  journaled_rows_ = 0;
  return Status::OK();
}

Result<std::unique_ptr<IngestJournal>> IngestJournal::Open(
    const std::string& path, const Table& table) {
  auto journal = std::unique_ptr<IngestJournal>(new IngestJournal());
  journal->path_ = path;
  journal->fields_ = SchemaFields(table.schema());

  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec) && !ec &&
                      std::filesystem::file_size(path, ec) > 0 && !ec;
  if (!exists) {
    TABULA_RETURN_NOT_OK(journal->WriteHeader(table.num_rows()));
    return journal;
  }

  ScanInfo info;
  TABULA_RETURN_NOT_OK(ScanJournal(path, &info, nullptr));
  TABULA_RETURN_NOT_OK(ValidateSchemaMatch(info.fields, table.schema()));
  if (info.base_rows + info.rows > table.num_rows()) {
    return Status::InvalidArgument(
        "ingest journal holds rows the table does not (journal covers up "
        "to row " +
        std::to_string(info.base_rows + info.rows) + ", table has " +
        std::to_string(table.num_rows()) + "); Replay() it first");
  }
  if (info.truncated) {
    // Drop the torn tail record so appends resume on a record boundary.
    std::filesystem::resize_file(path,
                                 static_cast<uintmax_t>(info.valid_end), ec);
    if (ec) {
      return Status::IOError("cannot truncate torn tail of '" + path +
                             "': " + ec.message());
    }
  }
  journal->base_rows_ = info.base_rows;
  journal->journaled_rows_ = info.rows;
  journal->out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!journal->out_) {
    return Status::IOError("cannot open '" + path + "' for appending");
  }
  journal->out_.seekp(info.valid_end);
  return journal;
}

Result<JournalReplayStats> IngestJournal::Replay(const std::string& path,
                                                 Table* table) {
  JournalReplayStats stats;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return stats;  // nothing to do

  // Validation pass first: no row may land in the table before the
  // header (schema + base row count) is known to fit it.
  ScanInfo info;
  TABULA_RETURN_NOT_OK(ScanJournal(path, &info, nullptr));
  TABULA_RETURN_NOT_OK(ValidateSchemaMatch(info.fields, table->schema()));
  if (info.base_rows > table->num_rows()) {
    return Status::InvalidArgument(
        "ingest journal starts at row " + std::to_string(info.base_rows) +
        " but the table only has " + std::to_string(table->num_rows()) +
        " base rows");
  }

  ScanInfo apply_info;
  uint64_t next_row = 0;  // journal-relative index of the next batch row
  TABULA_RETURN_NOT_OK(ScanJournal(
      path, &apply_info, [&](const std::vector<std::vector<Value>>& batch) {
        for (const auto& row : batch) {
          const uint64_t absolute = info.base_rows + next_row;
          ++next_row;
          if (absolute < table->num_rows()) continue;  // already applied
          TABULA_RETURN_NOT_OK(table->AppendRow(row));
          ++stats.appended_rows;
        }
        return Status::OK();
      }));
  stats.batches = info.batches;
  stats.rows = info.rows;
  stats.truncated_tail = info.truncated;
  return stats;
}

Status IngestJournal::AppendBatch(
    const std::vector<std::vector<Value>>& rows) {
  if (!out_.is_open()) {
    return Status::Internal("ingest journal is not open");
  }
  const std::streamoff start = out_.tellp();
  auto rollback = [&]() {
    // Truncate the partial record back off so the file still ends on a
    // record boundary; reopen positioned at that boundary.
    out_.close();
    std::error_code ec;
    std::filesystem::resize_file(path_, static_cast<uintmax_t>(start), ec);
    out_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
    if (out_) out_.seekp(start);
  };

  // Serialize the whole record into memory first: one stream write
  // instead of one per value, and the fault seam below then precedes
  // every byte that could reach the file.
  BufferWriter w;
  w.WriteU32(kBatchMarker);
  w.WriteU64(rows.size());
  Fnv fnv;
  fnv.Mix(rows.size());
  for (const auto& row : rows) {
    for (size_t c = 0; c < fields_.size(); ++c) {
      const Value& v = row[c];
      switch (fields_[c].second) {
        case DataType::kCategorical:
          w.WriteString(v.AsString());
          fnv.MixString(v.AsString());
          break;
        case DataType::kInt64:
          w.WriteU64(static_cast<uint64_t>(v.AsInt64()));
          fnv.Mix(static_cast<uint64_t>(v.AsInt64()));
          break;
        case DataType::kDouble:
          w.WriteDouble(v.AsDouble());
          fnv.MixDouble(v.AsDouble());
          break;
      }
    }
  }
  w.WriteU64(fnv.value());

  // Fault seam: a journal write that "fails" after the bytes were
  // buffered — the rollback must leave the journal at its pre-batch
  // state, which is what the mid-batch-atomicity regression tests pin.
  Status injected = Status::OK();
  if (FaultInjector::AnyArmed()) {
    try {
      injected = FaultInjector::Global().Hit("ingest.journal.write");
    } catch (...) {
      rollback();
      throw;
    }
  }
  if (!injected.ok()) {
    rollback();
    return injected;
  }

  out_.write(w.data(), static_cast<std::streamsize>(w.size()));
  out_.flush();
  if (!out_) {
    rollback();
    return Status::IOError("journal write failed for '" + path_ + "'");
  }
  journaled_rows_ += rows.size();
  return Status::OK();
}

Status IngestJournal::Reset(uint64_t base_rows) {
  if (out_.is_open()) out_.close();
  return WriteHeader(base_rows);
}

}  // namespace tabula

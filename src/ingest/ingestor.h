#ifndef TABULA_INGEST_INGESTOR_H_
#define TABULA_INGEST_INGESTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "common/writer_priority_mutex.h"
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "core/query_engine.h"
#include "ingest/ingest_journal.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "storage/table.h"

namespace tabula {

class QueryServer;

/// Configuration of an Ingestor.
struct IngestorOptions {
  /// WAL path; each accepted batch is journaled here before it touches
  /// the base table. Empty disables journaling (tests, benchmarks).
  std::string journal_path;
  /// When true, maintenance cycles run on ThreadPool::Global() in the
  /// background and Append() returns as soon as the rows are durable
  /// and appended; queries served meanwhile carry `stale = true` until
  /// the cycle commits. When false, Append() runs the cycle inline —
  /// fully deterministic, which the soak/diff harnesses rely on.
  bool async = false;
  /// Serving front-end whose engine lock must guard table mutation and
  /// the exclusive ingest phases. When null the Ingestor uses a private
  /// lock (engine-only deployments, tests).
  QueryServer* server = nullptr;
  /// Optional tracer for `ingest.append` / `ingest.apply` spans.
  Tracer* tracer = nullptr;
};

/// \brief Streaming ingestion front-end for a sampling-cube engine.
///
/// Accepts row batches, makes them durable (IngestJournal), appends
/// them to the base table, and drives the engine's four-phase
/// incremental-maintenance protocol (PlanIngest → BeginIngest →
/// ExecuteIngest → CommitIngest) so the cube catches up while queries
/// keep being served. Between an append and the cycle's commit the
/// engine answers from the freshest committed cube state with
/// `QueryResponse.result.stale` tagging the cells the pending rows will
/// change — the dashboard gets an immediate, honestly-labelled answer
/// instead of blocking on maintenance (the paper's progressive-answer
/// contract).
///
/// Failure atomicity: a batch rejected at validation, at the
/// `ingest.route` seam, or by the journal leaves table, journal and
/// cube exactly as before. A maintenance-cycle failure (seams
/// `ingest.merge` / `ingest.resample`, or an engine error) abandons the
/// staged cycle with the cube generation unchanged; the appended rows
/// stay pending and a later cycle (or Drain()) converges once the cause
/// clears.
///
/// Thread-safety: Append()/RunCycle()/Drain() may be called from any
/// thread; cycles are serialized internally. Queries must go through
/// the owning QueryServer (options.server) or, engine-only, through
/// Query() under the caller's own discipline — the Ingestor takes the
/// server's engine lock for every table mutation and exclusive phase.
class Ingestor {
 public:
  /// Creates an Ingestor over `engine` and its base `table` (the caller
  /// keeps ownership of both; `table` must be the engine's base table).
  /// Opens/creates the journal when `options.journal_path` is set — an
  /// existing journal must already be replayed into `table` (see
  /// IngestJournal::Replay).
  static Result<std::unique_ptr<Ingestor>> Make(QueryEngine* engine,
                                                Table* table,
                                                IngestorOptions options = {});

  ~Ingestor();

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Accepts one batch: validates every row against the table schema
  /// (whole batch rejected on any mismatch), journals it, appends the
  /// rows under the engine's exclusive lock, and schedules (async) or
  /// runs (sync) a maintenance cycle. In sync mode the cycle's status
  /// is returned — on a cycle error the rows are already appended and
  /// durable, only the cube lags.
  Status Append(const std::vector<std::vector<Value>>& rows);

  /// Runs one maintenance cycle (Plan → Begin → Execute → Commit) if
  /// rows are pending. No-op success when the cube is already caught up.
  Status RunCycle();

  /// Runs cycles until no rows are pending. Returns the first error.
  Status Drain();

  /// Rows appended to the table that the cube has not folded in yet.
  size_t PendingRows() const;

  /// Batches accepted so far (validated + journaled + appended).
  uint64_t batches_accepted() const {
    return batches_accepted_.load(std::memory_order_relaxed);
  }

  /// Ingestion metrics: counters `ingest_batches_total`,
  /// `ingest_rows_total`, `ingest_commits_total`,
  /// `ingest_failures_total`; gauge `ingest_pending_rows`; histogram
  /// `ingest_refresh_lag` (append → covering commit, the freshness lag
  /// a dashboard observes).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The write-ahead journal (nullptr when journaling is disabled).
  IngestJournal* journal() { return journal_.get(); }

 private:
  Ingestor(QueryEngine* engine, Table* table, IngestorOptions options);

  Status ValidateBatch(const std::vector<std::vector<Value>>& rows) const;

  /// Runs `fn` under the engine's shared (read) lock.
  void WithShared(const std::function<void()>& fn) const;
  /// Runs `fn` under the engine's exclusive lock; when fronted by a
  /// QueryServer this also fences its result cache and wakes freshness
  /// waiters (see QueryServer::MutateExclusive).
  void WithExclusive(const std::function<void()>& fn) const;

  /// Schedules the background worker unless one is already running.
  void ScheduleWorker();
  void WorkerLoop();

  /// Pops refresh-lag entries covered by a commit up to `target_rows`.
  void SettleLag(uint64_t target_rows);

  QueryEngine* engine_;
  Table* table_;
  IngestorOptions options_;
  std::unique_ptr<IngestJournal> journal_;

  /// Engine lock when no QueryServer fronts it (see WithShared).
  mutable WriterPrioritySharedMutex mu_;
  /// Serializes maintenance cycles (at most one plan in flight).
  std::mutex cycle_mu_;
  /// Serializes Append() batches (journal order = table order).
  std::mutex append_mu_;

  mutable MetricsRegistry metrics_;
  std::atomic<uint64_t> batches_accepted_{0};

  /// One entry per accepted batch, popped when a commit covers it.
  struct LagEntry {
    uint64_t row_end = 0;  ///< table row count right after the append
    Stopwatch since;       ///< started at append time
  };
  std::mutex lag_mu_;
  std::deque<LagEntry> lag_entries_;

  /// Background-worker state (async mode).
  std::atomic<bool> worker_active_{false};
  std::atomic<bool> stopping_{false};
  std::mutex futures_mu_;
  std::vector<std::future<void>> worker_futures_;
};

}  // namespace tabula

#endif  // TABULA_INGEST_INGESTOR_H_

#include "ingest/ingestor.h"

#include <algorithm>
#include <utility>

#include "serve/query_server.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {

/// Runs the named fault seam inside a lambda (where TABULA_FAULT_POINT's
/// early return would only leave the lambda).
Status HitSeam(std::string_view point) {
  if (!FaultInjector::AnyArmed()) return Status::OK();
  return FaultInjector::Global().Hit(point);
}

}  // namespace

Ingestor::Ingestor(QueryEngine* engine, Table* table, IngestorOptions options)
    : engine_(engine), table_(table), options_(std::move(options)) {}

Result<std::unique_ptr<Ingestor>> Ingestor::Make(QueryEngine* engine,
                                                 Table* table,
                                                 IngestorOptions options) {
  if (engine == nullptr || table == nullptr) {
    return Status::InvalidArgument("Ingestor needs an engine and its table");
  }
  if (&engine->base_table() != table) {
    return Status::InvalidArgument(
        "Ingestor table must be the engine's base table");
  }
  auto ingestor =
      std::unique_ptr<Ingestor>(new Ingestor(engine, table, options));
  if (!ingestor->options_.journal_path.empty()) {
    TABULA_ASSIGN_OR_RETURN(
        ingestor->journal_,
        IngestJournal::Open(ingestor->options_.journal_path, *table));
  }
  return ingestor;
}

Ingestor::~Ingestor() {
  stopping_.store(true, std::memory_order_relaxed);
  std::vector<std::future<void>> futures;
  {
    std::lock_guard<std::mutex> lock(futures_mu_);
    futures.swap(worker_futures_);
  }
  for (auto& f : futures) {
    if (f.valid()) f.wait();
  }
}

void Ingestor::WithShared(const std::function<void()>& fn) const {
  if (options_.server != nullptr) {
    options_.server->ReadShared(fn);
    return;
  }
  std::shared_lock<WriterPrioritySharedMutex> lock(mu_);
  fn();
}

void Ingestor::WithExclusive(const std::function<void()>& fn) const {
  if (options_.server != nullptr) {
    options_.server->MutateExclusive(fn);
    return;
  }
  std::unique_lock<WriterPrioritySharedMutex> lock(mu_);
  fn();
}

Status Ingestor::ValidateBatch(
    const std::vector<std::vector<Value>>& rows) const {
  const Schema& schema = table_->schema();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "batch row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, schema has " +
          std::to_string(schema.num_fields()) + " columns");
    }
    for (size_t c = 0; c < rows[r].size(); ++c) {
      const Value& v = rows[r][c];
      bool ok = false;
      switch (schema.field(c).type) {
        case DataType::kCategorical:
          ok = v.is_string();
          break;
        case DataType::kInt64:
          ok = v.is_int64();
          break;
        case DataType::kDouble:
          ok = v.is_double() || v.is_int64();
          break;
      }
      if (!ok) {
        return Status::TypeMismatch(
            "batch row " + std::to_string(r) + " column '" +
            schema.field(c).name + "' (" +
            DataTypeName(schema.field(c).type) +
            ") cannot hold " + v.ToString());
      }
    }
  }
  return Status::OK();
}

Status Ingestor::Append(const std::vector<std::vector<Value>>& rows) {
  if (rows.empty()) return Status::OK();
  std::lock_guard<std::mutex> append_lock(append_mu_);

  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("ingest.append");
    span.SetAttribute("rows", rows.size());
  }

  // Whole-batch validation BEFORE any side effect: a batch either lands
  // completely (journal + table) or not at all.
  Status st = ValidateBatch(rows);
  if (st.ok()) st = HitSeam("ingest.route");
  if (st.ok() && journal_ != nullptr) st = journal_->AppendBatch(rows);
  if (!st.ok()) {
    metrics_.counter("ingest_failures_total").Increment();
    if (span.recording()) span.SetAttribute("error", st.ToString());
    return st;
  }

  uint64_t row_end = 0;
  WithExclusive([&] {
    // Cannot fail after ValidateBatch (it mirrors AppendValue's
    // checks); a failure here would leave a partial batch, so surface
    // loudly.
    st = table_->AppendRows(rows);
    row_end = table_->num_rows();
  });
  if (!st.ok()) {
    metrics_.counter("ingest_failures_total").Increment();
    return Status::Internal("base-table append failed mid-batch: " +
                            st.ToString());
  }

  batches_accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics_.counter("ingest_batches_total").Increment();
  metrics_.counter("ingest_rows_total").Increment(rows.size());
  metrics_.gauge("ingest_pending_rows").Increment(
      static_cast<int64_t>(rows.size()));
  {
    std::lock_guard<std::mutex> lag_lock(lag_mu_);
    lag_entries_.push_back(LagEntry{row_end, Stopwatch()});
  }

  if (stopping_.load(std::memory_order_relaxed)) return Status::OK();
  if (options_.async) {
    ScheduleWorker();
    return Status::OK();
  }
  return RunCycle();
}

Status Ingestor::RunCycle() {
  std::lock_guard<std::mutex> cycle_lock(cycle_mu_);

  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("ingest.apply");
  }

  Status st;
  std::unique_ptr<QueryEngine::IngestPlan> plan;
  // Plan under a shared lock: classification is the slow part and must
  // not block readers.
  WithShared([&] {
    st = HitSeam("ingest.merge");
    if (!st.ok()) return;
    auto planned = engine_->PlanIngest();
    if (!planned.ok()) {
      st = planned.status();
      return;
    }
    plan = std::move(planned).value();
  });
  if (!st.ok()) {
    metrics_.counter("ingest_failures_total").Increment();
    if (span.recording()) span.SetAttribute("error", st.ToString());
    return st;
  }
  if (plan->no_op) return Status::OK();

  // Publish the dirty set (quick, exclusive): from here until commit,
  // answers for the touched cells carry `stale = true`.
  WithExclusive([&] { engine_->BeginIngest(plan.get()); });

  // Re-sample / re-merge under a shared lock — queries keep serving the
  // previous generation while the staged state is built.
  WithShared([&] {
    st = HitSeam("ingest.resample");
    if (!st.ok()) return;
    st = engine_->ExecuteIngest(plan.get());
  });
  if (!st.ok()) {
    // Abandoning the plan leaves the generation — and every served
    // answer — unchanged; the dirty set stays published (conservative).
    metrics_.counter("ingest_failures_total").Increment();
    if (span.recording()) span.SetAttribute("error", st.ToString());
    return st;
  }

  const uint64_t target_rows = plan->target_rows;
  QueryEngine::RefreshStats stats;
  WithExclusive([&] { st = engine_->CommitIngest(std::move(plan), &stats); });
  if (!st.ok()) {
    metrics_.counter("ingest_failures_total").Increment();
    if (span.recording()) span.SetAttribute("error", st.ToString());
    return st;
  }

  metrics_.counter("ingest_commits_total").Increment();
  metrics_.gauge("ingest_pending_rows").Decrement(
      static_cast<int64_t>(stats.new_rows));
  SettleLag(target_rows);
  if (span.recording()) {
    span.SetAttribute("new_rows", stats.new_rows);
    span.SetAttribute("full_rebuild", stats.full_rebuild);
    span.SetAttribute("resampled_cells", stats.resampled_cells);
  }
  return Status::OK();
}

Status Ingestor::Drain() {
  while (true) {
    if (PendingRows() == 0) return Status::OK();
    TABULA_RETURN_NOT_OK(RunCycle());
  }
}

size_t Ingestor::PendingRows() const {
  size_t pending = 0;
  WithShared([&] { pending = engine_->PendingIngestRows(); });
  return pending;
}

void Ingestor::ScheduleWorker() {
  if (stopping_.load(std::memory_order_relaxed)) return;
  bool expected = false;
  if (!worker_active_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(futures_mu_);
  // Prune futures of workers that already finished.
  worker_futures_.erase(
      std::remove_if(worker_futures_.begin(), worker_futures_.end(),
                     [](std::future<void>& f) {
                       return !f.valid() ||
                              f.wait_for(std::chrono::seconds(0)) ==
                                  std::future_status::ready;
                     }),
      worker_futures_.end());
  // A dedicated thread, NOT ThreadPool::Global(): the maintenance
  // phases fan work out onto the global pool and wait for it — run from
  // a pool worker that wait would deadlock a single-thread pool.
  worker_futures_.push_back(
      std::async(std::launch::async, [this] { WorkerLoop(); }));
}

void Ingestor::WorkerLoop() {
  bool clean = true;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (PendingRows() == 0) break;
    Status st = RunCycle();
    if (!st.ok()) {
      // Back off instead of spinning against a persistent failure; the
      // next Append() schedules a fresh worker once the cause clears.
      clean = false;
      break;
    }
  }
  worker_active_.store(false, std::memory_order_relaxed);
  // Close the schedule race: rows appended after the loop's last check
  // but before the flag flip would otherwise never get a worker.
  if (clean && !stopping_.load(std::memory_order_relaxed) &&
      PendingRows() > 0) {
    ScheduleWorker();
  }
}

void Ingestor::SettleLag(uint64_t target_rows) {
  std::lock_guard<std::mutex> lock(lag_mu_);
  while (!lag_entries_.empty() && lag_entries_.front().row_end <= target_rows) {
    metrics_.histogram("ingest_refresh_lag")
        .RecordMillis(lag_entries_.front().since.ElapsedMillis());
    lag_entries_.pop_front();
  }
}

}  // namespace tabula

#include "loss/regression_loss.h"

#include <cmath>

namespace tabula {

namespace {

double AngleDiff(const RegressionAggState& raw, const RegressionAggState& sam,
                 bool sample_empty) {
  if (sample_empty) return kInfiniteLoss;
  return std::abs(raw.AngleDegrees() - sam.AngleDegrees());
}

class RegressionBoundLoss final : public BoundLoss {
 public:
  RegressionBoundLoss(const DoubleColumn* x_col, const DoubleColumn* y_col,
                      RegressionAggState ref_state, bool ref_empty)
      : x_col_(x_col),
        y_col_(y_col),
        ref_state_(ref_state),
        ref_empty_(ref_empty) {}

  void Accumulate(LossState* state, RowId row) const override {
    state->reg.Add(x_col_->At(row), y_col_->At(row));
  }

  double Finalize(const LossState& state) const override {
    if (state.reg.n == 0) return 0.0;  // empty cell
    return AngleDiff(state.reg, ref_state_, ref_empty_);
  }

 private:
  const DoubleColumn* x_col_;
  const DoubleColumn* y_col_;
  RegressionAggState ref_state_;
  bool ref_empty_;
};

class RegressionGreedyEvaluator final : public GreedyLossEvaluator {
 public:
  RegressionGreedyEvaluator(const DatasetView& raw, const DoubleColumn* x_col,
                            const DoubleColumn* y_col)
      : raw_(raw), x_col_(x_col), y_col_(y_col) {
    for (size_t i = 0; i < raw.size(); ++i) {
      RowId r = raw.row(i);
      raw_state_.Add(x_col_->At(r), y_col_->At(r));
    }
  }

  double CurrentLoss() const override {
    return AngleDiff(raw_state_, chosen_, chosen_.n == 0);
  }

  double LossWithCandidate(size_t candidate) const override {
    RowId r = raw_.row(candidate);
    RegressionAggState next = chosen_;
    next.Add(x_col_->At(r), y_col_->At(r));
    return AngleDiff(raw_state_, next, false);
  }

  void Add(size_t candidate) override {
    RowId r = raw_.row(candidate);
    chosen_.Add(x_col_->At(r), y_col_->At(r));
  }

  size_t raw_size() const override { return raw_.size(); }

 private:
  DatasetView raw_;
  const DoubleColumn* x_col_;
  const DoubleColumn* y_col_;
  RegressionAggState raw_state_;
  RegressionAggState chosen_;
};

}  // namespace

Result<std::pair<const DoubleColumn*, const DoubleColumn*>>
RegressionLoss::Columns(const Table& table) const {
  TABULA_ASSIGN_OR_RETURN(const Column* xc, table.ColumnByName(x_));
  TABULA_ASSIGN_OR_RETURN(const Column* yc, table.ColumnByName(y_));
  const auto* x_col = xc->As<DoubleColumn>();
  const auto* y_col = yc->As<DoubleColumn>();
  if (x_col == nullptr || y_col == nullptr) {
    return Status::TypeMismatch(
        "regression_loss columns must be DOUBLE (got '" + x_ + "', '" + y_ +
        "')");
  }
  return std::make_pair(x_col, y_col);
}

Result<std::unique_ptr<BoundLoss>> RegressionLoss::Bind(
    const Table& table, const DatasetView& ref) const {
  TABULA_ASSIGN_OR_RETURN(auto cols, Columns(table));
  RegressionAggState ref_state;
  for (size_t i = 0; i < ref.size(); ++i) {
    RowId r = ref.row(i);
    ref_state.Add(cols.first->At(r), cols.second->At(r));
  }
  return std::unique_ptr<BoundLoss>(std::make_unique<RegressionBoundLoss>(
      cols.first, cols.second, ref_state, ref_state.n == 0));
}

Result<double> RegressionLoss::Loss(const DatasetView& raw,
                                    const DatasetView& sample) const {
  if (raw.table() == nullptr) {
    return Status::InvalidArgument("raw view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(auto cols, Columns(*raw.table()));
  RegressionAggState raw_state;
  for (size_t i = 0; i < raw.size(); ++i) {
    RowId r = raw.row(i);
    raw_state.Add(cols.first->At(r), cols.second->At(r));
  }
  RegressionAggState sam_state;
  for (size_t i = 0; i < sample.size(); ++i) {
    RowId r = sample.row(i);
    sam_state.Add(cols.first->At(r), cols.second->At(r));
  }
  if (raw_state.n == 0) return 0.0;
  return AngleDiff(raw_state, sam_state, sam_state.n == 0);
}

std::vector<double> RegressionLoss::Signature(const DatasetView& view) const {
  if (view.table() == nullptr || view.empty()) return {0.0};
  auto cols = Columns(*view.table());
  if (!cols.ok()) return {0.0};
  RegressionAggState state;
  for (size_t i = 0; i < view.size(); ++i) {
    RowId r = view.row(i);
    state.Add(cols.value().first->At(r), cols.value().second->At(r));
  }
  return {state.AngleDegrees()};
}

Result<std::unique_ptr<GreedyLossEvaluator>>
RegressionLoss::MakeGreedyEvaluator(const DatasetView& raw) const {
  if (raw.table() == nullptr) {
    return Status::InvalidArgument("raw view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(auto cols, Columns(*raw.table()));
  return std::unique_ptr<GreedyLossEvaluator>(
      std::make_unique<RegressionGreedyEvaluator>(raw, cols.first,
                                                  cols.second));
}

}  // namespace tabula

#ifndef TABULA_LOSS_MEAN_LOSS_H_
#define TABULA_LOSS_MEAN_LOSS_H_

#include <string>

#include "loss/loss_function.h"

namespace tabula {

/// \brief Statistical-mean accuracy loss (paper Function 1):
///
///   loss(Raw, Sam) = ABS((AVG(Raw) − AVG(Sam)) / AVG(Raw))
///
/// The relative error between the sample mean and the raw mean of the
/// target attribute. Degenerate raw means (|AVG(Raw)| < epsilon) yield a
/// loss of 0 when the sample mean matches and +inf otherwise, so empty or
/// zero-mean cells never silently pass the threshold.
class MeanLoss final : public LossFunction {
 public:
  /// \param target_column numeric attribute the analysis averages
  ///        (fare_amount in the paper's experiments).
  explicit MeanLoss(std::string target_column)
      : target_(std::move(target_column)) {}

  std::string name() const override { return "mean_loss"; }
  Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const override;
  Result<double> Loss(const DatasetView& raw,
                      const DatasetView& sample) const override;
  Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const override;
  std::vector<std::string> InputColumns() const override { return {target_}; }
  std::vector<double> Signature(const DatasetView& view) const override;

  /// Shared formula so all evaluation paths agree exactly.
  static double RelativeMeanError(double raw_avg, double sample_avg,
                                  bool sample_empty);

 private:
  Result<const DoubleColumn*> TargetColumn(const Table& table) const;

  std::string target_;
};

}  // namespace tabula

#endif  // TABULA_LOSS_MEAN_LOSS_H_

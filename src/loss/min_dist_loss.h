#ifndef TABULA_LOSS_MIN_DIST_LOSS_H_
#define TABULA_LOSS_MIN_DIST_LOSS_H_

#include <memory>
#include <string>
#include <vector>

#include "loss/loss_function.h"
#include "loss/spatial.h"

namespace tabula {

/// \brief Visualization-aware accuracy loss (paper Function 2, from
/// VAS/POIsam):
///
///   loss(Raw, Sam) = (1/|Raw|) Σ_{x∈Raw} MIN_{s∈Sam} dist(x, s)
///
/// The average distance from each raw tuple to its nearest sample tuple.
/// Instantiated in 2-D over (x, y) pickup coordinates it is the paper's
/// *geospatial heat-map-aware* loss; in 1-D over a numeric attribute it is
/// the *histogram-aware* loss (Section V "User defined accuracy loss
/// functions").
///
/// The greedy gain of adding a tuple is a facility-location objective and
/// hence submodular, which is what justifies POIsam's lazy-forward
/// acceleration (SubmodularGain() == true).
class MinDistLoss final : public LossFunction {
 public:
  /// \param name        registry name ("heatmap_loss" / "histogram_loss").
  /// \param coord_columns one (1-D) or two (2-D) DOUBLE columns.
  /// \param metric      distance metric between tuples.
  MinDistLoss(std::string name, std::vector<std::string> coord_columns,
              DistanceMetric metric = DistanceMetric::kEuclidean);

  std::string name() const override { return name_; }
  Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const override;
  Result<double> Loss(const DatasetView& raw,
                      const DatasetView& sample) const override;
  Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const override;
  bool SubmodularGain() const override { return true; }
  /// Avg-min-distance is a row-weighted average of per-slice averages,
  /// and each tuple's min-distance only shrinks as the sample grows, so
  /// unioning per-slice θ-valid samples keeps the union within θ.
  bool UnionClosed() const override { return true; }
  /// ref_dist_sum is accumulated against the bound reference sample.
  bool StateDependsOnReference() const override { return true; }
  std::vector<std::string> InputColumns() const override { return columns_; }
  std::vector<double> Signature(const DatasetView& view) const override;

  DistanceMetric metric() const { return metric_; }

 private:
  /// Extracts the viewed rows as points (y = 0 for 1-D losses).
  Result<std::vector<Point>> ExtractPoints(const DatasetView& view) const;

  std::string name_;
  std::vector<std::string> columns_;
  DistanceMetric metric_;
};

/// The paper's geospatial heat-map-aware loss over pickup coordinates.
std::unique_ptr<LossFunction> MakeHeatmapLoss(
    const std::string& x_column, const std::string& y_column,
    DistanceMetric metric = DistanceMetric::kEuclidean);

/// The paper's histogram-aware loss over one numeric attribute
/// (fare_amount in the experiments; unit = US dollar).
std::unique_ptr<LossFunction> MakeHistogramLoss(const std::string& column);

}  // namespace tabula

#endif  // TABULA_LOSS_MIN_DIST_LOSS_H_

#ifndef TABULA_LOSS_LOSS_REGISTRY_H_
#define TABULA_LOSS_LOSS_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "loss/loss_function.h"
#include "loss/spatial.h"

namespace tabula {

/// Construction parameters of a registered loss. One flat struct covers
/// every built-in; factories read only the fields they need.
struct LossParams {
  /// Input column(s) of the loss, in the loss's own order (e.g. the
  /// heatmap loss takes {x_column, y_column}).
  std::vector<std::string> columns;
  /// Top-k cutoff (topk_loss only).
  uint32_t k = 10;
  /// Distance metric (heatmap_loss / histogram_loss only).
  DistanceMetric metric = DistanceMetric::kEuclidean;
};

/// Factory signature for RegisterLossFactory.
using LossFactory =
    std::function<Result<std::unique_ptr<LossFunction>>(const LossParams&)>;

/// \brief Central loss-function registry.
///
/// One name → instance mapping for the whole stack: benches, examples,
/// the SQL engine's SAMPLING path, and user code all construct losses
/// through MakeLossFunction instead of scattering constructor calls.
/// Built-ins (registered on first use):
///
///   name             columns                      extra params
///   mean_loss        {target}                     —
///   heatmap_loss     {x, y}                       metric
///   histogram_loss   {column}                     metric
///   regression_loss  {x, y}                       —
///   topk_loss        {target}                     k
///
/// Unknown names fail with kInvalidArgument naming the known set.
/// Pair the result with TabulaOptions::owned_loss to avoid the
/// raw-pointer lifetime footgun.
Result<std::unique_ptr<LossFunction>> MakeLossFunction(
    const std::string& name, const LossParams& params);

/// True when `name` (case-insensitive) resolves in the registry —
/// built-in or registered via RegisterLossFactory. Lets layered name
/// resolvers (e.g. the SQL engine, which also knows CREATE AGGREGATE
/// losses) decide whether to consult the registry without triggering
/// its kInvalidArgument.
bool IsRegisteredLossName(const std::string& name);

/// Registered names, sorted — the set quoted by error messages.
std::vector<std::string> RegisteredLossNames();

/// Extends the registry (e.g. a custom loss in user code or a test).
/// Fails with kAlreadyExists when the (case-insensitive) name is taken.
Status RegisterLossFactory(const std::string& name, LossFactory factory);

}  // namespace tabula

#endif  // TABULA_LOSS_LOSS_REGISTRY_H_

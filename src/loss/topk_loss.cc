#include "loss/topk_loss.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "loss/mean_loss.h"

namespace tabula {

namespace {

/// Inserts v into a descending top-k list in place.
void PushTopK(std::vector<double>* topk, double v, uint32_t k) {
  auto it = std::lower_bound(topk->begin(), topk->end(), v,
                             std::greater<double>());
  if (it == topk->end() && topk->size() >= k) return;
  topk->insert(it, v);
  if (topk->size() > k) topk->pop_back();
}

class TopKBoundLoss final : public BoundLoss {
 public:
  TopKBoundLoss(const DoubleColumn* col, uint32_t k, double ref_topk_avg,
                bool ref_empty)
      : col_(col), k_(k), ref_avg_(ref_topk_avg), ref_empty_(ref_empty) {}

  void Accumulate(LossState* state, RowId row) const override {
    state->topk_k = k_;
    state->num.Add(col_->At(row));  // count rides along
    PushTopK(&state->topk, col_->At(row), k_);
  }

  double Finalize(const LossState& state) const override {
    if (state.topk.empty()) return 0.0;  // empty cell
    return TopKLoss::RelativeTopKError(TopKLoss::TopKAvg(state.topk),
                                       ref_avg_, ref_empty_);
  }

 private:
  const DoubleColumn* col_;
  uint32_t k_;
  double ref_avg_;
  bool ref_empty_;
};

class TopKGreedyEvaluator final : public GreedyLossEvaluator {
 public:
  TopKGreedyEvaluator(const DatasetView& raw, const DoubleColumn* col,
                      uint32_t k)
      : raw_(raw), col_(col), k_(k) {
    for (size_t i = 0; i < raw.size(); ++i) {
      PushTopK(&raw_topk_, col_->At(raw.row(i)), k_);
    }
    raw_avg_ = TopKLoss::TopKAvg(raw_topk_);
  }

  double CurrentLoss() const override {
    if (chosen_topk_.empty()) return kInfiniteLoss;
    return TopKLoss::RelativeTopKError(raw_avg_,
                                       TopKLoss::TopKAvg(chosen_topk_),
                                       false);
  }

  double LossWithCandidate(size_t candidate) const override {
    std::vector<double> next = chosen_topk_;
    PushTopK(&next, col_->At(raw_.row(candidate)), k_);
    return TopKLoss::RelativeTopKError(raw_avg_, TopKLoss::TopKAvg(next),
                                       false);
  }

  void Add(size_t candidate) override {
    PushTopK(&chosen_topk_, col_->At(raw_.row(candidate)), k_);
  }

  size_t raw_size() const override { return raw_.size(); }

 private:
  DatasetView raw_;
  const DoubleColumn* col_;
  uint32_t k_;
  std::vector<double> raw_topk_;
  double raw_avg_ = 0.0;
  std::vector<double> chosen_topk_;
};

}  // namespace

double TopKLoss::TopKAvg(const std::vector<double>& topk_desc) {
  if (topk_desc.empty()) return 0.0;
  double sum = 0.0;
  for (double v : topk_desc) sum += v;
  return sum / static_cast<double>(topk_desc.size());
}

double TopKLoss::RelativeTopKError(double raw_avg, double sample_avg,
                                   bool sample_empty) {
  // Same degenerate handling as the mean loss.
  return MeanLoss::RelativeMeanError(raw_avg, sample_avg, sample_empty);
}

Result<const DoubleColumn*> TopKLoss::TargetColumn(const Table& table) const {
  TABULA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(target_));
  const auto* dcol = col->As<DoubleColumn>();
  if (dcol == nullptr) {
    return Status::TypeMismatch("topk_loss target '" + target_ +
                                "' must be a DOUBLE column");
  }
  return dcol;
}

Result<std::vector<double>> TopKLoss::TopKOf(const DatasetView& view) const {
  if (view.table() == nullptr) {
    return Status::InvalidArgument("view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col,
                          TargetColumn(*view.table()));
  std::vector<double> topk;
  for (size_t i = 0; i < view.size(); ++i) {
    PushTopK(&topk, col->At(view.row(i)), k_);
  }
  return topk;
}

Result<std::unique_ptr<BoundLoss>> TopKLoss::Bind(
    const Table& table, const DatasetView& ref) const {
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col, TargetColumn(table));
  TABULA_ASSIGN_OR_RETURN(std::vector<double> ref_topk, TopKOf(ref));
  return std::unique_ptr<BoundLoss>(std::make_unique<TopKBoundLoss>(
      col, k_, TopKAvg(ref_topk), ref_topk.empty()));
}

Result<double> TopKLoss::Loss(const DatasetView& raw,
                              const DatasetView& sample) const {
  TABULA_ASSIGN_OR_RETURN(std::vector<double> raw_topk, TopKOf(raw));
  TABULA_ASSIGN_OR_RETURN(std::vector<double> sam_topk, TopKOf(sample));
  if (raw_topk.empty()) return 0.0;
  return RelativeTopKError(TopKAvg(raw_topk), TopKAvg(sam_topk),
                           sam_topk.empty());
}

Result<std::unique_ptr<GreedyLossEvaluator>> TopKLoss::MakeGreedyEvaluator(
    const DatasetView& raw) const {
  if (raw.table() == nullptr) {
    return Status::InvalidArgument("raw view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col,
                          TargetColumn(*raw.table()));
  return std::unique_ptr<GreedyLossEvaluator>(
      std::make_unique<TopKGreedyEvaluator>(raw, col, k_));
}

std::vector<double> TopKLoss::Signature(const DatasetView& view) const {
  auto topk = TopKOf(view);
  if (!topk.ok()) return {0.0};
  return {TopKAvg(topk.value())};
}

}  // namespace tabula

#include "loss/spatial.h"

#include <algorithm>

#include "common/logging.h"

namespace tabula {

PointGrid::PointGrid(std::vector<Point> points, DistanceMetric metric)
    : points_(std::move(points)), metric_(metric) {
  TABULA_CHECK(!points_.empty());
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  min_x_ = std::numeric_limits<double>::infinity();
  min_y_ = std::numeric_limits<double>::infinity();
  for (const auto& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  // Aim for ~1 point per cell on average, clamped to a sane range.
  int target = static_cast<int>(std::sqrt(static_cast<double>(points_.size())));
  nx_ = ny_ = std::clamp(target, 1, 256);
  double w = max_x - min_x_;
  double h = max_y - min_y_;
  cell_w_ = w > 0 ? w / nx_ : 1.0;
  cell_h_ = h > 0 ? h / ny_ : 1.0;

  // Counting sort of points into cells.
  std::vector<uint32_t> counts(static_cast<size_t>(nx_) * ny_ + 1, 0);
  std::vector<int> cell_of(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    int cx = CellX(points_[i].x);
    int cy = CellY(points_[i].y);
    cell_of[i] = cy * nx_ + cx;
    ++counts[cell_of[i] + 1];
  }
  for (size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  order_.resize(points_.size());
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (size_t i = 0; i < points_.size(); ++i) {
    order_[cursor[cell_of[i]]++] = static_cast<uint32_t>(i);
  }
  cells_.resize(static_cast<size_t>(nx_) * ny_);
  for (int c = 0; c < nx_ * ny_; ++c) {
    cells_[c] = {counts[c], counts[c + 1]};
  }
}

int PointGrid::CellX(double x) const {
  int c = static_cast<int>((x - min_x_) / cell_w_);
  return std::clamp(c, 0, nx_ - 1);
}

int PointGrid::CellY(double y) const {
  int c = static_cast<int>((y - min_y_) / cell_h_);
  return std::clamp(c, 0, ny_ - 1);
}

double PointGrid::NearestDistance(const Point& q) const {
  int qx = CellX(q.x);
  int qy = CellY(q.y);
  double best = std::numeric_limits<double>::infinity();
  int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is found, we must still search rings whose nearest
    // boundary could beat `best`; min cell size bounds the gain per ring.
    if (best < std::numeric_limits<double>::infinity()) {
      double ring_min_dist =
          (ring - 1) * std::min(cell_w_, cell_h_);
      if (ring_min_dist > best) break;
    }
    int x0 = qx - ring, x1 = qx + ring;
    int y0 = qy - ring, y1 = qy + ring;
    for (int cy = y0; cy <= y1; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int cx = x0; cx <= x1; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring's border cells (interior scanned by earlier rings).
        if (ring > 0 && cx != x0 && cx != x1 && cy != y0 && cy != y1) continue;
        const CellRange& range = cells_[cy * nx_ + cx];
        for (uint32_t i = range.begin; i < range.end; ++i) {
          best = std::min(best, Distance(metric_, q, points_[order_[i]]));
        }
      }
    }
  }
  return best;
}

}  // namespace tabula

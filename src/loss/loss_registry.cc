#include "loss/loss_registry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "common/string_util.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "loss/regression_loss.h"
#include "loss/topk_loss.h"

namespace tabula {

namespace {

/// Validates params.columns cardinality with a uniform message.
Status NeedColumns(const std::string& name, const LossParams& params,
                   size_t n) {
  if (params.columns.size() != n) {
    return Status::InvalidArgument(
        "loss '" + name + "' expects " + std::to_string(n) +
        " input column(s), got " + std::to_string(params.columns.size()));
  }
  return Status::OK();
}

/// The registry: lowercase name → factory. std::map keeps
/// RegisteredLossNames() sorted for free. Guarded by RegistryMutex().
std::map<std::string, LossFactory>& Registry() {
  static auto* registry = new std::map<std::string, LossFactory>{
      {"mean_loss",
       [](const LossParams& p) -> Result<std::unique_ptr<LossFunction>> {
         TABULA_RETURN_NOT_OK(NeedColumns("mean_loss", p, 1));
         return std::unique_ptr<LossFunction>(
             std::make_unique<MeanLoss>(p.columns[0]));
       }},
      {"heatmap_loss",
       [](const LossParams& p) -> Result<std::unique_ptr<LossFunction>> {
         TABULA_RETURN_NOT_OK(NeedColumns("heatmap_loss", p, 2));
         return MakeHeatmapLoss(p.columns[0], p.columns[1], p.metric);
       }},
      {"histogram_loss",
       [](const LossParams& p) -> Result<std::unique_ptr<LossFunction>> {
         TABULA_RETURN_NOT_OK(NeedColumns("histogram_loss", p, 1));
         return std::unique_ptr<LossFunction>(std::make_unique<MinDistLoss>(
             "histogram_loss", p.columns, p.metric));
       }},
      {"regression_loss",
       [](const LossParams& p) -> Result<std::unique_ptr<LossFunction>> {
         TABULA_RETURN_NOT_OK(NeedColumns("regression_loss", p, 2));
         return std::unique_ptr<LossFunction>(
             std::make_unique<RegressionLoss>(p.columns[0], p.columns[1]));
       }},
      {"topk_loss",
       [](const LossParams& p) -> Result<std::unique_ptr<LossFunction>> {
         TABULA_RETURN_NOT_OK(NeedColumns("topk_loss", p, 1));
         return std::unique_ptr<LossFunction>(
             std::make_unique<TopKLoss>(p.columns[0], p.k));
       }},
  };
  return *registry;
}

std::mutex& RegistryMutex() {
  static auto* mu = new std::mutex;
  return *mu;
}

}  // namespace

Result<std::unique_ptr<LossFunction>> MakeLossFunction(
    const std::string& name, const LossParams& params) {
  LossFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(ToLower(name));
    if (it != Registry().end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const auto& n : RegisteredLossNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::InvalidArgument("unknown loss function '" + name +
                                   "' (registered: " + known + ")");
  }
  return factory(params);
}

bool IsRegisteredLossName(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry().count(ToLower(name)) > 0;
}

std::vector<std::string> RegisteredLossNames() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, factory] : Registry()) names.push_back(name);
  return names;
}

Status RegisterLossFactory(const std::string& name, LossFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("loss name must be non-empty");
  }
  if (!factory) {
    return Status::InvalidArgument("loss factory must be callable");
  }
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto [it, inserted] = Registry().emplace(ToLower(name), std::move(factory));
  if (!inserted) {
    return Status::AlreadyExists("loss '" + name + "' is already registered");
  }
  return Status::OK();
}

}  // namespace tabula

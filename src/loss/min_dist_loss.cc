#include "loss/min_dist_loss.h"

#include <algorithm>

namespace tabula {

namespace {

class MinDistBoundLoss final : public BoundLoss {
 public:
  MinDistBoundLoss(const DoubleColumn* x_col, const DoubleColumn* y_col,
                   std::unique_ptr<PointGrid> ref_index)
      : x_col_(x_col), y_col_(y_col), ref_index_(std::move(ref_index)) {}

  void Accumulate(LossState* state, RowId row) const override {
    Point p{x_col_->At(row), y_col_ != nullptr ? y_col_->At(row) : 0.0};
    state->num.Add(p.x);  // count tracking rides along num.count
    if (ref_index_ != nullptr) {
      state->ref_dist_sum += ref_index_->NearestDistance(p);
    } else {
      state->ref_dist_sum = kInfiniteLoss;  // empty reference sample
    }
  }

  double Finalize(const LossState& state) const override {
    if (state.num.count == 0) return 0.0;  // empty cell: nothing to lose
    return state.ref_dist_sum / state.num.count;
  }

 private:
  const DoubleColumn* x_col_;
  const DoubleColumn* y_col_;
  std::unique_ptr<PointGrid> ref_index_;
};

/// Incremental facility-location evaluator with a spatial-grid pruning
/// index: a candidate c can only improve raw tuples whose current
/// min-distance exceeds dist(tuple, c), and every current min-distance is
/// bounded by radius_bound_, so evaluations only visit grid cells within
/// that (monotonically shrinking) radius of the candidate. Early rounds
/// touch everything; once the sample covers the cell, each round touches
/// a tiny neighborhood — the difference between O(k·N) and ~O(N) total.
class MinDistGreedyEvaluator final : public GreedyLossEvaluator {
 public:
  MinDistGreedyEvaluator(std::vector<Point> raw_points, DistanceMetric metric)
      : points_(std::move(raw_points)), metric_(metric) {
    // Initialize every tuple's min-distance to a value dominating all real
    // distances (bounding-box "diagonal") so the facility-location gain is
    // finite and submodular from the empty sample onward.
    min_x_ = min_y_ = kInfiniteLoss;
    double max_x = -kInfiniteLoss, max_y = -kInfiniteLoss;
    for (const auto& p : points_) {
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    double diag = points_.empty()
                      ? 1.0
                      : (max_x - min_x_) + (max_y - min_y_) + 1.0;
    cur_min_.assign(points_.size(), diag);
    cur_sum_ = diag * static_cast<double>(points_.size());
    radius_bound_ = diag;

    // Uniform grid over the bounding box (~1 point/cell, clamped).
    int target =
        static_cast<int>(std::sqrt(static_cast<double>(points_.size())));
    nx_ = ny_ = std::clamp(target, 1, 512);
    double w = max_x - min_x_;
    double h = max_y - min_y_;
    cell_w_ = w > 0 ? w / nx_ : 1.0;
    cell_h_ = h > 0 ? h / ny_ : 1.0;
    cells_.resize(static_cast<size_t>(nx_) * ny_);
    for (uint32_t i = 0; i < points_.size(); ++i) {
      cells_[CellOf(points_[i])].points.push_back(i);
    }
    for (auto& cell : cells_) {
      cell.bound = cell.points.empty() ? 0.0 : diag;
    }
  }

  double CurrentLoss() const override {
    if (chosen_count_ == 0) return kInfiniteLoss;
    return cur_sum_ / static_cast<double>(points_.size());
  }

  double InternalLoss() const override {
    if (points_.empty()) return 0.0;
    return cur_sum_ / static_cast<double>(points_.size());
  }

  double LossWithCandidate(size_t candidate) const override {
    const Point& c = points_[candidate];
    double gain = 0.0;
    VisitNeighborhood(c, [&](const GridCell& cell) {
      for (uint32_t i : cell.points) {
        double d = Distance(metric_, points_[i], c);
        if (d < cur_min_[i]) gain += cur_min_[i] - d;
      }
    });
    return (cur_sum_ - gain) / static_cast<double>(points_.size());
  }

  void Add(size_t candidate) override {
    const Point& c = points_[candidate];
    double gain = 0.0;
    VisitNeighborhood(c, [&](GridCell& cell) {
      double new_bound = 0.0;
      for (uint32_t i : cell.points) {
        double d = Distance(metric_, points_[i], c);
        if (d < cur_min_[i]) {
          gain += cur_min_[i] - d;
          cur_min_[i] = d;
        }
        new_bound = std::max(new_bound, cur_min_[i]);
      }
      cell.bound = new_bound;
    });
    cur_sum_ -= gain;
    ++chosen_count_;
    if (++adds_since_refresh_ >= 16) RefreshRadiusBound();
  }

  size_t raw_size() const override { return points_.size(); }

 private:
  struct GridCell {
    std::vector<uint32_t> points;
    /// Max cur_min_ among this cell's points (an upper bound maintained
    /// exactly on every Add that touches the cell).
    double bound = 0.0;
  };

  size_t CellOf(const Point& p) const {
    int cx = std::clamp(static_cast<int>((p.x - min_x_) / cell_w_), 0,
                        nx_ - 1);
    int cy = std::clamp(static_cast<int>((p.y - min_y_) / cell_h_), 0,
                        ny_ - 1);
    return static_cast<size_t>(cy) * nx_ + cx;
  }

  /// Invokes fn(cell) for every grid cell that could contain a point
  /// gaining from a facility at c. Two prunes stack: the global
  /// radius_bound_ (no cur_min_ exceeds it) trims the window, and each
  /// cell's own bound vs. its minimum distance to c skips well-covered
  /// cells. Both bounds dominate Chebyshev distance, which lower-bounds
  /// every supported metric.
  template <typename Fn>
  void VisitNeighborhood(const Point& c, const Fn& fn) const {
    int x0 = std::clamp(
        static_cast<int>((c.x - radius_bound_ - min_x_) / cell_w_), 0,
        nx_ - 1);
    int x1 = std::clamp(
        static_cast<int>((c.x + radius_bound_ - min_x_) / cell_w_), 0,
        nx_ - 1);
    int y0 = std::clamp(
        static_cast<int>((c.y - radius_bound_ - min_y_) / cell_h_), 0,
        ny_ - 1);
    int y1 = std::clamp(
        static_cast<int>((c.y + radius_bound_ - min_y_) / cell_h_), 0,
        ny_ - 1);
    for (int cy = y0; cy <= y1; ++cy) {
      // Chebyshev distance from c to the cell's y-band.
      double cell_lo_y = min_y_ + cy * cell_h_;
      double dy = std::max({cell_lo_y - c.y, c.y - (cell_lo_y + cell_h_),
                            0.0});
      for (int cx = x0; cx <= x1; ++cx) {
        auto& cell =
            const_cast<GridCell&>(cells_[static_cast<size_t>(cy) * nx_ + cx]);
        if (cell.points.empty()) continue;
        double cell_lo_x = min_x_ + cx * cell_w_;
        double dx = std::max({cell_lo_x - c.x, c.x - (cell_lo_x + cell_w_),
                              0.0});
        // No point in the cell can improve if even the closest corner is
        // beyond every point's current min-distance.
        if (std::max(dx, dy) >= cell.bound) continue;
        fn(cell);
      }
    }
  }

  void RefreshRadiusBound() {
    adds_since_refresh_ = 0;
    double r = 0.0;
    for (const auto& cell : cells_) r = std::max(r, cell.bound);
    radius_bound_ = r;
  }

  std::vector<Point> points_;
  DistanceMetric metric_;
  std::vector<double> cur_min_;
  double cur_sum_ = 0.0;
  size_t chosen_count_ = 0;
  double radius_bound_ = 0.0;
  size_t adds_since_refresh_ = 0;

  double min_x_ = 0.0, min_y_ = 0.0, cell_w_ = 1.0, cell_h_ = 1.0;
  int nx_ = 1, ny_ = 1;
  std::vector<GridCell> cells_;
};

}  // namespace

MinDistLoss::MinDistLoss(std::string name,
                         std::vector<std::string> coord_columns,
                         DistanceMetric metric)
    : name_(std::move(name)),
      columns_(std::move(coord_columns)),
      metric_(metric) {
  TABULA_CHECK(columns_.size() == 1 || columns_.size() == 2);
}

Result<std::vector<Point>> MinDistLoss::ExtractPoints(
    const DatasetView& view) const {
  if (view.table() == nullptr) {
    return Status::InvalidArgument("view has no table");
  }
  const Table& table = *view.table();
  TABULA_ASSIGN_OR_RETURN(const Column* xc, table.ColumnByName(columns_[0]));
  const auto* x_col = xc->As<DoubleColumn>();
  if (x_col == nullptr) {
    return Status::TypeMismatch(name_ + " coordinate '" + columns_[0] +
                                "' must be DOUBLE");
  }
  const DoubleColumn* y_col = nullptr;
  if (columns_.size() == 2) {
    TABULA_ASSIGN_OR_RETURN(const Column* yc, table.ColumnByName(columns_[1]));
    y_col = yc->As<DoubleColumn>();
    if (y_col == nullptr) {
      return Status::TypeMismatch(name_ + " coordinate '" + columns_[1] +
                                  "' must be DOUBLE");
    }
  }
  std::vector<Point> points(view.size());
  for (size_t i = 0; i < view.size(); ++i) {
    RowId r = view.row(i);
    points[i] = {x_col->At(r), y_col != nullptr ? y_col->At(r) : 0.0};
  }
  return points;
}

Result<std::unique_ptr<BoundLoss>> MinDistLoss::Bind(
    const Table& table, const DatasetView& ref) const {
  TABULA_ASSIGN_OR_RETURN(const Column* xc, table.ColumnByName(columns_[0]));
  const auto* x_col = xc->As<DoubleColumn>();
  if (x_col == nullptr) {
    return Status::TypeMismatch(name_ + " coordinate '" + columns_[0] +
                                "' must be DOUBLE");
  }
  const DoubleColumn* y_col = nullptr;
  if (columns_.size() == 2) {
    TABULA_ASSIGN_OR_RETURN(const Column* yc, table.ColumnByName(columns_[1]));
    y_col = yc->As<DoubleColumn>();
    if (y_col == nullptr) {
      return Status::TypeMismatch(name_ + " coordinate '" + columns_[1] +
                                  "' must be DOUBLE");
    }
  }
  std::unique_ptr<PointGrid> index;
  if (!ref.empty()) {
    TABULA_ASSIGN_OR_RETURN(std::vector<Point> ref_points,
                            ExtractPoints(ref));
    index = std::make_unique<PointGrid>(std::move(ref_points), metric_);
  }
  return std::unique_ptr<BoundLoss>(
      std::make_unique<MinDistBoundLoss>(x_col, y_col, std::move(index)));
}

Result<double> MinDistLoss::Loss(const DatasetView& raw,
                                 const DatasetView& sample) const {
  if (raw.empty()) return 0.0;
  if (sample.empty()) return kInfiniteLoss;
  TABULA_ASSIGN_OR_RETURN(std::vector<Point> sam_points,
                          ExtractPoints(sample));
  PointGrid index(std::move(sam_points), metric_);
  TABULA_ASSIGN_OR_RETURN(std::vector<Point> raw_points, ExtractPoints(raw));
  double sum = 0.0;
  for (const auto& p : raw_points) sum += index.NearestDistance(p);
  return sum / static_cast<double>(raw_points.size());
}

std::vector<double> MinDistLoss::Signature(const DatasetView& view) const {
  auto points = ExtractPoints(view);
  if (!points.ok() || points.value().empty()) return {0.0, 0.0};
  double sx = 0.0, sy = 0.0;
  for (const auto& p : points.value()) {
    sx += p.x;
    sy += p.y;
  }
  double n = static_cast<double>(points.value().size());
  return {sx / n, sy / n};
}

Result<std::unique_ptr<GreedyLossEvaluator>> MinDistLoss::MakeGreedyEvaluator(
    const DatasetView& raw) const {
  TABULA_ASSIGN_OR_RETURN(std::vector<Point> points, ExtractPoints(raw));
  return std::unique_ptr<GreedyLossEvaluator>(
      std::make_unique<MinDistGreedyEvaluator>(std::move(points), metric_));
}

std::unique_ptr<LossFunction> MakeHeatmapLoss(const std::string& x_column,
                                              const std::string& y_column,
                                              DistanceMetric metric) {
  return std::make_unique<MinDistLoss>(
      "heatmap_loss", std::vector<std::string>{x_column, y_column}, metric);
}

std::unique_ptr<LossFunction> MakeHistogramLoss(const std::string& column) {
  return std::make_unique<MinDistLoss>("histogram_loss",
                                       std::vector<std::string>{column},
                                       DistanceMetric::kEuclidean);
}

}  // namespace tabula

#ifndef TABULA_LOSS_LOSS_FUNCTION_H_
#define TABULA_LOSS_LOSS_FUNCTION_H_

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <vector>
#include <string>

#include "common/status.h"
#include "exec/aggregate.h"
#include "storage/table.h"

namespace tabula {

/// \brief Per-cell algebraic accumulator state for a loss function.
///
/// The paper requires accuracy loss functions to be *algebraic* (Section
/// II): the loss of any cube cell must be computable from a fixed-size,
/// mergeable state. This struct is the union of the states needed by the
/// built-in losses; each loss fills only the parts it reads. Merging is
/// what enables the dry-run stage to roll a single finest-cuboid GroupBy
/// up through the entire lattice.
struct LossState {
  /// Stats of the target attribute (mean / histogram losses).
  NumericAggState num;
  /// Stats of the (x, y) pair (regression loss).
  RegressionAggState reg;
  /// Σ over tuples of min-distance to the *fixed* reference sample
  /// (visualization-aware losses; distributive because the reference
  /// sample is constant during the dry run).
  double ref_dist_sum = 0.0;
  /// Largest values of the target attribute, descending, bounded by the
  /// loss's k (TOP-K losses; distributive: merging keeps the k largest).
  std::vector<double> topk;
  /// The k the accumulating loss uses (0 when unused); carried in the
  /// state so merges can cap correctly.
  uint32_t topk_k = 0;

  void Merge(const LossState& o) {
    num.Merge(o.num);
    reg.Merge(o.reg);
    ref_dist_sum += o.ref_dist_sum;
    topk_k = std::max(topk_k, o.topk_k);
    if (!o.topk.empty() || !topk.empty()) {
      std::vector<double> merged;
      merged.reserve(topk.size() + o.topk.size());
      merged.insert(merged.end(), topk.begin(), topk.end());
      merged.insert(merged.end(), o.topk.begin(), o.topk.end());
      std::sort(merged.begin(), merged.end(), std::greater<double>());
      if (topk_k > 0 && merged.size() > topk_k) merged.resize(topk_k);
      topk = std::move(merged);
    }
  }
};

/// \brief Loss function bound to a base table and a fixed reference sample.
///
/// Used by the dry-run stage: `Accumulate` folds one raw tuple into a
/// cell's LossState (thread-compatible: const, no shared mutation), and
/// `Finalize` yields loss(cell raw data, reference sample).
class BoundLoss {
 public:
  virtual ~BoundLoss() = default;
  virtual void Accumulate(LossState* state, RowId row) const = 0;
  virtual double Finalize(const LossState& state) const = 0;
};

/// \brief Incremental evaluator driving Algorithm 1 over one cell.
///
/// Candidates are indices into the raw DatasetView the evaluator was
/// created for. Implementations keep whatever running state makes
/// LossWithCandidate cheap (O(1) for mean/regression, O(|raw|) with a
/// cached min-distance array for visualization losses).
class GreedyLossEvaluator {
 public:
  virtual ~GreedyLossEvaluator() = default;

  /// loss(raw, chosen sample); +inf while the sample is empty and the loss
  /// is undefined for empty samples.
  virtual double CurrentLoss() const = 0;

  /// loss(raw, chosen sample + candidate) without committing.
  virtual double LossWithCandidate(size_t candidate) const = 0;

  /// Commits the candidate into the chosen sample.
  virtual void Add(size_t candidate) = 0;

  /// Number of raw tuples (== candidate id space).
  virtual size_t raw_size() const = 0;

  /// Loss value consistent with LossWithCandidate arithmetic. Equal to
  /// CurrentLoss() once the sample is non-empty; submodular losses return
  /// a *finite* surrogate for the empty sample (e.g. the bounding-box
  /// diagonal for min-distance losses) so that greedy gains
  /// (InternalLoss − LossWithCandidate) are well-defined from round one —
  /// a prerequisite for the lazy-forward heap.
  virtual double InternalLoss() const { return CurrentLoss(); }
};

/// \brief User-defined accuracy loss function (Section II).
///
/// A loss function is stateless and thread-safe; all evaluation state
/// lives in the objects it creates. Implementations must be algebraic in
/// the paper's sense — `Bind` + LossState::Merge encode exactly that
/// property.
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// Loss function name used in the SQL HAVING clause.
  virtual std::string name() const = 0;

  /// Binds to `table` with `ref` as the fixed reference sample (the global
  /// sample during cube initialization, a candidate representative sample
  /// during SamGraph construction).
  virtual Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const = 0;

  /// Direct evaluation of loss(raw, sample). Both views must be over the
  /// same base table.
  virtual Result<double> Loss(const DatasetView& raw,
                              const DatasetView& sample) const = 0;

  /// Creates the incremental evaluator for Algorithm 1 over `raw`.
  virtual Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const = 0;

  /// True when the greedy gain (CurrentLoss − LossWithCandidate) is
  /// monotone non-increasing as the sample grows, enabling POIsam's
  /// lazy-forward acceleration.
  virtual bool SubmodularGain() const { return false; }

  /// True when the loss is *union-closed*: for any partition of a cell's
  /// raw data into slices, loss(∪ slices, ∪ per-slice samples) ≤
  /// max over slices of loss(slice, its sample). Holds for losses that
  /// average a per-tuple penalty depending only on the tuple and the
  /// sample (e.g. avg-min-distance: each tuple's min-distance can only
  /// shrink when the sample grows, and the total is a row-weighted
  /// average of the per-slice averages). The sharded engine
  /// (src/shard/) then accepts a merged union sample without
  /// re-verification when every slice met θ locally. Ratio-of-aggregates
  /// losses (relative mean error) are NOT union-closed — a union of
  /// slice-accurate samples can misweight the slices.
  virtual bool UnionClosed() const { return false; }

  /// True when the LossState `Bind` accumulates depends on the bound
  /// reference sample (e.g. min-distance's ref_dist_sum). When false,
  /// the state summarizes the raw data alone, so
  /// Bind(table, candidate)->Finalize(state(raw)) equals
  /// Loss(raw, candidate) exactly — the sharded merge pass exploits
  /// this to re-verify merged samples from rolled-up states without
  /// re-scanning raw rows.
  virtual bool StateDependsOnReference() const { return false; }

  /// Columns this loss reads (target attribute(s)); used for validation.
  virtual std::vector<std::string> InputColumns() const = 0;

  /// \brief Cheap fixed-length summary of a dataset under this loss.
  ///
  /// The representative-sample-selection join (Section IV) ranks candidate
  /// representatives by signature proximity before running the exact loss
  /// check — the paper's "this join can be accelerated by any existing
  /// data similarity join algorithms". An empty signature disables
  /// ranking. Signatures are a pruning heuristic only; edges are always
  /// validated with the exact loss.
  virtual std::vector<double> Signature(const DatasetView& view) const {
    (void)view;
    return {};
  }
};

inline constexpr double kInfiniteLoss = std::numeric_limits<double>::infinity();

}  // namespace tabula

#endif  // TABULA_LOSS_LOSS_FUNCTION_H_

#ifndef TABULA_LOSS_SPATIAL_H_
#define TABULA_LOSS_SPATIAL_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace tabula {

/// 2-D point (normalized dashboard coordinates).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Distance metric for the visualization-aware loss (Section II lets the
/// user pick "Euclidean distance, Manhattan distance or any distance
/// metric").
enum class DistanceMetric { kEuclidean, kManhattan };

inline double Distance(DistanceMetric m, const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  if (m == DistanceMetric::kManhattan) return std::abs(dx) + std::abs(dy);
  return std::sqrt(dx * dx + dy * dy);
}

/// \brief Uniform-grid nearest-neighbor index over a point set.
///
/// The avg-min-distance loss evaluates min_{s in Sam} dist(x, s) for every
/// raw tuple x; a ring-expanding grid search makes that ~O(1) per query
/// for typical sample sizes instead of O(|Sam|).
class PointGrid {
 public:
  /// Builds an index over `points` (non-empty).
  PointGrid(std::vector<Point> points, DistanceMetric metric);

  /// Distance from q to the nearest indexed point.
  double NearestDistance(const Point& q) const;

  size_t size() const { return points_.size(); }

 private:
  struct CellRange {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  int CellX(double x) const;
  int CellY(double y) const;

  std::vector<Point> points_;
  DistanceMetric metric_;
  double min_x_, min_y_, cell_w_, cell_h_;
  int nx_, ny_;
  std::vector<uint32_t> order_;      // point indices sorted by cell
  std::vector<CellRange> cells_;     // per-cell slice of order_
};

}  // namespace tabula

#endif  // TABULA_LOSS_SPATIAL_H_

#ifndef TABULA_LOSS_REGRESSION_LOSS_H_
#define TABULA_LOSS_REGRESSION_LOSS_H_

#include <string>

#include "loss/loss_function.h"

namespace tabula {

/// \brief Linear-regression accuracy loss (paper Function 3):
///
///   loss(Raw, Sam) = ABS(angle(Raw) − angle(Sam))
///
/// where angle() is the least-squares regression-line slope converted to
/// degrees (Section II). The paper's experiments regress tip amount (y)
/// on fare amount (x).
class RegressionLoss final : public LossFunction {
 public:
  RegressionLoss(std::string x_column, std::string y_column)
      : x_(std::move(x_column)), y_(std::move(y_column)) {}

  std::string name() const override { return "regression_loss"; }
  Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const override;
  Result<double> Loss(const DatasetView& raw,
                      const DatasetView& sample) const override;
  Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const override;
  std::vector<std::string> InputColumns() const override { return {x_, y_}; }
  std::vector<double> Signature(const DatasetView& view) const override;

 private:
  Result<std::pair<const DoubleColumn*, const DoubleColumn*>> Columns(
      const Table& table) const;

  std::string x_;
  std::string y_;
};

}  // namespace tabula

#endif  // TABULA_LOSS_REGRESSION_LOSS_H_

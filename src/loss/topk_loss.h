#ifndef TABULA_LOSS_TOPK_LOSS_H_
#define TABULA_LOSS_TOPK_LOSS_H_

#include <string>
#include <vector>

#include "loss/loss_function.h"

namespace tabula {

/// \brief TOP-K accuracy loss.
///
/// The paper lists TOP-K among the distributive/algebraic aggregates a
/// user-defined loss may use (Section II) without evaluating one; this is
/// the natural instantiation:
///
///   loss(Raw, Sam) = ABS((TopKAvg(Raw) − TopKAvg(Sam)) / TopKAvg(Raw))
///
/// where TopKAvg is the mean of the k largest values of the target
/// attribute. A sample within θ preserves the dashboard's "top fares" /
/// "largest tips" style panels. TOP-K is distributive (merging two top-k
/// lists and re-trimming keeps the k largest), so the dry-run roll-up
/// applies unchanged; LossState::topk carries the list.
class TopKLoss final : public LossFunction {
 public:
  TopKLoss(std::string target_column, uint32_t k)
      : target_(std::move(target_column)), k_(k == 0 ? 1 : k) {}

  std::string name() const override {
    return "topk_loss_k" + std::to_string(k_);
  }
  Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const override;
  Result<double> Loss(const DatasetView& raw,
                      const DatasetView& sample) const override;
  Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const override;
  std::vector<std::string> InputColumns() const override { return {target_}; }
  std::vector<double> Signature(const DatasetView& view) const override;

  uint32_t k() const { return k_; }

  /// Mean of the (at most k) largest values in a descending-sorted list.
  static double TopKAvg(const std::vector<double>& topk_desc);
  /// The shared formula (relative error; +inf for empty samples).
  static double RelativeTopKError(double raw_avg, double sample_avg,
                                  bool sample_empty);

 private:
  Result<const DoubleColumn*> TargetColumn(const Table& table) const;
  /// Descending k largest values of the target attribute over `view`.
  Result<std::vector<double>> TopKOf(const DatasetView& view) const;

  std::string target_;
  uint32_t k_;
};

}  // namespace tabula

#endif  // TABULA_LOSS_TOPK_LOSS_H_

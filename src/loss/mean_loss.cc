#include "loss/mean_loss.h"

#include <cmath>

namespace tabula {

namespace {

constexpr double kDegenerateMean = 1e-12;

class MeanBoundLoss final : public BoundLoss {
 public:
  MeanBoundLoss(const DoubleColumn* col, double ref_avg, bool ref_empty)
      : col_(col), ref_avg_(ref_avg), ref_empty_(ref_empty) {}

  void Accumulate(LossState* state, RowId row) const override {
    state->num.Add(col_->At(row));
  }

  double Finalize(const LossState& state) const override {
    return MeanLoss::RelativeMeanError(state.num.Avg(), ref_avg_,
                                       ref_empty_ || state.num.count == 0);
  }

 private:
  const DoubleColumn* col_;
  double ref_avg_;
  bool ref_empty_;
};

class MeanGreedyEvaluator final : public GreedyLossEvaluator {
 public:
  MeanGreedyEvaluator(const DatasetView& raw, const DoubleColumn* col)
      : raw_(raw), col_(col) {
    for (size_t i = 0; i < raw.size(); ++i) {
      raw_state_.Add(col_->At(raw.row(i)));
    }
  }

  double CurrentLoss() const override {
    if (chosen_.count == 0) return kInfiniteLoss;
    return MeanLoss::RelativeMeanError(raw_state_.Avg(), chosen_.Avg(),
                                       false);
  }

  double LossWithCandidate(size_t candidate) const override {
    double v = col_->At(raw_.row(candidate));
    double count = chosen_.count + 1;
    double avg = (chosen_.sum + v) / count;
    return MeanLoss::RelativeMeanError(raw_state_.Avg(), avg, false);
  }

  void Add(size_t candidate) override {
    chosen_.Add(col_->At(raw_.row(candidate)));
  }

  size_t raw_size() const override { return raw_.size(); }

 private:
  DatasetView raw_;
  const DoubleColumn* col_;
  NumericAggState raw_state_;
  NumericAggState chosen_;
};

}  // namespace

double MeanLoss::RelativeMeanError(double raw_avg, double sample_avg,
                                   bool sample_empty) {
  if (sample_empty) return kInfiniteLoss;
  if (std::abs(raw_avg) < kDegenerateMean) {
    return std::abs(sample_avg - raw_avg) < kDegenerateMean ? 0.0
                                                            : kInfiniteLoss;
  }
  return std::abs((raw_avg - sample_avg) / raw_avg);
}

Result<const DoubleColumn*> MeanLoss::TargetColumn(const Table& table) const {
  TABULA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(target_));
  const auto* dcol = col->As<DoubleColumn>();
  if (dcol == nullptr) {
    return Status::TypeMismatch("mean_loss target '" + target_ +
                                "' must be a DOUBLE column");
  }
  return dcol;
}

Result<std::unique_ptr<BoundLoss>> MeanLoss::Bind(
    const Table& table, const DatasetView& ref) const {
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col, TargetColumn(table));
  NumericAggState ref_state;
  for (size_t i = 0; i < ref.size(); ++i) {
    ref_state.Add(col->At(ref.row(i)));
  }
  return std::unique_ptr<BoundLoss>(std::make_unique<MeanBoundLoss>(
      col, ref_state.Avg(), ref_state.count == 0));
}

Result<double> MeanLoss::Loss(const DatasetView& raw,
                              const DatasetView& sample) const {
  if (raw.table() == nullptr) {
    return Status::InvalidArgument("raw view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col, TargetColumn(*raw.table()));
  NumericAggState raw_state;
  for (size_t i = 0; i < raw.size(); ++i) raw_state.Add(col->At(raw.row(i)));
  NumericAggState sam_state;
  for (size_t i = 0; i < sample.size(); ++i) {
    sam_state.Add(col->At(sample.row(i)));
  }
  return RelativeMeanError(raw_state.Avg(), sam_state.Avg(),
                           sam_state.count == 0);
}

std::vector<double> MeanLoss::Signature(const DatasetView& view) const {
  if (view.table() == nullptr || view.empty()) return {0.0};
  auto col = TargetColumn(*view.table());
  if (!col.ok()) return {0.0};
  NumericAggState state;
  for (size_t i = 0; i < view.size(); ++i) {
    state.Add(col.value()->At(view.row(i)));
  }
  return {state.Avg()};
}

Result<std::unique_ptr<GreedyLossEvaluator>> MeanLoss::MakeGreedyEvaluator(
    const DatasetView& raw) const {
  if (raw.table() == nullptr) {
    return Status::InvalidArgument("raw view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col, TargetColumn(*raw.table()));
  return std::unique_ptr<GreedyLossEvaluator>(
      std::make_unique<MeanGreedyEvaluator>(raw, col));
}

}  // namespace tabula

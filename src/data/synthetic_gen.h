#ifndef TABULA_DATA_SYNTHETIC_GEN_H_
#define TABULA_DATA_SYNTHETIC_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace tabula {

/// One categorical dimension of a synthetic table.
struct SyntheticColumnSpec {
  std::string name;
  /// Number of distinct values ("<name>_0" .. "<name>_{cardinality-1}").
  uint32_t cardinality = 4;
  /// Zipf-style skew exponent: 0 = uniform, 1 ≈ classic Zipf. Higher
  /// skew concentrates mass on the first values, creating the small
  /// populations whose cells deviate from global samples.
  double zipf_skew = 0.0;
};

/// Options for the generic synthetic generator.
struct SyntheticGeneratorOptions {
  size_t num_rows = 100000;
  uint64_t seed = 13;
  /// Cubed dimensions. Defaults to four 4-ary uniform columns.
  std::vector<SyntheticColumnSpec> columns;
  /// Latent per-cell structure: each combination of the first two
  /// columns owns a hidden mean for "value" and a hidden (x, y)
  /// centroid. `cell_spread` scales how far cell means/centroids deviate
  /// from the global center — 0 makes every cell identical (no iceberg
  /// cells), larger values create more iceberg cells under every loss.
  double cell_spread = 0.5;
  /// Observation noise around the cell's latent parameters.
  double noise = 0.1;
};

/// \brief Dataset-agnostic synthetic generator.
///
/// The paper notes its techniques "may be applied to both geospatial
/// data and regular data visual analysis" (Section I); this generator
/// produces non-taxi tables with controllable dimensionality,
/// cardinalities, skew, and cell-level deviation, so tests and benches
/// can probe the middleware far from the NYC-taxi shape.
///
/// Output schema: the requested categorical columns, then
///   value DOUBLE  — latent per-cell mean + noise (mean/histogram losses)
///   x, y  DOUBLE  — latent per-cell centroid + noise in [0,1]
///                   (heat-map loss), with y also serving regression
///                   tasks against x.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(SyntheticGeneratorOptions options);

  std::unique_ptr<Table> Generate() const;

  /// The schema the generator emits (depends on the column specs).
  Schema MakeSchema() const;

  /// Names of the categorical columns (the cubed attributes).
  std::vector<std::string> CategoricalColumns() const;

 private:
  SyntheticGeneratorOptions options_;
};

}  // namespace tabula

#endif  // TABULA_DATA_SYNTHETIC_GEN_H_

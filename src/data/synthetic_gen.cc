#include "data/synthetic_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace tabula {

namespace {
/// Deterministic hash → double in [0, 1), used for latent cell
/// parameters so they depend only on (seed, cell identity).
double HashUnit(uint64_t seed, uint64_t a, uint64_t b, uint64_t salt) {
  uint64_t h = seed ^ (a * 0x9E3779B97F4A7C15ull) ^
               (b * 0xC2B2AE3D27D4EB4Full) ^ (salt * 0x165667B19E3779F9ull);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
}
}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticGeneratorOptions options)
    : options_(std::move(options)) {
  if (options_.columns.empty()) {
    options_.columns = {
        {"dim_a", 4, 0.0}, {"dim_b", 4, 0.0}, {"dim_c", 4, 0.0},
        {"dim_d", 4, 0.0}};
  }
  for (const auto& spec : options_.columns) {
    TABULA_CHECK(spec.cardinality > 0);
  }
}

Schema SyntheticGenerator::MakeSchema() const {
  std::vector<Field> fields;
  for (const auto& spec : options_.columns) {
    fields.push_back({spec.name, DataType::kCategorical});
  }
  fields.push_back({"value", DataType::kDouble});
  fields.push_back({"x", DataType::kDouble});
  fields.push_back({"y", DataType::kDouble});
  return Schema(std::move(fields));
}

std::vector<std::string> SyntheticGenerator::CategoricalColumns() const {
  std::vector<std::string> names;
  for (const auto& spec : options_.columns) names.push_back(spec.name);
  return names;
}

std::unique_ptr<Table> SyntheticGenerator::Generate() const {
  Rng rng(options_.seed);
  auto table = std::make_unique<Table>(MakeSchema());
  table->Reserve(options_.num_rows);

  // Per-column value distributions (Zipf-style weights).
  std::vector<std::vector<double>> weights(options_.columns.size());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    const auto& spec = options_.columns[c];
    weights[c].resize(spec.cardinality);
    for (uint32_t v = 0; v < spec.cardinality; ++v) {
      weights[c][v] = 1.0 / std::pow(static_cast<double>(v + 1),
                                     spec.zipf_skew);
    }
  }

  const double spread = options_.cell_spread;
  const double noise = options_.noise;
  std::vector<Value> row(table->schema().num_fields());
  std::vector<uint32_t> codes(options_.columns.size());
  for (size_t i = 0; i < options_.num_rows; ++i) {
    for (size_t c = 0; c < options_.columns.size(); ++c) {
      codes[c] = static_cast<uint32_t>(rng.Discrete(weights[c]));
      row[c] = Value(options_.columns[c].name + "_" +
                     std::to_string(codes[c]));
    }
    // Latent parameters owned by the (first, second) column pair; with
    // a single column, pair with zero.
    uint64_t a = codes[0];
    uint64_t b = options_.columns.size() > 1 ? codes[1] : 0;
    double cell_mean =
        100.0 * (1.0 + spread * (HashUnit(options_.seed, a, b, 1) - 0.5));
    double cx =
        0.5 + spread * (HashUnit(options_.seed, a, b, 2) - 0.5) * 0.9;
    double cy =
        0.5 + spread * (HashUnit(options_.seed, a, b, 3) - 0.5) * 0.9;
    double slope = spread * (HashUnit(options_.seed, a, b, 4) - 0.5) * 2.0;

    double x = std::clamp(rng.Normal(cx, 0.03 + noise * 0.05), 0.0, 1.0);
    double y = std::clamp(
        rng.Normal(cy + slope * (x - cx), 0.03 + noise * 0.05), 0.0, 1.0);
    double value = rng.Normal(cell_mean, noise * cell_mean);

    size_t base = options_.columns.size();
    row[base] = Value(value);
    row[base + 1] = Value(x);
    row[base + 2] = Value(y);
    Status st = table->AppendRow(row);
    TABULA_CHECK(st.ok());
  }
  return table;
}

}  // namespace tabula

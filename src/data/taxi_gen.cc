#include "data/taxi_gen.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/logging.h"
#include "common/rng.h"
#include "loss/spatial.h"

namespace tabula {

namespace {

const char* kVendors[] = {"CMT", "VTS", "DDS"};
const double kVendorWeights[] = {0.45, 0.45, 0.10};

const char* kWeekdays[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
const double kWeekdayWeights[] = {0.13, 0.13, 0.14, 0.14, 0.17, 0.16, 0.13};

const char* kPayments[] = {"Cash", "Credit", "No Charge", "Dispute"};
const double kPaymentWeights[] = {0.38, 0.58, 0.03, 0.01};

const char* kRateCodes[] = {"Standard", "JFK", "Newark", "Nassau",
                            "Negotiated"};
const double kRateWeights[] = {0.90, 0.055, 0.02, 0.01, 0.015};

const char* kPassengerCounts[] = {"1", "2", "3", "4", "5", "6"};
const double kPassengerWeights[] = {0.70, 0.15, 0.06, 0.04, 0.03, 0.02};

/// Pickup-location archetypes (normalized [0,1]² city canvas).
struct Hotspot {
  double x, y, sx, sy;
};
// Manhattan spine, midtown, downtown, and the two airports. The airport
// clusters are the "red circle" pattern of Figure 2.
const Hotspot kMidtown{0.38, 0.60, 0.045, 0.070};
const Hotspot kDowntown{0.33, 0.42, 0.035, 0.050};
const Hotspot kUptown{0.42, 0.78, 0.040, 0.060};
const Hotspot kJfk{0.82, 0.18, 0.012, 0.012};
const Hotspot kNewark{0.08, 0.30, 0.012, 0.012};

Point DrawFrom(const Hotspot& h, Rng* rng) {
  return {std::clamp(rng->Normal(h.x, h.sx), 0.0, 1.0),
          std::clamp(rng->Normal(h.y, h.sy), 0.0, 1.0)};
}

const char* DistanceBin(double miles) {
  if (miles < 5) return "[0,5)";
  if (miles < 10) return "[5,10)";
  if (miles < 15) return "[10,15)";
  if (miles < 20) return "[15,20)";
  return "[20,25)";
}

}  // namespace

Schema TaxiGenerator::MakeSchema() {
  return Schema({
      {"vendor_name", DataType::kCategorical},
      {"pickup_weekday", DataType::kCategorical},
      {"passenger_count", DataType::kCategorical},
      {"payment_type", DataType::kCategorical},
      {"rate_code", DataType::kCategorical},
      {"store_and_forward", DataType::kCategorical},
      {"dropoff_weekday", DataType::kCategorical},
      {"trip_distance_bin", DataType::kCategorical},
      {"trip_distance", DataType::kDouble},
      {"fare_amount", DataType::kDouble},
      {"tip_amount", DataType::kDouble},
      {"pickup_x", DataType::kDouble},
      {"pickup_y", DataType::kDouble},
  });
}

std::vector<std::string> TaxiGenerator::ExperimentAttributes() {
  return {"vendor_name", "pickup_weekday", "passenger_count",
          "payment_type", "rate_code",     "store_and_forward",
          "dropoff_weekday"};
}

std::unique_ptr<Table> TaxiGenerator::Generate() const {
  Rng rng(options_.seed);
  auto table = std::make_unique<Table>(MakeSchema());
  table->Reserve(options_.num_rows);

  std::vector<double> vendor_w(std::begin(kVendorWeights),
                               std::end(kVendorWeights));
  std::vector<double> weekday_w(std::begin(kWeekdayWeights),
                                std::end(kWeekdayWeights));
  std::vector<double> payment_w(std::begin(kPaymentWeights),
                                std::end(kPaymentWeights));
  std::vector<double> rate_w(std::begin(kRateWeights), std::end(kRateWeights));
  std::vector<double> pax_w(std::begin(kPassengerWeights),
                            std::end(kPassengerWeights));

  std::vector<Value> row(table->schema().num_fields());
  for (size_t i = 0; i < options_.num_rows; ++i) {
    const char* rate = kRateCodes[rng.Discrete(rate_w)];
    bool jfk = std::string_view(rate) == "JFK";
    bool newark = std::string_view(rate) == "Newark";

    // --- pickup location ---
    Point pickup;
    if (jfk) {
      // Airport rides overwhelmingly start at the airport stand.
      pickup = rng.Bernoulli(0.8) ? DrawFrom(kJfk, &rng)
                                  : DrawFrom(kMidtown, &rng);
    } else if (newark) {
      pickup = rng.Bernoulli(0.8) ? DrawFrom(kNewark, &rng)
                                  : DrawFrom(kDowntown, &rng);
    } else {
      double mix = rng.UniformDouble(0.0, 1.0);
      if (mix < 0.40) {
        pickup = DrawFrom(kMidtown, &rng);
      } else if (mix < 0.65) {
        pickup = DrawFrom(kDowntown, &rng);
      } else if (mix < 0.85) {
        pickup = DrawFrom(kUptown, &rng);
      } else if (mix < 0.97) {
        // Broad street grid.
        pickup = {rng.UniformDouble(0.25, 0.55), rng.UniformDouble(0.3, 0.9)};
      } else {
        pickup = {rng.UniformDouble(0.0, 1.0), rng.UniformDouble(0.0, 1.0)};
      }
    }

    // --- categorical attributes ---
    const char* payment = kPayments[rng.Discrete(payment_w)];
    // Disputes concentrate downtown — a small skewed population whose
    // cells deviate sharply from the global distribution.
    if (std::string_view(payment) == "Dispute") {
      pickup = DrawFrom(kDowntown, &rng);
    }
    const char* vendor = kVendors[rng.Discrete(vendor_w)];
    const char* pickup_day = kWeekdays[rng.Discrete(weekday_w)];
    // Most rides end the day they start.
    const char* dropoff_day = rng.Bernoulli(0.96)
                                  ? pickup_day
                                  : kWeekdays[rng.Discrete(weekday_w)];
    // Airport rides skew to larger parties.
    const char* pax =
        (jfk || newark) && rng.Bernoulli(0.35)
            ? kPassengerCounts[rng.UniformInt(1, 5)]
            : kPassengerCounts[rng.Discrete(pax_w)];
    const char* saf = rng.Bernoulli(0.985) ? "N" : "Y";

    // --- numeric attributes ---
    double miles;
    if (jfk || newark) {
      miles = std::clamp(rng.Normal(17.0, 3.0), 8.0, 24.9);
    } else {
      miles = std::clamp(rng.Exponential(0.45) + 0.3, 0.3, 24.9);
    }
    double fare = 2.5 + 2.3 * miles + rng.Normal(0.0, 1.2);
    if (jfk) fare = std::max(fare, 52.0 + rng.Normal(0.0, 2.0));
    fare = std::max(fare, 2.5);
    double tip = 0.0;
    if (std::string_view(payment) == "Credit") {
      tip = std::max(0.0, fare * rng.Normal(0.20, 0.05));
    } else if (std::string_view(payment) == "Cash" && rng.Bernoulli(0.08)) {
      tip = std::max(0.0, rng.Normal(1.0, 0.5));
    }

    row[0] = Value(vendor);
    row[1] = Value(pickup_day);
    row[2] = Value(pax);
    row[3] = Value(payment);
    row[4] = Value(rate);
    row[5] = Value(saf);
    row[6] = Value(dropoff_day);
    row[7] = Value(DistanceBin(miles));
    row[8] = Value(miles);
    row[9] = Value(fare);
    row[10] = Value(tip);
    row[11] = Value(pickup.x);
    row[12] = Value(pickup.y);
    Status st = table->AppendRow(row);
    TABULA_CHECK(st.ok());
  }
  return table;
}

}  // namespace tabula

#include "data/workload.h"

#include "common/rng.h"

namespace tabula {

std::string WorkloadQuery::ToString() const {
  if (where.empty()) return "(all rows)";
  std::string out;
  for (size_t i = 0; i < where.size(); ++i) {
    if (i != 0) out += " AND ";
    out += where[i].column;
    out += " = '";
    out += where[i].literal.ToString();
    out += "'";
  }
  return out;
}

Result<std::vector<WorkloadQuery>> GenerateWorkload(
    const Table& table, const std::vector<std::string>& attributes,
    const WorkloadOptions& options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot build a workload on empty table");
  }
  std::vector<size_t> attr_cols;
  for (const auto& name : attributes) {
    TABULA_ASSIGN_OR_RETURN(size_t idx, table.schema().FieldIndex(name));
    attr_cols.push_back(idx);
  }

  Rng rng(options.seed);
  std::vector<WorkloadQuery> out;
  out.reserve(options.num_queries);
  const size_t n = attributes.size();
  for (size_t q = 0; q < options.num_queries; ++q) {
    // Random cuboid; random seed row instantiates the grouped values.
    uint32_t mask = static_cast<uint32_t>(
        rng.UniformInt(0, (int64_t{1} << n) - 1));
    RowId seed_row =
        static_cast<RowId>(rng.UniformInt(0, table.num_rows() - 1));
    WorkloadQuery query;
    for (size_t k = 0; k < n; ++k) {
      if (!(mask & (uint32_t{1} << k))) continue;
      PredicateTerm term;
      term.column = attributes[k];
      term.op = CompareOp::kEq;
      term.literal = table.GetValue(attr_cols[k], seed_row);
      query.where.push_back(std::move(term));
    }
    out.push_back(std::move(query));
  }
  return out;
}

}  // namespace tabula

#ifndef TABULA_DATA_WORKLOAD_H_
#define TABULA_DATA_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace tabula {

/// Options for the analytics-workload generator.
struct WorkloadOptions {
  /// Number of queries ("randomly pick 100 SQL queries (cells) from the
  /// cube", Section V).
  size_t num_queries = 100;
  uint64_t seed = 99;
};

/// One dashboard interaction: a conjunctive equality filter (a cube cell).
struct WorkloadQuery {
  std::vector<PredicateTerm> where;
  /// Human-readable "a=x AND b=y" rendering.
  std::string ToString() const;
};

/// \brief Generates the paper's analytics workload: random cells drawn
/// from the full data cube over the given attributes.
///
/// Each query picks a random cuboid (uniformly over the lattice, the
/// "All" vertex included) and instantiates its grouped attributes from a
/// random data row — so every generated cell is non-empty, like cells of
/// an actual cube.
Result<std::vector<WorkloadQuery>> GenerateWorkload(
    const Table& table, const std::vector<std::string>& attributes,
    const WorkloadOptions& options);

}  // namespace tabula

#endif  // TABULA_DATA_WORKLOAD_H_

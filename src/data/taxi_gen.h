#ifndef TABULA_DATA_TAXI_GEN_H_
#define TABULA_DATA_TAXI_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace tabula {

/// Options for the synthetic NYC taxi generator.
struct TaxiGeneratorOptions {
  /// Number of rides to generate (the paper's table has 700M; laptop-scale
  /// defaults come from the TABULA_SCALE env knob in the benches).
  size_t num_rows = 1'000'000;
  uint64_t seed = 7;
};

/// \brief Synthetic NYC taxi rides with the paper's attribute set.
///
/// Substitutes the (unavailable) NYC TLC dump with a generator that
/// reproduces the properties the evaluation depends on (DESIGN.md §2):
///
/// * the 7 categorical attributes used in Section V's predicates —
///   vendor_name, pickup_weekday, passenger_count, payment_type,
///   rate_code, store_and_forward, dropoff_weekday — with realistic
///   cardinalities (full cubes of 4..7 attributes land in the paper's
///   3k..151k cell range);
/// * per-cell skew: airport rides (rate_code JFK/Newark) cluster spatially
///   and run long/expensive; disputes concentrate downtown; tips are
///   payment-type dependent — so a global sample misses many cells and
///   iceberg cells exist under every built-in loss;
/// * a distinct airport hotspot in the pickup-location distribution —
///   the visual pattern Figure 2 shows the SampleFirst approach missing;
/// * numeric columns: trip_distance, fare_amount (≈ metered fare of the
///   distance), tip_amount (regression target), pickup_x/pickup_y
///   (normalized [0,1] coordinates; the paper's 0.25 km ≈ 0.004
///   normalized distance conversion is kNormalizedUnitsPerKm).
///
/// Also emits trip_distance_bin, the paper's running-example "D"
/// attribute ([0,5), [5,10), ...), usable as an 8th cubed attribute.
class TaxiGenerator {
 public:
  explicit TaxiGenerator(TaxiGeneratorOptions options = {})
      : options_(options) {}

  /// Generates the rides table.
  std::unique_ptr<Table> Generate() const;

  /// The table schema (stable column order).
  static Schema MakeSchema();

  /// The paper's 7 experiment attributes, in the order Section V uses
  /// them ("we use the first 4, 5, 6, 7 attributes").
  static std::vector<std::string> ExperimentAttributes();

 private:
  TaxiGeneratorOptions options_;
};

/// Paper unit conversion: 0.25 km of accuracy loss ≈ 0.004 in normalized
/// coordinates (Figure 11 caption), i.e. 1 km ≈ 0.016.
inline constexpr double kNormalizedUnitsPerKm = 0.004 / 0.25;

}  // namespace tabula

#endif  // TABULA_DATA_TAXI_GEN_H_

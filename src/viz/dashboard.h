#ifndef TABULA_VIZ_DASHBOARD_H_
#define TABULA_VIZ_DASHBOARD_H_

#include <string>
#include <vector>

#include "baselines/approach.h"
#include "common/status.h"
#include "data/workload.h"
#include "loss/loss_function.h"

namespace tabula {

/// The visual analysis the dashboard performs on each returned sample —
/// the paper's four evaluated effects (Section V).
enum class VisualTask { kHeatmap, kHistogram, kRegression, kMean };

const char* VisualTaskName(VisualTask task);

/// Configuration of a simulated dashboard session.
struct DashboardOptions {
  VisualTask task = VisualTask::kHeatmap;
  /// Columns per task: heat map uses (x, y); histogram/mean use target;
  /// regression uses (x, y).
  std::string x_column = "pickup_x";
  std::string y_column = "pickup_y";
  std::string target_column = "fare_amount";
  /// Loss used to measure the *actual* accuracy loss of each answer vs
  /// the true query result (Figures 11b–14b). May be null to skip.
  const LossFunction* loss = nullptr;
  size_t histogram_bins = 32;
};

/// Measurements of one dashboard interaction.
struct QueryRecord {
  double data_system_millis = 0.0;
  double viz_millis = 0.0;
  double actual_loss = 0.0;
  size_t answer_tuples = 0;
  size_t population_tuples = 0;
};

/// Aggregated session results — the rows of Figures 11–14 and Table II.
struct DashboardReport {
  std::string approach;
  std::vector<QueryRecord> queries;

  double AvgDataSystemMillis() const;
  double AvgVizMillis() const;
  double AvgAnswerTuples() const;
  double MinActualLoss() const;
  double AvgActualLoss() const;
  double MaxActualLoss() const;
  /// Queries whose actual loss exceeded `theta`.
  size_t LossViolations(double theta) const;
};

/// \brief Runs a full dashboard session: every workload query through
/// `approach`, with the data-system and visualization stages timed
/// separately (the two components of data-to-visualization time).
/// Ground-truth loss evaluation happens outside both timers.
Result<DashboardReport> RunDashboard(Approach* approach, const Table& table,
                                     const std::vector<WorkloadQuery>& workload,
                                     const DashboardOptions& options);

}  // namespace tabula

#endif  // TABULA_VIZ_DASHBOARD_H_

#ifndef TABULA_VIZ_HEATMAP_H_
#define TABULA_VIZ_HEATMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace tabula {

/// Options for the heat-map rasterizer.
struct HeatmapOptions {
  size_t width = 256;
  size_t height = 256;
  /// Gaussian-ish splat radius in pixels (dashboards blur density maps).
  int splat_radius = 2;
  /// Canvas extent in data coordinates.
  double min_x = 0.0, max_x = 1.0, min_y = 0.0, max_y = 1.0;
};

/// \brief Density heat map — the dashboard's geospatial visual effect.
///
/// Renders point sets the way the paper's Tableau/Matlab dashboards do:
/// each tuple splats into a density raster that is then tone-mapped. The
/// render is the measured "sample visualization time" for the heat-map
/// task in Table II, and raster-vs-raster comparison quantifies what the
/// user visually loses with a sample (the Figure 2 effect).
class Heatmap {
 public:
  explicit Heatmap(HeatmapOptions options = {});

  /// Rasterizes the (x_column, y_column) points of `view`.
  Status Render(const DatasetView& view, const std::string& x_column,
                const std::string& y_column);

  size_t width() const { return options_.width; }
  size_t height() const { return options_.height; }
  /// Raw accumulated density at a pixel.
  double density(size_t x, size_t y) const {
    return density_[y * options_.width + x];
  }

  /// Mean absolute difference between two tone-mapped rasters in [0,1] —
  /// a dashboard-visible divergence measure.
  static Result<double> VisualDifference(const Heatmap& a, const Heatmap& b);

  /// Writes a grayscale PGM (portable graymap) of the tone-mapped raster.
  Status WritePgm(const std::string& path) const;

  /// Writes a color PPM using a blue→yellow→red ramp.
  Status WritePpm(const std::string& path) const;

 private:
  /// Log tone-mapping to [0,1] (heat maps are log-scaled in practice).
  std::vector<double> ToneMapped() const;

  HeatmapOptions options_;
  std::vector<double> density_;
};

}  // namespace tabula

#endif  // TABULA_VIZ_HEATMAP_H_

#ifndef TABULA_VIZ_ANALYSIS_H_
#define TABULA_VIZ_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace tabula {

/// \brief Histogram of one numeric column — the dashboard's distribution
/// visual effect (the paper's histogram analysis runs in Matlab).
struct Histogram {
  double min_value = 0.0;
  double max_value = 0.0;
  std::vector<double> counts;  ///< per-bin tuple counts

  /// Normalized bin weights (sum 1), for comparing shapes across
  /// different-size inputs.
  std::vector<double> Normalized() const;

  /// L1 distance between two normalized histograms in [0,2].
  static Result<double> ShapeDifference(const Histogram& a,
                                        const Histogram& b);

  /// ASCII bar rendering for console dashboards.
  std::string Render(size_t bar_width = 40) const;
};

/// Builds a histogram with `bins` equal-width bins over [min, max]
/// (auto-ranged from the data when min >= max).
Result<Histogram> BuildHistogram(const DatasetView& view,
                                 const std::string& column, size_t bins,
                                 double min = 0.0, double max = 0.0);

/// \brief Fitted regression line — the dashboard's trend visual effect
/// (the paper regresses tip amount on fare amount via scikit-learn).
struct RegressionLine {
  double slope = 0.0;
  double intercept = 0.0;
  double angle_degrees = 0.0;
  size_t n = 0;
};

/// Least-squares fit of y_column on x_column over `view`.
Result<RegressionLine> FitRegression(const DatasetView& view,
                                     const std::string& x_column,
                                     const std::string& y_column);

/// Statistical mean of a column over `view` (the AVG analysis task).
Result<double> ComputeMean(const DatasetView& view,
                           const std::string& column);

}  // namespace tabula

#endif  // TABULA_VIZ_ANALYSIS_H_

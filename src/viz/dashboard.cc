#include "viz/dashboard.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "viz/analysis.h"
#include "viz/heatmap.h"

namespace tabula {

const char* VisualTaskName(VisualTask task) {
  switch (task) {
    case VisualTask::kHeatmap:
      return "heatmap";
    case VisualTask::kHistogram:
      return "histogram";
    case VisualTask::kRegression:
      return "regression";
    case VisualTask::kMean:
      return "mean";
  }
  return "unknown";
}

namespace {
/// Runs the dashboard's visual analysis on an answer; returns elapsed ms.
Result<double> RunVisualTask(const DatasetView& answer,
                             const DashboardOptions& options) {
  Stopwatch timer;
  switch (options.task) {
    case VisualTask::kHeatmap: {
      Heatmap heatmap;
      TABULA_RETURN_NOT_OK(
          heatmap.Render(answer, options.x_column, options.y_column));
      break;
    }
    case VisualTask::kHistogram: {
      TABULA_ASSIGN_OR_RETURN(
          Histogram hist,
          BuildHistogram(answer, options.target_column,
                         options.histogram_bins));
      (void)hist;
      break;
    }
    case VisualTask::kRegression: {
      TABULA_ASSIGN_OR_RETURN(
          RegressionLine line,
          FitRegression(answer, options.x_column, options.y_column));
      (void)line;
      break;
    }
    case VisualTask::kMean: {
      TABULA_ASSIGN_OR_RETURN(double mean,
                              ComputeMean(answer, options.target_column));
      (void)mean;
      break;
    }
  }
  return timer.ElapsedMillis();
}
}  // namespace

double DashboardReport::AvgDataSystemMillis() const {
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries) sum += q.data_system_millis;
  return sum / queries.size();
}

double DashboardReport::AvgVizMillis() const {
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries) sum += q.viz_millis;
  return sum / queries.size();
}

double DashboardReport::AvgAnswerTuples() const {
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries) sum += q.answer_tuples;
  return sum / queries.size();
}

double DashboardReport::MinActualLoss() const {
  double v = kInfiniteLoss;
  for (const auto& q : queries) v = std::min(v, q.actual_loss);
  return queries.empty() ? 0.0 : v;
}

double DashboardReport::AvgActualLoss() const {
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries) sum += q.actual_loss;
  return sum / queries.size();
}

double DashboardReport::MaxActualLoss() const {
  double v = 0.0;
  for (const auto& q : queries) v = std::max(v, q.actual_loss);
  return v;
}

size_t DashboardReport::LossViolations(double theta) const {
  size_t count = 0;
  for (const auto& q : queries) {
    if (q.actual_loss > theta) ++count;
  }
  return count;
}

Result<DashboardReport> RunDashboard(Approach* approach, const Table& table,
                                     const std::vector<WorkloadQuery>& workload,
                                     const DashboardOptions& options) {
  DashboardReport report;
  report.approach = approach->name();
  report.queries.reserve(workload.size());

  for (const auto& query : workload) {
    QueryRecord record;

    if (approach->ReturnsScalarAnswer()) {
      // AQP-style approach (SnappyData): the answer is a certified AVG,
      // there is no sample to visualize (Table II's "-" cells), and the
      // actual loss is the scalar's relative error vs the exact AVG.
      Stopwatch data_system;
      TABULA_ASSIGN_OR_RETURN(double scalar,
                              approach->ExecuteScalar(query.where));
      record.data_system_millis = data_system.ElapsedMillis();
      TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                              BoundPredicate::Bind(table, query.where));
      DatasetView truth(&table, pred.FilterAll());
      record.population_tuples = truth.size();
      if (!truth.empty()) {
        TABULA_ASSIGN_OR_RETURN(
            double exact, ComputeMean(truth, options.target_column));
        record.actual_loss =
            std::abs(exact) > 1e-12
                ? std::abs(scalar - exact) / std::abs(exact)
                : std::abs(scalar - exact);
      }
      report.queries.push_back(record);
      continue;
    }

    Stopwatch data_system;
    TABULA_ASSIGN_OR_RETURN(DatasetView answer,
                            approach->Execute(query.where));
    record.data_system_millis = data_system.ElapsedMillis();
    record.answer_tuples = answer.size();

    TABULA_ASSIGN_OR_RETURN(record.viz_millis,
                            RunVisualTask(answer, options));

    if (options.loss != nullptr) {
      // Ground truth (untimed): the actual query result from the raw
      // table, compared under the session's loss function.
      TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                              BoundPredicate::Bind(table, query.where));
      DatasetView truth(&table, pred.FilterAll());
      record.population_tuples = truth.size();
      if (!truth.empty()) {
        TABULA_ASSIGN_OR_RETURN(record.actual_loss,
                                options.loss->Loss(truth, answer));
      }
    }
    report.queries.push_back(record);
  }
  return report;
}

}  // namespace tabula

#include "viz/heatmap.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace tabula {

Heatmap::Heatmap(HeatmapOptions options) : options_(options) {
  density_.assign(options_.width * options_.height, 0.0);
}

Status Heatmap::Render(const DatasetView& view, const std::string& x_column,
                       const std::string& y_column) {
  if (view.table() == nullptr) {
    return Status::InvalidArgument("view has no table");
  }
  const Table& table = *view.table();
  TABULA_ASSIGN_OR_RETURN(const Column* xc, table.ColumnByName(x_column));
  TABULA_ASSIGN_OR_RETURN(const Column* yc, table.ColumnByName(y_column));
  const auto* x_col = xc->As<DoubleColumn>();
  const auto* y_col = yc->As<DoubleColumn>();
  if (x_col == nullptr || y_col == nullptr) {
    return Status::TypeMismatch("heat map coordinates must be DOUBLE");
  }
  std::fill(density_.begin(), density_.end(), 0.0);

  const int w = static_cast<int>(options_.width);
  const int h = static_cast<int>(options_.height);
  const double sx = (w - 1) / std::max(options_.max_x - options_.min_x, 1e-12);
  const double sy = (h - 1) / std::max(options_.max_y - options_.min_y, 1e-12);
  const int r = options_.splat_radius;
  const double sigma2 = std::max(1.0, static_cast<double>(r * r)) / 2.0;

  for (size_t i = 0; i < view.size(); ++i) {
    RowId row = view.row(i);
    int px = static_cast<int>((x_col->At(row) - options_.min_x) * sx);
    int py = static_cast<int>((y_col->At(row) - options_.min_y) * sy);
    for (int dy = -r; dy <= r; ++dy) {
      int y = py + dy;
      if (y < 0 || y >= h) continue;
      for (int dx = -r; dx <= r; ++dx) {
        int x = px + dx;
        if (x < 0 || x >= w) continue;
        double weight = std::exp(-(dx * dx + dy * dy) / (2.0 * sigma2));
        density_[static_cast<size_t>(y) * w + x] += weight;
      }
    }
  }
  return Status::OK();
}

std::vector<double> Heatmap::ToneMapped() const {
  double max_d = 0.0;
  for (double d : density_) max_d = std::max(max_d, d);
  std::vector<double> out(density_.size(), 0.0);
  if (max_d <= 0.0) return out;
  double denom = std::log1p(max_d);
  for (size_t i = 0; i < density_.size(); ++i) {
    out[i] = std::log1p(density_[i]) / denom;
  }
  return out;
}

Result<double> Heatmap::VisualDifference(const Heatmap& a, const Heatmap& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return Status::InvalidArgument("heat map dimensions differ");
  }
  auto ta = a.ToneMapped();
  auto tb = b.ToneMapped();
  double sum = 0.0;
  for (size_t i = 0; i < ta.size(); ++i) sum += std::abs(ta[i] - tb[i]);
  return sum / static_cast<double>(ta.size());
}

Status Heatmap::WritePgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "'");
  out << "P5\n" << options_.width << " " << options_.height << "\n255\n";
  auto tone = ToneMapped();
  for (double v : tone) {
    out.put(static_cast<char>(static_cast<int>(v * 255.0)));
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Status Heatmap::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "'");
  out << "P6\n" << options_.width << " " << options_.height << "\n255\n";
  auto tone = ToneMapped();
  for (double v : tone) {
    // Blue → yellow → red ramp.
    double r = std::clamp(v * 2.0, 0.0, 1.0);
    double g = std::clamp(v < 0.5 ? v * 2.0 : 2.0 - v * 2.0, 0.0, 1.0);
    double b = std::clamp(1.0 - v * 2.0, 0.0, 1.0);
    out.put(static_cast<char>(static_cast<int>(r * 255.0)));
    out.put(static_cast<char>(static_cast<int>(g * 255.0)));
    out.put(static_cast<char>(static_cast<int>(b * 255.0)));
  }
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace tabula

#include "viz/analysis.h"

#include <algorithm>
#include <cmath>

#include "exec/aggregate.h"

namespace tabula {

namespace {
Result<const DoubleColumn*> NumericColumn(const DatasetView& view,
                                          const std::string& name) {
  if (view.table() == nullptr) {
    return Status::InvalidArgument("view has no table");
  }
  TABULA_ASSIGN_OR_RETURN(const Column* col,
                          view.table()->ColumnByName(name));
  const auto* dcol = col->As<DoubleColumn>();
  if (dcol == nullptr) {
    return Status::TypeMismatch("column '" + name + "' must be DOUBLE");
  }
  return dcol;
}
}  // namespace

std::vector<double> Histogram::Normalized() const {
  double total = 0.0;
  for (double c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total <= 0.0) return out;
  for (size_t i = 0; i < counts.size(); ++i) out[i] = counts[i] / total;
  return out;
}

Result<double> Histogram::ShapeDifference(const Histogram& a,
                                          const Histogram& b) {
  if (a.counts.size() != b.counts.size()) {
    return Status::InvalidArgument("histogram bin counts differ");
  }
  auto na = a.Normalized();
  auto nb = b.Normalized();
  double sum = 0.0;
  for (size_t i = 0; i < na.size(); ++i) sum += std::abs(na[i] - nb[i]);
  return sum;
}

std::string Histogram::Render(size_t bar_width) const {
  double max_count = 0.0;
  for (double c : counts) max_count = std::max(max_count, c);
  std::string out;
  double bin_width =
      counts.empty() ? 0.0 : (max_value - min_value) / counts.size();
  for (size_t i = 0; i < counts.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof(label), "[%8.2f, %8.2f) ",
                  min_value + i * bin_width, min_value + (i + 1) * bin_width);
    out += label;
    size_t bar = max_count > 0 ? static_cast<size_t>(
                                     counts[i] / max_count * bar_width)
                               : 0;
    out.append(bar, '#');
    out += " " + std::to_string(static_cast<long long>(counts[i]));
    out += '\n';
  }
  return out;
}

Result<Histogram> BuildHistogram(const DatasetView& view,
                                 const std::string& column, size_t bins,
                                 double min, double max) {
  if (bins == 0) return Status::InvalidArgument("bins must be > 0");
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col,
                          NumericColumn(view, column));
  Histogram hist;
  if (min >= max) {
    min = std::numeric_limits<double>::infinity();
    max = -min;
    for (size_t i = 0; i < view.size(); ++i) {
      double v = col->At(view.row(i));
      min = std::min(min, v);
      max = std::max(max, v);
    }
    if (view.empty()) min = max = 0.0;
    if (min == max) max = min + 1.0;
  }
  hist.min_value = min;
  hist.max_value = max;
  hist.counts.assign(bins, 0.0);
  double scale = bins / (max - min);
  for (size_t i = 0; i < view.size(); ++i) {
    double v = col->At(view.row(i));
    auto bin = static_cast<int64_t>((v - min) * scale);
    bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(bins) - 1);
    hist.counts[static_cast<size_t>(bin)] += 1.0;
  }
  return hist;
}

Result<RegressionLine> FitRegression(const DatasetView& view,
                                     const std::string& x_column,
                                     const std::string& y_column) {
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* x_col,
                          NumericColumn(view, x_column));
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* y_col,
                          NumericColumn(view, y_column));
  RegressionAggState state;
  for (size_t i = 0; i < view.size(); ++i) {
    RowId r = view.row(i);
    state.Add(x_col->At(r), y_col->At(r));
  }
  RegressionLine line;
  line.slope = state.Slope();
  line.intercept = state.Intercept();
  line.angle_degrees = state.AngleDegrees();
  line.n = static_cast<size_t>(state.n);
  return line;
}

Result<double> ComputeMean(const DatasetView& view,
                           const std::string& column) {
  TABULA_ASSIGN_OR_RETURN(const DoubleColumn* col,
                          NumericColumn(view, column));
  NumericAggState state;
  for (size_t i = 0; i < view.size(); ++i) state.Add(col->At(view.row(i)));
  return state.Avg();
}

}  // namespace tabula

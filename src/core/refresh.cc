/// Incremental maintenance of an initialized sampling cube (see
/// Tabula::Refresh in tabula.h). The paper builds the cube once over a
/// static table; this extension keeps the deterministic guarantee valid
/// as rows are appended, at a cost far below re-initialization:
/// per-finest-cell loss states absorb the new rows, the lattice roll-up
/// reclassifies every cell without touching the table again, and only
/// cells that actually need new samples trigger raw-data collection.
///
/// The work is factored into the four-phase streaming protocol of
/// QueryEngine (PlanIngest → BeginIngest → ExecuteIngest →
/// CommitIngest) so the ingestion layer can run the slow phases under a
/// shared lock while queries keep serving; Refresh() is the batch
/// composition of the four phases.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/tabula.h"
#include "cube/lattice.h"
#include "sampling/greedy_sampler.h"
#include "sampling/random_sampler.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {

/// What one classified cell needs from the execute phase.
struct CellWork {
  CuboidMask cuboid = 0;
  bool is_new = false;  // newly iceberg vs existing-but-dirty
  /// The plan already proved (state-based) that the stored sample
  /// exceeds θ — the execute phase resamples without re-scanning raw.
  bool preverified = false;
};

/// Staged state of one in-flight single-instance ingest cycle. Every
/// field below is private to the cycle; nothing query-visible mutates
/// until CommitIngest.
struct TabulaIngestPlan : QueryEngine::IngestPlan {
  KeyEncoder new_encoder;
  /// Finest-cuboid loss states including the pending rows (adopted at
  /// commit when keep_maintenance_state is set).
  FlatHashMap<LossState> staged_finest;
  /// Cells that need verification / (re)sampling in ExecuteIngest.
  FlatHashMap<CellWork> needs_rows;
  /// Cells that dropped below θ (removed at commit).
  std::vector<uint64_t> to_remove;
  /// Raw rows of every cell in `needs_rows`, ascending by key so the
  /// execute phase assigns sample-table ids deterministically.
  std::vector<std::pair<uint64_t, std::vector<RowId>>> cell_rows_sorted;

  /// Redrawn global sample over [0, target_rows) — byte-for-byte the
  /// sample a from-scratch build over the grown table would draw (same
  /// seed, same Serfling size). Adopted at commit when the loss's
  /// accumulated state is reference-independent, so the incrementally
  /// maintained iceberg set converges to the from-scratch one;
  /// reference-dependent losses keep the original sample (their
  /// retained states are bound to it) and `adopt_global` stays false.
  bool adopt_global = false;
  std::vector<RowId> staged_global_rows;
  DatasetView staged_global;
  std::unique_ptr<BoundLoss> staged_bound;

  /// ExecuteIngest outputs.
  std::vector<IcebergCell> staged_new_cells;
  std::vector<std::vector<RowId>> staged_new_samples;
  std::vector<std::pair<uint64_t, std::vector<RowId>>> staged_relinks;
  /// Full-rebuild path: the from-scratch replacement instance.
  std::unique_ptr<Tabula> fresh;
};

}  // namespace

Status Tabula::BuildMaintenanceState() {
  if (maintenance_bound_ == nullptr) {
    TABULA_ASSIGN_OR_RETURN(maintenance_bound_,
                            loss_fn()->Bind(*table_, global_sample_));
  }
  finest_states_.clear();
  DatasetView all(table_);
  BoundLoss* bound = maintenance_bound_.get();
  finest_states_ = GroupAccumulate<LossState>(
      encoder_, packer_, all,
      [bound](LossState* state, RowId row) { bound->Accumulate(state, row); });
  finest_rows_.clear();
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    finest_rows_[packer_.PackRow(encoder_, static_cast<RowId>(r))].push_back(
        static_cast<RowId>(r));
  }
  finest_rows_indexed_ = table_->num_rows();
  return Status::OK();
}

Result<std::unique_ptr<QueryEngine::IngestPlan>> Tabula::PlanIngest() {
  auto owned = std::make_unique<TabulaIngestPlan>();
  TabulaIngestPlan& plan = *owned;

  const size_t n0 = refreshed_rows_;
  const size_t n1 = table_->num_rows();
  if (n1 < n0) {
    return Status::InvalidArgument(
        "base table shrank; Refresh only supports appends");
  }
  plan.target_rows = n1;
  plan.stats.new_rows = n1 - n0;
  if (plan.stats.new_rows == 0) {
    plan.no_op = true;
    return std::unique_ptr<IngestPlan>(std::move(owned));
  }

  // Failure contract: every error return below (including injected
  // faults) happens before any query-visible mutation — fallible work
  // is staged into the plan and committed in one infallible block by
  // CommitIngest — so an abandoned plan leaves the instance answering
  // queries exactly as before, generation unchanged. The only members
  // this phase may touch are maintenance-only (maintenance_bound_,
  // finest_states_), which no Query() path reads.
  TABULA_FAULT_POINT("refresh.begin");

  // Re-make the encoder: appended rows need fresh int64 code maps, and
  // this is where unseen attribute values surface.
  TABULA_ASSIGN_OR_RETURN(
      plan.new_encoder, KeyEncoder::Make(*table_, options_.cubed_attributes));
  bool layout_changed = false;
  for (size_t k = 0; k < plan.new_encoder.num_columns(); ++k) {
    if (plan.new_encoder.Cardinality(k) != encoder_.Cardinality(k)) {
      layout_changed = true;
      break;
    }
  }
  if (layout_changed) {
    // A new attribute value shifts the packed-key layout: every stored
    // key would be stale. ExecuteIngest rebuilds from scratch; the
    // dirty set stays empty, which staleness tagging reads as "every
    // cell is dirty".
    plan.full_rebuild = true;
    plan.stats.full_rebuild = true;
    return std::unique_ptr<IngestPlan>(std::move(owned));
  }
  // Redraw the global sample over the grown table exactly as a
  // from-scratch Initialize would (same seed, same Serfling size).
  // When the loss's accumulated state is reference-independent
  // (StateDependsOnReference() == false — mean, regression, top-k),
  // the retained finest states stay valid under the new binding, so
  // classification below runs against the fresh sample and the
  // incrementally maintained iceberg set is IDENTICAL to a
  // from-scratch build's (the ingest_diff_test contract), not merely
  // θ-bounded. Reference-dependent losses (min-distance) would need a
  // full re-accumulation to rebind, so they keep the original sample;
  // the θ guarantee holds either way.
  if (!loss_fn()->StateDependsOnReference()) {
    size_t global_size = SerflingSampleSize(options_.serfling_epsilon,
                                            options_.serfling_delta);
    // Bottom-k is decomposable: every row of [0, n0) outside the
    // current sample was already beaten by a member's priority and can
    // never re-enter, so scanning (current sample ∪ appended rows)
    // reproduces the full-table draw exactly in O(k + batch). The
    // current sample is itself the bottom-k of [0, n0) — Initialize and
    // every adopted redraw use this same seed and size.
    std::vector<RowId> cand = global_sample_rows_;
    cand.reserve(cand.size() + (n1 - n0));
    for (size_t r = n0; r < n1; ++r) cand.push_back(static_cast<RowId>(r));
    plan.staged_global_rows = ConsistentBottomKSample(
        DatasetView(table_, std::move(cand)), global_size, options_.seed);
    plan.staged_global = DatasetView(table_, plan.staged_global_rows);
    TABULA_ASSIGN_OR_RETURN(plan.staged_bound,
                            loss_fn()->Bind(*table_, plan.staged_global));
    plan.adopt_global = true;
  }
  const BoundLoss* bound = plan.staged_bound.get();
  if (bound == nullptr) {
    if (maintenance_bound_ == nullptr) {
      TABULA_ASSIGN_OR_RETURN(maintenance_bound_,
                              loss_fn()->Bind(*table_, global_sample_));
    }
    bound = maintenance_bound_.get();
  }

  // Lazily build the finest-state map when Initialize didn't keep it
  // (one full accumulation pass; kept for subsequent refreshes). Safe
  // to persist before the commit point: it only describes rows
  // [0, n0), which matches refreshed_rows_ whether or not this cycle
  // completes. The old and new encoders agree on those rows (appends
  // never re-code existing values; the layout check above passed).
  if (finest_states_.empty()) {
    std::vector<RowId> old_rows(n0);
    for (size_t i = 0; i < n0; ++i) old_rows[i] = static_cast<RowId>(i);
    DatasetView old_view(table_, std::move(old_rows));
    finest_states_ = GroupAccumulate<LossState>(
        plan.new_encoder, packer_, old_view,
        [bound](LossState* state, RowId row) {
          bound->Accumulate(state, row);
        });
  }

  // Extend the finest-cell row index over the pending rows (and, after
  // a Load or with keep_maintenance_state off, over the whole table).
  // Safe before the commit point: the index is a pure function of the
  // append-only prefix it covers, and layout changes took the
  // full-rebuild exit above, so old and new encoders agree.
  for (size_t r = finest_rows_indexed_; r < n1; ++r) {
    uint64_t key = packer_.PackRow(plan.new_encoder, static_cast<RowId>(r));
    finest_rows_[key].push_back(static_cast<RowId>(r));
  }
  finest_rows_indexed_ = n1;

  // 1. Fold the appended rows into a STAGED copy of the finest states
  //    (committed only once all fallible work succeeded).
  plan.staged_finest = finest_states_;
  FlatHashSet dirty_finest;
  for (size_t r = n0; r < n1; ++r) {
    uint64_t key = packer_.PackRow(plan.new_encoder, static_cast<RowId>(r));
    bound->Accumulate(&plan.staged_finest[key], static_cast<RowId>(r));
    dirty_finest.Insert(key);
  }

  // 2. Roll the states up the lattice (no table scan) and reclassify.
  //    Parents fold in slot order; layouts are deterministic, so every
  //    ordering derived below is thread-count independent.
  Lattice lattice(options_.cubed_attributes.size());
  const size_t n_attrs = lattice.num_attributes();
  std::vector<FlatHashMap<LossState>> maps(lattice.num_cuboids());
  std::vector<FlatHashSet> dirty(lattice.num_cuboids());
  maps[lattice.finest()] = plan.staged_finest;  // copy: roll-up consumes it
  dirty[lattice.finest()] = std::move(dirty_finest);
  for (CuboidMask mask : lattice.TopDownOrder()) {
    if (mask == lattice.finest()) continue;
    size_t j = 0;
    while (j < n_attrs && (mask & (CuboidMask{1} << j))) ++j;
    CuboidMask parent = mask | (CuboidMask{1} << j);
    FlatHashMap<LossState>& my_map = maps[mask];
    my_map.reserve(maps[parent].size());
    maps[parent].ForEach([&](uint64_t key, const LossState& state) {
      uint64_t rolled = packer_.WithNull(key, j);
      auto [slot, inserted] = my_map.TryEmplace(rolled);
      if (inserted) {
        *slot = state;
      } else {
        slot->Merge(state);
      }
    });
    for (uint64_t key : dirty[parent].SortedKeys()) {
      dirty[mask].Insert(packer_.WithNull(key, j));
    }
  }

  // Classify the work per cuboid. Drops are only recorded here; the
  // cube itself mutates in the commit block.
  struct Recheck {
    uint64_t key = 0;
    CuboidMask cuboid = 0;
    LossState state;
  };
  std::vector<Recheck> rechecks;
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    maps[m].ForEach([&](uint64_t key, const LossState& state) {
      bool iceberg = bound->Finalize(state) > options_.threshold;
      const IcebergCell* existing = cube_.Find(key);
      if (iceberg && existing == nullptr) {
        plan.needs_rows[key] = CellWork{mask, /*is_new=*/true};
        ++plan.stats.new_iceberg_cells;
      } else if (!iceberg && existing != nullptr) {
        // The global sample now covers this cell (state says loss <= θ):
        // serve it from the global sample again.
        plan.to_remove.push_back(key);
        ++plan.stats.dropped_iceberg_cells;
      } else if (iceberg && existing != nullptr && dirty[m].Contains(key)) {
        rechecks.push_back({key, mask, state});
      }
    });
  }

  // Existing iceberg cells the pending rows touched: does the stored
  // sample still meet θ against the grown cell? For reference-
  // independent losses Bind(table, sample)->Finalize(state) IS
  // loss(raw, sample) (see LossFunction::StateDependsOnReference), so
  // the check runs off the rolled-up state without touching a single
  // raw row — the common steady-state cycle (sample still good) does
  // no table scan at all. Reference-dependent losses defer to the
  // raw-scan recheck in ExecuteIngest.
  const bool state_verify = !loss_fn()->StateDependsOnReference();
  for (Recheck& rc : rechecks) {
    if (!state_verify) {
      plan.needs_rows[rc.key] = CellWork{rc.cuboid, /*is_new=*/false};
      continue;
    }
    const IcebergCell* cell = cube_.Find(rc.key);
    TABULA_CHECK(cell != nullptr);
    DatasetView rep(table_, samples_.sample(cell->sample_id));
    TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> cell_bound,
                            loss_fn()->Bind(*table_, rep));
    ++plan.stats.rechecked_cells;
    if (cell_bound->Finalize(rc.state) <= options_.threshold) continue;
    plan.needs_rows[rc.key] =
        CellWork{rc.cuboid, /*is_new=*/false, /*preverified=*/true};
  }

  if (!plan.needs_rows.empty()) {
    // 3. Gather the raw rows of every cell that needs (re)sampling from
    //    the finest-cell row index: a cell's rows are the union of the
    //    finest groups that roll up into it. No table scan — the pass
    //    is O(finest cells × affected cuboids) plus the copied rows.
    std::vector<CuboidMask> affected;
    plan.needs_rows.ForEach([&](uint64_t, const CellWork& work) {
      affected.push_back(work.cuboid);
    });
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    std::vector<std::vector<size_t>> rolled_attrs(affected.size());
    for (size_t a = 0; a < affected.size(); ++a) {
      for (size_t j = 0; j < n_attrs; ++j) {
        if (!(affected[a] & (CuboidMask{1} << j))) rolled_attrs[a].push_back(j);
      }
    }
    FlatHashMap<std::vector<RowId>> cell_rows;
    finest_rows_.ForEach([&](uint64_t fkey, const std::vector<RowId>& rows) {
      for (size_t a = 0; a < affected.size(); ++a) {
        uint64_t key = fkey;
        for (size_t j : rolled_attrs[a]) key = packer_.WithNull(key, j);
        const CellWork* work = plan.needs_rows.Find(key);
        if (work != nullptr && work->cuboid == affected[a]) {
          std::vector<RowId>& dst = cell_rows[key];
          dst.insert(dst.end(), rows.begin(), rows.end());
        }
      }
    });
    plan.cell_rows_sorted = cell_rows.ExtractSorted();
    // Groups concatenate in index order; ascending row order keeps the
    // greedy sampler's candidate sequence deterministic.
    for (auto& [key, rows] : plan.cell_rows_sorted) {
      std::sort(rows.begin(), rows.end());
    }
  }

  // The dirty set: every cell holding a pending row (its served answer
  // summarizes data that excludes those rows, so it must read stale
  // even when re-verification will keep its sample) plus every cell
  // whose classification flips this cycle (possible without being
  // touched: the global-sample redraw moves the loss reference).
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    for (uint64_t key : dirty[m].SortedKeys()) {
      plan.dirty_keys.push_back(key);
    }
  }
  plan.needs_rows.ForEach([&](uint64_t key, const CellWork&) {
    plan.dirty_keys.push_back(key);
  });
  plan.dirty_keys.insert(plan.dirty_keys.end(), plan.to_remove.begin(),
                         plan.to_remove.end());
  return std::unique_ptr<IngestPlan>(std::move(owned));
}

void Tabula::BeginIngest(IngestPlan* plan) {
  auto* p = static_cast<TabulaIngestPlan*>(plan);
  if (p->no_op) return;
  // Publish the dirty set for precise staleness tagging. A replanned
  // cycle (after an execute failure) recomputes a superset over the
  // same base, so replacing — not merging — is correct. Full rebuilds
  // publish an empty set: every cell reads as stale while rows pend.
  pending_dirty_.clear();
  for (uint64_t key : p->dirty_keys) pending_dirty_.Insert(key);
}

Status Tabula::ExecuteIngest(IngestPlan* plan) {
  auto* p = static_cast<TabulaIngestPlan*>(plan);
  if (p->no_op) return Status::OK();
  if (p->full_rebuild) {
    TabulaOptions opts = options_;
    TABULA_ASSIGN_OR_RETURN(p->fresh, Initialize(*table_, std::move(opts)));
    // The rebuild folded everything visible at its start, which may
    // exceed the planned target if appends landed in between.
    p->target_rows = p->fresh->refreshed_rows_;
    return Status::OK();
  }

  // Verify / (re)sample into the staging area, in ascending key order
  // so sample-table ids assign deterministically.
  GreedySamplerOptions sampler_opts = options_.sampler;
  sampler_opts.seed = options_.seed;
  GreedySampler sampler(loss_fn(), options_.threshold, sampler_opts);
  for (auto& [key, rows] : p->cell_rows_sorted) {
    const CellWork& work = *p->needs_rows.Find(key);
    DatasetView raw(table_, rows);
    TABULA_FAULT_POINT("refresh.sample");
    if (work.is_new) {
      TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample, sampler.Sample(raw));
      IcebergCell cell;
      cell.key = key;
      cell.cuboid = work.cuboid;
      p->staged_new_cells.push_back(std::move(cell));
      p->staged_new_samples.push_back(std::move(sample));
    } else {
      const IcebergCell* cell = cube_.Find(key);
      TABULA_CHECK(cell != nullptr);
      bool needs_sample = work.preverified;
      if (!needs_sample) {
        // Reference-dependent loss: the plan could not verify off the
        // state, so check the stored sample against the raw rows here.
        ++p->stats.rechecked_cells;
        DatasetView rep(table_, samples_.sample(cell->sample_id));
        TABULA_ASSIGN_OR_RETURN(double loss, loss_fn()->Loss(raw, rep));
        needs_sample = loss > options_.threshold;
      }
      if (needs_sample) {
        TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample,
                                sampler.Sample(raw));
        p->staged_relinks.emplace_back(key, std::move(sample));
        ++p->stats.resampled_cells;
      }
    }
  }
  return Status::OK();
}

Status Tabula::CommitIngest(std::unique_ptr<IngestPlan> plan,
                            RefreshStats* stats) {
  auto* p = static_cast<TabulaIngestPlan*>(plan.get());
  if (p->no_op) {
    if (stats != nullptr) *stats = p->stats;
    return Status::OK();
  }
  if (p->full_rebuild) {
    if (p->fresh == nullptr) {
      return Status::Internal(
          "CommitIngest before ExecuteIngest on a full-rebuild plan");
    }
    // The generation counter and registered listeners survive the
    // wholesale move-assignment — a rebuild is a cube mutation like any
    // other.
    auto listeners = std::move(refresh_listeners_);
    uint64_t next_id = next_listener_id_;
    uint64_t generation = generation_;
    *this = std::move(*p->fresh);
    refresh_listeners_ = std::move(listeners);
    next_listener_id_ = next_id;
    generation_ = generation + 1;
    pending_dirty_.clear();
    if (stats != nullptr) *stats = p->stats;
    NotifyRefreshListeners();
    return Status::OK();
  }

  // ---- Commit point: nothing below can fail. ----
  encoder_ = std::move(p->new_encoder);
  if (p->adopt_global) {
    // Adopt the redrawn global sample (and the loss bound to it) the
    // plan classified against — non-iceberg cells now answer from the
    // same sample a from-scratch build would serve.
    global_sample_rows_ = std::move(p->staged_global_rows);
    global_sample_ = std::move(p->staged_global);
    maintenance_bound_ = std::move(p->staged_bound);
    stats_.global_sample_tuples = global_sample_.size();
    stats_.global_sample_bytes = global_sample_.size() * BytesPerTuple();
  }
  for (uint64_t key : p->to_remove) cube_.Remove(key);
  for (size_t i = 0; i < p->staged_new_cells.size(); ++i) {
    p->staged_new_cells[i].sample_id =
        samples_.Add(std::move(p->staged_new_samples[i]));
    cube_.Add(std::move(p->staged_new_cells[i]));
  }
  for (auto& [key, sample] : p->staged_relinks) {
    IcebergCell* cell = cube_.FindMutable(key);
    TABULA_CHECK(cell != nullptr);
    cell->sample_id = samples_.Add(std::move(sample));
  }
  refreshed_rows_ = p->target_rows;
  if (options_.keep_maintenance_state) {
    finest_states_ = std::move(p->staged_finest);
  } else {
    finest_states_.clear();  // rebuilt lazily next time
    finest_rows_.clear();
    finest_rows_indexed_ = 0;
  }
  uint64_t tuple_bytes = BytesPerTuple();
  stats_.cube_table_bytes = cube_.MemoryBytes();
  stats_.sample_table_bytes = samples_.MemoryBytes(tuple_bytes);
  stats_.iceberg_cells = cube_.size();
  pending_dirty_.clear();
  ++generation_;
  if (stats != nullptr) *stats = p->stats;
  NotifyRefreshListeners();
  return Status::OK();
}

Status Tabula::Refresh(RefreshStats* stats) {
  Stopwatch timer;
  RefreshStats local;
  RefreshStats* out = stats != nullptr ? stats : &local;
  *out = RefreshStats{};

  // One span per Refresh(); inert (no cost beyond one branch) without
  // an enabled tracer. Ended via `finish` on every success path so the
  // span-derived duration and RefreshStats::millis agree when traced.
  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("tabula.refresh");
  }
  auto finish = [&]() {
    if (span.recording()) {
      span.SetAttribute("new_rows", out->new_rows);
      span.SetAttribute("new_iceberg_cells", out->new_iceberg_cells);
      span.SetAttribute("dropped_iceberg_cells", out->dropped_iceberg_cells);
      span.SetAttribute("rechecked_cells", out->rechecked_cells);
      span.SetAttribute("resampled_cells", out->resampled_cells);
      span.SetAttribute("full_rebuild", out->full_rebuild);
      out->millis = span.End();
    } else {
      out->millis = timer.ElapsedMillis();
    }
  };

  // Batch maintenance is exactly the streaming protocol run
  // back-to-back under the caller's one exclusive section.
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<IngestPlan> plan, PlanIngest());
  if (plan->no_op) {
    out->new_rows = 0;
    finish();
    return Status::OK();
  }
  BeginIngest(plan.get());
  TABULA_RETURN_NOT_OK(ExecuteIngest(plan.get()));
  TABULA_RETURN_NOT_OK(CommitIngest(std::move(plan), out));
  finish();
  return Status::OK();
}

}  // namespace tabula

/// Incremental maintenance of an initialized sampling cube (see
/// Tabula::Refresh in tabula.h). The paper builds the cube once over a
/// static table; this extension keeps the deterministic guarantee valid
/// as rows are appended, at a cost far below re-initialization:
/// per-finest-cell loss states absorb the new rows, the lattice roll-up
/// reclassifies every cell without touching the table again, and only
/// cells that actually need new samples trigger raw-data collection.

#include <algorithm>

#include "common/flat_hash.h"
#include "common/stopwatch.h"
#include "core/tabula.h"
#include "cube/lattice.h"
#include "sampling/greedy_sampler.h"
#include "testing/fault_injection.h"

namespace tabula {

Status Tabula::BuildMaintenanceState() {
  if (maintenance_bound_ == nullptr) {
    TABULA_ASSIGN_OR_RETURN(maintenance_bound_,
                            loss_fn()->Bind(*table_, global_sample_));
  }
  finest_states_.clear();
  DatasetView all(table_);
  BoundLoss* bound = maintenance_bound_.get();
  finest_states_ = GroupAccumulate<LossState>(
      encoder_, packer_, all,
      [bound](LossState* state, RowId row) { bound->Accumulate(state, row); });
  return Status::OK();
}

Status Tabula::Refresh(RefreshStats* stats) {
  Stopwatch timer;
  RefreshStats local;
  RefreshStats* out = stats != nullptr ? stats : &local;
  *out = RefreshStats{};

  // One span per Refresh(); inert (no cost beyond one branch) without
  // an enabled tracer. Ended via `finish` on every exit path so the
  // span-derived duration and RefreshStats::millis agree when traced.
  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("tabula.refresh");
  }
  auto finish = [&]() {
    if (span.recording()) {
      span.SetAttribute("new_rows", out->new_rows);
      span.SetAttribute("new_iceberg_cells", out->new_iceberg_cells);
      span.SetAttribute("dropped_iceberg_cells", out->dropped_iceberg_cells);
      span.SetAttribute("rechecked_cells", out->rechecked_cells);
      span.SetAttribute("resampled_cells", out->resampled_cells);
      span.SetAttribute("full_rebuild", out->full_rebuild);
      out->millis = span.End();
    } else {
      out->millis = timer.ElapsedMillis();
    }
  };

  const size_t n0 = refreshed_rows_;
  const size_t n1 = table_->num_rows();
  if (n1 < n0) {
    return Status::InvalidArgument(
        "base table shrank; Refresh only supports appends");
  }
  out->new_rows = n1 - n0;
  if (out->new_rows == 0) {
    finish();
    return Status::OK();
  }

  // Failure contract: every error return below (including injected
  // faults) happens BEFORE any cube/sample/encoder mutation — fallible
  // work is staged into locals and committed in one infallible block at
  // the end — so a failed Refresh leaves the instance answering queries
  // exactly as it did before the call, generation unchanged.
  TABULA_FAULT_POINT("refresh.begin");

  // Re-make the encoder: appended rows need fresh int64 code maps, and
  // this is where unseen attribute values surface.
  TABULA_ASSIGN_OR_RETURN(
      KeyEncoder new_encoder,
      KeyEncoder::Make(*table_, options_.cubed_attributes));
  bool layout_changed = false;
  for (size_t k = 0; k < new_encoder.num_columns(); ++k) {
    if (new_encoder.Cardinality(k) != encoder_.Cardinality(k)) {
      layout_changed = true;
      break;
    }
  }
  if (layout_changed) {
    // A new attribute value shifts the packed-key layout: every stored
    // key would be stale. Rebuild the cube from scratch. The generation
    // counter and registered listeners survive the wholesale
    // move-assignment — a rebuild is a cube mutation like any other.
    TabulaOptions opts = options_;
    TABULA_ASSIGN_OR_RETURN(std::unique_ptr<Tabula> fresh,
                            Initialize(*table_, std::move(opts)));
    auto listeners = std::move(refresh_listeners_);
    uint64_t next_id = next_listener_id_;
    uint64_t generation = generation_;
    *this = std::move(*fresh);
    refresh_listeners_ = std::move(listeners);
    next_listener_id_ = next_id;
    generation_ = generation + 1;
    out->full_rebuild = true;
    finish();
    NotifyRefreshListeners();
    return Status::OK();
  }
  // Lazily build the finest-state map when Initialize didn't keep it
  // (one full accumulation pass; kept for subsequent refreshes). Safe
  // to persist before the commit point: it only describes rows
  // [0, n0), which matches refreshed_rows_ whether or not this Refresh
  // completes. The old and new encoders agree on those rows (appends
  // never re-code existing values; the layout check above passed).
  if (finest_states_.empty()) {
    if (maintenance_bound_ == nullptr) {
      TABULA_ASSIGN_OR_RETURN(maintenance_bound_,
                              loss_fn()->Bind(*table_, global_sample_));
    }
    std::vector<RowId> old_rows(n0);
    for (size_t i = 0; i < n0; ++i) old_rows[i] = static_cast<RowId>(i);
    DatasetView old_view(table_, std::move(old_rows));
    BoundLoss* bound = maintenance_bound_.get();
    finest_states_ = GroupAccumulate<LossState>(
        new_encoder, packer_, old_view,
        [bound](LossState* state, RowId row) {
          bound->Accumulate(state, row);
        });
  }

  // 1. Fold the appended rows into a STAGED copy of the finest states
  //    (committed only once all fallible work succeeded).
  FlatHashMap<LossState> staged_finest = finest_states_;
  FlatHashSet dirty_finest;
  for (size_t r = n0; r < n1; ++r) {
    uint64_t key = packer_.PackRow(new_encoder, static_cast<RowId>(r));
    maintenance_bound_->Accumulate(&staged_finest[key],
                                   static_cast<RowId>(r));
    dirty_finest.Insert(key);
  }

  // 2. Roll the states up the lattice (no table scan) and reclassify.
  //    Parents fold in slot order; layouts are deterministic, so every
  //    ordering derived below is thread-count independent.
  Lattice lattice(options_.cubed_attributes.size());
  const size_t n_attrs = lattice.num_attributes();
  std::vector<FlatHashMap<LossState>> maps(lattice.num_cuboids());
  std::vector<FlatHashSet> dirty(lattice.num_cuboids());
  maps[lattice.finest()] = staged_finest;  // copy: roll-up consumes it
  dirty[lattice.finest()] = std::move(dirty_finest);
  for (CuboidMask mask : lattice.TopDownOrder()) {
    if (mask == lattice.finest()) continue;
    size_t j = 0;
    while (j < n_attrs && (mask & (CuboidMask{1} << j))) ++j;
    CuboidMask parent = mask | (CuboidMask{1} << j);
    FlatHashMap<LossState>& my_map = maps[mask];
    my_map.reserve(maps[parent].size());
    maps[parent].ForEach([&](uint64_t key, const LossState& state) {
      uint64_t rolled = packer_.WithNull(key, j);
      auto [slot, inserted] = my_map.TryEmplace(rolled);
      if (inserted) {
        *slot = state;
      } else {
        slot->Merge(state);
      }
    });
    for (uint64_t key : dirty[parent].SortedKeys()) {
      dirty[mask].Insert(packer_.WithNull(key, j));
    }
  }

  // Classify the work per cuboid. Drops are only recorded here; the
  // cube itself mutates in the commit block below.
  struct CellWork {
    CuboidMask cuboid = 0;
    bool is_new = false;  // newly iceberg vs existing-but-dirty
  };
  FlatHashMap<CellWork> needs_rows;
  std::vector<uint64_t> to_remove;
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    maps[m].ForEach([&](uint64_t key, const LossState& state) {
      bool iceberg = maintenance_bound_->Finalize(state) > options_.threshold;
      const IcebergCell* existing = cube_.Find(key);
      if (iceberg && existing == nullptr) {
        needs_rows[key] = CellWork{mask, /*is_new=*/true};
        ++out->new_iceberg_cells;
      } else if (!iceberg && existing != nullptr) {
        // The global sample now covers this cell (state says loss <= θ):
        // serve it from the global sample again.
        to_remove.push_back(key);
        ++out->dropped_iceberg_cells;
      } else if (iceberg && existing != nullptr && dirty[m].Contains(key)) {
        needs_rows[key] = CellWork{mask, /*is_new=*/false};
      }
    });
  }

  // Staged mutations, applied only after every fallible step succeeded.
  std::vector<IcebergCell> staged_new_cells;
  std::vector<std::pair<uint64_t, std::vector<RowId>>> staged_relinks;
  std::vector<std::vector<RowId>> staged_new_samples;

  if (!needs_rows.empty()) {
    // 3. One pass per affected cuboid collecting the raw rows of cells
    //    that need (re)sampling.
    std::vector<CuboidMask> affected;
    needs_rows.ForEach([&](uint64_t, const CellWork& work) {
      affected.push_back(work.cuboid);
    });
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    FlatHashMap<std::vector<RowId>> cell_rows;
    for (CuboidMask mask : affected) {
      for (size_t r = 0; r < n1; ++r) {
        uint64_t key =
            packer_.PackRowMasked(new_encoder, static_cast<RowId>(r), mask);
        const CellWork* work = needs_rows.Find(key);
        if (work != nullptr && work->cuboid == mask) {
          cell_rows[key].push_back(static_cast<RowId>(r));
        }
      }
    }

    // 4. Verify / (re)sample into the staging area, in ascending key
    //    order so sample-table ids assign deterministically.
    GreedySamplerOptions sampler_opts = options_.sampler;
    sampler_opts.seed = options_.seed;
    GreedySampler sampler(loss_fn(), options_.threshold, sampler_opts);
    for (auto& [key, rows] : cell_rows.ExtractSorted()) {
      const CellWork& work = *needs_rows.Find(key);
      DatasetView raw(table_, rows);
      TABULA_FAULT_POINT("refresh.sample");
      if (work.is_new) {
        TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample,
                                sampler.Sample(raw));
        IcebergCell cell;
        cell.key = key;
        cell.cuboid = work.cuboid;
        staged_new_cells.push_back(std::move(cell));
        staged_new_samples.push_back(std::move(sample));
      } else {
        const IcebergCell* cell = cube_.Find(key);
        TABULA_CHECK(cell != nullptr);
        ++out->rechecked_cells;
        DatasetView rep(table_, samples_.sample(cell->sample_id));
        TABULA_ASSIGN_OR_RETURN(double loss, loss_fn()->Loss(raw, rep));
        if (loss > options_.threshold) {
          TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample,
                                  sampler.Sample(raw));
          staged_relinks.emplace_back(key, std::move(sample));
          ++out->resampled_cells;
        }
      }
    }
  }

  // ---- Commit point: nothing below can fail. ----
  encoder_ = std::move(new_encoder);
  for (uint64_t key : to_remove) cube_.Remove(key);
  for (size_t i = 0; i < staged_new_cells.size(); ++i) {
    staged_new_cells[i].sample_id =
        samples_.Add(std::move(staged_new_samples[i]));
    cube_.Add(std::move(staged_new_cells[i]));
  }
  for (auto& [key, sample] : staged_relinks) {
    IcebergCell* cell = cube_.FindMutable(key);
    TABULA_CHECK(cell != nullptr);
    cell->sample_id = samples_.Add(std::move(sample));
  }
  refreshed_rows_ = n1;
  if (options_.keep_maintenance_state) {
    finest_states_ = std::move(staged_finest);
  } else {
    finest_states_.clear();  // rebuilt lazily next time
  }
  uint64_t tuple_bytes = BytesPerTuple();
  stats_.cube_table_bytes = cube_.MemoryBytes();
  stats_.sample_table_bytes = samples_.MemoryBytes(tuple_bytes);
  stats_.iceberg_cells = cube_.size();
  ++generation_;
  finish();
  NotifyRefreshListeners();
  return Status::OK();
}

}  // namespace tabula

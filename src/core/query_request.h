#ifndef TABULA_CORE_QUERY_REQUEST_H_
#define TABULA_CORE_QUERY_REQUEST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/predicate.h"

namespace tabula {

/// How a request may trade freshness for speed at the serving layer.
enum class ConsistencyHint {
  /// A cached answer (fenced on the cube generation, so never stale
  /// relative to the last Refresh) is acceptable — the default.
  kCacheOk,
  /// Bypass the result cache and probe the cube; the answer is still
  /// cached for later kCacheOk requests.
  kBypassCache,
  /// Progressive-answer mode for continuously-ingesting deployments:
  /// if appended rows are still being folded into the cube, wait up to
  /// the request deadline for the in-flight ingest cycle to commit
  /// before answering. On timeout the freshest available answer is
  /// served anyway, tagged `stale` (the BlinkDB-style bounded-time /
  /// bounded-staleness trade). With no pending ingest this behaves
  /// exactly like kCacheOk.
  kFreshWithinDeadline,
};

/// \brief The one dashboard-query contract across the stack.
///
/// `Tabula::Query`, `QueryServer::Query`, and `QueryServer::BatchQuery`
/// all consume this struct; the legacy bare-predicate-vector overloads
/// survive only as thin wrappers around it. A request is one cell
/// lookup: equality predicates on cubed attributes, plus the serving
/// knobs that used to be scattered across three signatures.
struct QueryRequest {
  /// Equality predicates on cubed attributes; attributes not mentioned
  /// roll up to '*'.
  std::vector<PredicateTerm> where;

  /// Per-request deadline in milliseconds. < 0 → the server default;
  /// 0 → none. A request that cannot run before the deadline degrades
  /// to the global sample instead of queueing further. Ignored by
  /// Tabula::Query (no queue below the serving layer).
  double deadline_ms = -1.0;

  /// Opt this request into tracing when the attached Tracer runs in
  /// kOnDemand mode (kAll traces regardless; kDisabled never traces).
  bool trace = false;

  ConsistencyHint consistency = ConsistencyHint::kCacheOk;

  /// Span to parent this request's spans under (0 → root). Set by
  /// callers that already hold a span — e.g. QueryServer linking the
  /// per-item spans of a BatchQuery to the batch span across the
  /// ThreadPool hop.
  uint64_t parent_span = 0;

  QueryRequest() = default;
  explicit QueryRequest(std::vector<PredicateTerm> terms)
      : where(std::move(terms)) {}
};

}  // namespace tabula

#endif  // TABULA_CORE_QUERY_REQUEST_H_

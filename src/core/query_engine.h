#ifndef TABULA_CORE_QUERY_ENGINE_H_
#define TABULA_CORE_QUERY_ENGINE_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "core/query_request.h"
#include "storage/table.h"

namespace tabula {

struct QueryResponse;

/// \brief Common surface of a sampling-cube query engine.
///
/// Both the single-instance middleware (`Tabula`, src/core/) and the
/// horizontally sharded engine (`ShardedTabula`, src/shard/) implement
/// this interface, so the serving layer (`QueryServer`) routes to either
/// without knowing which one it fronts. The contracts mirror Tabula's:
///
///  - Query() is const ⇒ safe for any number of concurrent readers.
///  - Refresh(), Save() and listener registration follow the
///    external-serialization contract (QueryServer wraps them in an
///    exclusive lock); a failed Refresh leaves the engine answering
///    queries exactly as before, generation unchanged.
///  - generation() is a monotone cube-content version; caches layered
///    above key their coherence off it via AddRefreshListener().
class QueryEngine {
 public:
  /// Diagnostics from one Refresh() pass. Defined here (not on Tabula)
  /// so every engine reports maintenance work in the same shape;
  /// `Tabula::RefreshStats` keeps naming it through inheritance.
  struct RefreshStats {
    size_t new_rows = 0;
    size_t new_iceberg_cells = 0;
    size_t dropped_iceberg_cells = 0;
    size_t rechecked_cells = 0;
    size_t resampled_cells = 0;
    bool full_rebuild = false;
    double millis = 0.0;
  };

  virtual ~QueryEngine() = default;

  /// Answers a dashboard query (see Tabula::Query for the predicate
  /// contract). Const ⇒ safe for concurrent readers.
  virtual Result<QueryResponse> Query(const QueryRequest& request) const = 0;

  /// Incremental maintenance after base-table appends.
  virtual Status Refresh(RefreshStats* stats = nullptr) = 0;

  /// Persists the engine state; Load is engine-specific (a saved file
  /// names its own format via magic bytes).
  virtual Status Save(const std::string& path) const = 0;

  /// Monotone cube-content version (bumped by successful refreshes).
  virtual uint64_t generation() const = 0;

  /// Post-refresh invalidation hooks (see Tabula::AddRefreshListener).
  virtual uint64_t AddRefreshListener(std::function<void()> listener) = 0;
  virtual void RemoveRefreshListener(uint64_t id) = 0;

  /// The engine's global random sample — the degraded-answer fallback
  /// the serving layer snapshots for deadline misses.
  virtual const DatasetView& global_sample() const = 0;

  /// The base table the engine was built over.
  virtual const Table& base_table() const = 0;
};

}  // namespace tabula

#endif  // TABULA_CORE_QUERY_ENGINE_H_

#ifndef TABULA_CORE_QUERY_ENGINE_H_
#define TABULA_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_request.h"
#include "storage/table.h"

namespace tabula {

struct QueryResponse;

/// \brief Common surface of a sampling-cube query engine.
///
/// Both the single-instance middleware (`Tabula`, src/core/) and the
/// horizontally sharded engine (`ShardedTabula`, src/shard/) implement
/// this interface, so the serving layer (`QueryServer`) routes to either
/// without knowing which one it fronts. The contracts mirror Tabula's:
///
///  - Query() is const ⇒ safe for any number of concurrent readers.
///  - Refresh(), Save() and listener registration follow the
///    external-serialization contract (QueryServer wraps them in an
///    exclusive lock); a failed Refresh leaves the engine answering
///    queries exactly as before, generation unchanged.
///  - generation() is a monotone cube-content version; caches layered
///    above key their coherence off it via AddRefreshListener().
class QueryEngine {
 public:
  /// Diagnostics from one Refresh() pass. Defined here (not on Tabula)
  /// so every engine reports maintenance work in the same shape;
  /// `Tabula::RefreshStats` keeps naming it through inheritance.
  struct RefreshStats {
    size_t new_rows = 0;
    size_t new_iceberg_cells = 0;
    size_t dropped_iceberg_cells = 0;
    size_t rechecked_cells = 0;
    size_t resampled_cells = 0;
    bool full_rebuild = false;
    double millis = 0.0;
  };

  /// \brief Opaque staged state of one in-flight ingest cycle.
  ///
  /// Produced by PlanIngest() and threaded through the four-phase
  /// streaming-maintenance protocol below; the concrete layout is
  /// engine-private. `dirty_keys` is the only cross-engine field the
  /// ingestion layer reads: the packed cell keys whose answers the
  /// cycle is going to change (empty on a full rebuild, where every
  /// cell is considered dirty).
  struct IngestPlan {
    virtual ~IngestPlan() = default;
    /// True when there is nothing to do (no pending rows); Begin /
    /// Execute / Commit become no-ops.
    bool no_op = false;
    /// True when the appended rows changed the encoder layout (a new
    /// attribute value widened a code) and the cycle degenerates to a
    /// from-scratch rebuild.
    bool full_rebuild = false;
    /// Row count the cycle advances the cube to (num_rows at plan time).
    size_t target_rows = 0;
    /// Maintenance counters accumulated across the phases.
    RefreshStats stats;
    /// Packed keys of cells (across all cuboids) touched by the pending
    /// rows; used for precise per-cell staleness tagging.
    std::vector<uint64_t> dirty_keys;
  };

  virtual ~QueryEngine() = default;

  /// ---- Streaming ingestion protocol (src/ingest/) -------------------
  ///
  /// Refresh() = Plan → Begin → Execute → Commit run back-to-back under
  /// one exclusive section. The split exists so a continuously-ingesting
  /// deployment can keep serving queries during the expensive phases:
  ///
  ///   PlanIngest     shared lock   fallible, slow (classify pending rows)
  ///   BeginIngest    exclusive     infallible, quick (publish dirty set,
  ///                                fold appended rows into shard state)
  ///   ExecuteIngest  shared lock   fallible, slow (re-sample / re-merge)
  ///   CommitIngest   exclusive     quick (adopt staged state, ++generation)
  ///
  /// At most one cycle may be in flight per engine (the Ingestor
  /// serializes them); Query() stays safe concurrently with the
  /// shared-lock phases. A failure in Plan or Execute abandons the
  /// cycle with the generation — and every served answer — unchanged;
  /// re-planning from scratch converges once the cause clears.
  virtual Result<std::unique_ptr<IngestPlan>> PlanIngest() = 0;
  virtual void BeginIngest(IngestPlan* plan) = 0;
  virtual Status ExecuteIngest(IngestPlan* plan) = 0;
  virtual Status CommitIngest(std::unique_ptr<IngestPlan> plan,
                              RefreshStats* stats = nullptr) = 0;

  /// Appended base-table rows the cube has not folded in yet
  /// (num_rows − refreshed rows). Non-zero ⇒ answers may be stale.
  virtual size_t PendingIngestRows() const = 0;

  /// Answers a dashboard query (see Tabula::Query for the predicate
  /// contract). Const ⇒ safe for concurrent readers.
  virtual Result<QueryResponse> Query(const QueryRequest& request) const = 0;

  /// Incremental maintenance after base-table appends.
  virtual Status Refresh(RefreshStats* stats = nullptr) = 0;

  /// Persists the engine state; Load is engine-specific (a saved file
  /// names its own format via magic bytes).
  virtual Status Save(const std::string& path) const = 0;

  /// Monotone cube-content version (bumped by successful refreshes).
  virtual uint64_t generation() const = 0;

  /// Post-refresh invalidation hooks (see Tabula::AddRefreshListener).
  virtual uint64_t AddRefreshListener(std::function<void()> listener) = 0;
  virtual void RemoveRefreshListener(uint64_t id) = 0;

  /// The engine's global random sample — the degraded-answer fallback
  /// the serving layer snapshots for deadline misses.
  virtual const DatasetView& global_sample() const = 0;

  /// The base table the engine was built over.
  virtual const Table& base_table() const = 0;
};

}  // namespace tabula

#endif  // TABULA_CORE_QUERY_ENGINE_H_

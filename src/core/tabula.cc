#include "core/tabula.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "cube/lattice.h"
#include "sampling/random_sampler.h"

namespace tabula {

Result<std::unique_ptr<Tabula>> Tabula::Initialize(const Table& table,
                                                   TabulaOptions options) {
  const LossFunction* loss = options.effective_loss();
  if (loss == nullptr) {
    return Status::InvalidArgument("TabulaOptions.loss must be set");
  }
  if (options.cubed_attributes.empty()) {
    return Status::InvalidArgument("at least one cubed attribute required");
  }
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument("accuracy loss threshold must be > 0");
  }
  for (const auto& col : loss->InputColumns()) {
    if (!table.schema().HasField(col)) {
      return Status::NotFound("loss function input column '" + col +
                              "' not in table");
    }
  }

  auto tabula = std::unique_ptr<Tabula>(new Tabula());
  tabula->table_ = &table;
  tabula->options_ = std::move(options);
  const TabulaOptions& opts = tabula->options_;

  // Stage timings below come from spans, never from ad-hoc stopwatches.
  // When the caller's tracer cannot record (absent or kDisabled), a
  // local always-on tracer stands in, so init_stats() and init_trace()
  // are populated either way. Init runs once; the span cost is noise.
  Tracer local_tracer(TracerOptions{TraceMode::kAll, /*capacity=*/64});
  Tracer* tracer = opts.tracer != nullptr && opts.tracer->enabled()
                       ? opts.tracer
                       : &local_tracer;
  Span init_span = tracer->StartSpan("tabula.init", 0, /*opt_in=*/true);
  init_span.SetAttribute("table_rows", table.num_rows());
  init_span.SetAttribute("cubed_attributes",
                         opts.cubed_attributes.size());
  init_span.SetAttribute("threshold", opts.threshold);

  TABULA_ASSIGN_OR_RETURN(
      tabula->encoder_, KeyEncoder::Make(table, opts.cubed_attributes));
  std::vector<size_t> all_cols(opts.cubed_attributes.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(tabula->packer_,
                          KeyPacker::Make(tabula->encoder_, all_cols));

  // Stage 0: global random sample, sized by Serfling's inequality.
  {
    Span span = tracer->StartSpan("tabula.init.global_sample",
                                  init_span.id());
    size_t global_size =
        SerflingSampleSize(opts.serfling_epsilon, opts.serfling_delta);
    DatasetView all(&table);
    tabula->global_sample_rows_ =
        ConsistentBottomKSample(all, global_size, opts.seed);
    tabula->global_sample_ = DatasetView(&table, tabula->global_sample_rows_);
    tabula->stats_.global_sample_tuples = tabula->global_sample_.size();
    span.SetAttribute("tuples", tabula->stats_.global_sample_tuples);
    tabula->stats_.global_sample_millis = span.End();
  }

  Lattice lattice(opts.cubed_attributes.size());

  // Stage 1: dry run — iceberg cell lookup via algebraic roll-up.
  Span dry_span = tracer->StartSpan("tabula.init.dry_run", init_span.id());
  TABULA_ASSIGN_OR_RETURN(
      DryRunResult dry,
      RunDryRun(table, tabula->encoder_, tabula->packer_, lattice, *loss,
                tabula->global_sample_, opts.threshold));
  tabula->stats_.total_cells = dry.total_cells;
  tabula->stats_.iceberg_cells = dry.total_iceberg_cells;
  tabula->stats_.iceberg_cuboids = dry.iceberg_cuboids;
  dry_span.SetAttribute("rows_scanned", table.num_rows());
  dry_span.SetAttribute("total_cells", dry.total_cells);
  dry_span.SetAttribute("iceberg_cells", dry.total_iceberg_cells);
  dry_span.SetAttribute("iceberg_cuboids", dry.iceberg_cuboids);
  tabula->stats_.dry_run_millis = dry_span.End();

  // Stage 2: real run — local samples for iceberg cells only.
  Span real_span = tracer->StartSpan("tabula.init.real_run", init_span.id());
  GreedySamplerOptions sampler_opts = opts.sampler;
  sampler_opts.seed = opts.seed;
  TABULA_ASSIGN_OR_RETURN(
      RealRunResult real,
      RunRealRun(table, tabula->encoder_, tabula->packer_, lattice, dry,
                 *loss, opts.threshold, sampler_opts,
                 opts.path_policy));
  tabula->stats_.real_run_cuboids = std::move(real.per_cuboid);
  tabula->cube_ = std::move(real.cube);
  real_span.SetAttribute("iceberg_cells", tabula->cube_.size());
  real_span.SetAttribute("cuboids_visited",
                         tabula->stats_.real_run_cuboids.size());
  tabula->stats_.real_run_millis = real_span.End();

  // Stage 3: representative sample selection (or persist-all for
  // Tabula*).
  Span sel_span = tracer->StartSpan("tabula.init.selection", init_span.id());
  if (opts.enable_sample_selection) {
    TABULA_ASSIGN_OR_RETURN(
        SelectionResult sel,
        SelectRepresentativeSamples(table, *loss, opts.threshold,
                                    opts.selection, &tabula->cube_,
                                    &tabula->samples_));
    tabula->stats_.representative_samples = sel.representatives;
    tabula->stats_.cells_sharing_samples = sel.cells_sharing;
  } else {
    TABULA_ASSIGN_OR_RETURN(SelectionResult sel,
                            PersistAllSamples(&tabula->cube_,
                                              &tabula->samples_));
    tabula->stats_.representative_samples = sel.representatives;
  }
  sel_span.SetAttribute("representatives",
                        tabula->stats_.representative_samples);
  sel_span.SetAttribute("cells_sharing",
                        tabula->stats_.cells_sharing_samples);
  tabula->stats_.selection_millis = sel_span.End();

  tabula->refreshed_rows_ = table.num_rows();
  if (opts.keep_maintenance_state) {
    TABULA_RETURN_NOT_OK(tabula->BuildMaintenanceState());
  }

  uint64_t tuple_bytes = tabula->BytesPerTuple();
  tabula->stats_.global_sample_bytes =
      tabula->global_sample_.size() * tuple_bytes;
  tabula->stats_.cube_table_bytes = tabula->cube_.MemoryBytes();
  tabula->stats_.sample_table_bytes =
      tabula->samples_.MemoryBytes(tuple_bytes);
  init_span.SetAttribute("iceberg_cells", tabula->stats_.iceberg_cells);
  uint64_t root_id = init_span.id();
  tabula->stats_.total_millis = init_span.End();
  tabula->init_trace_ = SpanSubtree(tracer->Snapshot(), root_id);
  return tabula;
}

uint64_t Tabula::AddRefreshListener(std::function<void()> listener) {
  uint64_t id = next_listener_id_++;
  refresh_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Tabula::RemoveRefreshListener(uint64_t id) {
  for (auto it = refresh_listeners_.begin(); it != refresh_listeners_.end();
       ++it) {
    if (it->first == id) {
      refresh_listeners_.erase(it);
      return;
    }
  }
}

void Tabula::NotifyRefreshListeners() {
  for (auto& [id, listener] : refresh_listeners_) listener();
}

uint64_t Tabula::BytesPerTuple() const {
  if (table_ == nullptr || table_->num_rows() == 0) return sizeof(RowId);
  return std::max<uint64_t>(table_->MemoryBytes() / table_->num_rows(), 1);
}

Result<TabulaQueryResult> Tabula::Query(
    const std::vector<PredicateTerm>& where) const {
  QueryRequest request(where);
  TABULA_ASSIGN_OR_RETURN(QueryResponse response, Query(request));
  return std::move(response.result);
}

Result<QueryResponse> Tabula::Query(const QueryRequest& request) const {
  // Tracing guard: when no tracer is attached (or it is disabled and
  // the request did not opt in) `span` is inert — no allocation, no
  // clock read beyond the Stopwatch the result always carried.
  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("tabula.query", request.parent_span,
                                      request.trace);
  }
  Stopwatch timer;
  QueryResponse response;
  response.span_id = span.id();
  TabulaQueryResult& result = response.result;
  const std::vector<PredicateTerm>& where = request.where;
  // Progressive-answer tagging: the generation this answer is computed
  // at, and whether appended-but-unfolded rows are scheduled to change
  // it. With a published dirty set the tag is per-cell precise;
  // before classification (dirty set empty) every answer is
  // conservatively stale while rows pend.
  result.generation = generation_;
  const bool has_pending = table_->num_rows() > refreshed_rows_;

  auto finish = [&]() {
    if (span.recording()) {
      span.SetAttribute("terms", where.size());
      span.SetAttribute("from_local_sample", result.from_local_sample);
      span.SetAttribute("empty_cell", result.empty_cell);
      span.SetAttribute("sample_rows", result.sample.size());
      // The span duration IS the reported latency, so trace and stats
      // cannot disagree.
      result.data_system_millis = span.End();
    } else {
      result.data_system_millis = timer.ElapsedMillis();
    }
  };

  const auto& names = encoder_.column_names();
  std::vector<uint32_t> codes(names.size(), kNullCode);
  // Invalid-request returns below leave `span` to end at scope exit;
  // the recorded span then has no result attributes, which is the
  // trace-side marker for a rejected query.
  for (const auto& term : where) {
    if (term.op != CompareOp::kEq) {
      return Status::InvalidArgument(
          "sampling-cube queries support equality predicates only (got '" +
          term.column + " " + CompareOpName(term.op) + " ...')");
    }
    auto it = std::find(names.begin(), names.end(), term.column);
    if (it == names.end()) {
      return Status::InvalidArgument(
          "'" + term.column +
          "' is not a cubed attribute; WHERE-clause attributes must be a "
          "subset of the cubed attributes of the initialization query");
    }
    size_t k = static_cast<size_t>(it - names.begin());
    if (codes[k] != kNullCode) {
      return Status::InvalidArgument("duplicate predicate on '" +
                                     term.column + "'");
    }
    auto code = encoder_.CodeForValue(k, term.literal);
    if (!code.ok()) {
      // The filter value never occurs in the data: the cell is provably
      // empty, so an empty sample is the exact answer (loss 0). Pending
      // rows may contain the value, so the emptiness claim itself is
      // stale while an ingest is in flight (coarse: the value has no
      // cell key to probe the dirty set with).
      result.empty_cell = true;
      result.stale = has_pending;
      result.sample = DatasetView(table_, {});
      finish();
      return response;
    }
    codes[k] = code.value();
  }

  uint64_t key = packer_.PackCodes(codes);
  result.stale =
      has_pending && (pending_dirty_.empty() || pending_dirty_.Contains(key));
  const IcebergCell* cell = cube_.Find(key);
  if (cell != nullptr) {
    result.from_local_sample = true;
    result.sample = DatasetView(table_, samples_.sample(cell->sample_id));
  } else {
    // Non-iceberg cell: the dry run verified the global sample is within
    // θ of this cell's raw data.
    result.sample = DatasetView(table_, global_sample_rows_);
  }
  finish();
  return response;
}

}  // namespace tabula

#include "core/tabula.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "cube/lattice.h"
#include "sampling/random_sampler.h"

namespace tabula {

Result<std::unique_ptr<Tabula>> Tabula::Initialize(const Table& table,
                                                   TabulaOptions options) {
  if (options.loss == nullptr) {
    return Status::InvalidArgument("TabulaOptions.loss must be set");
  }
  if (options.cubed_attributes.empty()) {
    return Status::InvalidArgument("at least one cubed attribute required");
  }
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument("accuracy loss threshold must be > 0");
  }
  for (const auto& col : options.loss->InputColumns()) {
    if (!table.schema().HasField(col)) {
      return Status::NotFound("loss function input column '" + col +
                              "' not in table");
    }
  }

  Stopwatch total;
  auto tabula = std::unique_ptr<Tabula>(new Tabula());
  tabula->table_ = &table;
  tabula->options_ = std::move(options);
  const TabulaOptions& opts = tabula->options_;

  TABULA_ASSIGN_OR_RETURN(
      tabula->encoder_, KeyEncoder::Make(table, opts.cubed_attributes));
  std::vector<size_t> all_cols(opts.cubed_attributes.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(tabula->packer_,
                          KeyPacker::Make(tabula->encoder_, all_cols));

  // Global random sample, sized by Serfling's inequality.
  size_t global_size =
      SerflingSampleSize(opts.serfling_epsilon, opts.serfling_delta);
  Rng rng(opts.seed);
  DatasetView all(&table);
  tabula->global_sample_rows_ = RandomSample(all, global_size, &rng);
  tabula->global_sample_ = DatasetView(&table, tabula->global_sample_rows_);
  tabula->stats_.global_sample_tuples = tabula->global_sample_.size();

  Lattice lattice(opts.cubed_attributes.size());

  // Stage 1: dry run — iceberg cell lookup via algebraic roll-up.
  TABULA_ASSIGN_OR_RETURN(
      DryRunResult dry,
      RunDryRun(table, tabula->encoder_, tabula->packer_, lattice, *opts.loss,
                tabula->global_sample_, opts.threshold));
  tabula->stats_.dry_run_millis = dry.millis;
  tabula->stats_.total_cells = dry.total_cells;
  tabula->stats_.iceberg_cells = dry.total_iceberg_cells;
  tabula->stats_.iceberg_cuboids = dry.iceberg_cuboids;

  // Stage 2: real run — local samples for iceberg cells only.
  GreedySamplerOptions sampler_opts = opts.sampler;
  sampler_opts.seed = opts.seed;
  TABULA_ASSIGN_OR_RETURN(
      RealRunResult real,
      RunRealRun(table, tabula->encoder_, tabula->packer_, lattice, dry,
                 *opts.loss, opts.threshold, sampler_opts,
                 opts.path_policy));
  tabula->stats_.real_run_millis = real.millis;
  tabula->stats_.real_run_cuboids = std::move(real.per_cuboid);
  tabula->cube_ = std::move(real.cube);

  // Stage 3: representative sample selection (or persist-all for
  // Tabula*).
  if (opts.enable_sample_selection) {
    TABULA_ASSIGN_OR_RETURN(
        SelectionResult sel,
        SelectRepresentativeSamples(table, *opts.loss, opts.threshold,
                                    opts.selection, &tabula->cube_,
                                    &tabula->samples_));
    tabula->stats_.selection_millis = sel.millis;
    tabula->stats_.representative_samples = sel.representatives;
    tabula->stats_.cells_sharing_samples = sel.cells_sharing;
  } else {
    TABULA_ASSIGN_OR_RETURN(SelectionResult sel,
                            PersistAllSamples(&tabula->cube_,
                                              &tabula->samples_));
    tabula->stats_.selection_millis = sel.millis;
    tabula->stats_.representative_samples = sel.representatives;
  }

  tabula->refreshed_rows_ = table.num_rows();
  if (opts.keep_maintenance_state) {
    TABULA_RETURN_NOT_OK(tabula->BuildMaintenanceState());
  }

  uint64_t tuple_bytes = tabula->BytesPerTuple();
  tabula->stats_.global_sample_bytes =
      tabula->global_sample_.size() * tuple_bytes;
  tabula->stats_.cube_table_bytes = tabula->cube_.MemoryBytes();
  tabula->stats_.sample_table_bytes =
      tabula->samples_.MemoryBytes(tuple_bytes);
  tabula->stats_.total_millis = total.ElapsedMillis();
  return tabula;
}

uint64_t Tabula::AddRefreshListener(std::function<void()> listener) {
  uint64_t id = next_listener_id_++;
  refresh_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Tabula::RemoveRefreshListener(uint64_t id) {
  for (auto it = refresh_listeners_.begin(); it != refresh_listeners_.end();
       ++it) {
    if (it->first == id) {
      refresh_listeners_.erase(it);
      return;
    }
  }
}

void Tabula::NotifyRefreshListeners() {
  for (auto& [id, listener] : refresh_listeners_) listener();
}

uint64_t Tabula::BytesPerTuple() const {
  if (table_ == nullptr || table_->num_rows() == 0) return sizeof(RowId);
  return std::max<uint64_t>(table_->MemoryBytes() / table_->num_rows(), 1);
}

Result<TabulaQueryResult> Tabula::Query(
    const std::vector<PredicateTerm>& where) const {
  Stopwatch timer;
  TabulaQueryResult result;

  const auto& names = encoder_.column_names();
  std::vector<uint32_t> codes(names.size(), kNullCode);
  for (const auto& term : where) {
    if (term.op != CompareOp::kEq) {
      return Status::InvalidArgument(
          "sampling-cube queries support equality predicates only (got '" +
          term.column + " " + CompareOpName(term.op) + " ...')");
    }
    auto it = std::find(names.begin(), names.end(), term.column);
    if (it == names.end()) {
      return Status::InvalidArgument(
          "'" + term.column +
          "' is not a cubed attribute; WHERE-clause attributes must be a "
          "subset of the cubed attributes of the initialization query");
    }
    size_t k = static_cast<size_t>(it - names.begin());
    if (codes[k] != kNullCode) {
      return Status::InvalidArgument("duplicate predicate on '" +
                                     term.column + "'");
    }
    auto code = encoder_.CodeForValue(k, term.literal);
    if (!code.ok()) {
      // The filter value never occurs in the data: the cell is provably
      // empty, so an empty sample is the exact answer (loss 0).
      result.empty_cell = true;
      result.sample = DatasetView(table_, {});
      result.data_system_millis = timer.ElapsedMillis();
      return result;
    }
    codes[k] = code.value();
  }

  uint64_t key = packer_.PackCodes(codes);
  const IcebergCell* cell = cube_.Find(key);
  if (cell != nullptr) {
    result.from_local_sample = true;
    result.sample = DatasetView(table_, samples_.sample(cell->sample_id));
  } else {
    // Non-iceberg cell: the dry run verified the global sample is within
    // θ of this cell's raw data.
    result.sample = DatasetView(table_, global_sample_rows_);
  }
  result.data_system_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace tabula

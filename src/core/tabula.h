#ifndef TABULA_CORE_TABULA_H_
#define TABULA_CORE_TABULA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "core/query_request.h"
#include "cube/cube_table.h"
#include "cube/dry_run.h"
#include "cube/real_run.h"
#include "loss/loss_function.h"
#include "obs/trace.h"
#include "sampling/greedy_sampler.h"
#include "selection/rep_selection.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace tabula {

/// Parameters of the initialization query (Section II): loss function,
/// threshold, cubed attributes, plus engine knobs.
struct TabulaOptions {
  /// Cubed attributes — the columns future WHERE clauses may filter on.
  std::vector<std::string> cubed_attributes;
  /// User-defined accuracy loss function (not owned; must outlive
  /// Tabula). Prefer `owned_loss`, which removes the lifetime footgun.
  const LossFunction* loss = nullptr;
  /// Owning variant of `loss` (e.g. from MakeLossFunction in
  /// loss/loss_registry.h). When both are set, `loss` wins — it is the
  /// explicit override. Shared so copies of the options (and the cube
  /// rebuilt by Refresh) keep the loss alive.
  std::shared_ptr<const LossFunction> owned_loss;
  /// The loss Initialize()/Refresh() actually use.
  const LossFunction* effective_loss() const {
    return loss != nullptr ? loss : owned_loss.get();
  }
  /// Accuracy loss threshold θ: the deterministic bound every returned
  /// sample satisfies.
  double threshold = 0.1;
  /// Serfling global-sample parameters (Section III-B1).
  double serfling_epsilon = 0.05;
  double serfling_delta = 0.01;
  /// SAMPLING(*, θ) engine knobs.
  GreedySamplerOptions sampler;
  /// Real-run data-fetch path (kAuto = the paper's cost model).
  RealRunPathPolicy path_policy = RealRunPathPolicy::kAuto;
  /// Representative-sample-selection knobs.
  SelectionOptions selection;
  /// When false, every local sample is persisted individually — the
  /// paper's Tabula* ablation (Section V, compared approach 6).
  bool enable_sample_selection = true;
  /// Keep the per-finest-cell loss states after initialization so
  /// Refresh() (incremental maintenance after appends) avoids one
  /// full-table accumulation pass. Costs one extra scan at init plus
  /// O(#finest cells) memory.
  bool keep_maintenance_state = false;
  /// Tracing sink (not owned; may be null). Initialize(), Query() and
  /// Refresh() emit spans into it; a null or kDisabled tracer costs one
  /// branch per call. Initialize() always produces spans — when this is
  /// unusable it records them into a private per-instance tracer so
  /// init_stats() stage timings are span-derived either way.
  Tracer* tracer = nullptr;
  uint64_t seed = 42;
};

/// Timing/size breakdown of Initialize(), matching the components the
/// paper plots (Figures 8–10). Stage timings are derived from the init
/// spans (see Tabula::init_trace()), not hand-timed, so the trace and
/// the stats cannot disagree.
struct TabulaInitStats {
  double global_sample_millis = 0.0;
  double dry_run_millis = 0.0;
  double real_run_millis = 0.0;
  double selection_millis = 0.0;
  double total_millis = 0.0;

  size_t global_sample_tuples = 0;
  size_t total_cells = 0;
  size_t iceberg_cells = 0;
  size_t iceberg_cuboids = 0;
  size_t representative_samples = 0;
  size_t cells_sharing_samples = 0;

  /// Memory components (Figure 9): global sample / cube table / sample
  /// table, in bytes, with tuples costed at the base table's row width.
  uint64_t global_sample_bytes = 0;
  uint64_t cube_table_bytes = 0;
  uint64_t sample_table_bytes = 0;
  uint64_t TotalBytes() const {
    return global_sample_bytes + cube_table_bytes + sample_table_bytes;
  }

  std::vector<CuboidRealRunInfo> real_run_cuboids;
};

/// Answer to a dashboard query.
struct TabulaQueryResult {
  /// The pre-materialized sample (rows of the base table).
  DatasetView sample;
  /// True when an iceberg cell's representative local sample was
  /// returned; false when the global sample sufficed (non-iceberg cell)
  /// or the cell is provably empty.
  bool from_local_sample = false;
  /// True when the queried cell provably holds no rows (a filter value
  /// that never occurs); the returned sample is empty.
  bool empty_cell = false;
  /// Middleware lookup latency (the data-system time of Tabula).
  double data_system_millis = 0.0;
  /// Shards that could not be reached while gathering this answer
  /// (sharded engine only; always empty for single-instance answers and
  /// at K=1). When non-empty, the sample stands in the global sample
  /// for the missing slices, so the deterministic θ bound no longer
  /// holds — the dashboard should mark the tile provisional.
  std::vector<uint32_t> unavailable_shards;
  /// kUnavailable detail describing the first shard failure (OK when
  /// `unavailable_shards` is empty).
  Status shard_error = Status::OK();
  /// Cube-content generation this answer was computed at (the engine's
  /// generation() at lookup time). Dashboards use it to order
  /// progressively refined answers for the same tile.
  uint64_t generation = 0;
  /// True when appended rows are still being folded into the cube AND
  /// this cell's answer is scheduled to change (the cell is in the
  /// in-flight dirty set, or the pending rows have not been classified
  /// yet, so every cell is conservatively stale). A stale answer still
  /// satisfies θ against the rows the cube has folded in — it just
  /// predates the freshest appends.
  bool stale = false;
};

/// Answer to a QueryRequest: the query result plus the id of the span
/// that timed it (0 when the request was not traced), so callers can
/// parent their own spans under it or pull the span tree out of the
/// tracer.
struct QueryResponse {
  TabulaQueryResult result;
  uint64_t span_id = 0;
};

/// \brief The Tabula middleware (the paper's primary contribution).
///
/// Sits between the SQL data system (`storage`/`exec`) and the
/// visualization dashboard (`viz`). Initialize() executes the paper's
/// CREATE TABLE ... SAMPLING(*, θ) ... GROUP BY CUBE ... HAVING loss(...)
/// > θ pipeline: global sample → dry run → real run → representative
/// sample selection. Query() then answers
/// SELECT sample FROM cube WHERE <equality predicates on cubed attrs>
/// with a readily materialized sample whose accuracy loss w.r.t. the true
/// query answer never exceeds θ (100% confidence).
///
/// Implements QueryEngine, the interface the serving layer routes
/// through, so a `Tabula` and a sharded `ShardedTabula` (src/shard/)
/// are interchangeable behind a QueryServer.
class Tabula : public QueryEngine {
 public:
  /// Builds the partially materialized sampling cube over `table`.
  /// `table` must outlive the returned instance.
  static Result<std::unique_ptr<Tabula>> Initialize(const Table& table,
                                                    TabulaOptions options);

  /// Answers a dashboard query — the canonical entry point. Every
  /// `request.where` term must be an equality predicate on a cubed
  /// attribute (the paper's WHERE-clause contract); attributes not
  /// mentioned roll up to '*'. `request.deadline_ms` and
  /// `request.consistency` are serving-layer knobs and are ignored
  /// here; `request.trace`/`request.parent_span` drive the "tabula.query"
  /// span emitted into the attached tracer.
  ///
  /// Thread-safety contract (const ⇒ safe for concurrent readers):
  /// Query() reads only state that is immutable after
  /// Initialize()/Load() — the key encoder/packer, cube table, sample
  /// table, and global-sample row list — through genuinely const paths
  /// with no hidden caches, so any number of threads may call it
  /// concurrently (the Tracer is internally synchronized). The mutating
  /// entry points (Refresh(), and replacing the instance via Load())
  /// are NOT safe against in-flight Query() calls; callers must
  /// serialize them externally — QueryServer in src/serve/ does so with
  /// a shared/exclusive lock.
  Result<QueryResponse> Query(const QueryRequest& request) const override;

  /// Deprecated bare-predicate overload; thin wrapper over
  /// Query(QueryRequest). Prefer the QueryRequest form.
  Result<TabulaQueryResult> Query(
      const std::vector<PredicateTerm>& where) const;

  const TabulaInitStats& init_stats() const { return stats_; }
  /// The spans of the last Initialize() (or full rebuild), root first:
  /// tabula.init → {global_sample, dry_run, real_run, selection}.
  /// init_stats() stage timings are these spans' durations.
  const std::vector<SpanRecord>& init_trace() const { return init_trace_; }
  const TabulaOptions& options() const { return options_; }
  const Table& base_table() const override { return *table_; }
  const CubeTable& cube_table() const { return cube_; }
  const SampleTable& sample_table() const { return samples_; }
  const DatasetView& global_sample() const override { return global_sample_; }

  /// Average bytes per materialized tuple of the base schema (used to
  /// cost sample memory like the paper's materialized tuples).
  uint64_t BytesPerTuple() const;

  /// \brief Persists the initialized sampling cube (global sample rows,
  /// cube table, sample table) to a binary file so subsequent sessions
  /// skip initialization entirely — the middleware restarts in
  /// milliseconds. Samples reference base-table row ids, so a saved cube
  /// is only valid for the exact table it was built on; Load verifies a
  /// fingerprint (cardinality + content probes) and the loss/threshold
  /// configuration before accepting the file.
  Status Save(const std::string& path) const override;

  /// Restores a cube saved with Save(). `options` must name the same
  /// loss function, threshold, and cubed attributes used at build time.
  /// By default the file must cover exactly `table.num_rows()` rows
  /// (a cube saved before the table grew is rejected as stale). With
  /// `resume_partial = true` a file saved at fewer rows is accepted as
  /// long as it matches the table prefix it was built on — the
  /// crash-recovery path for streaming ingestion, where the journal
  /// replays rows the cube has not folded yet and a Refresh() (or the
  /// ingest cycle) catches the cube up afterwards.
  static Result<std::unique_ptr<Tabula>> Load(const Table& table,
                                              TabulaOptions options,
                                              const std::string& path,
                                              bool resume_partial = false);

  // RefreshStats is inherited from QueryEngine; `Tabula::RefreshStats`
  // keeps naming it for existing callers.

  /// \brief Incremental maintenance after the base table grew (an
  /// extension beyond the paper, which builds the cube once).
  ///
  /// Call after appending rows to the base table. Re-derives every cube
  /// cell's loss state from the maintained finest-cuboid states (no
  /// 2^n GroupBys), then restores the deterministic guarantee:
  /// newly-iceberg cells get fresh local samples, cells whose raw data
  /// changed re-verify their representative sample (re-sampling on
  /// violation), and cells that dropped below θ fall back to the global
  /// sample. If an appended row introduces a previously unseen cubed
  /// attribute value, the key layout changes and a full
  /// re-initialization runs instead (reported via
  /// RefreshStats::full_rebuild). Representative-sample sharing is not
  /// re-optimized here — memory may drift above optimal until the next
  /// full initialization.
  Status Refresh(RefreshStats* stats = nullptr) override;

  /// \brief Streaming-maintenance phases (see QueryEngine). Refresh()
  /// is exactly Plan → Begin → Execute → Commit run back-to-back; the
  /// split lets the ingestion layer run the fallible/slow phases under
  /// a shared lock so queries keep serving. Plan/Execute mutate only
  /// plan-staged state plus maintenance-only members no Query() path
  /// reads (finest_states_, maintenance_bound_); Begin/Commit mutate
  /// query-visible state and need the exclusive section. At most one
  /// plan may be in flight at a time.
  Result<std::unique_ptr<IngestPlan>> PlanIngest() override;
  void BeginIngest(IngestPlan* plan) override;
  Status ExecuteIngest(IngestPlan* plan) override;
  Status CommitIngest(std::unique_ptr<IngestPlan> plan,
                      RefreshStats* stats = nullptr) override;
  size_t PendingIngestRows() const override {
    return table_->num_rows() - refreshed_rows_;
  }

  /// Monotone cube-content version, bumped by every successful
  /// Refresh() that saw appended rows (full rebuilds included). Caches
  /// layered above the middleware key their coherence off this counter.
  uint64_t generation() const override { return generation_; }

  /// Registers `listener` to run after every successful Refresh() (in
  /// the refreshing thread, once the cube has mutated) — the
  /// invalidation hook serve/ResultCache fences itself with. Returns a
  /// handle for RemoveRefreshListener(). Listener registration follows
  /// the same external-serialization contract as Refresh() itself.
  uint64_t AddRefreshListener(std::function<void()> listener) override;
  void RemoveRefreshListener(uint64_t id) override;

 private:
  Tabula() = default;

  /// Accumulates the per-finest-cell loss states over rows [0, n) for
  /// incremental maintenance.
  Status BuildMaintenanceState();

  /// The bound loss (options_.effective_loss(), cached at Initialize).
  const LossFunction* loss_fn() const { return options_.effective_loss(); }

  const Table* table_ = nullptr;
  TabulaOptions options_;
  std::vector<SpanRecord> init_trace_;
  KeyEncoder encoder_;
  KeyPacker packer_;
  std::vector<RowId> global_sample_rows_;
  DatasetView global_sample_;
  CubeTable cube_;
  SampleTable samples_;
  TabulaInitStats stats_;

  /// Incremental-maintenance state (see Refresh()).
  std::unique_ptr<BoundLoss> maintenance_bound_;
  FlatHashMap<LossState> finest_states_;
  size_t refreshed_rows_ = 0;
  /// Row ids of every finest cell over rows [0, finest_rows_indexed_),
  /// each list ascending. Lets ingest cycles gather any cell's raw rows
  /// without a table scan — a coarser cell's rows are the union of its
  /// finest descendants'. Maintenance-only and extended in place during
  /// PlanIngest: a pure function of the (append-only) table prefix it
  /// covers, so it stays valid across abandoned cycles; the watermark
  /// makes re-indexing idempotent. Costs one RowId per indexed row —
  /// the same trade keep_maintenance_state already opts into.
  FlatHashMap<std::vector<RowId>> finest_rows_;
  size_t finest_rows_indexed_ = 0;
  /// Cells the in-flight ingest cycle will change (packed keys across
  /// all cuboids), published by BeginIngest and cleared by CommitIngest.
  /// Query() reads it for precise staleness tagging; empty while rows
  /// are pending means "not classified yet" → every cell is
  /// conservatively stale.
  FlatHashSet pending_dirty_;

  /// Fires every registered refresh listener (after a cube mutation).
  void NotifyRefreshListeners();

  uint64_t generation_ = 0;
  uint64_t next_listener_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void()>>> refresh_listeners_;
};

}  // namespace tabula

#endif  // TABULA_CORE_TABULA_H_

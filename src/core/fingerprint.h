#ifndef TABULA_CORE_FINGERPRINT_H_
#define TABULA_CORE_FINGERPRINT_H_

#include <cstdint>

#include "storage/table.h"

namespace tabula {

/// Cheap content fingerprint of the base table: cardinality plus a few
/// probed cells, enough to catch "wrong table" mistakes without a full
/// hash pass. Persisted cube files (Tabula::Save and the shard
/// manifest) embed it and refuse to load against a different table.
uint64_t TableFingerprint(const Table& table);

/// Fingerprint of the first `limit_rows` rows only. Appends never
/// rewrite existing rows, so a cube saved when it had folded
/// `limit_rows` rows can verify its prefix against a table that has
/// since grown — the streaming-ingestion crash-recovery path.
/// Identity: TableFingerprint(t) == TableFingerprint(t, t.num_rows()).
uint64_t TableFingerprint(const Table& table, size_t limit_rows);

/// FNV fold of a shard's row-id list (count + every id). The shard
/// manifest stores one per shard so Load can verify the persisted
/// partition matches what it reconstructs.
uint64_t RowListFingerprint(const std::vector<RowId>& rows);

}  // namespace tabula

#endif  // TABULA_CORE_FINGERPRINT_H_

#ifndef TABULA_CORE_FINGERPRINT_H_
#define TABULA_CORE_FINGERPRINT_H_

#include <cstdint>

#include "storage/table.h"

namespace tabula {

/// Cheap content fingerprint of the base table: cardinality plus a few
/// probed cells, enough to catch "wrong table" mistakes without a full
/// hash pass. Persisted cube files (Tabula::Save and the shard
/// manifest) embed it and refuse to load against a different table.
uint64_t TableFingerprint(const Table& table);

/// FNV fold of a shard's row-id list (count + every id). The shard
/// manifest stores one per shard so Load can verify the persisted
/// partition matches what it reconstructs.
uint64_t RowListFingerprint(const std::vector<RowId>& rows);

}  // namespace tabula

#endif  // TABULA_CORE_FINGERPRINT_H_

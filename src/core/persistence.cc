#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_io.h"
#include "common/stopwatch.h"
#include "core/fingerprint.h"
#include "core/tabula.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {

constexpr uint32_t kMagic = 0x54424C43;  // "TBLC"
/// v1: fingerprint of the full table. v2 adds the covered row count and
/// fingerprints only that prefix, so a cube saved mid-ingest (rows
/// appended but not folded yet) stays loadable after a crash once the
/// journal replays the tail. v1 files are still accepted.
constexpr uint32_t kVersion = 2;

}  // namespace

uint64_t TableFingerprint(const Table& table, size_t limit_rows) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(limit_rows);
  mix(table.num_columns());
  if (limit_rows == 0) return h;
  for (size_t probe = 0; probe < 16; ++probe) {
    RowId row = static_cast<RowId>((probe * 2654435761ull) % limit_rows);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      Value v = table.GetValue(c, row);
      if (v.is_string()) {
        for (char ch : v.AsString()) mix(static_cast<uint64_t>(ch));
      } else if (v.is_int64()) {
        mix(static_cast<uint64_t>(v.AsInt64()));
      } else if (v.is_double()) {
        double d = v.AsDouble();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
      }
    }
  }
  return h;
}

uint64_t TableFingerprint(const Table& table) {
  return TableFingerprint(table, table.num_rows());
}

uint64_t RowListFingerprint(const std::vector<RowId>& rows) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(rows.size());
  for (RowId r : rows) mix(r);
  return h;
}

Status Tabula::Save(const std::string& path) const {
  // Write-temp-then-rename: the destination is replaced atomically only
  // after every byte landed, so a failure mid-write (a full disk, an
  // injected "persistence.write" fault) leaves any prior cube file at
  // `path` intact instead of half-overwritten.
  const std::string tmp = path + ".tmp";
  Status written = [&]() -> Status {
    TABULA_FAULT_POINT("persistence.open");
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    BinaryWriter w(&out);
    w.WriteU32(kMagic);
    w.WriteU32(kVersion);
    // The cube describes exactly the rows it has folded in; fingerprint
    // that prefix so pending (appended-but-unfolded) rows don't tie the
    // file to a table state the cube never saw.
    w.WriteU64(refreshed_rows_);
    w.WriteU64(TableFingerprint(*table_, refreshed_rows_));
    w.WriteString(loss_fn()->name());
    w.WriteDouble(options_.threshold);
    w.WriteU64(options_.cubed_attributes.size());
    for (const auto& attr : options_.cubed_attributes) w.WriteString(attr);

    w.WriteVector(global_sample_rows_);
    TABULA_FAULT_POINT("persistence.write");

    w.WriteU64(cube_.size());
    for (const auto& cell : cube_.cells()) {
      w.WriteU64(cell.key);
      w.WriteU32(cell.cuboid);
      w.WriteU32(cell.sample_id);
    }
    TABULA_FAULT_POINT("persistence.write");
    w.WriteU64(samples_.size());
    for (uint32_t id = 0; id < samples_.size(); ++id) {
      w.WriteVector(samples_.sample(id));
    }

    // Stats snapshot so a loaded cube still reports its build costs.
    w.WriteDouble(stats_.dry_run_millis);
    w.WriteDouble(stats_.real_run_millis);
    w.WriteDouble(stats_.selection_millis);
    w.WriteU64(stats_.total_cells);
    w.WriteU64(stats_.iceberg_cells);
    w.WriteU64(stats_.iceberg_cuboids);
    w.WriteU64(stats_.cells_sharing_samples);
    TABULA_FAULT_POINT("persistence.write");

    out.flush();
    if (!w.ok() || !out) {
      return Status::IOError("write failed for '" + tmp + "'");
    }
    return Status::OK();
  }();
  std::error_code ec;
  if (!written.ok()) {
    std::filesystem::remove(tmp, ec);  // best effort; ignore errors
    return written;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::string reason = ec.message();
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot move '" + tmp + "' over '" + path +
                           "': " + reason);
  }
  return Status::OK();
}

Result<std::unique_ptr<Tabula>> Tabula::Load(const Table& table,
                                             TabulaOptions options,
                                             const std::string& path,
                                             bool resume_partial) {
  const LossFunction* loss = options.effective_loss();
  if (loss == nullptr) {
    return Status::InvalidArgument("TabulaOptions.loss must be set");
  }
  Stopwatch timer;
  TABULA_FAULT_POINT("persistence.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  BinaryReader r(&in);

  TABULA_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  TABULA_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (magic != kMagic) {
    return Status::ParseError("'" + path + "' is not a Tabula cube file");
  }
  if (version != 1 && version != kVersion) {
    return Status::ParseError("unsupported cube file version " +
                              std::to_string(version));
  }
  // v1 files cover the whole table by construction; v2 files record the
  // row count the cube had folded at save time.
  uint64_t saved_rows = table.num_rows();
  if (version >= 2) {
    TABULA_ASSIGN_OR_RETURN(saved_rows, r.ReadU64());
  }
  if (saved_rows > table.num_rows()) {
    return Status::InvalidArgument(
        "cube file covers " + std::to_string(saved_rows) +
        " rows but the table only has " + std::to_string(table.num_rows()));
  }
  if (saved_rows != table.num_rows() && !resume_partial) {
    return Status::InvalidArgument(
        "cube file covers only " + std::to_string(saved_rows) + " of " +
        std::to_string(table.num_rows()) +
        " rows (stale cube); pass resume_partial to load it and Refresh() "
        "to catch up");
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t fingerprint, r.ReadU64());
  const uint64_t want_fingerprint =
      version >= 2 ? TableFingerprint(table, saved_rows)
                   : TableFingerprint(table);
  if (fingerprint != want_fingerprint) {
    return Status::InvalidArgument(
        "cube file was built on a different table (fingerprint mismatch); "
        "re-run Initialize()");
  }
  TABULA_ASSIGN_OR_RETURN(std::string loss_name, r.ReadString());
  if (loss_name != loss->name()) {
    return Status::InvalidArgument("cube was built with loss '" + loss_name +
                                   "', options specify '" + loss->name() +
                                   "'");
  }
  TABULA_ASSIGN_OR_RETURN(double threshold, r.ReadDouble());
  if (threshold != options.threshold) {
    return Status::InvalidArgument(
        "cube was built with threshold " + std::to_string(threshold) +
        ", options specify " + std::to_string(options.threshold));
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t num_attrs, r.ReadU64());
  std::vector<std::string> attrs(num_attrs);
  for (auto& attr : attrs) {
    TABULA_ASSIGN_OR_RETURN(attr, r.ReadString());
  }
  if (attrs != options.cubed_attributes) {
    return Status::InvalidArgument(
        "cube file's cubed attributes differ from options");
  }

  auto tabula = std::unique_ptr<Tabula>(new Tabula());
  tabula->table_ = &table;
  tabula->options_ = std::move(options);
  TABULA_ASSIGN_OR_RETURN(tabula->encoder_, KeyEncoder::Make(table, attrs));
  std::vector<size_t> all_cols(attrs.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(tabula->packer_,
                          KeyPacker::Make(tabula->encoder_, all_cols));

  TABULA_ASSIGN_OR_RETURN(tabula->global_sample_rows_,
                          r.ReadVector<RowId>());
  for (RowId row : tabula->global_sample_rows_) {
    if (row >= saved_rows) {
      return Status::DataLoss("cube file's global sample references row " +
                              std::to_string(row) + " beyond the table");
    }
  }
  tabula->global_sample_ =
      DatasetView(&table, tabula->global_sample_rows_);

  TABULA_ASSIGN_OR_RETURN(uint64_t num_cells, r.ReadU64());
  for (uint64_t i = 0; i < num_cells; ++i) {
    IcebergCell cell;
    TABULA_ASSIGN_OR_RETURN(cell.key, r.ReadU64());
    TABULA_ASSIGN_OR_RETURN(cell.cuboid, r.ReadU32());
    TABULA_ASSIGN_OR_RETURN(cell.sample_id, r.ReadU32());
    tabula->cube_.Add(std::move(cell));
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t num_samples, r.ReadU64());
  for (uint64_t i = 0; i < num_samples; ++i) {
    TABULA_ASSIGN_OR_RETURN(std::vector<RowId> rows, r.ReadVector<RowId>());
    // Validate row ids against the covered prefix before trusting the
    // file (samples can only reference rows the cube had folded).
    for (RowId row : rows) {
      if (row >= saved_rows) {
        return Status::DataLoss("cube file references row " +
                                std::to_string(row) + " beyond the table");
      }
    }
    tabula->samples_.Add(std::move(rows));
  }
  for (const auto& cell : tabula->cube_.cells()) {
    if (cell.sample_id != kInvalidSampleId &&
        cell.sample_id >= tabula->samples_.size()) {
      return Status::DataLoss("cube file has a dangling sample link");
    }
  }

  TabulaInitStats& stats = tabula->stats_;
  TABULA_ASSIGN_OR_RETURN(stats.dry_run_millis, r.ReadDouble());
  TABULA_ASSIGN_OR_RETURN(stats.real_run_millis, r.ReadDouble());
  TABULA_ASSIGN_OR_RETURN(stats.selection_millis, r.ReadDouble());
  TABULA_ASSIGN_OR_RETURN(stats.total_cells, r.ReadU64());
  TABULA_ASSIGN_OR_RETURN(stats.iceberg_cells, r.ReadU64());
  TABULA_ASSIGN_OR_RETURN(stats.iceberg_cuboids, r.ReadU64());
  TABULA_ASSIGN_OR_RETURN(stats.cells_sharing_samples, r.ReadU64());
  stats.global_sample_tuples = tabula->global_sample_.size();
  stats.representative_samples = tabula->samples_.size();
  uint64_t tuple_bytes = tabula->BytesPerTuple();
  stats.global_sample_bytes = tabula->global_sample_.size() * tuple_bytes;
  stats.cube_table_bytes = tabula->cube_.MemoryBytes();
  stats.sample_table_bytes = tabula->samples_.MemoryBytes(tuple_bytes);
  stats.total_millis = timer.ElapsedMillis();  // load time, not build time
  // The cube answers for exactly the rows the file covered; a resumed
  // load leaves the tail pending for the next Refresh()/ingest cycle
  // (and tags answers stale until it runs).
  tabula->refreshed_rows_ = saved_rows;
  return tabula;
}

}  // namespace tabula

#ifndef TABULA_CUBE_COST_MODEL_H_
#define TABULA_CUBE_COST_MODEL_H_

#include <cstddef>

namespace tabula {

/// \brief The real-run path chooser (paper Inequation 1).
///
/// For a cuboid with i iceberg cells out of k total cells over a table of
/// cardinality N, the equi-join path (prune rows to iceberg cells, then
/// group only those) beats the full-GroupBy path when
///
///   CostPrune + CostGroupPrunedData < CostGroupAllData
///   N*i_sel + (i/k)*N*log_k((i/k)*N)  <  N*log_k(N)
///
/// where the paper's per-row prune factor is the iceberg-cell membership
/// test. The condition assumes each cell holds the same amount of raw
/// data. Returns true when the join (prune) path should be used.
bool PreferJoinPath(double table_rows, double iceberg_cells,
                    double total_cells);

/// Estimated fraction of rows surviving the prune ((i/k), clamped).
double IcebergRowFraction(double iceberg_cells, double total_cells);

}  // namespace tabula

#endif  // TABULA_CUBE_COST_MODEL_H_

#include "cube/lattice.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace tabula {

Lattice::Lattice(size_t num_attributes) : n_(num_attributes) {
  TABULA_CHECK(num_attributes > 0 && num_attributes < 31);
}

std::vector<size_t> Lattice::GroupingList(CuboidMask mask) const {
  std::vector<size_t> cols;
  for (size_t i = 0; i < n_; ++i) {
    if (mask & (CuboidMask{1} << i)) cols.push_back(i);
  }
  return cols;
}

std::vector<CuboidMask> Lattice::Parents(CuboidMask mask) const {
  std::vector<CuboidMask> parents;
  for (size_t i = 0; i < n_; ++i) {
    CuboidMask bit = CuboidMask{1} << i;
    if (!(mask & bit)) parents.push_back(mask | bit);
  }
  return parents;
}

std::vector<CuboidMask> Lattice::Children(CuboidMask mask) const {
  std::vector<CuboidMask> children;
  for (size_t i = 0; i < n_; ++i) {
    CuboidMask bit = CuboidMask{1} << i;
    if (mask & bit) children.push_back(mask & ~bit);
  }
  return children;
}

std::vector<CuboidMask> Lattice::TopDownOrder() const {
  std::vector<CuboidMask> order(num_cuboids());
  for (size_t m = 0; m < order.size(); ++m) {
    order[m] = static_cast<CuboidMask>(m);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](CuboidMask a, CuboidMask b) {
                     return std::popcount(a) > std::popcount(b);
                   });
  return order;
}

std::string Lattice::Label(CuboidMask mask,
                           const std::vector<std::string>& names) {
  if (mask == 0) return "All";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (mask & (CuboidMask{1} << i)) {
      if (!out.empty()) out += ",";
      out += names[i];
    }
  }
  return out;
}

}  // namespace tabula

#ifndef TABULA_CUBE_LATTICE_H_
#define TABULA_CUBE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tabula {

/// A cuboid is identified by the bitmask of cubed attributes on its
/// grouping list (bit i set == attribute i grouped). The full cube lattice
/// over n attributes has 2^n cuboids: mask (2^n − 1) is the finest cuboid
/// (all attributes, the paper's "DCM" vertex) and mask 0 is the "All"
/// vertex.
using CuboidMask = uint32_t;

/// \brief The cuboid lattice of a sampling cube (paper Figure 5a).
class Lattice {
 public:
  explicit Lattice(size_t num_attributes);

  size_t num_attributes() const { return n_; }
  size_t num_cuboids() const { return size_t{1} << n_; }
  CuboidMask finest() const {
    return static_cast<CuboidMask>((uint64_t{1} << n_) - 1);
  }

  /// Attribute indices on the grouping list of `mask`, ascending.
  std::vector<size_t> GroupingList(CuboidMask mask) const;

  /// Direct parents of `mask` in the lattice: cuboids with exactly one
  /// more grouped attribute (the roll-up sources).
  std::vector<CuboidMask> Parents(CuboidMask mask) const;

  /// Direct children (one fewer grouped attribute).
  std::vector<CuboidMask> Children(CuboidMask mask) const;

  /// Masks ordered by descending popcount (finest first) — the roll-up
  /// evaluation order.
  std::vector<CuboidMask> TopDownOrder() const;

  /// Human-readable cuboid label like "D,C,M" given attribute names.
  static std::string Label(CuboidMask mask,
                           const std::vector<std::string>& names);

 private:
  size_t n_;
};

}  // namespace tabula

#endif  // TABULA_CUBE_LATTICE_H_

#ifndef TABULA_CUBE_DRY_RUN_H_
#define TABULA_CUBE_DRY_RUN_H_

#include <vector>

#include "common/status.h"
#include "cube/lattice.h"
#include "exec/group_by.h"
#include "loss/loss_function.h"
#include "storage/table.h"

namespace tabula {

/// Dry-run output for one cuboid: its iceberg cell table (paper Table I)
/// plus the exact cell count the cost model needs.
struct CuboidDryRunInfo {
  CuboidMask mask = 0;
  /// Exact number of (non-empty) cells in this cuboid.
  size_t total_cells = 0;
  /// Full-width packed keys of the cells whose
  /// loss(cell data, Sam_global) > θ.
  std::vector<uint64_t> iceberg_keys;
};

/// Result of the dry-run stage (Section III-B1).
struct DryRunResult {
  /// Indexed by cuboid mask (size 2^n).
  std::vector<CuboidDryRunInfo> cuboids;
  size_t total_cells = 0;
  size_t total_iceberg_cells = 0;
  /// Cuboids containing at least one iceberg cell.
  size_t iceberg_cuboids = 0;
  double millis = 0.0;
};

/// \brief Stage 1 of cube initialization: iceberg-cell lookup.
///
/// Because the loss function is algebraic while SAMPLING() is holistic,
/// Tabula first materializes only the loss measure: one full-table GroupBy
/// at the finest cuboid accumulates per-cell LossStates against the fixed
/// global sample, and every coarser cuboid is derived by merging states
/// along the lattice — the raw table is scanned exactly once. Cells whose
/// finalized loss exceeds θ are iceberg cells; everything else will be
/// answered by the global sample with the guarantee already verified.
///
/// The fold runs on the flat-hash engine (common/flat_hash.h) with
/// deterministic chunking, the lattice roll-up is parallel across
/// same-level cuboids, and every cuboid's iceberg_keys come out sorted —
/// so the result is byte-identical at any thread count.
///
/// \param packer full-width packer over all cubed attributes.
Result<DryRunResult> RunDryRun(const Table& table, const KeyEncoder& encoder,
                               const KeyPacker& packer, const Lattice& lattice,
                               const LossFunction& loss,
                               const DatasetView& global_sample, double theta);

/// The pre-flat-hash dry-run engine — std::unordered_map folds, serial
/// lattice roll-up, thread-count-dependent chunking — preserved as the
/// reference implementation for bench_fig10_cubing_overhead's
/// before/after comparison and as a differential oracle for the new
/// engine (iceberg-cell sets must match modulo ordering).
Result<DryRunResult> RunDryRunLegacy(const Table& table,
                                     const KeyEncoder& encoder,
                                     const KeyPacker& packer,
                                     const Lattice& lattice,
                                     const LossFunction& loss,
                                     const DatasetView& global_sample,
                                     double theta);

}  // namespace tabula

#endif  // TABULA_CUBE_DRY_RUN_H_

#ifndef TABULA_CUBE_REAL_RUN_H_
#define TABULA_CUBE_REAL_RUN_H_

#include <vector>

#include "common/status.h"
#include "cube/cube_table.h"
#include "cube/dry_run.h"
#include "sampling/greedy_sampler.h"

namespace tabula {

/// How the real run fetches iceberg-cell raw data per cuboid. kAuto is
/// the paper's behaviour (Inequation 1 decides); the forced modes exist
/// for the cost-model ablation bench.
enum class RealRunPathPolicy { kAuto, kAlwaysJoin, kAlwaysGroupBy };

/// Per-cuboid diagnostics from the real-run stage.
struct CuboidRealRunInfo {
  CuboidMask mask = 0;
  size_t iceberg_cells = 0;
  /// Which side of Inequation 1 won: true = equi-join/prune path.
  bool used_join_path = false;
  double millis = 0.0;
};

/// Result of the real-run stage (Section III-B2, Algorithm 2).
struct RealRunResult {
  CubeTable cube;
  std::vector<CuboidRealRunInfo> per_cuboid;
  /// Tuples across all local samples (pre-selection).
  size_t local_sample_tuples = 0;
  double millis = 0.0;
};

/// \brief Stage 2 of cube initialization: sampling-cube construction.
///
/// Skips every cuboid without iceberg cells, and for each iceberg cuboid
/// fetches the raw data of its iceberg cells — via a full GroupBy or via
/// the iceberg-cell semi-join, whichever the cost model picks — then runs
/// the greedy SAMPLING() aggregate (Algorithm 1) per iceberg cell.
Result<RealRunResult> RunRealRun(
    const Table& table, const KeyEncoder& encoder, const KeyPacker& packer,
    const Lattice& lattice, const DryRunResult& dry_run,
    const LossFunction& loss, double theta,
    const GreedySamplerOptions& sampler_options,
    RealRunPathPolicy path_policy = RealRunPathPolicy::kAuto);

}  // namespace tabula

#endif  // TABULA_CUBE_REAL_RUN_H_

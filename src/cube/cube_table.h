#ifndef TABULA_CUBE_CUBE_TABLE_H_
#define TABULA_CUBE_CUBE_TABLE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "cube/lattice.h"
#include "exec/group_by.h"
#include "storage/table.h"

namespace tabula {

/// Sample-table id sentinel for "not yet assigned".
inline constexpr uint32_t kInvalidSampleId =
    std::numeric_limits<uint32_t>::max();

/// \brief One iceberg cell of the sampling cube (paper Figure 4a / 6).
///
/// `key` is the cell's full-width packed key: every cubed attribute has a
/// code, with the reserved '*' pattern in non-grouped positions, so a key
/// uniquely identifies a cell across all cuboids. Raw rows are row ids
/// into the base table (see DESIGN.md §5) and are only held between the
/// real-run stage and sample selection; the normalized cube table keeps
/// just key → sample_id.
struct IcebergCell {
  uint64_t key = 0;
  CuboidMask cuboid = 0;
  /// Cell raw data (row ids); cleared once selection finishes.
  std::vector<RowId> raw_rows;
  /// The cell's own local sample from Algorithm 1 (row ids).
  std::vector<RowId> local_sample;
  /// Link into the SampleTable after representative selection.
  uint32_t sample_id = kInvalidSampleId;
};

/// \brief The cube table: all iceberg cells, indexed by packed key.
class CubeTable {
 public:
  /// Adds a cell; keys must be unique.
  void Add(IcebergCell cell);

  /// Cell by packed key; nullptr when the key is not an iceberg cell.
  const IcebergCell* Find(uint64_t key) const;
  IcebergCell* FindMutable(uint64_t key);

  /// Removes a cell (e.g. it stopped being iceberg after a refresh).
  /// Returns false when the key is absent.
  bool Remove(uint64_t key);

  size_t size() const { return cells_.size(); }
  const std::vector<IcebergCell>& cells() const { return cells_; }
  std::vector<IcebergCell>& mutable_cells() { return cells_; }

  /// Frees every cell's raw-row vector (normalization after selection).
  void DropRawData();

  /// Bytes of the normalized cube table (keys + links), the paper's
  /// "cube table" memory component.
  uint64_t MemoryBytes() const;

  /// Bytes transiently held by raw-row id vectors (diagnostics).
  uint64_t RawDataBytes() const;

  /// Pre-sizes the key index for `expected_cells` cells (from dry-run
  /// iceberg counts) so the real-run build never rehashes.
  void Reserve(size_t expected_cells);

 private:
  std::vector<IcebergCell> cells_;
  /// Packed key → position in cells_. Flat-hash: Remove uses
  /// backward-shift deletion, so refresh churn never degrades probes.
  FlatHashMap<size_t> index_;
};

/// \brief The sample table: representative samples only (paper Figure 4b).
class SampleTable {
 public:
  /// Persists a sample; returns its id.
  uint32_t Add(std::vector<RowId> sample);

  const std::vector<RowId>& sample(uint32_t id) const { return samples_[id]; }
  size_t size() const { return samples_.size(); }

  /// Total persisted tuples across samples.
  size_t TotalTuples() const;

  /// Bytes of persisted samples, the paper's "sample table" component.
  /// `bytes_per_tuple` models the width of a materialized tuple (the
  /// paper persists full tuples; we persist row ids and scale by the
  /// schema's tuple width for an apples-to-apples memory report).
  uint64_t MemoryBytes(uint64_t bytes_per_tuple = sizeof(RowId)) const;

 private:
  std::vector<std::vector<RowId>> samples_;
};

}  // namespace tabula

#endif  // TABULA_CUBE_CUBE_TABLE_H_

#include "cube/dry_run.h"

#include <algorithm>
#include <unordered_map>

#include "common/flat_hash.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace tabula {

namespace {

/// Minimum cells per pool worker before a roll-up level or the finalize
/// pass is worth fanning out. Merging or finalizing a cell costs on the
/// order of 100ns; waking a blocked worker costs tens of microseconds (and
/// far more when workers are oversubscribed), so a dispatch must hand each
/// worker thousands of cells to pay for itself.
constexpr size_t kCellsPerWorkerDispatch = 8192;

size_t Popcount(CuboidMask mask) {
  size_t count = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++count;
  }
  return count;
}

}  // namespace

Result<DryRunResult> RunDryRun(const Table& table, const KeyEncoder& encoder,
                               const KeyPacker& packer, const Lattice& lattice,
                               const LossFunction& loss,
                               const DatasetView& global_sample,
                               double theta) {
  Stopwatch timer;
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> bound,
                          loss.Bind(table, global_sample));

  // One full-table GroupBy at the finest cuboid, folding each row into its
  // cell's algebraic LossState. Deterministic chunking + chunk-order merge
  // + sorted emission make the result a pure function of the data: the
  // finest cuboid's cells arrive in ascending packed-key order, the
  // canonical parent order for the roll-up below.
  DatasetView all(&table);
  GroupedStates<LossState> finest = GroupAccumulateSorted<LossState>(
      encoder, packer, all,
      [&bound](LossState* state, RowId row) { bound->Accumulate(state, row); });

  const size_t n = lattice.num_attributes();

  // Cuboid cells live in dense parallel key/state arrays in insertion
  // order; a flat-hash index maps a packed key to its array position
  // only while the cuboid is being built and is dropped afterwards. This
  // keeps every hash-table slot at 12 bytes — the probe arrays stay
  // cache-resident and a growth rehash moves uint32 indices — while the
  // ~150-byte LossStates are only ever written sequentially, once each.
  struct CuboidCells {
    std::vector<uint64_t> keys;
    std::vector<LossState> states;
  };
  std::vector<CuboidCells> cells(lattice.num_cuboids());
  cells[lattice.finest()].keys = std::move(finest.keys);
  cells[lattice.finest()].states = std::move(finest.states);

  // Roll up along the lattice, finest first, one popcount level at a time.
  // Each cuboid derives from a parent with exactly one more grouped
  // attribute by nulling that attribute's position and merging states — no
  // further table scans. Cuboids at one level only read parent-level cells
  // and write their own, so a level's cuboids run in parallel without
  // locking; determinism holds because each cuboid folds its parent in
  // array order and the parent's order is itself deterministic.
  std::vector<std::vector<CuboidMask>> levels(n);
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    if (mask == lattice.finest()) continue;
    levels[Popcount(mask)].push_back(mask);
  }
  auto& pool = ThreadPool::Global();
  for (size_t level = n; level-- > 0;) {
    const std::vector<CuboidMask>& cuboids = levels[level];
    auto roll_up = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        CuboidMask mask = cuboids[i];
        // Lowest attribute not in this mask picks the roll-up parent.
        size_t j = 0;
        while (j < n && (mask & (CuboidMask{1} << j))) ++j;
        CuboidMask parent = mask | (CuboidMask{1} << j);
        const CuboidCells& parent_cells = cells[parent];
        CuboidCells& my_cells = cells[mask];
        FlatHashMap<uint32_t> index;
        for (size_t p = 0; p < parent_cells.keys.size(); ++p) {
          uint64_t rolled = packer.WithNull(parent_cells.keys[p], j);
          auto [slot, inserted] = index.TryEmplace(
              rolled, static_cast<uint32_t>(my_cells.keys.size()));
          if (inserted) {
            my_cells.keys.push_back(rolled);
            my_cells.states.push_back(parent_cells.states[p]);
          } else {
            my_cells.states[*slot].Merge(parent_cells.states[p]);
          }
        }
      }
    };
    // Fan a level out only when every worker gets enough cells to amortize
    // its wake-up (a blocked pool dispatch costs milliseconds when workers
    // are oversubscribed); small levels run inline on the calling thread.
    // Safe for determinism: cuboids are independent, so the result never
    // depends on which thread runs them.
    size_t level_cells = 0;
    for (CuboidMask mask : cuboids) {
      size_t j = 0;
      while (j < n && (mask & (CuboidMask{1} << j))) ++j;
      level_cells += cells[mask | (CuboidMask{1} << j)].keys.size();
    }
    if (level_cells < kCellsPerWorkerDispatch * pool.num_threads()) {
      roll_up(0, cuboids.size());
    } else {
      pool.ParallelFor(cuboids.size(), roll_up);
    }
  }

  // Finalize every cuboid in parallel (BoundLoss::Finalize is const and
  // thread-compatible); iceberg keys are emitted in ascending packed-key
  // order — the deterministic output contract.
  DryRunResult result;
  result.cuboids.resize(lattice.num_cuboids());
  auto finalize = [&](size_t begin, size_t end) {
    for (size_t m = begin; m < end; ++m) {
      CuboidDryRunInfo& info = result.cuboids[m];
      info.mask = static_cast<CuboidMask>(m);
      info.total_cells = cells[m].keys.size();
      for (size_t i = 0; i < cells[m].keys.size(); ++i) {
        if (bound->Finalize(cells[m].states[i]) > theta) {
          info.iceberg_keys.push_back(cells[m].keys[i]);
        }
      }
      std::sort(info.iceberg_keys.begin(), info.iceberg_keys.end());
    }
  };
  size_t lattice_cells = 0;
  for (const auto& c : cells) lattice_cells += c.keys.size();
  if (lattice_cells < kCellsPerWorkerDispatch * pool.num_threads()) {
    finalize(0, lattice.num_cuboids());
  } else {
    pool.ParallelFor(lattice.num_cuboids(), finalize);
  }
  for (const CuboidDryRunInfo& info : result.cuboids) {
    result.total_cells += info.total_cells;
    result.total_iceberg_cells += info.iceberg_keys.size();
    if (!info.iceberg_keys.empty()) ++result.iceberg_cuboids;
  }
  result.millis = timer.ElapsedMillis();
  return result;
}

Result<DryRunResult> RunDryRunLegacy(const Table& table,
                                     const KeyEncoder& encoder,
                                     const KeyPacker& packer,
                                     const Lattice& lattice,
                                     const LossFunction& loss,
                                     const DatasetView& global_sample,
                                     double theta) {
  Stopwatch timer;
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> bound,
                          loss.Bind(table, global_sample));

  // Thread-chunked fold into per-chunk std::unordered_maps, merged in
  // chunk order — the pre-flat-hash engine, preserved verbatim.
  auto& pool = ThreadPool::Global();
  DatasetView all(&table);
  size_t num_rows = all.size();
  std::vector<std::unordered_map<uint64_t, LossState>> partials(
      pool.num_threads() + 1);
  pool.ParallelForChunked(num_rows, [&](size_t chunk, size_t begin,
                                        size_t end) {
    auto& map = partials[chunk];
    for (size_t i = begin; i < end; ++i) {
      RowId r = all.row(i);
      bound->Accumulate(&map[packer.PackRow(encoder, r)], r);
    }
  });
  std::unordered_map<uint64_t, LossState> finest;
  for (auto& partial : partials) {
    if (finest.empty()) {
      finest = std::move(partial);
      continue;
    }
    for (auto& [key, state] : partial) {
      auto [it, inserted] = finest.try_emplace(key, std::move(state));
      if (!inserted) it->second.Merge(state);
    }
  }

  const size_t n = lattice.num_attributes();
  std::vector<std::unordered_map<uint64_t, LossState>> maps(
      lattice.num_cuboids());
  maps[lattice.finest()] = std::move(finest);

  // Serial roll-up, coarsest-last.
  for (CuboidMask mask : lattice.TopDownOrder()) {
    if (mask == lattice.finest()) continue;
    size_t j = 0;
    while (j < n && (mask & (CuboidMask{1} << j))) ++j;
    CuboidMask parent = mask | (CuboidMask{1} << j);
    const auto& parent_map = maps[parent];
    auto& my_map = maps[mask];
    my_map.reserve(parent_map.size());
    for (const auto& [key, state] : parent_map) {
      uint64_t rolled = packer.WithNull(key, j);
      auto [it, inserted] = my_map.try_emplace(rolled, state);
      if (!inserted) it->second.Merge(state);
    }
  }

  DryRunResult result;
  result.cuboids.resize(lattice.num_cuboids());
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    CuboidDryRunInfo& info = result.cuboids[m];
    info.mask = mask;
    info.total_cells = maps[m].size();
    for (const auto& [key, state] : maps[m]) {
      if (bound->Finalize(state) > theta) {
        info.iceberg_keys.push_back(key);
      }
    }
    result.total_cells += info.total_cells;
    result.total_iceberg_cells += info.iceberg_keys.size();
    if (!info.iceberg_keys.empty()) ++result.iceberg_cuboids;
  }
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace tabula

#include "cube/dry_run.h"

#include <bit>
#include <unordered_map>

#include "common/stopwatch.h"

namespace tabula {

Result<DryRunResult> RunDryRun(const Table& table, const KeyEncoder& encoder,
                               const KeyPacker& packer, const Lattice& lattice,
                               const LossFunction& loss,
                               const DatasetView& global_sample,
                               double theta) {
  Stopwatch timer;
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> bound,
                          loss.Bind(table, global_sample));

  // One full-table GroupBy at the finest cuboid, folding each row into its
  // cell's algebraic LossState.
  DatasetView all(&table);
  std::unordered_map<uint64_t, LossState> finest =
      GroupAccumulate<LossState>(
          encoder, packer, all,
          [&bound](LossState* state, RowId row) {
            bound->Accumulate(state, row);
          });

  const size_t n = lattice.num_attributes();
  std::vector<std::unordered_map<uint64_t, LossState>> maps(
      lattice.num_cuboids());
  maps[lattice.finest()] = std::move(finest);

  // Roll up along the lattice, finest first. Each cuboid derives from a
  // parent with exactly one more grouped attribute by nulling that
  // attribute's position and merging states — no further table scans.
  for (CuboidMask mask : lattice.TopDownOrder()) {
    if (mask == lattice.finest()) continue;
    // Lowest attribute not in this mask picks the roll-up parent.
    size_t j = 0;
    while (j < n && (mask & (CuboidMask{1} << j))) ++j;
    CuboidMask parent = mask | (CuboidMask{1} << j);
    const auto& parent_map = maps[parent];
    auto& my_map = maps[mask];
    my_map.reserve(parent_map.size());
    for (const auto& [key, state] : parent_map) {
      uint64_t rolled = packer.WithNull(key, j);
      auto [it, inserted] = my_map.try_emplace(rolled, state);
      if (!inserted) it->second.Merge(state);
    }
  }

  DryRunResult result;
  result.cuboids.resize(lattice.num_cuboids());
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    CuboidDryRunInfo& info = result.cuboids[m];
    info.mask = mask;
    info.total_cells = maps[m].size();
    for (const auto& [key, state] : maps[m]) {
      if (bound->Finalize(state) > theta) {
        info.iceberg_keys.push_back(key);
      }
    }
    result.total_cells += info.total_cells;
    result.total_iceberg_cells += info.iceberg_keys.size();
    if (!info.iceberg_keys.empty()) ++result.iceberg_cuboids;
  }
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace tabula

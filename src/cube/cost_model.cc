#include "cube/cost_model.h"

#include <algorithm>
#include <cmath>

namespace tabula {

namespace {
/// log base k, guarded for degenerate bases/arguments.
double LogBaseK(double k, double x) {
  if (k <= 1.0 || x <= 1.0) return 0.0;
  return std::log(x) / std::log(k);
}
}  // namespace

double IcebergRowFraction(double iceberg_cells, double total_cells) {
  if (total_cells <= 0.0) return 1.0;
  return std::clamp(iceberg_cells / total_cells, 0.0, 1.0);
}

bool PreferJoinPath(double table_rows, double iceberg_cells,
                    double total_cells) {
  if (iceberg_cells <= 0.0) return true;  // nothing to group at all
  if (total_cells <= 1.0) return false;   // single cell: GroupBy is a scan
  const double n = table_rows;
  const double i = iceberg_cells;
  const double k = total_cells;
  const double pruned = IcebergRowFraction(i, k) * n;
  const double cost_prune = n * i;
  const double cost_group_pruned = pruned * LogBaseK(k, pruned);
  const double cost_group_all = n * LogBaseK(k, n);
  return cost_prune + cost_group_pruned < cost_group_all;
}

}  // namespace tabula

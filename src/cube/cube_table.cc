#include "cube/cube_table.h"

#include "common/logging.h"

namespace tabula {

void CubeTable::Add(IcebergCell cell) {
  auto [slot, inserted] = index_.TryEmplace(cell.key);
  TABULA_CHECK(inserted);
  *slot = cells_.size();
  cells_.push_back(std::move(cell));
}

void CubeTable::Reserve(size_t expected_cells) {
  cells_.reserve(expected_cells);
  index_.reserve(expected_cells);
}

const IcebergCell* CubeTable::Find(uint64_t key) const {
  const size_t* idx = index_.Find(key);
  return idx == nullptr ? nullptr : &cells_[*idx];
}

IcebergCell* CubeTable::FindMutable(uint64_t key) {
  const size_t* idx = index_.Find(key);
  return idx == nullptr ? nullptr : &cells_[*idx];
}

bool CubeTable::Remove(uint64_t key) {
  const size_t* found = index_.Find(key);
  if (found == nullptr) return false;
  size_t idx = *found;
  index_.Erase(key);
  size_t last = cells_.size() - 1;
  if (idx != last) {
    cells_[idx] = std::move(cells_[last]);
    *index_.Find(cells_[idx].key) = idx;
  }
  cells_.pop_back();
  return true;
}

void CubeTable::DropRawData() {
  for (auto& cell : cells_) {
    cell.raw_rows.clear();
    cell.raw_rows.shrink_to_fit();
    cell.local_sample.clear();
    cell.local_sample.shrink_to_fit();
  }
}

uint64_t CubeTable::MemoryBytes() const {
  // Normalized layout: packed key + cuboid + sample link per cell, plus
  // the hash index.
  uint64_t per_cell = sizeof(uint64_t) + sizeof(CuboidMask) + sizeof(uint32_t);
  return cells_.size() * per_cell + index_.MemoryBytes();
}

uint64_t CubeTable::RawDataBytes() const {
  uint64_t bytes = 0;
  for (const auto& cell : cells_) {
    bytes += cell.raw_rows.capacity() * sizeof(RowId);
    bytes += cell.local_sample.capacity() * sizeof(RowId);
  }
  return bytes;
}

uint32_t SampleTable::Add(std::vector<RowId> sample) {
  samples_.push_back(std::move(sample));
  return static_cast<uint32_t>(samples_.size() - 1);
}

size_t SampleTable::TotalTuples() const {
  size_t total = 0;
  for (const auto& s : samples_) total += s.size();
  return total;
}

uint64_t SampleTable::MemoryBytes(uint64_t bytes_per_tuple) const {
  uint64_t bytes = 0;
  for (const auto& s : samples_) {
    bytes += s.size() * bytes_per_tuple + sizeof(std::vector<RowId>);
  }
  return bytes;
}

}  // namespace tabula

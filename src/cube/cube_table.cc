#include "cube/cube_table.h"

#include "common/logging.h"

namespace tabula {

void CubeTable::Add(IcebergCell cell) {
  auto [it, inserted] = index_.emplace(cell.key, cells_.size());
  TABULA_CHECK(inserted);
  (void)it;
  cells_.push_back(std::move(cell));
}

const IcebergCell* CubeTable::Find(uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &cells_[it->second];
}

IcebergCell* CubeTable::FindMutable(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &cells_[it->second];
}

bool CubeTable::Remove(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  size_t idx = it->second;
  index_.erase(it);
  size_t last = cells_.size() - 1;
  if (idx != last) {
    cells_[idx] = std::move(cells_[last]);
    index_[cells_[idx].key] = idx;
  }
  cells_.pop_back();
  return true;
}

void CubeTable::DropRawData() {
  for (auto& cell : cells_) {
    cell.raw_rows.clear();
    cell.raw_rows.shrink_to_fit();
    cell.local_sample.clear();
    cell.local_sample.shrink_to_fit();
  }
}

uint64_t CubeTable::MemoryBytes() const {
  // Normalized layout: packed key + cuboid + sample link per cell, plus
  // the hash index.
  uint64_t per_cell = sizeof(uint64_t) + sizeof(CuboidMask) + sizeof(uint32_t);
  return cells_.size() * per_cell +
         index_.size() * (sizeof(uint64_t) + sizeof(size_t) + 16);
}

uint64_t CubeTable::RawDataBytes() const {
  uint64_t bytes = 0;
  for (const auto& cell : cells_) {
    bytes += cell.raw_rows.capacity() * sizeof(RowId);
    bytes += cell.local_sample.capacity() * sizeof(RowId);
  }
  return bytes;
}

uint32_t SampleTable::Add(std::vector<RowId> sample) {
  samples_.push_back(std::move(sample));
  return static_cast<uint32_t>(samples_.size() - 1);
}

size_t SampleTable::TotalTuples() const {
  size_t total = 0;
  for (const auto& s : samples_) total += s.size();
  return total;
}

uint64_t SampleTable::MemoryBytes(uint64_t bytes_per_tuple) const {
  uint64_t bytes = 0;
  for (const auto& s : samples_) {
    bytes += s.size() * bytes_per_tuple + sizeof(std::vector<RowId>);
  }
  return bytes;
}

}  // namespace tabula

#include "cube/real_run.h"

#include <algorithm>
#include <mutex>

#include "common/flat_hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "cube/cost_model.h"

namespace tabula {

namespace {

using CellRowsMap = FlatHashMap<std::vector<RowId>>;

/// Merges per-chunk maps in ascending chunk order; each cell's rows end
/// up in ascending row order because chunks are contiguous ascending
/// ranges. Deterministic chunking makes the merged map a pure function
/// of the data.
CellRowsMap MergeChunkMaps(std::vector<CellRowsMap> partials,
                           size_t expected_cells) {
  if (partials.empty()) return CellRowsMap();
  CellRowsMap merged = std::move(partials[0]);
  merged.reserve(expected_cells);
  for (size_t c = 1; c < partials.size(); ++c) {
    partials[c].ForEach([&](uint64_t key, std::vector<RowId>& rows) {
      auto [slot, inserted] = merged.TryEmplace(key);
      if (inserted) {
        *slot = std::move(rows);
      } else {
        slot->insert(slot->end(), rows.begin(), rows.end());
      }
    });
  }
  return merged;
}

/// Semi-join path: one scan; only rows whose cell key is an iceberg key
/// are collected (paper's "equi-join with the iceberg cell table").
CellRowsMap CollectJoinPath(const Table& table, const KeyEncoder& enc,
                            const KeyPacker& packer, CuboidMask mask,
                            const FlatHashSet& iceberg) {
  auto& pool = ThreadPool::Global();
  size_t chunks = ThreadPool::DeterministicChunkCount(table.num_rows());
  std::vector<CellRowsMap> partials(chunks);
  pool.ParallelForDeterministic(
      table.num_rows(), [&](size_t chunk, size_t begin, size_t end) {
        auto& map = partials[chunk];
        map.reserve(iceberg.size());
        for (size_t r = begin; r < end; ++r) {
          uint64_t key =
              packer.PackRowMasked(enc, static_cast<RowId>(r), mask);
          if (iceberg.Contains(key)) {
            map[key].push_back(static_cast<RowId>(r));
          }
        }
      });
  return MergeChunkMaps(std::move(partials), iceberg.size());
}

/// Full-GroupBy path: group *all* rows of the cuboid, then keep iceberg
/// groups only.
CellRowsMap CollectGroupByPath(const Table& table, const KeyEncoder& enc,
                               const KeyPacker& packer, CuboidMask mask,
                               const FlatHashSet& iceberg,
                               size_t total_cells) {
  auto& pool = ThreadPool::Global();
  size_t chunks = ThreadPool::DeterministicChunkCount(table.num_rows());
  std::vector<CellRowsMap> partials(chunks);
  pool.ParallelForDeterministic(
      table.num_rows(), [&](size_t chunk, size_t begin, size_t end) {
        auto& map = partials[chunk];
        map.reserve(std::min(total_cells, end - begin));
        for (size_t r = begin; r < end; ++r) {
          uint64_t key =
              packer.PackRowMasked(enc, static_cast<RowId>(r), mask);
          map[key].push_back(static_cast<RowId>(r));
        }
      });
  CellRowsMap merged = MergeChunkMaps(std::move(partials), total_cells);
  // Filter to iceberg cells.
  CellRowsMap filtered(iceberg.size());
  merged.ForEach([&](uint64_t key, std::vector<RowId>& rows) {
    if (iceberg.Contains(key)) filtered[key] = std::move(rows);
  });
  return filtered;
}

}  // namespace

Result<RealRunResult> RunRealRun(
    const Table& table, const KeyEncoder& encoder, const KeyPacker& packer,
    const Lattice& lattice, const DryRunResult& dry_run,
    const LossFunction& loss, double theta,
    const GreedySamplerOptions& sampler_options,
    RealRunPathPolicy path_policy) {
  Stopwatch total;
  RealRunResult result;
  GreedySampler sampler(&loss, theta, sampler_options);
  auto& pool = ThreadPool::Global();
  result.cube.Reserve(dry_run.total_iceberg_cells);

  for (const CuboidDryRunInfo& info : dry_run.cuboids) {
    if (info.iceberg_keys.empty()) continue;  // skip non-iceberg cuboids
    Stopwatch cuboid_timer;

    FlatHashSet iceberg(info.iceberg_keys.size());
    for (uint64_t key : info.iceberg_keys) iceberg.Insert(key);
    bool join_path;
    switch (path_policy) {
      case RealRunPathPolicy::kAlwaysJoin:
        join_path = true;
        break;
      case RealRunPathPolicy::kAlwaysGroupBy:
        join_path = false;
        break;
      case RealRunPathPolicy::kAuto:
      default:
        join_path =
            PreferJoinPath(static_cast<double>(table.num_rows()),
                           static_cast<double>(info.iceberg_keys.size()),
                           static_cast<double>(info.total_cells));
        break;
    }
    CellRowsMap cell_rows =
        join_path
            ? CollectJoinPath(table, encoder, packer, info.mask, iceberg)
            : CollectGroupByPath(table, encoder, packer, info.mask, iceberg,
                                 info.total_cells);

    // Draw a local sample for each iceberg cell (parallel across cells;
    // the greedy sampler runs inline inside workers). Cells are laid out
    // in ascending key order so cube insertion order — and every
    // downstream ordering derived from it — is deterministic.
    std::vector<IcebergCell> cells;
    cells.reserve(cell_rows.size());
    for (auto& [key, rows] : cell_rows.ExtractSorted()) {
      IcebergCell cell;
      cell.key = key;
      cell.cuboid = info.mask;
      cell.raw_rows = std::move(rows);
      cells.push_back(std::move(cell));
    }
    Status first_error = Status::OK();
    std::mutex error_mu;
    pool.ParallelFor(cells.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        DatasetView raw(&table, cells[i].raw_rows);
        auto sample = sampler.Sample(raw);
        if (!sample.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = sample.status();
          continue;
        }
        cells[i].local_sample = std::move(sample).value();
      }
    });
    TABULA_RETURN_NOT_OK(first_error);

    for (auto& cell : cells) {
      result.local_sample_tuples += cell.local_sample.size();
      result.cube.Add(std::move(cell));
    }

    CuboidRealRunInfo cuboid_info;
    cuboid_info.mask = info.mask;
    cuboid_info.iceberg_cells = info.iceberg_keys.size();
    cuboid_info.used_join_path = join_path;
    cuboid_info.millis = cuboid_timer.ElapsedMillis();
    result.per_cuboid.push_back(cuboid_info);
  }

  (void)lattice;
  result.millis = total.ElapsedMillis();
  return result;
}

}  // namespace tabula

#include "cube/real_run.h"

#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "cube/cost_model.h"

namespace tabula {

namespace {

using CellRowsMap = std::unordered_map<uint64_t, std::vector<RowId>>;

/// Semi-join path: one scan; only rows whose cell key is an iceberg key
/// are collected (paper's "equi-join with the iceberg cell table").
CellRowsMap CollectJoinPath(const Table& table, const KeyEncoder& enc,
                            const KeyPacker& packer, CuboidMask mask,
                            const std::unordered_set<uint64_t>& iceberg) {
  auto& pool = ThreadPool::Global();
  std::vector<CellRowsMap> partials(pool.num_threads() + 1);
  pool.ParallelForChunked(
      table.num_rows(), [&](size_t chunk, size_t begin, size_t end) {
        auto& map = partials[chunk];
        for (size_t r = begin; r < end; ++r) {
          uint64_t key =
              packer.PackRowMasked(enc, static_cast<RowId>(r), mask);
          if (iceberg.count(key) > 0) {
            map[key].push_back(static_cast<RowId>(r));
          }
        }
      });
  CellRowsMap merged;
  for (auto& partial : partials) {
    if (merged.empty()) {
      merged = std::move(partial);
      continue;
    }
    for (auto& [key, rows] : partial) {
      auto& dst = merged[key];
      dst.insert(dst.end(), rows.begin(), rows.end());
    }
  }
  return merged;
}

/// Full-GroupBy path: group *all* rows of the cuboid, then keep iceberg
/// groups only.
CellRowsMap CollectGroupByPath(const Table& table, const KeyEncoder& enc,
                               const KeyPacker& packer, CuboidMask mask,
                               const std::unordered_set<uint64_t>& iceberg) {
  auto& pool = ThreadPool::Global();
  std::vector<CellRowsMap> partials(pool.num_threads() + 1);
  pool.ParallelForChunked(
      table.num_rows(), [&](size_t chunk, size_t begin, size_t end) {
        auto& map = partials[chunk];
        for (size_t r = begin; r < end; ++r) {
          uint64_t key =
              packer.PackRowMasked(enc, static_cast<RowId>(r), mask);
          map[key].push_back(static_cast<RowId>(r));
        }
      });
  CellRowsMap merged;
  for (auto& partial : partials) {
    if (merged.empty()) {
      merged = std::move(partial);
      continue;
    }
    for (auto& [key, rows] : partial) {
      auto& dst = merged[key];
      dst.insert(dst.end(), rows.begin(), rows.end());
    }
  }
  // Filter to iceberg cells.
  CellRowsMap filtered;
  for (auto& [key, rows] : merged) {
    if (iceberg.count(key) > 0) filtered.emplace(key, std::move(rows));
  }
  return filtered;
}

}  // namespace

Result<RealRunResult> RunRealRun(
    const Table& table, const KeyEncoder& encoder, const KeyPacker& packer,
    const Lattice& lattice, const DryRunResult& dry_run,
    const LossFunction& loss, double theta,
    const GreedySamplerOptions& sampler_options,
    RealRunPathPolicy path_policy) {
  Stopwatch total;
  RealRunResult result;
  GreedySampler sampler(&loss, theta, sampler_options);
  auto& pool = ThreadPool::Global();

  for (const CuboidDryRunInfo& info : dry_run.cuboids) {
    if (info.iceberg_keys.empty()) continue;  // skip non-iceberg cuboids
    Stopwatch cuboid_timer;

    std::unordered_set<uint64_t> iceberg(info.iceberg_keys.begin(),
                                         info.iceberg_keys.end());
    bool join_path;
    switch (path_policy) {
      case RealRunPathPolicy::kAlwaysJoin:
        join_path = true;
        break;
      case RealRunPathPolicy::kAlwaysGroupBy:
        join_path = false;
        break;
      case RealRunPathPolicy::kAuto:
      default:
        join_path =
            PreferJoinPath(static_cast<double>(table.num_rows()),
                           static_cast<double>(info.iceberg_keys.size()),
                           static_cast<double>(info.total_cells));
        break;
    }
    CellRowsMap cell_rows =
        join_path
            ? CollectJoinPath(table, encoder, packer, info.mask, iceberg)
            : CollectGroupByPath(table, encoder, packer, info.mask, iceberg);

    // Draw a local sample for each iceberg cell (parallel across cells;
    // the greedy sampler runs inline inside workers).
    std::vector<IcebergCell> cells;
    cells.reserve(cell_rows.size());
    for (auto& [key, rows] : cell_rows) {
      IcebergCell cell;
      cell.key = key;
      cell.cuboid = info.mask;
      cell.raw_rows = std::move(rows);
      cells.push_back(std::move(cell));
    }
    Status first_error = Status::OK();
    std::mutex error_mu;
    pool.ParallelFor(cells.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        DatasetView raw(&table, cells[i].raw_rows);
        auto sample = sampler.Sample(raw);
        if (!sample.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = sample.status();
          continue;
        }
        cells[i].local_sample = std::move(sample).value();
      }
    });
    TABULA_RETURN_NOT_OK(first_error);

    for (auto& cell : cells) {
      result.local_sample_tuples += cell.local_sample.size();
      result.cube.Add(std::move(cell));
    }

    CuboidRealRunInfo cuboid_info;
    cuboid_info.mask = info.mask;
    cuboid_info.iceberg_cells = info.iceberg_keys.size();
    cuboid_info.used_join_path = join_path;
    cuboid_info.millis = cuboid_timer.ElapsedMillis();
    result.per_cuboid.push_back(cuboid_info);
  }

  (void)lattice;
  result.millis = total.ElapsedMillis();
  return result;
}

}  // namespace tabula

#ifndef TABULA_BASELINES_POISAM_H_
#define TABULA_BASELINES_POISAM_H_

#include <string>

#include "baselines/approach.h"
#include "loss/loss_function.h"
#include "sampling/greedy_sampler.h"

namespace tabula {

/// \brief The POIsam baseline [Guo et al., SIGMOD'18] as modified by the
/// paper (Section V, compared approach 3).
///
/// Like SampleOnTheFly, but with an extra random-sampling step: each query
/// first draws a random sample of the extracted population — sized by the
/// law of large numbers with the paper's defaults (5% theoretical error
/// bound, 10% confidence) — and then runs Algorithm 1 *on the random
/// sample*. Faster online sampling, but the returned sample's loss is
/// measured against the random subset, not the full population, so the
/// actual loss can exceed θ with small probability — the behaviour
/// Figure 11b/13b/14b shows.
class PoiSam final : public Approach {
 public:
  /// Which greedy objective runs on the random pre-sample.
  enum class Mode {
    /// The paper's modification: grow the sample until loss <= θ
    /// (w.r.t. the pre-sample).
    kThresholdDriven,
    /// The original POIsam [Guo et al.]: fixed output size, minimize
    /// loss — every query returns exactly `fixed_size` tuples (or the
    /// whole population when smaller).
    kFixedSize,
  };

  PoiSam(const Table& table, const LossFunction* loss, double theta,
         double error_bound = 0.05, double confidence = 0.10,
         GreedySamplerOptions sampler_options = {}, uint64_t seed = 42,
         Mode mode = Mode::kThresholdDriven, size_t fixed_size = 100)
      : table_(&table),
        loss_(loss),
        theta_(theta),
        error_bound_(error_bound),
        confidence_(confidence),
        sampler_options_(sampler_options),
        seed_(seed),
        mode_(mode),
        fixed_size_(fixed_size) {}

  std::string name() const override { return "POIsam"; }
  Status Prepare() override { return Status::OK(); }
  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override;
  uint64_t MemoryBytes() const override { return 0; }

 private:
  const Table* table_;
  const LossFunction* loss_;
  double theta_;
  double error_bound_;
  double confidence_;
  GreedySamplerOptions sampler_options_;
  uint64_t seed_;
  Mode mode_;
  size_t fixed_size_;
  uint64_t query_counter_ = 0;
};

}  // namespace tabula

#endif  // TABULA_BASELINES_POISAM_H_

#ifndef TABULA_BASELINES_TABULA_APPROACH_H_
#define TABULA_BASELINES_TABULA_APPROACH_H_

#include <memory>
#include <string>

#include "baselines/approach.h"
#include "core/tabula.h"

namespace tabula {

/// \brief Tabula (and Tabula*) wrapped behind the common Approach
/// interface so the bench harness treats all systems uniformly.
class TabulaApproach final : public Approach {
 public:
  /// \param enable_selection false builds Tabula* (no representative
  ///        sample selection — Section V, approach 6).
  TabulaApproach(const Table& table, TabulaOptions options,
                 bool enable_selection = true)
      : table_(&table), options_(std::move(options)) {
    options_.enable_sample_selection = enable_selection;
  }

  std::string name() const override {
    return options_.enable_sample_selection ? "Tabula" : "Tabula*";
  }

  Status Prepare() override {
    TABULA_ASSIGN_OR_RETURN(tabula_, Tabula::Initialize(*table_, options_));
    return Status::OK();
  }

  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override {
    if (tabula_ == nullptr) {
      return Status::Internal("TabulaApproach::Prepare() was not called");
    }
    TABULA_ASSIGN_OR_RETURN(QueryResponse response,
                            tabula_->Query(QueryRequest(where)));
    return response.result.sample;
  }

  uint64_t MemoryBytes() const override {
    return tabula_ != nullptr ? tabula_->init_stats().TotalBytes() : 0;
  }

  /// The wrapped middleware (valid after Prepare()).
  const Tabula* tabula() const { return tabula_.get(); }

 private:
  const Table* table_;
  TabulaOptions options_;
  std::unique_ptr<Tabula> tabula_;
};

/// \brief NoSampling: the raw data system with no middleware — every
/// query returns the full population (Table II's "No sampling" row).
class NoSampling final : public Approach {
 public:
  explicit NoSampling(const Table& table) : table_(&table) {}

  std::string name() const override { return "NoSampling"; }
  Status Prepare() override { return Status::OK(); }
  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override {
    TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                            BoundPredicate::Bind(*table_, where));
    return DatasetView(table_, pred.FilterAll());
  }
  uint64_t MemoryBytes() const override { return 0; }

 private:
  const Table* table_;
};

}  // namespace tabula

#endif  // TABULA_BASELINES_TABULA_APPROACH_H_

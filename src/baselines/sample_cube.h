#ifndef TABULA_BASELINES_SAMPLE_CUBE_H_
#define TABULA_BASELINES_SAMPLE_CUBE_H_

#include <string>
#include <vector>

#include "baselines/approach.h"
#include "common/flat_hash.h"
#include "exec/group_by.h"
#include "loss/loss_function.h"
#include "sampling/greedy_sampler.h"

namespace tabula {

/// \brief The straightforward materialized sampling cubes of Section V:
/// FullSamCube (approach 7) and PartSamCube (approach 8).
///
/// Both run the classic CUBE pipeline — (2^n) full-table GroupBys, one
/// per cuboid, with no dry-run shortcut and no representative-sample
/// selection:
///
/// * kFull materializes a local sample for *every* cube cell;
/// * kPartial executes the initialization query literally — it checks the
///   HAVING clause loss(cell, Sam_global) > θ per cell and materializes
///   samples for iceberg cells only, answering the rest from the global
///   sample.
///
/// Their initialization time and memory footprint are what Figure 10
/// compares Tabula against (≈40× slower, 50–100×/5–8× larger).
class MaterializedSampleCube final : public Approach {
 public:
  enum class Mode { kFull, kPartial };

  MaterializedSampleCube(const Table& table,
                         std::vector<std::string> attributes,
                         const LossFunction* loss, double theta, Mode mode,
                         GreedySamplerOptions sampler_options = {},
                         uint64_t seed = 42)
      : table_(&table),
        attributes_(std::move(attributes)),
        loss_(loss),
        theta_(theta),
        mode_(mode),
        sampler_options_(sampler_options),
        seed_(seed) {}

  std::string name() const override {
    return mode_ == Mode::kFull ? "FullSamCube" : "PartSamCube";
  }
  Status Prepare() override;
  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override;
  uint64_t MemoryBytes() const override;

  size_t num_materialized_cells() const { return cell_samples_.size(); }
  size_t total_cells() const { return total_cells_; }

 private:
  const Table* table_;
  std::vector<std::string> attributes_;
  const LossFunction* loss_;
  double theta_;
  Mode mode_;
  GreedySamplerOptions sampler_options_;
  uint64_t seed_;

  KeyEncoder encoder_;
  KeyPacker packer_;
  std::vector<RowId> global_rows_;
  FlatHashMap<std::vector<RowId>> cell_samples_;
  size_t total_cells_ = 0;
};

}  // namespace tabula

#endif  // TABULA_BASELINES_SAMPLE_CUBE_H_

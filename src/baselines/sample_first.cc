#include "baselines/sample_first.h"

#include "common/rng.h"
#include "sampling/random_sampler.h"

namespace tabula {

Status SampleFirst::Prepare() {
  uint64_t tuple_bytes = TupleBytes(*table_);
  size_t target = static_cast<size_t>(sample_bytes_ / tuple_bytes);
  if (target == 0) target = 1;
  Rng rng(seed_);
  DatasetView all(table_);
  sample_rows_ = RandomSample(all, target, &rng);
  return Status::OK();
}

Result<DatasetView> SampleFirst::Execute(
    const std::vector<PredicateTerm>& where) {
  if (sample_rows_.empty()) {
    return Status::Internal("SampleFirst::Prepare() was not called");
  }
  TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                          BoundPredicate::Bind(*table_, where));
  // Full sequential filtering on the pre-built sample (Section V-E).
  return DatasetView(table_, pred.FilterRows(sample_rows_));
}

}  // namespace tabula

#include "baselines/sample_on_the_fly.h"

namespace tabula {

Result<DatasetView> SampleOnTheFly::Execute(
    const std::vector<PredicateTerm>& where) {
  TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                          BoundPredicate::Bind(*table_, where));
  // Full table scan for the query population — unavoidable here.
  DatasetView population(table_, pred.FilterAll());
  GreedySampler sampler(loss_, theta_, sampler_options_);
  TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample,
                          sampler.Sample(population));
  return DatasetView(table_, std::move(sample));
}

}  // namespace tabula

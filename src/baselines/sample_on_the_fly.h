#ifndef TABULA_BASELINES_SAMPLE_ON_THE_FLY_H_
#define TABULA_BASELINES_SAMPLE_ON_THE_FLY_H_

#include <string>

#include "baselines/approach.h"
#include "loss/loss_function.h"
#include "sampling/greedy_sampler.h"

namespace tabula {

/// \brief The SampleOnTheFly baseline (Section I / V, "SamFly").
///
/// No pre-built samples: every query scans the whole table, extracts the
/// matching population, and runs the greedy accuracy-loss-aware sampler
/// (Algorithm 1) on it. Deterministic accuracy — at the cost of touching
/// the raw data on every dashboard interaction, which is exactly the
/// data-system time Tabula eliminates.
class SampleOnTheFly final : public Approach {
 public:
  SampleOnTheFly(const Table& table, const LossFunction* loss, double theta,
                 GreedySamplerOptions sampler_options = {})
      : table_(&table),
        loss_(loss),
        theta_(theta),
        sampler_options_(sampler_options) {}

  std::string name() const override { return "SamFly"; }
  Status Prepare() override { return Status::OK(); }
  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override;
  uint64_t MemoryBytes() const override { return 0; }

 private:
  const Table* table_;
  const LossFunction* loss_;
  double theta_;
  GreedySamplerOptions sampler_options_;
};

}  // namespace tabula

#endif  // TABULA_BASELINES_SAMPLE_ON_THE_FLY_H_

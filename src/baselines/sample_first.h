#ifndef TABULA_BASELINES_SAMPLE_FIRST_H_
#define TABULA_BASELINES_SAMPLE_FIRST_H_

#include <string>
#include <vector>

#include "baselines/approach.h"

namespace tabula {

/// \brief The SampleFirst baseline (Section I / V, "SamFirst").
///
/// Draws one random sample of the entire table up front and runs every
/// dashboard query as a full sequential filter over that sample. Fast and
/// flat in data-system time, but with no accuracy guarantee — small
/// populations (e.g. the airport rides of Figure 2) can be missed
/// entirely. The paper evaluates 100MB and 1GB pre-built sample sizes.
class SampleFirst final : public Approach {
 public:
  /// \param sample_bytes pre-built sample budget (e.g. 100 MB analog).
  SampleFirst(const Table& table, uint64_t sample_bytes, std::string label,
              uint64_t seed = 42)
      : table_(&table),
        sample_bytes_(sample_bytes),
        label_(std::move(label)),
        seed_(seed) {}

  std::string name() const override { return label_; }
  Status Prepare() override;
  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override;
  uint64_t MemoryBytes() const override {
    return sample_rows_.size() * TupleBytes(*table_);
  }

  size_t sample_size() const { return sample_rows_.size(); }

 private:
  const Table* table_;
  uint64_t sample_bytes_;
  std::string label_;
  uint64_t seed_;
  std::vector<RowId> sample_rows_;
};

}  // namespace tabula

#endif  // TABULA_BASELINES_SAMPLE_FIRST_H_

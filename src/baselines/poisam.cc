#include "baselines/poisam.h"

#include "common/rng.h"
#include "sampling/random_sampler.h"

namespace tabula {

Result<DatasetView> PoiSam::Execute(const std::vector<PredicateTerm>& where) {
  TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                          BoundPredicate::Bind(*table_, where));
  DatasetView population(table_, pred.FilterAll());

  // Law-of-large-numbers random pre-sample of the query result; its size
  // barely changes with the population size (Section V-E).
  size_t k = SerflingSampleSize(error_bound_, confidence_);
  Rng rng(seed_ + (++query_counter_));
  std::vector<RowId> random_rows = RandomSample(population, k, &rng);
  DatasetView random_view(table_, std::move(random_rows));

  // Algorithm 1 over the random sample — loss is guaranteed w.r.t. the
  // random sample only, hence the occasional threshold violation vs. the
  // true population.
  GreedySamplerOptions opts = sampler_options_;
  double threshold = theta_;
  if (mode_ == Mode::kFixedSize) {
    // Original POIsam objective: exactly fixed_size_ tuples chosen to
    // minimize loss (an unreachable threshold keeps greedy running until
    // the size cap stops it).
    opts.max_sample_size = fixed_size_;
    threshold = 0.0;
  }
  GreedySampler sampler(loss_, threshold, opts);
  TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample,
                          sampler.Sample(random_view));
  return DatasetView(table_, std::move(sample));
}

}  // namespace tabula

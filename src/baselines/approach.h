#ifndef TABULA_BASELINES_APPROACH_H_
#define TABULA_BASELINES_APPROACH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace tabula {

/// \brief Common interface of the compared approaches (Section V).
///
/// An approach prepares any pre-built state once (timed as initialization)
/// and then answers dashboard queries; the bench harness measures
/// per-query data-system time, the actual accuracy loss of the returned
/// answer, and the pre-built memory footprint.
class Approach {
 public:
  virtual ~Approach() = default;

  /// Display name used in bench tables (e.g. "SamFirst-100MB").
  virtual std::string name() const = 0;

  /// Builds pre-materialized state (samples, cubes). May be a no-op.
  virtual Status Prepare() = 0;

  /// Answers one dashboard query (a conjunction of equality predicates on
  /// the experiment attributes); returns the tuples handed to the
  /// visualization dashboard.
  virtual Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) = 0;

  /// Bytes of pre-built/materialized samples ("memory footprint"). The
  /// on-the-fly approaches return 0, matching the paper's accounting.
  virtual uint64_t MemoryBytes() const = 0;

  /// True for approaches that answer with a scalar conclusion instead of
  /// sample tuples (the paper's SnappyData "takes a query and directly
  /// renders a conclusion, which is AVG"; it has no sample-visualization
  /// time and its actual loss is the relative error of that scalar).
  virtual bool ReturnsScalarAnswer() const { return false; }

  /// The scalar conclusion for scalar-answer approaches.
  virtual Result<double> ExecuteScalar(
      const std::vector<PredicateTerm>& where) {
    (void)where;
    return Status::NotImplemented(name() + " returns sample tuples");
  }
};

/// Average materialized-tuple width of `table`, shared by all approaches
/// so memory reports are comparable.
inline uint64_t TupleBytes(const Table& table) {
  if (table.num_rows() == 0) return 1;
  uint64_t b = table.MemoryBytes() / table.num_rows();
  return b > 0 ? b : 1;
}

}  // namespace tabula

#endif  // TABULA_BASELINES_APPROACH_H_

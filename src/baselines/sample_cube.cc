#include "baselines/sample_cube.h"

#include <algorithm>

#include "common/rng.h"
#include "sampling/random_sampler.h"

namespace tabula {

Status MaterializedSampleCube::Prepare() {
  TABULA_ASSIGN_OR_RETURN(encoder_, KeyEncoder::Make(*table_, attributes_));
  std::vector<size_t> all_cols(attributes_.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(packer_, KeyPacker::Make(encoder_, all_cols));

  Rng rng(seed_);
  DatasetView all(table_);
  global_rows_ = RandomSample(all, SerflingSampleSize(), &rng);
  DatasetView global_view(table_, global_rows_);

  GreedySamplerOptions sampler_opts = sampler_options_;
  sampler_opts.seed = seed_;
  GreedySampler sampler(loss_, theta_, sampler_opts);

  const size_t n = attributes_.size();
  const uint32_t num_cuboids = uint32_t{1} << n;
  // The classic CUBE pipeline: one full-table GroupBy per cuboid. This is
  // intentionally the straightforward 2^n-pass plan the paper's Tabula
  // avoids with the dry run.
  for (uint32_t mask = 0; mask < num_cuboids; ++mask) {
    FlatHashMap<std::vector<RowId>> groups;
    for (size_t r = 0; r < table_->num_rows(); ++r) {
      groups[packer_.PackRowMasked(encoder_, static_cast<RowId>(r), mask)]
          .push_back(static_cast<RowId>(r));
    }
    total_cells_ += groups.size();
    for (auto& [key, rows] : groups.ExtractSorted()) {
      DatasetView cell(table_, rows);
      if (mode_ == Mode::kPartial) {
        // The initialization query's HAVING clause, evaluated literally.
        TABULA_ASSIGN_OR_RETURN(double global_loss,
                                loss_->Loss(cell, global_view));
        if (global_loss <= theta_) continue;  // non-iceberg cell
      }
      TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample, sampler.Sample(cell));
      cell_samples_[key] = std::move(sample);
    }
  }
  return Status::OK();
}

Result<DatasetView> MaterializedSampleCube::Execute(
    const std::vector<PredicateTerm>& where) {
  std::vector<uint32_t> codes(attributes_.size(), kNullCode);
  for (const auto& term : where) {
    auto it = std::find(attributes_.begin(), attributes_.end(), term.column);
    if (it == attributes_.end()) {
      return Status::InvalidArgument("'" + term.column +
                                     "' is not a cubed attribute");
    }
    size_t k = static_cast<size_t>(it - attributes_.begin());
    auto code = encoder_.CodeForValue(k, term.literal);
    if (!code.ok()) return DatasetView(table_, {});  // provably empty cell
    codes[k] = code.value();
  }
  uint64_t key = packer_.PackCodes(codes);
  const std::vector<RowId>* hit = cell_samples_.Find(key);
  if (hit != nullptr) {
    return DatasetView(table_, *hit);
  }
  if (mode_ == Mode::kPartial) {
    return DatasetView(table_, global_rows_);  // non-iceberg cell
  }
  // Full cube: an unmaterialized key means the cell has no rows.
  return DatasetView(table_, {});
}

uint64_t MaterializedSampleCube::MemoryBytes() const {
  uint64_t tuples = global_rows_.size();
  cell_samples_.ForEach([&](uint64_t, const std::vector<RowId>& sample) {
    tuples += sample.size();
  });
  return tuples * TupleBytes(*table_);
}

}  // namespace tabula

#include "baselines/snappy_like.h"

#include <algorithm>
#include <cmath>

namespace tabula {

namespace {
/// 99%-confidence z-score for the CLT bound certification.
constexpr double kZScore = 2.576;
}  // namespace

Status SnappyLike::Prepare() {
  TABULA_ASSIGN_OR_RETURN(encoder_, KeyEncoder::Make(*table_, qcs_columns_));
  std::vector<size_t> all_cols(qcs_columns_.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(packer_, KeyPacker::Make(encoder_, all_cols));

  StratifiedSamplerOptions opts;
  opts.total_budget =
      static_cast<size_t>(sample_bytes_ / TupleBytes(*table_));
  opts.seed = seed_;
  TABULA_ASSIGN_OR_RETURN(
      StratifiedSample sample,
      StratifiedSample::Build(*table_, qcs_columns_, opts));
  strata_ = std::make_unique<StratifiedSample>(std::move(sample));

  // Exact per-stratum population stats of the target column (one pass).
  TABULA_ASSIGN_OR_RETURN(const Column* target_col,
                          table_->ColumnByName(target_column_));
  const auto* target = target_col->As<DoubleColumn>();
  if (target == nullptr) {
    return Status::TypeMismatch("SnappyLike target column '" +
                                target_column_ + "' must be DOUBLE");
  }
  auto stats = GroupAccumulate<NumericAggState>(
      encoder_, packer_, DatasetView(table_),
      [target](NumericAggState* s, RowId r) { s->Add(target->At(r)); });
  population_stats_.resize(strata_->strata().size());
  for (size_t i = 0; i < strata_->strata().size(); ++i) {
    const NumericAggState* s = stats.Find(strata_->strata()[i].key);
    if (s != nullptr) population_stats_[i] = *s;
  }
  return Status::OK();
}

Result<std::vector<const Stratum*>> SnappyLike::MatchStrata(
    const std::vector<PredicateTerm>& where) const {
  // Resolve the constrained attribute codes.
  std::vector<std::pair<size_t, uint32_t>> constraints;
  for (const auto& term : where) {
    auto it =
        std::find(qcs_columns_.begin(), qcs_columns_.end(), term.column);
    if (it == qcs_columns_.end()) {
      return Status::InvalidArgument("'" + term.column +
                                     "' is not in the Query Column Set");
    }
    size_t k = static_cast<size_t>(it - qcs_columns_.begin());
    auto code = encoder_.CodeForValue(k, term.literal);
    if (!code.ok()) return std::vector<const Stratum*>{};  // empty result
    constraints.emplace_back(k, code.value());
  }
  std::vector<const Stratum*> matched;
  for (const auto& stratum : strata_->strata()) {
    bool ok = true;
    for (const auto& [k, code] : constraints) {
      if (packer_.CodeAt(stratum.key, k) != code) {
        ok = false;
        break;
      }
    }
    if (ok) matched.push_back(&stratum);
  }
  return matched;
}

Result<DatasetView> SnappyLike::Execute(
    const std::vector<PredicateTerm>& where) {
  TABULA_ASSIGN_OR_RETURN(AvgAnswer answer, ExecuteAvg(where));
  if (answer.fell_back_to_raw) {
    TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                            BoundPredicate::Bind(*table_, where));
    return DatasetView(table_, pred.FilterAll());
  }
  TABULA_ASSIGN_OR_RETURN(std::vector<const Stratum*> matched,
                          MatchStrata(where));
  std::vector<RowId> rows;
  for (const Stratum* s : matched) {
    rows.insert(rows.end(), s->rows.begin(), s->rows.end());
  }
  return DatasetView(table_, std::move(rows));
}

Result<SnappyLike::AvgAnswer> SnappyLike::ExecuteAvg(
    const std::vector<PredicateTerm>& where) {
  if (strata_ == nullptr) {
    return Status::Internal("SnappyLike::Prepare() was not called");
  }
  TABULA_ASSIGN_OR_RETURN(std::vector<const Stratum*> matched,
                          MatchStrata(where));
  TABULA_ASSIGN_OR_RETURN(const Column* target_col,
                          table_->ColumnByName(target_column_));
  const auto* target = target_col->As<DoubleColumn>();

  // Stratified estimator over the matched strata.
  double total_pop = 0.0;
  for (const Stratum* s : matched) {
    total_pop += static_cast<double>(s->population);
  }
  AvgAnswer answer;
  if (total_pop == 0.0) return answer;

  double mean = 0.0;
  double variance = 0.0;  // Var of the stratified mean estimator
  for (const Stratum* s : matched) {
    NumericAggState sam;
    for (RowId r : s->rows) sam.Add(target->At(r));
    double w = static_cast<double>(s->population) / total_pop;
    mean += w * sam.Avg();
    double sd = sam.StdDev();
    if (sam.count > 0) {
      variance += w * w * (sd * sd) / sam.count;
    }
  }
  double se = std::sqrt(variance);
  answer.avg = mean;
  answer.estimated_relative_error =
      std::abs(mean) > 1e-12 ? kZScore * se / std::abs(mean) : kZScore * se;

  if (answer.estimated_relative_error > error_bound_) {
    // Bound cannot be certified: scan the raw table (the expensive path).
    ++fallbacks_;
    answer.fell_back_to_raw = true;
    TABULA_ASSIGN_OR_RETURN(BoundPredicate pred,
                            BoundPredicate::Bind(*table_, where));
    NumericAggState exact;
    for (RowId r : pred.FilterAll()) exact.Add(target->At(r));
    answer.avg = exact.Avg();
    answer.estimated_relative_error = 0.0;
  }
  return answer;
}

uint64_t SnappyLike::MemoryBytes() const {
  if (strata_ == nullptr) return 0;
  return strata_->TotalSampledRows() * TupleBytes(*table_);
}

}  // namespace tabula

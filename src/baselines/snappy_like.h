#ifndef TABULA_BASELINES_SNAPPY_LIKE_H_
#define TABULA_BASELINES_SNAPPY_LIKE_H_

#include <string>
#include <vector>

#include "baselines/approach.h"
#include "exec/aggregate.h"
#include "exec/group_by.h"
#include "sampling/stratified_sampler.h"

namespace tabula {

/// \brief A SnappyData/BlinkDB-style AQP baseline (Section V, approach 4).
///
/// Pre-builds stratified samples over the Query Column Set (the cubed
/// attributes) and answers AVG queries from the matching strata. Each
/// stratum keeps its exact population aggregates from build time, so the
/// baseline can certify a CLT error bound for the stratified estimate;
/// when the bound cannot be met it falls back to scanning the raw table —
/// mirroring the paper's observation that "SnappyData can guarantee the
/// error-bound since [when] the actual accuracy loss exceeds the
/// threshold value, it accesses the raw table and runs queries and
/// aggregation on-the-fly".
///
/// SnappyData returns a scalar AVG, not tuples (its "sample visualization
/// time" is n/a in Table II); Execute returns the union of matched
/// stratum samples (or the raw rows on fallback) so the harness can
/// compute actual loss, and ExecuteAvg exposes the certified estimate.
class SnappyLike final : public Approach {
 public:
  /// \param sample_bytes pre-built stratified sample budget.
  SnappyLike(const Table& table, const std::string& target_column,
             std::vector<std::string> qcs_columns, uint64_t sample_bytes,
             double error_bound, std::string label, uint64_t seed = 42)
      : table_(&table),
        target_column_(target_column),
        qcs_columns_(std::move(qcs_columns)),
        sample_bytes_(sample_bytes),
        error_bound_(error_bound),
        label_(std::move(label)),
        seed_(seed) {}

  std::string name() const override { return label_; }
  Status Prepare() override;
  Result<DatasetView> Execute(
      const std::vector<PredicateTerm>& where) override;
  uint64_t MemoryBytes() const override;
  bool ReturnsScalarAnswer() const override { return true; }
  Result<double> ExecuteScalar(
      const std::vector<PredicateTerm>& where) override {
    TABULA_ASSIGN_OR_RETURN(AvgAnswer answer, ExecuteAvg(where));
    return answer.avg;
  }

  /// The certified AVG estimate with fallback diagnostics.
  struct AvgAnswer {
    double avg = 0.0;
    bool fell_back_to_raw = false;
    double estimated_relative_error = 0.0;
  };
  Result<AvgAnswer> ExecuteAvg(const std::vector<PredicateTerm>& where);

  size_t fallback_count() const { return fallbacks_; }

 private:
  /// Strata whose key matches the query's constrained attributes.
  Result<std::vector<const Stratum*>> MatchStrata(
      const std::vector<PredicateTerm>& where) const;

  const Table* table_;
  std::string target_column_;
  std::vector<std::string> qcs_columns_;
  uint64_t sample_bytes_;
  double error_bound_;
  std::string label_;
  uint64_t seed_;

  KeyEncoder encoder_;
  KeyPacker packer_;
  std::unique_ptr<StratifiedSample> strata_;
  /// Per-stratum exact population stats of the target column.
  std::vector<NumericAggState> population_stats_;
  size_t fallbacks_ = 0;
};

}  // namespace tabula

#endif  // TABULA_BASELINES_SNAPPY_LIKE_H_

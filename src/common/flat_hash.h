#ifndef TABULA_COMMON_FLAT_HASH_H_
#define TABULA_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace tabula {

/// \brief Cube-build aggregation engine: an open-addressing, linear-probing
/// hash map specialized for the 64-bit packed group keys produced by
/// KeyPacker.
///
/// Every hot aggregation loop in the system — the dry run's finest-cuboid
/// fold, the lattice roll-up's per-cuboid maps, real-run raw-row
/// collection, the cube index, and the differential oracles — groups rows
/// by a `uint64_t` packed key. `std::unordered_map` pays one node
/// allocation plus a pointer chase per distinct key on exactly these
/// paths; FlatHashMap stores keys, values, and a one-byte occupancy tag in
/// three parallel flat arrays, so probes are sequential memory touches and
/// inserts never allocate (outside of growth).
///
/// Design points:
///  - Keys are hashed through a SplitMix64/wyhash-style finalizing mixer;
///    packed keys are extremely regular (dictionary codes bit-packed into
///    the low bits) and would cluster catastrophically if used raw.
///  - Capacity is a power of two, so the probe start is `hash & mask` and
///    wrap-around is a mask, not a modulo.
///  - An explicit occupancy byte per slot means key 0 — a valid packed key
///    (every attribute at dictionary code 0) — needs no reserved sentinel.
///  - No tombstones. Build paths only ever insert; the one consumer that
///    erases (CubeTable::Remove during refresh) uses backward-shift
///    deletion, which restores the invariant "every key is reachable from
///    its home slot without crossing an empty slot" instead of leaving a
///    marker. Probe sequences therefore never degrade with churn.
///  - `reserve()` from table statistics (row counts, key-space sizes)
///    pre-sizes the arrays so the build never rehashes mid-fold.
///  - Values live in uninitialized storage and are constructed only when a
///    slot is occupied. The dominant value type is LossState (~150 bytes);
///    default-constructing a whole capacity's worth of those on every
///    reserve/rehash — what a `std::vector<V>` backing array would do —
///    costs more than the probes it saves, so an empty slot costs 9 bytes
///    (key + occupancy tag), never a V.
///
/// Iteration order is slot order, which depends on insertion order under
/// collisions; consumers that need deterministic output extract
/// `SortedKeys()` and walk keys in ascending packed-key order. That is the
/// ordering contract the determinism tests pin down: sorted packed keys
/// are byte-identical regardless of thread count or stdlib hash.
///
/// Not thread-safe; build loops use one map per deterministic chunk and
/// merge in chunk order.

/// SplitMix64 finalizer — full-avalanche 64-bit mixer.
inline uint64_t HashKey64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename V>
class FlatHashMap {
 public:
  FlatHashMap() = default;
  explicit FlatHashMap(size_t expected_keys) { reserve(expected_keys); }

  ~FlatHashMap() { DestroyAndFree(); }

  FlatHashMap(const FlatHashMap& other) { CopyFrom(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      DestroyAndFree();
      CopyFrom(other);
    }
    return *this;
  }

  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(&other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      DestroyAndFree();
      MoveFrom(&other);
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Flat-array footprint, for the memory accounting that drives the
  /// paper's Figure 9 comparisons.
  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(capacity_) *
           (sizeof(uint64_t) + sizeof(V) + sizeof(uint8_t));
  }

  void clear() {
    DestroyAndFree();
    keys_.clear();
    used_.clear();
    capacity_ = 0;
    mask_ = 0;
    size_ = 0;
  }

  /// Pre-sizes for `expected_keys` distinct keys so the subsequent build
  /// never rehashes. Safe to call on a non-empty map (rehashes once).
  void reserve(size_t expected_keys) {
    size_t needed = expected_keys + expected_keys / 3 + 1;  // <= 0.75 load
    if (needed <= capacity_) return;
    Rehash(NextPow2(std::max<size_t>(needed, kMinCapacity)));
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* Find(uint64_t key) {
    size_t i;
    return FindSlot(key, &i) ? &values_[i] : nullptr;
  }
  const V* Find(uint64_t key) const {
    size_t i;
    return FindSlot(key, &i) ? &values_[i] : nullptr;
  }
  bool contains(uint64_t key) const {
    size_t i;
    return FindSlot(key, &i);
  }

  /// Inserts a default-constructed value for `key` if absent. Returns
  /// {value pointer, inserted}. The pointer stays valid until the next
  /// insertion (growth moves slots).
  std::pair<V*, bool> TryEmplace(uint64_t key) {
    GrowIfNeeded();
    size_t i;
    if (FindSlot(key, &i)) return {&values_[i], false};
    used_[i] = 1;
    keys_[i] = key;
    ::new (static_cast<void*>(&values_[i])) V();
    ++size_;
    return {&values_[i], true};
  }

  /// Like TryEmplace(key), but on insert the slot is copy/move-constructed
  /// from `value` in one step instead of default-construct-then-assign —
  /// the merge loops run this once per cell, and LossState is large enough
  /// that the doubled construction shows up in the dry-run profile. When
  /// the key already exists `value` is left untouched (a moved argument is
  /// only consumed on insert).
  template <typename U>
  std::pair<V*, bool> TryEmplace(uint64_t key, U&& value) {
    GrowIfNeeded();
    size_t i;
    if (FindSlot(key, &i)) return {&values_[i], false};
    used_[i] = 1;
    keys_[i] = key;
    ::new (static_cast<void*>(&values_[i])) V(std::forward<U>(value));
    ++size_;
    return {&values_[i], true};
  }

  /// Value for `key`, default-constructing it on first access.
  V& operator[](uint64_t key) { return *TryEmplace(key).first; }

  /// Backward-shift deletion: re-homes every displaced key in the probe
  /// run following `key` so no tombstone is needed and lookups never scan
  /// past deletion debris. Returns false when `key` was absent.
  bool Erase(uint64_t key) {
    size_t i;
    if (!FindSlot(key, &i)) return false;
    size_t hole = i;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      size_t home = static_cast<size_t>(HashKey64(keys_[j])) & mask_;
      // Shift keys_[j] into the hole only if the hole lies cyclically
      // between its home slot and j — otherwise the key would become
      // unreachable from its home.
      bool between = (j > hole) ? (home <= hole || home > j)
                                : (home <= hole && home > j);
      if (between) {
        keys_[hole] = keys_[j];
        values_[hole] = std::move(values_[j]);
        hole = j;
      }
    }
    used_[hole] = 0;
    values_[hole].~V();
    --size_;
    return true;
  }

  /// Visits every (key, value) in slot order. Insertion-order dependent
  /// under collisions — use SortedKeys() when output order matters.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }

  /// All keys in ascending packed-key order — the deterministic iteration
  /// contract used by the dry-run roll-up and every output path.
  std::vector<uint64_t> SortedKeys() const {
    std::vector<uint64_t> keys;
    keys.reserve(size_);
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) keys.push_back(keys_[i]);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Moves the contents out as (key, value) pairs sorted by key, leaving
  /// the map empty. One allocation; values are moved, not copied.
  std::vector<std::pair<uint64_t, V>> ExtractSorted() {
    std::vector<std::pair<uint64_t, V>> entries;
    entries.reserve(size_);
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) entries.emplace_back(keys_[i], std::move(values_[i]));
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    clear();
    return entries;
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  static size_t NextPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// Locates `key`. Returns true with *slot = its index when present;
  /// false with *slot = the empty slot where it would be inserted. With
  /// zero capacity returns false and an unusable slot — callers that
  /// insert go through GrowIfNeeded() first.
  bool FindSlot(uint64_t key, size_t* slot) const {
    if (capacity_ == 0) {
      *slot = 0;
      return false;
    }
    size_t i = static_cast<size_t>(HashKey64(key)) & mask_;
    for (;;) {
      if (!used_[i]) {
        *slot = i;
        return false;
      }
      if (keys_[i] == key) {
        *slot = i;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  void GrowIfNeeded() {
    // Max load factor 0.75: (size + 1) > 3/4 * capacity triggers growth.
    if (capacity_ == 0 || (size_ + 1) * 4 > capacity_ * 3) {
      Rehash(std::max(capacity_ * 2, kMinCapacity));
    }
  }

  /// Values sit in uninitialized storage; only occupied slots hold a
  /// constructed V, so growing a sparse table moves `size_` values, not
  /// `capacity_` — and an over-estimated reserve() costs 9 bytes per
  /// unused slot instead of a default-constructed V.
  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    V* old_values = values_;
    std::vector<uint8_t> old_used = std::move(used_);
    size_t old_capacity = capacity_;

    capacity_ = new_capacity;
    mask_ = capacity_ - 1;
    keys_.assign(capacity_, 0);
    values_ = std::allocator<V>().allocate(capacity_);
    used_.assign(capacity_, 0);

    for (size_t i = 0; i < old_capacity; ++i) {
      if (!old_used[i]) continue;
      size_t j = static_cast<size_t>(HashKey64(old_keys[i])) & mask_;
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      keys_[j] = old_keys[i];
      ::new (static_cast<void*>(&values_[j])) V(std::move(old_values[i]));
      old_values[i].~V();
    }
    if (old_values != nullptr) {
      std::allocator<V>().deallocate(old_values, old_capacity);
    }
  }

  /// Destroys every live value and releases the value array; leaves the
  /// key/occupancy vectors to the caller (clear reuses them, the
  /// destructor drops them).
  void DestroyAndFree() {
    if (values_ == nullptr) return;
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) values_[i].~V();
    }
    std::allocator<V>().deallocate(values_, capacity_);
    values_ = nullptr;
  }

  /// *this must be empty/default; copies other's layout slot for slot so
  /// the copy iterates identically (determinism: a copied map is
  /// indistinguishable from the original).
  void CopyFrom(const FlatHashMap& other) {
    keys_ = other.keys_;
    used_ = other.used_;
    capacity_ = other.capacity_;
    mask_ = other.mask_;
    size_ = other.size_;
    values_ = nullptr;
    if (capacity_ == 0) return;
    values_ = std::allocator<V>().allocate(capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      if (used_[i]) {
        ::new (static_cast<void*>(&values_[i])) V(other.values_[i]);
      }
    }
  }

  /// *this must be empty/default; steals other's storage.
  void MoveFrom(FlatHashMap* other) {
    keys_ = std::move(other->keys_);
    values_ = other->values_;
    used_ = std::move(other->used_);
    capacity_ = other->capacity_;
    mask_ = other->mask_;
    size_ = other->size_;
    other->values_ = nullptr;
    other->keys_.clear();
    other->used_.clear();
    other->capacity_ = 0;
    other->mask_ = 0;
    other->size_ = 0;
  }

  std::vector<uint64_t> keys_;
  V* values_ = nullptr;
  std::vector<uint8_t> used_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Set of packed keys with the same probing scheme; used for iceberg-key
/// and dirty-cell tracking during refresh.
class FlatHashSet {
 public:
  FlatHashSet() = default;
  explicit FlatHashSet(size_t expected_keys) : map_(expected_keys) {}

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void reserve(size_t expected_keys) { map_.reserve(expected_keys); }
  void clear() { map_.clear(); }

  /// Returns true when `key` was newly inserted.
  bool Insert(uint64_t key) { return map_.TryEmplace(key).second; }
  bool Contains(uint64_t key) const { return map_.contains(key); }
  bool Erase(uint64_t key) { return map_.Erase(key); }

  std::vector<uint64_t> SortedKeys() const { return map_.SortedKeys(); }

 private:
  struct Empty {};
  FlatHashMap<Empty> map_;
};

}  // namespace tabula

#endif  // TABULA_COMMON_FLAT_HASH_H_

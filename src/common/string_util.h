#ifndef TABULA_COMMON_STRING_UTIL_H_
#define TABULA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tabula {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);
/// Upper-cases ASCII.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins elements with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Formats a byte count as "1.5 MB" style human-readable text.
std::string HumanBytes(uint64_t bytes);

/// Formats milliseconds as "1.23 s" / "45 ms" style text.
std::string HumanMillis(double ms);

}  // namespace tabula

#endif  // TABULA_COMMON_STRING_UTIL_H_

#ifndef TABULA_COMMON_STOPWATCH_H_
#define TABULA_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace tabula {

/// \brief Monotonic wall-clock timer used for all reported timings.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedMillis() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tabula

#endif  // TABULA_COMMON_STOPWATCH_H_

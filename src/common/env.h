#ifndef TABULA_COMMON_ENV_H_
#define TABULA_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace tabula {

/// Reads an int64 from the environment, falling back to `def` when the
/// variable is unset or unparsable.
int64_t EnvInt64(const char* name, int64_t def);

/// Reads a double from the environment with fallback.
double EnvDouble(const char* name, double def);

/// Reads a string from the environment with fallback.
std::string EnvString(const char* name, const std::string& def);

}  // namespace tabula

#endif  // TABULA_COMMON_ENV_H_

#ifndef TABULA_COMMON_STATUS_H_
#define TABULA_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tabula {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kIOError,
  kParseError,
  kTypeMismatch,
  /// Transient overload (e.g. an admission queue at capacity); the
  /// caller may retry after backing off.
  kUnavailable,
  /// Unrecoverable data corruption or loss (e.g. a truncated or
  /// corrupted cube file). Unlike kIOError, retrying cannot help — the
  /// bytes are gone; re-run initialization.
  kDataLoss,
};

/// Stable name of a code ("IOError", "DataLoss", ...), for logs and
/// deterministic scenario traces.
const char* StatusCodeName(StatusCode code);

/// \brief Operation outcome, RocksDB/Arrow style.
///
/// Tabula does not throw exceptions across API boundaries; fallible
/// operations return a Status (or a Result<T> when they also produce a
/// value). A Status is cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// Generic factory for a dynamically chosen non-OK code (fault
  /// injection, protocol decoding). `code` must not be kOk.
  static Status FromCode(StatusCode code, std::string msg) {
    assert(code != StatusCode::kOk);
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" string.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A Status or a value of type T.
///
/// Mirrors arrow::Result. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be built from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Status of the operation; OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define TABULA_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::tabula::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; assigns the value to `lhs` or returns
/// the error Status to the caller.
#define TABULA_ASSIGN_OR_RETURN(lhs, expr)     \
  auto TABULA_CONCAT_(_res, __LINE__) = (expr);             \
  if (!TABULA_CONCAT_(_res, __LINE__).ok())                 \
    return TABULA_CONCAT_(_res, __LINE__).status();         \
  lhs = std::move(TABULA_CONCAT_(_res, __LINE__)).value()

#define TABULA_CONCAT_INNER_(a, b) a##b
#define TABULA_CONCAT_(a, b) TABULA_CONCAT_INNER_(a, b)

}  // namespace tabula

#endif  // TABULA_COMMON_STATUS_H_

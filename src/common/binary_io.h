#ifndef TABULA_COMMON_BINARY_IO_H_
#define TABULA_COMMON_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tabula {

/// Minimal little-endian binary (de)serialization helpers used by the
/// sampling-cube persistence format.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  bool ok() const { return out_->good(); }

 private:
  void WriteRaw(const void* data, size_t bytes) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
  }
  std::ostream* out_;
};

/// BinaryWriter twin that serializes into memory (identical wire
/// format) so a whole record can land in ONE stream write. ofstream
/// pays a sentry (lock + tie/locale checks) per call; a record of ten
/// thousand small values is ~50k calls written value-by-value versus
/// one call from a buffer.
class BufferWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  const char* data() const { return buf_.data(); }
  size_t size() const { return buf_.size(); }

 private:
  void WriteRaw(const void* data, size_t bytes) {
    buf_.append(static_cast<const char*>(data), bytes);
  }
  std::string buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    TABULA_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    TABULA_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> ReadDouble() {
    double v = 0;
    TABULA_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<std::string> ReadString() {
    TABULA_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    // A garbage length field means the bytes on disk are corrupt.
    if (n > (1ull << 32)) return Status::DataLoss("string too long");
    std::string s(n, '\0');
    TABULA_RETURN_NOT_OK(ReadRaw(s.data(), n));
    return s;
  }
  template <typename T>
  Result<std::vector<T>> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    TABULA_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    if (n > (1ull << 34) / sizeof(T)) {
      return Status::DataLoss("vector too long");
    }
    std::vector<T> v(n);
    TABULA_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(T)));
    return v;
  }

 private:
  Status ReadRaw(void* data, size_t bytes) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (!in_->good() && bytes > 0) {
      // The stream opened but ran out of bytes mid-record: the file is
      // truncated, which no retry can fix — data loss, not I/O error.
      return Status::DataLoss("unexpected end of file (truncated data)");
    }
    return Status::OK();
  }
  std::istream* in_;
};

}  // namespace tabula

#endif  // TABULA_COMMON_BINARY_IO_H_

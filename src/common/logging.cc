#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace tabula {

namespace {
LogLevel LevelFromEnv() {
  const char* env = std::getenv("TABULA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?    ";
}
}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LevelFromEnv()) {}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < level_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto now = std::chrono::system_clock::now();
  std::time_t t = std::chrono::system_clock::to_time_t(now);
  char buf[32];
  std::tm tm_buf;
  localtime_r(&t, &tm_buf);
  std::strftime(buf, sizeof(buf), "%H:%M:%S", &tm_buf);
  std::cerr << "[" << buf << " " << LevelTag(level) << "] " << message
            << std::endl;
}

}  // namespace tabula

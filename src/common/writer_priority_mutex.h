#ifndef TABULA_COMMON_WRITER_PRIORITY_MUTEX_H_
#define TABULA_COMMON_WRITER_PRIORITY_MUTEX_H_

#include <condition_variable>
#include <mutex>

namespace tabula {

/// Shared mutex with writer priority: a pending exclusive lock blocks
/// NEW shared acquisitions, so the writer gets in as soon as current
/// readers drain. Satisfies the SharedLockable/Lockable interface, so
/// std::shared_lock / std::unique_lock work unchanged.
///
/// Why not std::shared_mutex: on glibc it maps to a reader-preferring
/// pthread rwlock, under which a saturating read stream (a dashboard
/// hammering Query()) can delay an exclusive acquisition indefinitely.
/// The serving path takes the exclusive side only for short pointer
/// swaps (ingest begin/commit, refresh install), so bounding writer
/// wait to one reader critical section keeps refresh lag — and with it
/// answer staleness — bounded no matter the read load, at the price of
/// a mutex/condvar handoff per reader that the microsecond-scale read
/// sections don't notice.
class WriterPrioritySharedMutex {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    reader_cv_.wait(lk,
                    [&] { return writers_waiting_ == 0 && !writer_active_; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::lock_guard<std::mutex> lk(mu_);
    if (writers_waiting_ != 0 || writer_active_) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    std::lock_guard<std::mutex> lk(mu_);
    if (--readers_ == 0) writer_cv_.notify_one();
  }

  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lk, [&] { return readers_ == 0 && !writer_active_; });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::lock_guard<std::mutex> lk(mu_);
    if (readers_ != 0 || writer_active_) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::lock_guard<std::mutex> lk(mu_);
    writer_active_ = false;
    // Waiting writers go first (priority); otherwise release readers.
    if (writers_waiting_ > 0) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  size_t readers_ = 0;
  size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace tabula

#endif  // TABULA_COMMON_WRITER_PRIORITY_MUTEX_H_

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "testing/fault_injection.h"

namespace tabula {

namespace {
/// Set while a pool worker runs a task; nested ParallelFor calls from
/// worker threads execute inline to avoid self-deadlock (all workers
/// blocked waiting on tasks that can never be scheduled).
thread_local bool t_inside_worker = false;

/// RAII flag so the marker resets even if a task unwinds.
struct InsideWorkerScope {
  InsideWorkerScope() { t_inside_worker = true; }
  ~InsideWorkerScope() { t_inside_worker = false; }
};
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Delay-only fault seam: lets tests stretch the window between task
    // dequeue and execution (refresh racing queries, deadline expiry
    // mid-dispatch). One relaxed load when nothing is armed.
    TABULA_FAULT_DELAY("threadpool.dispatch");
    InsideWorkerScope scope;
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t, size_t b, size_t e) { fn(b, e); });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, num_threads());
  if (t_inside_worker) chunks = 1;  // nested call: run inline
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  RunChunks(n, chunks, fn);
}

void ThreadPool::ParallelForDeterministic(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  // Boundaries are a function of n only. Nesting and worker count change
  // only how chunks are scheduled, never how [0, n) is split.
  size_t chunks = DeterministicChunkCount(n);
  if (t_inside_worker || chunks <= 1 || num_threads() <= 1) {
    // Inline: same chunks, ascending order, current thread.
    size_t chunk_size = (n + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
      size_t begin = c * chunk_size;
      size_t end = std::min(n, begin + chunk_size);
      if (begin >= end) break;
      fn(c, begin, end);
    }
    return;
  }
  RunChunks(n, chunks, fn);
}

void ThreadPool::RunChunks(
    size_t n, size_t chunks,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * chunk_size;
    size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(Submit([&fn, c, begin, end] { fn(c, begin, end); }));
  }
  // Drain every future before rethrowing: abandoning in-flight chunks
  // on the first error would leave workers running a lambda whose
  // captured fn reference dies with this frame.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

namespace {
std::atomic<ThreadPool*> g_pool_override{nullptr};
}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire);
  if (override_pool != nullptr) return *override_pool;
  static ThreadPool pool([] {
    const char* env = std::getenv("TABULA_THREADS");
    if (env != nullptr) {
      long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<size_t>(v);
    }
    return static_cast<size_t>(0);
  }());
  return pool;
}

void ThreadPool::SetGlobalForTest(ThreadPool* pool) {
  g_pool_override.store(pool, std::memory_order_release);
}

}  // namespace tabula

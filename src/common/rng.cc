#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace tabula {

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  if (k >= n) {
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
  if (k * 4 > n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Sparse case: Floyd's algorithm, O(k) expected.
  std::unordered_set<uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(UniformInt(0, j));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace tabula

#ifndef TABULA_COMMON_LOGGING_H_
#define TABULA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace tabula {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Minimal synchronized logger writing to stderr.
///
/// The active level is read once from the TABULA_LOG_LEVEL environment
/// variable ("debug", "info", "warn", "error"; default "warn" so library
/// users see a quiet console, benches flip it to info).
class Logger {
 public:
  static Logger& Instance();

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_;
  std::mutex mu_;
};

namespace internal {
/// Stream-style log-line collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define TABULA_LOG(level) \
  ::tabula::internal::LogMessage(::tabula::LogLevel::k##level)

/// Fatal invariant check: prints and aborts. Use for programmer errors only;
/// recoverable conditions must return Status.
#define TABULA_CHECK(cond)                                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "TABULA_CHECK failed at " << __FILE__ << ":"          \
                << __LINE__ << ": " #cond << std::endl;                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace tabula

#endif  // TABULA_COMMON_LOGGING_H_

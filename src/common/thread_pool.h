#ifndef TABULA_COMMON_THREAD_POOL_H_
#define TABULA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tabula {

/// \brief Fixed-size worker pool used to parallelize scans and GroupBys.
///
/// Plays the role that Spark's executors play in the paper's testbed: the
/// embedded data system splits every full-table pass into per-worker chunks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 → hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task; returns a future for its completion. An
  /// exception thrown by the task does not kill the worker — it is
  /// captured into the future and rethrown from future::get().
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
  /// contiguous chunks, one per worker, and blocks until all complete.
  /// n == 0 returns immediately without invoking fn.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelFor but also passes the chunk index, for per-chunk
  /// accumulator state: fn(chunk_index, begin, end). If any chunk
  /// throws, every chunk still runs to completion (they reference the
  /// caller's fn, which must stay alive) and the first exception is
  /// rethrown afterwards.
  void ParallelForChunked(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide pool sized from TABULA_THREADS (default: hw concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tabula

#endif  // TABULA_COMMON_THREAD_POOL_H_

#ifndef TABULA_COMMON_THREAD_POOL_H_
#define TABULA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tabula {

/// \brief Fixed-size worker pool used to parallelize scans and GroupBys.
///
/// Plays the role that Spark's executors play in the paper's testbed: the
/// embedded data system splits every full-table pass into per-worker chunks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 → hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task; returns a future for its completion. An
  /// exception thrown by the task does not kill the worker — it is
  /// captured into the future and rethrown from future::get().
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
  /// contiguous chunks, one per worker, and blocks until all complete.
  /// n == 0 returns immediately without invoking fn.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelFor but also passes the chunk index, for per-chunk
  /// accumulator state: fn(chunk_index, begin, end). If any chunk
  /// throws, every chunk still runs to completion (they reference the
  /// caller's fn, which must stay alive) and the first exception is
  /// rethrown afterwards.
  ///
  /// Chunk boundaries depend on num_threads(), so per-chunk floating-point
  /// accumulation merged across chunks is NOT reproducible across thread
  /// counts — aggregation paths that must be use ParallelForDeterministic.
  void ParallelForChunked(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  /// Maximum chunk fan-out of ParallelForDeterministic. Fixed (not a
  /// function of the worker count) so that chunk boundaries — and thus
  /// any per-chunk accumulation merged in chunk order — are a pure
  /// function of n.
  static constexpr size_t kDeterministicChunks = 16;

  /// Minimum items per deterministic chunk. Chunked aggregation pays a
  /// merge cost proportional to chunks × groups (every chunk rediscovers
  /// roughly the same group set and its partial states must be folded
  /// together), so a chunk has to hold enough rows to amortize its share
  /// of the merge; small inputs use fewer chunks rather than slower ones.
  static constexpr size_t kDeterministicChunkFloor = 32768;

  /// Number of chunks ParallelForDeterministic uses for `n` items —
  /// min(kDeterministicChunks, max(1, n / kDeterministicChunkFloor)).
  /// Still a pure function of n (never of the worker count), preserving
  /// the cross-thread-count determinism contract.
  static size_t DeterministicChunkCount(size_t n) {
    if (n == 0) return 0;
    size_t by_floor = n / kDeterministicChunkFloor;
    if (by_floor == 0) return 1;
    return by_floor < kDeterministicChunks ? by_floor : kDeterministicChunks;
  }

  /// Like ParallelForChunked, but chunk boundaries are a function of n
  /// only: min(n, kDeterministicChunks) equal chunks, regardless of
  /// worker count or nesting. Callers that merge per-chunk partial
  /// aggregates in ascending chunk order therefore produce byte-identical
  /// results at any TABULA_THREADS setting — the determinism contract
  /// the soak replay tests pin down. Error semantics match
  /// ParallelForChunked (drain all chunks, rethrow first exception).
  void ParallelForDeterministic(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide pool sized from TABULA_THREADS (default: hw concurrency).
  static ThreadPool& Global();

  /// Test-only: redirects Global() to `pool` (nullptr restores the real
  /// global). Lets determinism tests run the same workload under pools of
  /// different widths inside one process. Not for production use.
  static void SetGlobalForTest(ThreadPool* pool);

 private:
  void WorkerLoop();
  void RunChunks(size_t n, size_t chunks,
                 const std::function<void(size_t, size_t, size_t)>& fn);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tabula

#endif  // TABULA_COMMON_THREAD_POOL_H_

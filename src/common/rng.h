#ifndef TABULA_COMMON_RNG_H_
#define TABULA_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace tabula {

/// \brief Deterministic pseudo-random source.
///
/// Every stochastic component in Tabula (samplers, data generator, workload
/// generator) draws from an explicitly seeded Rng so that experiments are
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled to N(mean, stddev).
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Exponential with rate lambda.
  double Exponential(double lambda) {
    std::exponential_distribution<double> dist(lambda);
    return dist(engine_);
  }

  /// Index drawn from a discrete distribution with the given weights.
  size_t Discrete(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Draws k distinct indices from [0, n) without replacement.
  /// Uses Floyd's algorithm when k << n, otherwise shuffles.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tabula

#endif  // TABULA_COMMON_RNG_H_

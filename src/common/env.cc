#include "common/env.h"

#include <cstdlib>

namespace tabula {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::string(v);
}

}  // namespace tabula

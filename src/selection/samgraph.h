#ifndef TABULA_SELECTION_SAMGRAPH_H_
#define TABULA_SELECTION_SAMGRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cube/cube_table.h"
#include "loss/loss_function.h"

namespace tabula {

/// Tuning knobs for SamGraph construction.
struct SamGraphOptions {
  /// Per-vertex cap on representation-relationship tests, applied after
  /// ranking candidates by loss-signature proximity — the paper's
  /// non-exhaustive similarity join ("this join result does not have to
  /// exhaust all possible representation relationships"; correctness is
  /// unaffected, only the amount of sharing). 0 = exhaustive.
  size_t max_candidates_per_vertex = 64;
};

/// \brief The sample representation graph (paper Definition 6).
///
/// Vertices are iceberg cells (by index into the cube table). A directed
/// edge u→v means sample(u) can represent cell v:
/// loss(raw(v), sample(u)) <= θ. Self-edges are implicit (every local
/// sample satisfies its own cell by construction of Algorithm 1) and are
/// materialized so Algorithm 3's degree ordering matches the paper.
class SamGraph {
 public:
  /// Builds the graph with the inner join of the cube table against
  /// itself on the representation relationship (the paper's SQL join),
  /// pruned by signature ranking per SamGraphOptions.
  static Result<SamGraph> Build(const Table& base, const CubeTable& cube,
                                const LossFunction& loss, double theta,
                                const SamGraphOptions& options);

  size_t num_vertices() const { return out_.size(); }
  /// Cells representable by vertex u's sample (including u itself).
  const std::vector<uint32_t>& OutEdges(uint32_t u) const { return out_[u]; }
  /// Samples that can represent cell v (including v's own).
  const std::vector<uint32_t>& InEdges(uint32_t v) const { return in_[v]; }

  size_t num_edges() const { return num_edges_; }
  size_t loss_evaluations() const { return loss_evaluations_; }

 private:
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
  size_t num_edges_ = 0;
  size_t loss_evaluations_ = 0;
};

}  // namespace tabula

#endif  // TABULA_SELECTION_SAMGRAPH_H_

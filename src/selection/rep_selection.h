#ifndef TABULA_SELECTION_REP_SELECTION_H_
#define TABULA_SELECTION_REP_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "cube/cube_table.h"
#include "selection/samgraph.h"

namespace tabula {

/// Knobs for representative sample selection.
struct SelectionOptions {
  SamGraphOptions graph;
};

/// Diagnostics from the selection stage.
struct SelectionResult {
  /// Representatives persisted (== resulting sample-table size).
  size_t representatives = 0;
  /// Iceberg cells whose own local sample was dropped in favor of a
  /// representative.
  size_t cells_sharing = 0;
  size_t graph_edges = 0;
  size_t loss_evaluations = 0;
  double millis = 0.0;
};

/// \brief Representative sample selection (Section IV, Algorithm 3).
///
/// Builds the SamGraph, greedily solves the NP-hard RepSamSel problem
/// (vertices sorted by out-degree; repeatedly persist the most
/// representative remaining sample and discard every sample it
/// represents), fills `sample_table` with the chosen representatives,
/// links every iceberg cell in `cube` to a representative sample id, and
/// normalizes the cube table by dropping per-cell raw data.
Result<SelectionResult> SelectRepresentativeSamples(
    const Table& base, const LossFunction& loss, double theta,
    const SelectionOptions& options, CubeTable* cube,
    SampleTable* sample_table);

/// \brief The no-selection variant (the paper's Tabula*): persists every
/// local sample individually. Same linking/normalization contract.
Result<SelectionResult> PersistAllSamples(CubeTable* cube,
                                          SampleTable* sample_table);

}  // namespace tabula

#endif  // TABULA_SELECTION_REP_SELECTION_H_

#include "selection/samgraph.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>

#include "common/thread_pool.h"

namespace tabula {

namespace {
double SignatureDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double sum = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}
}  // namespace

Result<SamGraph> SamGraph::Build(const Table& base, const CubeTable& cube,
                                 const LossFunction& loss, double theta,
                                 const SamGraphOptions& options) {
  const size_t m = cube.size();
  SamGraph graph;
  graph.out_.resize(m);
  graph.in_.resize(m);
  if (m == 0) return graph;

  // Signatures of each cell's raw data and each cell's local sample, used
  // to rank candidate (representative, cell) pairs before the exact test.
  std::vector<std::vector<double>> raw_sig(m), sample_sig(m);
  auto& pool = ThreadPool::Global();
  pool.ParallelFor(m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const IcebergCell& cell = cube.cells()[i];
      raw_sig[i] = loss.Signature(DatasetView(&base, cell.raw_rows));
      sample_sig[i] = loss.Signature(DatasetView(&base, cell.local_sample));
    }
  });
  const bool have_signatures = !raw_sig[0].empty();

  // For each representative candidate u, bind the loss to sample(u) once
  // (amortizing per-sample indexes) and test its closest cells. Each
  // worker writes only its own found_per_u slots; the adjacency lists are
  // assembled serially afterwards in ascending-u order so InEdges/OutEdges
  // ordering — which rep_selection uses to break representative-link ties
  // — is independent of worker scheduling.
  std::vector<std::vector<uint32_t>> found_per_u(m);
  std::atomic<size_t> evals{0};
  Status first_error = Status::OK();
  std::mutex error_mu;

  pool.ParallelFor(m, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const IcebergCell& rep = cube.cells()[u];
      // Candidate targets: all other vertices, ranked by signature
      // proximity of sample(u) to raw(v) when signatures exist.
      std::vector<uint32_t> candidates;
      candidates.reserve(m - 1);
      for (size_t v = 0; v < m; ++v) {
        if (v != u) candidates.push_back(static_cast<uint32_t>(v));
      }
      if (options.max_candidates_per_vertex > 0 &&
          candidates.size() > options.max_candidates_per_vertex) {
        if (have_signatures) {
          std::nth_element(
              candidates.begin(),
              candidates.begin() + options.max_candidates_per_vertex,
              candidates.end(), [&](uint32_t a, uint32_t b) {
                return SignatureDistance(sample_sig[u], raw_sig[a]) <
                       SignatureDistance(sample_sig[u], raw_sig[b]);
              });
        }
        candidates.resize(options.max_candidates_per_vertex);
      }

      auto bound = loss.Bind(base, DatasetView(&base, rep.local_sample));
      if (!bound.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = bound.status();
        return;
      }

      std::vector<uint32_t> found;
      found.push_back(static_cast<uint32_t>(u));  // self-edge
      for (uint32_t v : candidates) {
        const IcebergCell& cell = cube.cells()[v];
        LossState state;
        for (RowId r : cell.raw_rows) {
          bound.value()->Accumulate(&state, r);
        }
        evals.fetch_add(1, std::memory_order_relaxed);
        if (bound.value()->Finalize(state) <= theta) {
          found.push_back(v);
        }
      }

      found_per_u[u] = std::move(found);
    }
  });
  TABULA_RETURN_NOT_OK(first_error);
  for (size_t u = 0; u < m; ++u) {
    for (uint32_t v : found_per_u[u]) {
      graph.out_[u].push_back(v);
      graph.in_[v].push_back(static_cast<uint32_t>(u));
      ++graph.num_edges_;
    }
  }
  graph.loss_evaluations_ = evals.load();
  return graph;
}

}  // namespace tabula

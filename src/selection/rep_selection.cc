#include "selection/rep_selection.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace tabula {

Result<SelectionResult> SelectRepresentativeSamples(
    const Table& base, const LossFunction& loss, double theta,
    const SelectionOptions& options, CubeTable* cube,
    SampleTable* sample_table) {
  Stopwatch timer;
  SelectionResult result;
  const size_t m = cube->size();
  if (m == 0) {
    result.millis = timer.ElapsedMillis();
    return result;
  }

  TABULA_ASSIGN_OR_RETURN(
      SamGraph graph,
      SamGraph::Build(base, *cube, loss, theta, options.graph));
  result.graph_edges = graph.num_edges();
  result.loss_evaluations = graph.loss_evaluations();

  // --- Algorithm 3 ---
  // Heads sorted by descending out-degree; the LinkedHashMap of the paper
  // is modeled by the sorted order plus an alive bitmap.
  std::vector<uint32_t> heads(m);
  std::iota(heads.begin(), heads.end(), 0u);
  std::stable_sort(heads.begin(), heads.end(), [&](uint32_t a, uint32_t b) {
    return graph.OutEdges(a).size() > graph.OutEdges(b).size();
  });
  std::vector<char> alive(m, 1);
  std::vector<char> selected(m, 0);
  for (uint32_t head : heads) {
    if (!alive[head]) continue;
    // Pick the most representative remaining sample...
    selected[head] = 1;
    alive[head] = 0;
    // ...and remove every sample it represents from the map.
    for (uint32_t tail : graph.OutEdges(head)) {
      alive[tail] = 0;
    }
  }

  // Persist representatives; link every cell to one representative that
  // covers it (its own sample when selected, otherwise the first selected
  // in-neighbor — the paper picks an arbitrary link when several exist).
  std::vector<uint32_t> sample_id_of(m, kInvalidSampleId);
  for (uint32_t v = 0; v < m; ++v) {
    if (selected[v]) {
      sample_id_of[v] =
          sample_table->Add(cube->mutable_cells()[v].local_sample);
    }
  }
  result.representatives = sample_table->size();

  for (uint32_t v = 0; v < m; ++v) {
    IcebergCell& cell = cube->mutable_cells()[v];
    if (selected[v]) {
      cell.sample_id = sample_id_of[v];
      continue;
    }
    uint32_t rep = kInvalidSampleId;
    for (uint32_t u : graph.InEdges(v)) {
      if (selected[u]) {
        rep = sample_id_of[u];
        break;
      }
    }
    // Every vertex is either selected or was removed as some selected
    // head's tail, so a representative must exist.
    TABULA_CHECK(rep != kInvalidSampleId);
    cell.sample_id = rep;
    ++result.cells_sharing;
  }

  cube->DropRawData();
  result.millis = timer.ElapsedMillis();
  return result;
}

Result<SelectionResult> PersistAllSamples(CubeTable* cube,
                                          SampleTable* sample_table) {
  Stopwatch timer;
  SelectionResult result;
  for (auto& cell : cube->mutable_cells()) {
    cell.sample_id = sample_table->Add(cell.local_sample);
  }
  result.representatives = sample_table->size();
  cube->DropRawData();
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace tabula

#ifndef TABULA_TESTING_SCENARIO_H_
#define TABULA_TESTING_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tabula {

/// \brief Configuration of one soak run (see RunSoak below).
///
/// Everything stochastic in a run — the schema, the table contents, the
/// op sequence, the queries, the fault schedule — derives from `seed`
/// alone, so `{seed, steps}` fully names a scenario and two runs with
/// the same options produce byte-identical scenario traces.
struct SoakOptions {
  uint64_t seed = 1;
  /// Number of interleaved ops (Query / BatchQuery / Refresh / Save /
  /// Load / fault toggles).
  size_t steps = 200;
  /// Arm/disarm fault points during the run. When false the run still
  /// exercises the same op mix, just without injection (useful for
  /// isolating a failure to the faults themselves).
  bool faults = true;
  /// Rows of the initial table; more rows appended over the run come
  /// from a same-schema donor table of `append_pool` rows.
  size_t base_rows = 3000;
  size_t append_pool = 2000;
  /// Where Save/Load ops place the cube file ("" → a per-seed file in
  /// the system temp directory, removed at the end of the run).
  std::string scratch_path;
  /// Check loss(raw, sample) <= θ on every Nth served answer (1 = all).
  /// Raising it trades invariant coverage for speed on big runs; which
  /// answers get checked stays deterministic.
  size_t check_every = 1;
  /// Engine under test: 0 (default) = the plain single-instance Tabula,
  /// K >= 1 = a ShardedTabula with K shards behind the same QueryServer.
  /// K = 1 is the strict pass-through, so its scenario trace is
  /// byte-identical to shards = 0 with the same options. K > 1 runs add
  /// the shard.build / shard.merge error seams and the shard.query
  /// delay seam to the fault-toggle menu.
  size_t shards = 0;
  /// Streaming-ingestion mode: appends flow through a synchronous
  /// Ingestor (journaled into a WAL next to the scratch cube file)
  /// instead of direct table appends + server Refresh. Adds the
  /// ingest.route / ingest.merge / ingest.resample /
  /// ingest.journal.write error seams to the fault-toggle menu, and
  /// checks the progressive-answer invariants: a failed mid-batch
  /// cycle leaves the generation untouched with answers honestly
  /// tagged stale, and a post-disarm Drain() always converges.
  bool ingest = false;
  /// Stream trace lines to stderr as they are produced.
  bool verbose = false;
};

/// Outcome of a soak run. `trace` is the deterministic scenario trace:
/// one line per op recording the op, its inputs, and every
/// timing-independent outcome (status codes, cache hits, sample sizes,
/// generations). Identical options ⇒ identical trace, even with delay
/// faults armed and batch items racing on the thread pool — nothing
/// timing-dependent is recorded.
struct SoakReport {
  std::vector<std::string> trace;
  /// Invariant violations, empty on a clean run. A violation names the
  /// step, the invariant, and the observed/expected values.
  std::vector<std::string> violations;

  size_t steps_run = 0;
  size_t queries = 0;        ///< single Query ops (incl. post-refresh probes)
  size_t batches = 0;        ///< BatchQuery ops
  size_t batch_items = 0;    ///< items across all batches
  size_t refreshes = 0;      ///< successful Refresh ops
  size_t injected_refresh_failures = 0;
  size_t ingests = 0;        ///< Ingestor Append ops (--ingest mode)
  size_t injected_ingest_failures = 0;
  size_t saves = 0;          ///< successful Save ops
  size_t injected_save_failures = 0;
  size_t loads = 0;          ///< Load attempts
  size_t fault_toggles = 0;  ///< arm/disarm ops executed
  size_t theta_checks = 0;   ///< answers verified against ground truth
  uint64_t final_generation = 0;

  bool ok() const { return violations.empty(); }
};

/// \brief Seed-reproducible stress/soak driver (the harness behind
/// tools/soak_runner and tests/soak_test.cc).
///
/// Builds a randomized table + schema from the seed, initializes a
/// Tabula cube behind a QueryServer, then interleaves `steps` ops:
/// single queries, batched multi-cell queries, appends+Refresh, Save,
/// Load-and-compare, and (when enabled) arming/disarming fault points.
/// After every op it asserts the system's core invariants:
///
///  - θ bound: every non-degraded answer's sample has
///    loss(truth, sample) <= θ against the ground-truth rows of its
///    cell (direct BoundPredicate scan — no cube code involved).
///  - Coherence: a served answer (cached or not) equals a direct
///    Tabula::Query of the live cube — no stale generation survives a
///    Refresh.
///  - Failure atomicity: an injected fault surfaces as a non-OK Status;
///    a failed Refresh leaves the generation (and every answer)
///    unchanged; a failed Save leaves the previous file intact and
///    never leaves a .tmp behind; Load never yields a half-built cube.
///  - Accounting: serve-layer metrics and recorded trace spans agree
///    exactly with the number of issued requests.
///
/// Returns the report even when invariants fail (callers inspect
/// `violations`); a non-OK Status means the harness itself could not
/// run (e.g. initialization failed), not that an invariant broke.
Result<SoakReport> RunSoak(const SoakOptions& options);

}  // namespace tabula

#endif  // TABULA_TESTING_SCENARIO_H_

#include "testing/scenario.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "core/tabula.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "ingest/ingestor.h"
#include "loss/loss_registry.h"
#include "obs/trace.h"
#include "serve/query_server.h"
#include "shard/sharded_tabula.h"
#include "storage/predicate.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {

/// Everything one run needs, bundled so the per-op helpers stay small.
struct SoakContext {
  const SoakOptions* opt = nullptr;
  Rng rng{1};

  std::unique_ptr<Table> table;  ///< live base table (appended to)
  std::unique_ptr<Table> donor;  ///< append source, same schema specs
  size_t donor_pos = 0;
  std::vector<std::string> attrs;

  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<Tabula> tabula;          ///< shards == 0
  std::unique_ptr<ShardedTabula> sharded;  ///< shards >= 1
  /// Whichever of the two is live; every per-op helper goes through
  /// this, so the checks are engine-agnostic.
  QueryEngine* engine = nullptr;
  const LossFunction* loss = nullptr;  ///< effective loss of the engine
  double theta = 0.0;
  std::unique_ptr<QueryServer> server;
  std::unique_ptr<Ingestor> ingestor;  ///< --ingest mode only

  std::string cube_path;
  bool file_valid = false;      ///< a successful Save exists
  uint64_t file_generation = 0; ///< generation at that Save

  /// Mirror of the armed fault points (FaultInjector is process-global;
  /// the run owns it exclusively via ScopedFaultClear).
  std::set<std::string> armed;
  bool refresh_fault_armed = false;
  bool persistence_fault_armed = false;

  size_t answers_seen = 0;  ///< drives the every-Nth θ-check counter
  size_t bypass_queries = 0;

  SoakReport report;

  void Trace(std::string line) {
    if (opt->verbose) std::fprintf(stderr, "[soak] %s\n", line.c_str());
    report.trace.push_back(std::move(line));
  }
  void Violation(size_t step, std::string what) {
    report.violations.push_back("step=" + std::to_string(step) + " " +
                                std::move(what));
  }
};

std::string DescribeAnswer(const ServeAnswer& a) {
  const TabulaQueryResult& r = *a.result;
  std::string out = a.cache_hit ? "hit" : "miss";
  if (r.empty_cell) {
    out += " empty";
  } else {
    out += r.from_local_sample ? " local" : " global";
  }
  out += " n=" + std::to_string(r.sample.size());
  return out;
}

/// Same as DescribeAnswer but without the cache bit: batch items run
/// concurrently, so whether a duplicate key hit the cache depends on
/// scheduling — everything else about the answer is deterministic.
std::string DescribeItem(const ServeAnswer& a) {
  const TabulaQueryResult& r = *a.result;
  std::string out;
  if (r.empty_cell) {
    out = "empty";
  } else {
    out = r.from_local_sample ? "local" : "global";
  }
  out += " n=" + std::to_string(r.sample.size());
  return out;
}

/// Served answer == direct cube lookup (catches stale cache entries
/// surviving a refresh fence, and cache/value divergence in general).
void CheckCoherence(SoakContext& ctx, size_t step,
                    const std::vector<PredicateTerm>& where,
                    const TabulaQueryResult& served, const char* who) {
  Result<QueryResponse> direct = ctx.engine->Query(QueryRequest(where));
  if (!direct.ok()) {
    ctx.Violation(step, std::string(who) + " direct re-query failed: " +
                            direct.status().ToString());
    return;
  }
  const TabulaQueryResult& want = direct.value().result;
  if (served.from_local_sample != want.from_local_sample ||
      served.empty_cell != want.empty_cell ||
      served.sample.ToRowIds() != want.sample.ToRowIds()) {
    ctx.Violation(step, std::string(who) +
                            " served answer diverges from live cube "
                            "(stale generation?)");
  }
}

/// The paper's deterministic guarantee: loss(truth, sample) <= θ, with
/// truth gathered by a direct predicate scan (no cube code involved).
/// Tolerance covers summation-order FP noise between the production
/// LossState arithmetic and this direct evaluation.
void CheckTheta(SoakContext& ctx, size_t step,
                const std::vector<PredicateTerm>& where,
                const TabulaQueryResult& served) {
  ++ctx.report.theta_checks;
  Result<BoundPredicate> bound = BoundPredicate::Bind(*ctx.table, where);
  if (!bound.ok()) {
    ctx.Violation(step, "theta-check bind failed: " +
                            bound.status().ToString());
    return;
  }
  std::vector<RowId> truth = bound.value().FilterAll();
  if (truth.empty() != served.empty_cell) {
    ctx.Violation(step, "empty_cell=" +
                            std::to_string(served.empty_cell) +
                            " but ground truth has " +
                            std::to_string(truth.size()) + " rows");
    return;
  }
  if (truth.empty()) return;
  DatasetView truth_view(ctx.table.get(), std::move(truth));
  Result<double> l = ctx.loss->Loss(truth_view, served.sample);
  if (!l.ok()) {
    ctx.Violation(step, "theta-check loss failed: " + l.status().ToString());
    return;
  }
  const double theta = ctx.theta;
  if (l.value() > theta * (1.0 + 1e-7) + 1e-12) {
    ctx.Violation(step, "theta bound broken: loss=" +
                            std::to_string(l.value()) +
                            " > theta=" + std::to_string(theta));
  }
}

Result<std::vector<WorkloadQuery>> DrawQueries(SoakContext& ctx, size_t n) {
  WorkloadOptions wopt;
  wopt.num_queries = n;
  wopt.seed = static_cast<uint64_t>(ctx.rng.UniformInt(0, (1LL << 30)));
  return GenerateWorkload(*ctx.table, ctx.attrs, wopt);
}

Status OpQuery(SoakContext& ctx, size_t step) {
  TABULA_ASSIGN_OR_RETURN(std::vector<WorkloadQuery> qs, DrawQueries(ctx, 1));
  const WorkloadQuery& q = qs[0];
  QueryRequest req(q.where);
  if (ctx.rng.Bernoulli(0.25)) {
    req.consistency = ConsistencyHint::kBypassCache;
    ++ctx.bypass_queries;
  }
  Result<ServeAnswer> ans = ctx.server->Query(req);
  ++ctx.report.queries;
  if (!ans.ok()) {
    // No error fault is ever armed on the serve path (see OpFaultToggle),
    // so a failed query is always a violation.
    ctx.Violation(step, "query failed: " + ans.status().ToString());
    ctx.Trace("step=" + std::to_string(step) + " query " + q.ToString() +
              " -> ERROR " + std::string(StatusCodeName(ans.status().code())));
    return Status::OK();
  }
  const ServeAnswer& a = ans.value();
  if (a.degraded) ctx.Violation(step, "query degraded without a deadline");
  ctx.Trace("step=" + std::to_string(step) + " query " + q.ToString() +
            (req.consistency == ConsistencyHint::kBypassCache ? " bypass"
                                                              : "") +
            " -> " + DescribeAnswer(a));
  CheckCoherence(ctx, step, q.where, *a.result, "query");
  if (++ctx.answers_seen % ctx.opt->check_every == 0) {
    CheckTheta(ctx, step, q.where, *a.result);
  }
  return Status::OK();
}

Status OpBatch(SoakContext& ctx, size_t step) {
  size_t n = 2 + static_cast<size_t>(ctx.rng.UniformInt(0, 6));
  TABULA_ASSIGN_OR_RETURN(std::vector<WorkloadQuery> qs, DrawQueries(ctx, n));
  std::vector<QueryRequest> reqs;
  reqs.reserve(qs.size());
  for (const auto& q : qs) reqs.emplace_back(q.where);
  Result<std::vector<BatchItem>> batch = ctx.server->BatchQuery(reqs);
  ++ctx.report.batches;
  ctx.report.batch_items += qs.size();
  if (!batch.ok()) {
    ctx.Violation(step, "batch failed: " + batch.status().ToString());
    return Status::OK();
  }
  std::string line = "step=" + std::to_string(step) + " batch n=" +
                     std::to_string(qs.size());
  for (size_t i = 0; i < batch.value().size(); ++i) {
    const BatchItem& item = batch.value()[i];
    if (!item.status.ok()) {
      ctx.Violation(step, "batch item failed: " + item.status.ToString());
      line += " [" + qs[i].ToString() + " -> ERROR]";
      continue;
    }
    if (item.answer.degraded) {
      ctx.Violation(step, "batch item degraded without a deadline");
    }
    line += " [" + qs[i].ToString() + " -> " + DescribeItem(item.answer) +
            "]";
    CheckCoherence(ctx, step, qs[i].where, *item.answer.result, "batch");
    if (++ctx.answers_seen % ctx.opt->check_every == 0) {
      CheckTheta(ctx, step, qs[i].where, *item.answer.result);
    }
  }
  ctx.Trace(std::move(line));
  return Status::OK();
}

Status OpRefresh(SoakContext& ctx, size_t step) {
  size_t m = 1 + static_cast<size_t>(ctx.rng.UniformInt(0, 199));
  for (size_t i = 0; i < m; ++i) {
    RowId row = static_cast<RowId>(ctx.donor_pos % ctx.donor->num_rows());
    ++ctx.donor_pos;
    TABULA_RETURN_NOT_OK(ctx.table->AppendRowFrom(*ctx.donor, row));
  }

  const uint64_t gen_before = ctx.engine->generation();
  Tabula::RefreshStats stats;
  Status st = ctx.server->Refresh(&stats);
  std::string line = "step=" + std::to_string(step) + " refresh rows=" +
                     std::to_string(m);
  if (!st.ok()) {
    ++ctx.report.injected_refresh_failures;
    line += " -> ERROR " + std::string(StatusCodeName(st.code()));
    if (!ctx.refresh_fault_armed) {
      ctx.Violation(step, "refresh failed with no refresh fault armed: " +
                              st.ToString());
    }
    // Failure atomicity: a failed Refresh must leave the cube exactly
    // as it was — same generation, still answering queries.
    if (ctx.engine->generation() != gen_before) {
      ctx.Violation(step, "failed refresh advanced the generation");
    }
    // Clear the injected fault and retry; the cube must recover.
    for (const char* p :
         {"refresh.begin", "refresh.sample", "shard.build", "shard.merge"}) {
      if (ctx.armed.erase(p) > 0) FaultInjector::Global().Disarm(p);
    }
    ctx.refresh_fault_armed = false;
    st = ctx.server->Refresh(&stats);
    if (!st.ok()) {
      ctx.Violation(step, "refresh retry failed after disarm: " +
                              st.ToString());
      ctx.Trace(std::move(line));
      return Status::OK();
    }
    line += " retry";
  }
  ++ctx.report.refreshes;
  line += " -> gen=" + std::to_string(ctx.engine->generation()) +
          " new_rows=" + std::to_string(stats.new_rows) +
          " new_ice=" + std::to_string(stats.new_iceberg_cells) +
          " dropped=" + std::to_string(stats.dropped_iceberg_cells) +
          " resampled=" + std::to_string(stats.resampled_cells) +
          (stats.full_rebuild ? " rebuild" : "");
  if (ctx.engine->generation() != gen_before + 1) {
    ctx.Violation(step, "successful refresh did not advance generation "
                        "by exactly one");
  }
  ctx.Trace(std::move(line));

  // Staleness probe: a cached-path answer right after the refresh must
  // match a cache-bypassing one — the fence may not leak one stale
  // entry. Both go through the server (they count as queries).
  TABULA_ASSIGN_OR_RETURN(std::vector<WorkloadQuery> qs, DrawQueries(ctx, 1));
  QueryRequest cached(qs[0].where);
  QueryRequest bypass(qs[0].where);
  bypass.consistency = ConsistencyHint::kBypassCache;
  Result<ServeAnswer> a1 = ctx.server->Query(cached);
  Result<ServeAnswer> a2 = ctx.server->Query(bypass);
  ctx.report.queries += 2;
  ++ctx.bypass_queries;
  if (!a1.ok() || !a2.ok()) {
    ctx.Violation(step, "post-refresh probe failed");
    return Status::OK();
  }
  if (a1.value().result->sample.ToRowIds() !=
      a2.value().result->sample.ToRowIds()) {
    ctx.Violation(step, "post-refresh probe: cached path diverges from "
                        "bypass path (stale cache after fence)");
  }
  return Status::OK();
}

/// --ingest mode's counterpart of OpRefresh: the appended rows flow
/// through the Ingestor (journal write → route → sync maintenance
/// cycle). Invariants checked: a failed Append leaves the generation
/// untouched with answers honestly tagged stale while rows pend, and a
/// post-disarm Drain() converges; a successful Append advances the
/// generation by exactly one and leaves nothing pending.
Status OpIngest(SoakContext& ctx, size_t step) {
  size_t m = 1 + static_cast<size_t>(ctx.rng.UniformInt(0, 199));
  std::vector<std::vector<Value>> rows;
  rows.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    RowId row = static_cast<RowId>(ctx.donor_pos % ctx.donor->num_rows());
    ++ctx.donor_pos;
    std::vector<Value> boxed;
    boxed.reserve(ctx.donor->num_columns());
    for (size_t c = 0; c < ctx.donor->num_columns(); ++c) {
      boxed.push_back(ctx.donor->column(c).GetValue(row));
    }
    rows.push_back(std::move(boxed));
  }

  const uint64_t gen_before = ctx.engine->generation();
  Status st = ctx.ingestor->Append(rows);
  ++ctx.report.ingests;
  std::string line =
      "step=" + std::to_string(step) + " ingest rows=" + std::to_string(m);
  if (!st.ok()) {
    ++ctx.report.injected_ingest_failures;
    line += " -> ERROR " + std::string(StatusCodeName(st.code()));
    if (!ctx.refresh_fault_armed) {
      ctx.Violation(step, "ingest failed with no ingest fault armed: " +
                              st.ToString());
    }
    // Failure atomicity: the cube stays at the previous generation.
    if (ctx.engine->generation() != gen_before) {
      ctx.Violation(step, "failed ingest advanced the generation");
    }
    // Honest staleness: while appended rows pend, an answer for a cell
    // holding one of those rows must carry the stale tag. (Cells the
    // pending rows do not touch may legitimately stay fresh once the
    // cycle has published its dirty set, so probe the finest cell of
    // the first appended row — that one is dirty by construction.)
    if (ctx.ingestor->PendingRows() > 0) {
      std::vector<PredicateTerm> where;
      for (const std::string& attr : ctx.attrs) {
        TABULA_ASSIGN_OR_RETURN(size_t col,
                                ctx.table->schema().FieldIndex(attr));
        where.push_back({attr, CompareOp::kEq, rows.front()[col]});
      }
      QueryRequest probe(where);
      probe.consistency = ConsistencyHint::kBypassCache;
      Result<ServeAnswer> a = ctx.server->Query(probe);
      ++ctx.report.queries;
      ++ctx.bypass_queries;
      if (!a.ok()) {
        ctx.Violation(step, "stale probe failed: " + a.status().ToString());
      } else if (!a.value().result->stale) {
        ctx.Violation(step, "pending ingest rows but answer not tagged "
                            "stale");
      }
    }
    // Clear the injected faults and drain; the cube must recover.
    for (const char* p :
         {"ingest.route", "ingest.merge", "ingest.resample",
          "ingest.journal.write", "refresh.begin", "refresh.sample",
          "shard.build", "shard.merge"}) {
      if (ctx.armed.erase(p) > 0) FaultInjector::Global().Disarm(p);
    }
    ctx.refresh_fault_armed = false;
    Status drained = ctx.ingestor->Drain();
    if (!drained.ok()) {
      ctx.Violation(step, "ingest drain failed after disarm: " +
                              drained.ToString());
      ctx.Trace(std::move(line));
      return Status::OK();
    }
    line += " drained";
  } else if (ctx.engine->generation() != gen_before + 1) {
    ctx.Violation(step, "successful ingest did not advance generation by "
                        "exactly one");
  }
  if (ctx.ingestor->PendingRows() != 0) {
    ctx.Violation(step, "rows still pending after a drained ingest op");
  }
  line += " -> gen=" + std::to_string(ctx.engine->generation());
  ctx.Trace(std::move(line));

  // Post-commit probe: the cached path must agree with a bypassing one
  // (the ingest commit fenced the cache), mirroring OpRefresh.
  TABULA_ASSIGN_OR_RETURN(std::vector<WorkloadQuery> qs, DrawQueries(ctx, 1));
  QueryRequest cached(qs[0].where);
  QueryRequest bypass(qs[0].where);
  bypass.consistency = ConsistencyHint::kBypassCache;
  Result<ServeAnswer> a1 = ctx.server->Query(cached);
  Result<ServeAnswer> a2 = ctx.server->Query(bypass);
  ctx.report.queries += 2;
  ++ctx.bypass_queries;
  if (!a1.ok() || !a2.ok()) {
    ctx.Violation(step, "post-ingest probe failed");
    return Status::OK();
  }
  if (a1.value().result->sample.ToRowIds() !=
      a2.value().result->sample.ToRowIds()) {
    ctx.Violation(step, "post-ingest probe: cached path diverges from "
                        "bypass path (stale cache after fence)");
  }
  if (a2.value().result->stale) {
    ctx.Violation(step, "answer tagged stale with no pending ingest rows");
  }
  return Status::OK();
}

Status OpSave(SoakContext& ctx, size_t step) {
  Status st = ctx.engine->Save(ctx.cube_path);
  std::string line = "step=" + std::to_string(step) + " save";
  if (st.ok()) {
    ++ctx.report.saves;
    ctx.file_valid = true;
    ctx.file_generation = ctx.engine->generation();
    line += " -> ok gen=" + std::to_string(ctx.file_generation);
  } else {
    ++ctx.report.injected_save_failures;
    line += " -> ERROR " + std::string(StatusCodeName(st.code()));
    if (!ctx.persistence_fault_armed) {
      ctx.Violation(step, "save failed with no persistence fault armed: " +
                              st.ToString());
    }
    // Atomicity: a failed Save must not clobber the previous file —
    // verified by the next OpLoad via the untouched file_generation.
  }
  // Never leave a temp file behind, success or failure.
  std::error_code ec;
  if (std::filesystem::exists(ctx.cube_path + ".tmp", ec)) {
    ctx.Violation(step, "save left a .tmp file behind");
  }
  ctx.Trace(std::move(line));
  return Status::OK();
}

Status OpLoad(SoakContext& ctx, size_t step) {
  ++ctx.report.loads;
  std::unique_ptr<QueryEngine> loaded;
  Status load_status = Status::OK();
  if (ctx.sharded != nullptr) {
    Result<std::unique_ptr<ShardedTabula>> r =
        ShardedTabula::Load(*ctx.table, ctx.sharded->options(), ctx.cube_path);
    if (r.ok()) {
      loaded = std::move(r).value();
    } else {
      load_status = r.status();
    }
  } else {
    TabulaOptions opts = ctx.tabula->options();
    Result<std::unique_ptr<Tabula>> r =
        Tabula::Load(*ctx.table, std::move(opts), ctx.cube_path);
    if (r.ok()) {
      loaded = std::move(r).value();
    } else {
      load_status = r.status();
    }
  }
  std::string line = "step=" + std::to_string(step) + " load";
  const bool fresh_file =
      ctx.file_valid && ctx.file_generation == ctx.engine->generation();
  if (loaded == nullptr) {
    line += " -> ERROR " + std::string(StatusCodeName(load_status.code()));
    if (!ctx.file_valid) {
      // Expected: nothing was ever saved (or every save failed).
    } else if (fresh_file && !ctx.persistence_fault_armed) {
      ctx.Violation(step, "load of a current-generation file failed: " +
                              load_status.ToString());
    }
    // A stale file (generation moved on → table grew → fingerprint
    // mismatch) or an armed read fault may fail; both are correct.
    ctx.Trace(std::move(line));
    return Status::OK();
  }
  line += " -> ok";
  if (!ctx.file_valid) {
    ctx.Violation(step, "load succeeded but no save ever succeeded");
  } else if (!fresh_file) {
    ctx.Violation(step, "load accepted a cube saved at generation " +
                            std::to_string(ctx.file_generation) +
                            " against the grown table (stale cube)");
  } else {
    // The restored cube must answer exactly like the live one.
    TABULA_ASSIGN_OR_RETURN(std::vector<WorkloadQuery> qs,
                            DrawQueries(ctx, 3));
    for (const auto& q : qs) {
      Result<QueryResponse> a = loaded->Query(QueryRequest(q.where));
      Result<QueryResponse> b = ctx.engine->Query(QueryRequest(q.where));
      if (!a.ok() || !b.ok()) {
        ctx.Violation(step, "load probe query failed");
        continue;
      }
      if (a.value().result.sample.ToRowIds() !=
          b.value().result.sample.ToRowIds()) {
        ctx.Violation(step, "loaded cube answers differently from the "
                            "live cube for " + q.ToString());
      }
    }
  }
  ctx.Trace(std::move(line));
  return Status::OK();
}

void OpFaultToggle(SoakContext& ctx, size_t step) {
  ++ctx.report.fault_toggles;
  if (!ctx.armed.empty() && ctx.rng.Bernoulli(0.45)) {
    FaultInjector::Global().DisarmAll();
    ctx.armed.clear();
    ctx.refresh_fault_armed = false;
    ctx.persistence_fault_armed = false;
    ctx.Trace("step=" + std::to_string(step) + " fault disarm-all");
    return;
  }
  // Error faults go only on single-threaded, deterministic paths
  // (persistence, refresh); concurrent paths (thread pool, admission)
  // get delay-only faults, so which request absorbs an injection never
  // depends on scheduling — the property replay-by-seed relies on.
  // serve.execute error injection is covered by fault_injection_test.
  struct MenuEntry {
    const char* point;
    bool fail;
  };
  static constexpr MenuEntry kMenu[] = {
      {"persistence.open", true},   {"persistence.write", true},
      {"persistence.read", true},   {"refresh.begin", true},
      {"refresh.sample", true},     {"threadpool.dispatch", false},
      {"serve.admit", false},       {"serve.refresh", false},
  };
  // Sharded runs add the shard seams. shard.build / shard.merge sit on
  // the externally-serialized Refresh path, so error faults stay
  // deterministic; shard.query is hit from concurrent batch items, so
  // it gets delays only — error injection on the scatter path (degraded
  // answers) is covered single-threaded by tests/shard_fault_test.cc.
  static constexpr MenuEntry kShardMenu[] = {
      {"shard.build", true},
      {"shard.merge", true},
      {"shard.query", false},
  };
  // --ingest runs swap OpRefresh for OpIngest, whose seams sit on the
  // same externally-serialized maintenance path — error faults stay
  // deterministic.
  static constexpr MenuEntry kIngestMenu[] = {
      {"ingest.route", true},
      {"ingest.merge", true},
      {"ingest.resample", true},
      {"ingest.journal.write", true},
  };
  const size_t base_n = std::size(kMenu);
  const size_t shard_n = ctx.opt->shards > 1 ? std::size(kShardMenu) : 0;
  const size_t ingest_n = ctx.opt->ingest ? std::size(kIngestMenu) : 0;
  const size_t menu_n = base_n + shard_n + ingest_n;
  const size_t pick = static_cast<size_t>(
      ctx.rng.UniformInt(0, static_cast<int64_t>(menu_n) - 1));
  const MenuEntry& entry = pick < base_n ? kMenu[pick]
                           : pick < base_n + shard_n
                               ? kShardMenu[pick - base_n]
                               : kIngestMenu[pick - base_n - shard_n];
  FaultSpec spec;
  spec.fail = entry.fail;
  if (entry.fail) {
    spec.every_nth = 1 + static_cast<uint64_t>(ctx.rng.UniformInt(0, 1));
    spec.max_triggers = 1 + static_cast<uint64_t>(ctx.rng.UniformInt(0, 2));
    spec.code = ctx.rng.Bernoulli(0.5) ? StatusCode::kIOError
                                       : StatusCode::kUnavailable;
  } else {
    spec.probability = 0.3;
    spec.seed = static_cast<uint64_t>(ctx.rng.UniformInt(0, 1 << 20));
    spec.delay_ms = 0.05 + ctx.rng.UniformDouble(0.0, 0.3);
  }
  FaultInjector::Global().Arm(entry.point, spec);
  ctx.armed.insert(entry.point);
  std::string p(entry.point);
  if (p.rfind("refresh.", 0) == 0 || p.rfind("ingest.", 0) == 0 ||
      p == "shard.build" || p == "shard.merge") {
    ctx.refresh_fault_armed = true;
  }
  if (p.rfind("persistence.", 0) == 0) ctx.persistence_fault_armed = true;
  ctx.Trace("step=" + std::to_string(step) + " fault arm " + p +
            (entry.fail ? " fail code=" + std::string(StatusCodeName(
                                              spec.code)) +
                              " nth=" + std::to_string(spec.every_nth) +
                              " max=" + std::to_string(spec.max_triggers)
                        : " delay"));
}

/// Metrics and trace-span accounting must agree exactly with the
/// request counts the driver issued.
void CheckAccounting(SoakContext& ctx) {
  MetricsRegistry& mm = ctx.server->metrics();
  const size_t total = ctx.report.queries + ctx.report.batch_items;
  auto expect = [&](const char* name, uint64_t got, uint64_t want) {
    if (got != want) {
      ctx.report.violations.push_back(
          std::string("accounting: ") + name + "=" + std::to_string(got) +
          " expected " + std::to_string(want));
    }
  };
  expect("serve_queries_total", mm.counter("serve_queries_total").value(),
         total);
  expect("serve_batches", mm.counter("serve_batches").value(),
         ctx.report.batches);
  expect("serve_refreshes", mm.counter("serve_refreshes").value(),
         ctx.report.refreshes);
  expect("serve_rejected", mm.counter("serve_rejected").value(), 0);
  expect("serve_degraded", mm.counter("serve_degraded").value(), 0);
  expect("serve_errors", mm.counter("serve_errors").value(), 0);
  // Every non-bypass request counts exactly one of hit/miss.
  expect("serve_cache_hits+misses",
         mm.counter("serve_cache_hits").value() +
             mm.counter("serve_cache_misses").value(),
         total - ctx.bypass_queries);

  size_t query_spans = 0;
  for (const SpanRecord& rec : ctx.tracer->Snapshot()) {
    if (rec.name == "serve.query") ++query_spans;
  }
  expect("serve.query spans", query_spans, total);
}

}  // namespace

Result<SoakReport> RunSoak(const SoakOptions& options) {
  // The FaultInjector is process-global; own it for the whole run and
  // guarantee nothing stays armed afterwards, even on early error.
  ScopedFaultClear fault_guard;
  FaultInjector::Global().DisarmAll();

  SoakContext ctx;
  ctx.opt = &options;
  ctx.rng = Rng(options.seed);

  // ---- Randomized schema + data, all derived from the seed. ----
  SyntheticGeneratorOptions gen;
  gen.seed = options.seed * 7919 + 1;
  gen.num_rows = options.base_rows;
  gen.cell_spread = ctx.rng.UniformDouble(0.6, 1.4);
  gen.noise = 0.1;
  size_t ncols = 2 + static_cast<size_t>(ctx.rng.UniformInt(0, 1));
  gen.columns.clear();
  for (size_t c = 0; c < ncols; ++c) {
    SyntheticColumnSpec col;
    col.name = "c" + std::to_string(c);
    col.cardinality = 2 + static_cast<uint32_t>(ctx.rng.UniformInt(0, 3));
    col.zipf_skew = ctx.rng.Bernoulli(0.5) ? 0.8 : 0.0;
    gen.columns.push_back(col);
  }
  SyntheticGenerator generator(gen);
  ctx.table = generator.Generate();
  ctx.attrs = generator.CategoricalColumns();

  // Donor rows appended over the run: same specs, different seed, so
  // appends shift cell statistics (dropping/creating iceberg cells).
  SyntheticGeneratorOptions donor_gen = gen;
  donor_gen.seed = options.seed * 7919 + 2;
  donor_gen.num_rows = options.append_pool;
  ctx.donor = SyntheticGenerator(donor_gen).Generate();

  // ---- Loss + cube. Mean loss dominates (cheap exact θ-checks); the
  // spatial heatmap loss runs on a quarter of the seeds. ----
  TabulaOptions topt;
  topt.cubed_attributes = ctx.attrs;
  if (ctx.rng.Bernoulli(0.25)) {
    LossParams params;
    params.columns = {"x", "y"};
    TABULA_ASSIGN_OR_RETURN(std::unique_ptr<LossFunction> loss,
                            MakeLossFunction("heatmap_loss", params));
    topt.owned_loss = std::move(loss);
    topt.threshold = 0.003 + ctx.rng.UniformDouble(0.0, 0.007);
  } else {
    LossParams params;
    params.columns = {"value"};
    TABULA_ASSIGN_OR_RETURN(std::unique_ptr<LossFunction> loss,
                            MakeLossFunction("mean_loss", params));
    topt.owned_loss = std::move(loss);
    topt.threshold = 0.05 + ctx.rng.UniformDouble(0.0, 0.05);
  }
  topt.seed = options.seed;
  topt.keep_maintenance_state = ctx.rng.Bernoulli(0.5);

  TracerOptions tracer_opt;
  tracer_opt.mode = TraceMode::kAll;
  tracer_opt.capacity = options.steps * 64 + 1024;
  ctx.tracer = std::make_unique<Tracer>(tracer_opt);
  topt.tracer = ctx.tracer.get();

  // Engine selection. No extra rng draws on the sharded path — a
  // shards = 1 run must replay the shards = 0 op sequence exactly (the
  // pass-through makes the traces byte-identical).
  if (options.shards >= 1) {
    ShardedTabulaOptions shopt;
    shopt.base = std::move(topt);
    shopt.num_shards = options.shards;
    shopt.partition = options.seed % 2 == 0 ? ShardPartition::kHash
                                            : ShardPartition::kRange;
    TABULA_ASSIGN_OR_RETURN(
        ctx.sharded, ShardedTabula::Initialize(*ctx.table, std::move(shopt)));
    ctx.engine = ctx.sharded.get();
    ctx.loss = ctx.sharded->options().base.effective_loss();
    ctx.theta = ctx.sharded->options().base.threshold;
  } else {
    TABULA_ASSIGN_OR_RETURN(ctx.tabula,
                            Tabula::Initialize(*ctx.table, std::move(topt)));
    ctx.engine = ctx.tabula.get();
    ctx.loss = ctx.tabula->options().effective_loss();
    ctx.theta = ctx.tabula->options().threshold;
  }

  QueryServerOptions sopt;
  sopt.max_queue = 4096;
  sopt.tracer = ctx.tracer.get();
  ctx.server = std::make_unique<QueryServer>(ctx.engine, std::move(sopt));

  ctx.cube_path = options.scratch_path;
  if (ctx.cube_path.empty()) {
    std::error_code ec;
    std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
    if (ec) tmp = ".";
    ctx.cube_path =
        (tmp / ("tabula_soak_" + std::to_string(options.seed) + ".cube"))
            .string();
  }
  std::error_code ec;
  std::filesystem::remove(ctx.cube_path, ec);
  std::filesystem::remove(ctx.cube_path + ".tmp", ec);

  // --ingest: appends flow through a synchronous (deterministic)
  // Ingestor journaling into a WAL beside the scratch cube file, with
  // every engine/table mutation routed through the server's locks.
  if (options.ingest) {
    IngestorOptions iopts;
    iopts.journal_path = ctx.cube_path + ".wal";
    iopts.server = ctx.server.get();
    std::filesystem::remove(iopts.journal_path, ec);
    TABULA_ASSIGN_OR_RETURN(
        ctx.ingestor, Ingestor::Make(ctx.engine, ctx.table.get(), iopts));
  }

  // At K <= 1 the iceberg count comes out of the same single-instance
  // build either way, keeping this line identical across shards=0/1.
  const size_t init_ice = ctx.sharded != nullptr
                              ? ctx.sharded->merged_iceberg_cells()
                              : ctx.tabula->init_stats().iceberg_cells;
  ctx.Trace("init seed=" + std::to_string(options.seed) + " rows=" +
            std::to_string(options.base_rows) + " cols=" +
            std::to_string(ncols) + " loss=" + ctx.loss->name() +
            " theta=" + std::to_string(ctx.theta) + " iceberg_cells=" +
            std::to_string(init_ice) +
            (options.shards > 1
                 ? " shards=" + std::to_string(options.shards) + " part=" +
                       ShardPartitionName(ctx.sharded->options().partition)
                 : "") +
            (options.ingest ? " ingest" : ""));

  // ---- The interleaved op loop. ----
  const std::vector<double> weights =
      options.faults
          ? std::vector<double>{0.43, 0.15, 0.12, 0.09, 0.09, 0.12}
          : std::vector<double>{0.49, 0.18, 0.15, 0.09, 0.09, 0.0};
  for (size_t step = 0; step < options.steps; ++step) {
    switch (ctx.rng.Discrete(weights)) {
      case 0:
        TABULA_RETURN_NOT_OK(OpQuery(ctx, step));
        break;
      case 1:
        TABULA_RETURN_NOT_OK(OpBatch(ctx, step));
        break;
      case 2:
        if (options.ingest) {
          TABULA_RETURN_NOT_OK(OpIngest(ctx, step));
        } else {
          TABULA_RETURN_NOT_OK(OpRefresh(ctx, step));
        }
        break;
      case 3:
        TABULA_RETURN_NOT_OK(OpSave(ctx, step));
        break;
      case 4:
        TABULA_RETURN_NOT_OK(OpLoad(ctx, step));
        break;
      default:
        OpFaultToggle(ctx, step);
        break;
    }
    ++ctx.report.steps_run;
  }

  // Faults off before the final accounting sweep (its probes must not
  // absorb injections).
  FaultInjector::Global().DisarmAll();
  ctx.armed.clear();
  CheckAccounting(ctx);
  ctx.report.final_generation = ctx.engine->generation();

  std::filesystem::remove(ctx.cube_path, ec);
  std::filesystem::remove(ctx.cube_path + ".tmp", ec);
  std::filesystem::remove(ctx.cube_path + ".wal", ec);
  return std::move(ctx.report);
}

}  // namespace tabula

#ifndef TABULA_TESTING_FAULT_INJECTION_H_
#define TABULA_TESTING_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tabula {

/// \brief What an armed fault point does when a hit triggers.
///
/// Triggering is fully deterministic: `every_nth` counts hits at the
/// point, and `probability` is decided by hashing (seed, hit index) —
/// never by a shared stateful RNG — so two runs that reach a point the
/// same number of times inject at exactly the same hits. That is the
/// property the soak driver's replay-by-seed depends on.
struct FaultSpec {
  /// Trigger on every Nth hit (1 = every hit). Ignored when
  /// `probability` is set (>= 0).
  uint64_t every_nth = 1;
  /// Seeded trigger probability in [0, 1]; < 0 means "use every_nth".
  double probability = -1.0;
  /// Seed for the per-hit probability hash.
  uint64_t seed = 42;
  /// Stop triggering after this many injections (0 = unlimited).
  uint64_t max_triggers = 0;
  /// Sleep this long before (possibly) failing, in milliseconds.
  /// Delay-only faults (fail = false) model slow I/O / scheduling jitter.
  double delay_ms = 0.0;
  /// When true a triggered hit returns an error Status; when false the
  /// hit only delays.
  bool fail = true;
  /// When true a triggered hit THROWS std::runtime_error instead of
  /// returning a Status. Models code that raises across a seam designed
  /// for Status returns (e.g. an exception unwinding out of a ThreadPool
  /// task mid-batch) — exactly the failure mode RAII cleanup guards
  /// exist for. Takes precedence over `fail`.
  bool throw_exception = false;
  /// Code of the injected error.
  StatusCode code = StatusCode::kIOError;
  /// Message of the injected error ("" → "injected fault at '<point>'").
  std::string message;
};

/// \brief Registry of named fault points (FoundationDB-style seams).
///
/// Production code marks its fallible seams with TABULA_FAULT_POINT /
/// TABULA_FAULT_DELAY below; tests and the soak driver arm specific
/// points with a FaultSpec. Cost contract: with nothing armed anywhere,
/// a seam is one relaxed atomic load plus an untaken branch — the same
/// discipline as the kDisabled Tracer — so seams may sit on hot paths
/// (ThreadPool dispatch, serve admission) without measurable overhead.
///
/// Thread-safe: Arm/Disarm/Hit may race freely; the per-point hit
/// counter is advanced under the registry mutex, and injected delays
/// sleep outside it.
class FaultInjector {
 public:
  /// Per-point counters, for asserting "the fault actually fired".
  struct PointStats {
    uint64_t hits = 0;      ///< times an armed point was reached
    uint64_t triggers = 0;  ///< times it injected (delay and/or error)
  };

  static FaultInjector& Global();

  /// True when at least one point is armed in the whole process — the
  /// macro fast-path guard. One relaxed load.
  static bool AnyArmed() {
    return armed_points_.load(std::memory_order_relaxed) != 0;
  }

  /// Arms (or re-arms, resetting counters) the named point.
  void Arm(const std::string& point, FaultSpec spec);

  /// Disarms one point (no-op when not armed).
  void Disarm(const std::string& point);

  /// Disarms everything and clears all stats.
  void DisarmAll();

  /// Slow path behind the macros: looks the point up, advances its hit
  /// counter, applies the armed delay, and returns the injected error
  /// when the hit triggers (OK otherwise, and always when unarmed).
  Status Hit(std::string_view point);

  /// Counters of an armed point (zeros when unknown).
  PointStats StatsFor(const std::string& point) const;

  /// Counters of every armed point.
  std::map<std::string, PointStats> Snapshot() const;

 private:
  FaultInjector() = default;

  struct ArmedPoint {
    FaultSpec spec;
    PointStats stats;
  };

  /// Process-wide armed-point count; the macros' one-load guard.
  inline static std::atomic<int> armed_points_{0};

  mutable std::mutex mu_;
  std::map<std::string, ArmedPoint, std::less<>> points_;
};

/// RAII helper: disarms every fault point on scope exit, so a test that
/// fails mid-way cannot leak armed faults into later tests.
class ScopedFaultClear {
 public:
  ScopedFaultClear() = default;
  ~ScopedFaultClear() { FaultInjector::Global().DisarmAll(); }
  ScopedFaultClear(const ScopedFaultClear&) = delete;
  ScopedFaultClear& operator=(const ScopedFaultClear&) = delete;
};

/// Fault seam in a function returning Status or Result<T>: when the
/// named point is armed and triggers, the injected Status is returned
/// to the caller (after any armed delay). Disabled cost: one relaxed
/// atomic load.
#define TABULA_FAULT_POINT(point)                                     \
  do {                                                                \
    if (::tabula::FaultInjector::AnyArmed()) {                        \
      ::tabula::Status _tabula_fault_status =                         \
          ::tabula::FaultInjector::Global().Hit(point);               \
      if (!_tabula_fault_status.ok()) return _tabula_fault_status;    \
    }                                                                 \
  } while (0)

/// Fault seam on a void path (task dispatch, admission wait): armed
/// delays apply; an armed error Status cannot propagate from a void
/// seam and is intentionally swallowed (arm `fail = false` specs here).
#define TABULA_FAULT_DELAY(point)                                     \
  do {                                                                \
    if (::tabula::FaultInjector::AnyArmed()) {                        \
      (void)::tabula::FaultInjector::Global().Hit(point);             \
    }                                                                 \
  } while (0)

}  // namespace tabula

#endif  // TABULA_TESTING_FAULT_INJECTION_H_

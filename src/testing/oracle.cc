#include "testing/oracle.h"

#include <numeric>

#include "common/rng.h"

namespace tabula {

const OracleCell* OracleCube::Find(uint64_t key) const {
  const size_t* idx = index.Find(key);
  return idx == nullptr ? nullptr : &cells[*idx];
}

Result<OracleCube> BuildOracleCube(const Table& table,
                                   const KeyEncoder& encoder,
                                   const KeyPacker& packer,
                                   const LossFunction& loss,
                                   const DatasetView& global_sample,
                                   double theta) {
  OracleCube cube;
  Lattice lattice(packer.num_cols());
  const size_t n = table.num_rows();
  for (size_t m = 0; m < lattice.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    // Independent full scan per cuboid — deliberately NOT the single
    // finest-scan + roll-up the dry run uses. Cells come out in ascending
    // key order, matching the production path's deterministic ordering.
    FlatHashMap<std::vector<RowId>> by_key;
    for (size_t r = 0; r < n; ++r) {
      uint64_t key =
          packer.PackRowMasked(encoder, static_cast<RowId>(r), mask);
      by_key[key].push_back(static_cast<RowId>(r));
    }
    for (auto& [key, rows] : by_key.ExtractSorted()) {
      OracleCell cell;
      cell.key = key;
      cell.cuboid = mask;
      DatasetView raw(&table, rows);
      TABULA_ASSIGN_OR_RETURN(cell.loss, loss.Loss(raw, global_sample));
      cell.iceberg = cell.loss > theta;
      cell.rows = std::move(rows);
      cube.index[key] = cube.cells.size();
      cube.cells.push_back(std::move(cell));
      ++cube.total_cells;
      if (cube.cells.back().iceberg) ++cube.iceberg_cells;
    }
  }
  return cube;
}

Result<std::vector<RowId>> NaiveGreedySample(const Table& table,
                                             const LossFunction& loss,
                                             double theta,
                                             const DatasetView& raw,
                                             uint64_t seed) {
  const size_t n = raw.size();
  if (n == 0) return std::vector<RowId>{};

  // Same shuffled candidate order as GreedySampler::Sample, so when two
  // candidates yield the exact same loss both implementations pick the
  // one earlier in this order.
  Rng rng(seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  rng.Shuffle(&order);

  std::vector<char> chosen(n, 0);
  std::vector<RowId> sample;
  while (sample.size() < n) {
    if (!sample.empty()) {
      DatasetView sample_view(&table, sample);
      TABULA_ASSIGN_OR_RETURN(double cur, loss.Loss(raw, sample_view));
      if (cur <= theta) break;
    }
    // Exhaustive round: direct loss(raw, sample + candidate) for every
    // remaining candidate, strict-minimum pick.
    double best_loss = kInfiniteLoss;
    size_t best = n;
    std::vector<RowId> trial = sample;
    trial.push_back(0);  // slot for the candidate under test
    for (size_t i : order) {
      if (chosen[i]) continue;
      trial.back() = raw.row(i);
      DatasetView trial_view(&table, trial);
      TABULA_ASSIGN_OR_RETURN(double l, loss.Loss(raw, trial_view));
      if (l < best_loss) {
        best_loss = l;
        best = i;
      }
    }
    if (best == n) break;  // no candidate left (all chosen)
    chosen[best] = 1;
    sample.push_back(raw.row(best));
  }
  return sample;
}

}  // namespace tabula

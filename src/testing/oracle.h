#ifndef TABULA_TESTING_ORACLE_H_
#define TABULA_TESTING_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "cube/lattice.h"
#include "exec/group_by.h"
#include "loss/loss_function.h"
#include "storage/table.h"

namespace tabula {

/// \brief Brute-force reference implementations of the cube pipeline,
/// for differential testing (SQLite-TH3 style): every optimization in
/// the production path — the algebraic dry-run roll-up, the cost-model
/// path choice, the lazy-forward sampler, the candidate-pool cap — has
/// a deliberately naive counterpart here that shares NO code with it
/// beyond the LossFunction interface. The optimized and naive answers
/// must agree; when they diverge, the optimization broke correctness.
///
/// Everything in this header is O(cells × rows) or worse by design;
/// use small tables.

/// One cell of the brute-force cube: raw rows gathered by direct scan,
/// loss evaluated directly against the global sample (no LossState
/// accumulation, no lattice roll-up).
struct OracleCell {
  uint64_t key = 0;
  CuboidMask cuboid = 0;
  std::vector<RowId> rows;
  double loss = 0.0;
  bool iceberg = false;
};

/// The exact cube: every non-empty cell of every cuboid.
struct OracleCube {
  std::vector<OracleCell> cells;
  size_t total_cells = 0;
  size_t iceberg_cells = 0;

  /// Cell by full-width packed key (nullptr when absent/empty).
  const OracleCell* Find(uint64_t key) const;

  FlatHashMap<size_t> index;
};

/// Builds the exact cube by enumerating every cuboid independently:
/// one full-table scan per cuboid collects each cell's raw rows, and
/// each cell's loss is one direct LossFunction::Loss call. No shared
/// state with RunDryRun/RunRealRun.
Result<OracleCube> BuildOracleCube(const Table& table,
                                   const KeyEncoder& encoder,
                                   const KeyPacker& packer,
                                   const LossFunction& loss,
                                   const DatasetView& global_sample,
                                   double theta);

/// \brief Naive greedy SAMPLING(*, θ) — Algorithm 1 with nothing on:
/// no lazy-forward heap, no candidate-pool cap, no incremental
/// evaluator. Every round re-evaluates loss(raw, sample + candidate)
/// for EVERY remaining candidate by direct loss computation and picks
/// the strict minimum, scanning candidates in the same seeded shuffle
/// order the production sampler uses so tie-breaking matches the
/// exhaustive path exactly. The lazy-forward (CELF) path used for
/// submodular losses breaks exact gain ties by heap order instead, so
/// its samples may swap in an equally-good candidate — tests compare
/// it tie-tolerantly (see tests/oracle_diff_test.cc).
Result<std::vector<RowId>> NaiveGreedySample(const Table& table,
                                             const LossFunction& loss,
                                             double theta,
                                             const DatasetView& raw,
                                             uint64_t seed);

}  // namespace tabula

#endif  // TABULA_TESTING_ORACLE_H_

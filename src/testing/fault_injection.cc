#include "testing/fault_injection.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace tabula {

namespace {

/// SplitMix64 finalizer: a stateless, high-quality 64-bit mix. The
/// probability decision hashes (seed, hit index) through it, so whether
/// hit #h triggers depends only on the armed spec — not on thread
/// interleaving or any shared RNG stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  if (spec.every_nth == 0) spec.every_nth = 1;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(
      point, ArmedPoint{std::move(spec), PointStats{}});
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

Status FaultInjector::Hit(std::string_view point) {
  double delay_ms = 0.0;
  bool do_throw = false;
  std::string throw_message;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    ArmedPoint& armed = it->second;
    const FaultSpec& spec = armed.spec;
    uint64_t hit = ++armed.stats.hits;

    if (spec.max_triggers > 0 && armed.stats.triggers >= spec.max_triggers) {
      return Status::OK();
    }
    bool trigger;
    if (spec.probability >= 0.0) {
      // [0, 1) draw from the (seed, hit) hash.
      double u = static_cast<double>(Mix64(spec.seed ^ hit) >> 11) *
                 (1.0 / 9007199254740992.0);  // 2^53
      trigger = u < spec.probability;
    } else {
      trigger = hit % spec.every_nth == 0;
    }
    if (!trigger) return Status::OK();
    ++armed.stats.triggers;
    delay_ms = spec.delay_ms;
    std::string msg = spec.message.empty()
                          ? "injected fault at '" + std::string(point) + "'"
                          : spec.message;
    if (spec.throw_exception) {
      do_throw = true;
      throw_message = std::move(msg);
    } else if (spec.fail) {
      injected = Status::FromCode(spec.code, std::move(msg));
    }
  }
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  if (do_throw) throw std::runtime_error(throw_message);
  return injected;
}

FaultInjector::PointStats FaultInjector::StatsFor(
    const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? PointStats{} : it->second.stats;
}

std::map<std::string, FaultInjector::PointStats> FaultInjector::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, PointStats> out;
  for (const auto& [name, armed] : points_) out.emplace(name, armed.stats);
  return out;
}

}  // namespace tabula

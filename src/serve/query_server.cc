#include "serve/query_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/stopwatch.h"
#include "obs/export.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {
/// Metric names (one registry per server, so no instance prefix).
constexpr char kQueriesTotal[] = "serve_queries_total";
constexpr char kCacheHits[] = "serve_cache_hits";
constexpr char kCacheMisses[] = "serve_cache_misses";
constexpr char kRejected[] = "serve_rejected";
constexpr char kDegraded[] = "serve_degraded";
constexpr char kErrors[] = "serve_errors";
constexpr char kBatches[] = "serve_batches";
constexpr char kRefreshes[] = "serve_refreshes";
constexpr char kInFlight[] = "serve_in_flight";
constexpr char kLatency[] = "serve_latency";
}  // namespace

QueryServer::QueryServer(QueryEngine* engine, QueryServerOptions options,
                         ThreadPool* pool)
    : engine_(engine),
      options_(options),
      pool_(pool != nullptr ? pool : &ThreadPool::Global()),
      cache_(std::make_unique<ResultCache>(options_.cache)),
      slow_log_(options_.slow_query_ms, options_.slow_query_capacity) {
  if (options_.max_concurrency == 0) {
    options_.max_concurrency = pool_->num_threads();
  }
  options_.max_queue = std::max(options_.max_queue, options_.max_concurrency);
  // Cache-invalidation hook: any Refresh() of the underlying cube —
  // through this server or not — fences every cached answer.
  refresh_listener_id_ = engine_->AddRefreshListener([this] {
    cache_->InvalidateAll();
    // An ingest commit (or any refresh) may have caught the cube up;
    // wake progressive-answer waiters so they re-check.
    BumpFreshEpoch();
  });
  RebuildGlobalAnswer();
}

QueryServer::~QueryServer() {
  engine_->RemoveRefreshListener(refresh_listener_id_);
}

void QueryServer::RebuildGlobalAnswer() {
  auto answer = std::make_shared<TabulaQueryResult>();
  answer->sample = engine_->global_sample();
  std::lock_guard<std::mutex> lock(global_answer_mu_);
  global_answer_ = std::move(answer);
}

ServeAnswer QueryServer::DegradedAnswer(double queue_millis) {
  metrics_.counter(kDegraded).Increment();
  ServeAnswer answer;
  {
    std::lock_guard<std::mutex> lock(global_answer_mu_);
    answer.result = global_answer_;
  }
  answer.degraded = true;
  answer.queue_millis = queue_millis;
  // total_millis + latency histogram are filled by the caller's span
  // epilogue, the single place the latency is measured.
  return answer;
}

void QueryServer::MaybeLogSlowQuery(const std::string& key,
                                    const ServeAnswer& answer) {
  if (!slow_log_.ShouldLog(answer.total_millis)) return;
  SlowQueryEntry entry;
  entry.predicate_key = key;
  entry.total_millis = answer.total_millis;
  entry.queue_millis = answer.queue_millis;
  entry.cache_hit = answer.cache_hit;
  entry.degraded = answer.degraded;
  entry.error = answer.error;
  entry.span_id = answer.span_id;
  if (answer.span_id != 0 && options_.tracer != nullptr) {
    entry.span_tree = RenderSpanTree(
        SpanSubtree(options_.tracer->Snapshot(), answer.span_id));
  }
  slow_log_.Record(std::move(entry));
}

QueryServer::Admission QueryServer::Admit(double deadline_ms,
                                          double* waited_ms) {
  Stopwatch wait;
  // Delay-only seam: simulates admission pressure (slow wakeups, noisy
  // neighbours) so deadline-degradation paths can be forced in tests.
  TABULA_FAULT_DELAY("serve.admit");
  std::unique_lock<std::mutex> lock(slot_mu_);
  if (admitted_ >= options_.max_queue) return Admission::kRejected;
  ++admitted_;
  while (running_ >= options_.max_concurrency) {
    if (deadline_ms > 0.0) {
      double remaining_ms = deadline_ms - wait.ElapsedMillis();
      if (remaining_ms <= 0.0) {
        --admitted_;
        slot_cv_.notify_one();
        *waited_ms = wait.ElapsedMillis();
        return Admission::kTimedOut;
      }
      slot_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                  remaining_ms));
    } else {
      slot_cv_.wait(lock);
    }
  }
  ++running_;
  *waited_ms = wait.ElapsedMillis();
  return Admission::kAcquired;
}

void QueryServer::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    --running_;
    --admitted_;
  }
  slot_cv_.notify_one();
}

Result<ServeAnswer> QueryServer::Execute(std::vector<PredicateTerm> canonical,
                                         const std::string& key, bool trace,
                                         uint64_t parent_span) {
  // Capture the cache generation BEFORE the lookup: if a Refresh fences
  // the cache while this query is in flight, the Put below becomes a
  // no-op instead of resurrecting a pre-refresh answer.
  const uint64_t gen = cache_->generation();
  // Error/delay seam on the uncached lookup path; an injected error
  // surfaces to the caller as a Status and counts as a serve error.
  if (FaultInjector::AnyArmed()) {
    Status injected = FaultInjector::Global().Hit("serve.execute");
    if (!injected.ok()) {
      metrics_.counter(kErrors).Increment();
      return injected;
    }
  }
  QueryRequest inner(std::move(canonical));
  inner.trace = trace;
  inner.parent_span = parent_span;
  Result<QueryResponse> raw = [&]() -> Result<QueryResponse> {
    std::shared_lock<WriterPrioritySharedMutex> lock(cube_mu_);
    return engine_->Query(inner);
  }();
  if (!raw.ok()) {
    metrics_.counter(kErrors).Increment();
    return raw.status();
  }
  QueryResponse response = std::move(raw).value();
  auto shared =
      std::make_shared<const TabulaQueryResult>(std::move(response.result));
  if (options_.enable_cache) cache_->Put(key, shared, gen);
  ServeAnswer answer;
  answer.result = std::move(shared);
  return answer;
}

Result<ServeAnswer> QueryServer::Query(
    const std::vector<PredicateTerm>& where, double deadline_ms) {
  QueryRequest request(where);
  request.deadline_ms = deadline_ms;
  return Query(request);
}

Result<ServeAnswer> QueryServer::Query(const QueryRequest& request) {
  // One "serve.query" span per request; inert (one branch) without an
  // enabled tracer.
  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan("serve.query", request.parent_span,
                                      request.trace);
  }
  Stopwatch total;
  const double deadline = request.deadline_ms < 0.0
                              ? options_.default_deadline_ms
                              : request.deadline_ms;
  metrics_.counter(kQueriesTotal).Increment();

  std::vector<PredicateTerm> canonical = CanonicalizeTerms(request.where);
  std::string key = CanonicalPredicateKey(canonical);

  // The one epilogue every answered path funnels through: the span's
  // duration (when traced) is the answer's total_millis AND the value
  // recorded into the serve_latency histogram, so the trace, the
  // answer, and the metrics agree by construction.
  auto finish = [&](ServeAnswer* answer) {
    answer->span_id = span.id();
    if (span.recording()) {
      span.SetAttribute("predicates", key);
      span.SetAttribute("cache_hit", answer->cache_hit);
      span.SetAttribute("degraded", answer->degraded);
      span.SetAttribute("queue_ms", answer->queue_millis);
      if (answer->error) span.SetAttribute("error", true);
      answer->total_millis = span.End();
    } else {
      answer->total_millis = total.ElapsedMillis();
    }
    metrics_.histogram(kLatency).RecordMillis(answer->total_millis);
    MaybeLogSlowQuery(key, *answer);
  };

  // Progressive-answer hint: spend (up to) the deadline waiting for the
  // in-flight ingest cycle to commit, then serve whatever is freshest.
  // The hint's contract is "the freshest real answer, honestly
  // stale-tagged on timeout" — never the global-sample degraded answer —
  // so after the wait the request admits without a deadline instead of
  // racing DegradedAnswer. With no deadline or no pending ingest this
  // is a no-op and the request behaves exactly like kCacheOk.
  double admit_deadline = deadline;
  if (request.consistency == ConsistencyHint::kFreshWithinDeadline &&
      deadline > 0.0) {
    const bool fresh = WaitForFreshness(deadline);
    if (span.recording()) span.SetAttribute("waited_fresh", fresh);
    admit_deadline = 0.0;  // 0 → Admit waits for a slot indefinitely
  }

  if (options_.enable_cache &&
      request.consistency != ConsistencyHint::kBypassCache) {
    if (auto hit = cache_->Get(key)) {
      metrics_.counter(kCacheHits).Increment();
      ServeAnswer answer;
      answer.result = std::move(hit);
      answer.cache_hit = true;
      finish(&answer);
      return answer;
    }
    metrics_.counter(kCacheMisses).Increment();
  }

  double waited_ms = 0.0;
  switch (Admit(admit_deadline, &waited_ms)) {
    case Admission::kRejected:
      metrics_.counter(kRejected).Increment();
      if (span.recording()) {
        span.SetAttribute("predicates", key);
        span.SetAttribute("rejected", true);
        span.SetAttribute("queue_ms", waited_ms);
      }
      return Status::Unavailable(
          "admission queue full (max_queue=" +
          std::to_string(options_.max_queue) + ")");
    case Admission::kTimedOut: {
      ServeAnswer answer = DegradedAnswer(waited_ms);
      finish(&answer);
      return answer;
    }
    case Admission::kAcquired:
      break;
  }

  metrics_.gauge(kInFlight).Increment();
  Result<ServeAnswer> executed =
      Execute(std::move(canonical), key, request.trace, span.id());
  metrics_.gauge(kInFlight).Decrement();
  ReleaseSlot();
  if (!executed.ok()) {
    // Failed requests still burn serving capacity; run them through the
    // same epilogue so the latency histogram and slow-query log account
    // for them instead of silently under-reporting under error storms.
    ServeAnswer failed;
    failed.error = true;
    failed.queue_millis = waited_ms;
    finish(&failed);
    return executed.status();
  }

  ServeAnswer answer = std::move(executed).value();
  answer.queue_millis = waited_ms;
  finish(&answer);
  return answer;
}

BatchItem QueryServer::ServeBatchItem(const QueryRequest& request,
                                      double deadline_ms,
                                      const Stopwatch& batch_timer,
                                      uint64_t batch_span) {
  BatchItem item;
  // Runs on a pool thread: the parent linkage to the "serve.batch" span
  // crosses the ThreadPool hop via the plain `batch_span` id.
  Span span;
  if (options_.tracer != nullptr) {
    span = options_.tracer->StartSpan(
        "serve.query", batch_span != 0 ? batch_span : request.parent_span,
        request.trace);
  }
  Stopwatch total;
  metrics_.counter(kQueriesTotal).Increment();
  // Time this item spent queued behind earlier items of the same batch
  // (pool width < batch size): batch start → this item's turn.
  const double queued_ms = batch_timer.ElapsedMillis();
  item.answer.queue_millis = queued_ms;

  std::vector<PredicateTerm> canonical = CanonicalizeTerms(request.where);
  std::string key = CanonicalPredicateKey(canonical);

  auto finish = [&]() {
    item.answer.span_id = span.id();
    if (span.recording()) {
      span.SetAttribute("predicates", key);
      span.SetAttribute("cache_hit", item.answer.cache_hit);
      span.SetAttribute("degraded", item.answer.degraded);
      span.SetAttribute("queue_ms", item.answer.queue_millis);
      if (item.answer.error) span.SetAttribute("error", true);
      item.answer.total_millis = span.End();
    } else {
      item.answer.total_millis = total.ElapsedMillis();
    }
    metrics_.histogram(kLatency).RecordMillis(item.answer.total_millis);
    MaybeLogSlowQuery(key, item.answer);
  };

  if (options_.enable_cache &&
      request.consistency != ConsistencyHint::kBypassCache) {
    if (auto hit = cache_->Get(key)) {
      metrics_.counter(kCacheHits).Increment();
      item.answer.result = std::move(hit);
      item.answer.cache_hit = true;
      finish();
      return item;
    }
    metrics_.counter(kCacheMisses).Increment();
  }

  // Items whose turn comes after the batch deadline degrade instead of
  // stretching the pan's tail latency.
  if (deadline_ms > 0.0 && batch_timer.ElapsedMillis() > deadline_ms) {
    item.answer = DegradedAnswer(queued_ms);
    finish();
    return item;
  }

  metrics_.gauge(kInFlight).Increment();
  Result<ServeAnswer> executed =
      Execute(std::move(canonical), key, request.trace, span.id());
  metrics_.gauge(kInFlight).Decrement();
  if (!executed.ok()) {
    // Same contract as Query(): a failed item still flows through the
    // latency epilogue so metrics and the slow-query log see it.
    item.status = executed.status();
    item.answer.error = true;
    finish();
    return item;
  }
  item.answer = std::move(executed).value();
  item.answer.queue_millis = queued_ms;
  finish();
  return item;
}

Result<std::vector<BatchItem>> QueryServer::BatchQuery(
    const std::vector<std::vector<PredicateTerm>>& cells,
    double deadline_ms) {
  std::vector<QueryRequest> requests;
  requests.reserve(cells.size());
  for (const auto& where : cells) {
    QueryRequest request(where);
    request.deadline_ms = deadline_ms;
    requests.push_back(std::move(request));
  }
  return BatchQuery(requests);
}

Result<std::vector<BatchItem>> QueryServer::BatchQuery(
    const std::vector<QueryRequest>& requests) {
  Stopwatch batch_timer;
  metrics_.counter(kBatches).Increment();
  if (requests.empty()) return std::vector<BatchItem>{};

  // One "serve.batch" span for the fan-out; per-item spans parent under
  // it. It opts in when any item does, so one traced item is enough to
  // capture the whole pan in kOnDemand mode.
  Span batch_span;
  if (options_.tracer != nullptr) {
    bool any_trace = false;
    uint64_t parent = 0;
    for (const auto& request : requests) {
      any_trace = any_trace || request.trace;
      if (parent == 0) parent = request.parent_span;
    }
    batch_span = options_.tracer->StartSpan("serve.batch", parent, any_trace);
    if (batch_span.recording()) {
      batch_span.SetAttribute("cells", requests.size());
    }
  }

  // Batch admission: the whole fan-out counts against the queue bound.
  // Items run directly on the pool (its width bounds parallelism), so
  // they skip the per-request slot wait.
  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    if (requests.size() >
        options_.max_queue - std::min(admitted_, options_.max_queue)) {
      metrics_.counter(kRejected).Increment();
      if (batch_span.recording()) {
        batch_span.SetAttribute("rejected", true);
      }
      return Status::Unavailable(
          "batch of " + std::to_string(requests.size()) +
          " would overflow the admission queue (max_queue=" +
          std::to_string(options_.max_queue) + ")");
    }
    admitted_ += requests.size();
  }

  // RAII release of the batch's admission slots: an exception unwinding
  // out of the fan-out (e.g. one thrown from a pool task and rethrown
  // by ParallelFor) must not leave the slots counted forever — that
  // would shrink effective capacity until every later request is
  // rejected. Local classes share the enclosing member function's
  // access to slot_mu_/admitted_/slot_cv_.
  struct AdmissionRelease {
    QueryServer* server;
    size_t count;
    ~AdmissionRelease() {
      {
        std::lock_guard<std::mutex> lock(server->slot_mu_);
        server->admitted_ -= count;
      }
      server->slot_cv_.notify_all();
    }
  } release{this, requests.size()};

  std::vector<BatchItem> items(requests.size());
  const uint64_t batch_span_id = batch_span.id();
  try {
    pool_->ParallelFor(requests.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const QueryRequest& request = requests[i];
        const double deadline = request.deadline_ms < 0.0
                                    ? options_.default_deadline_ms
                                    : request.deadline_ms;
        items[i] = ServeBatchItem(request, deadline, batch_timer,
                                  batch_span_id);
      }
    });
  } catch (const std::exception& e) {
    metrics_.counter(kErrors).Increment();
    if (batch_span.recording()) batch_span.SetAttribute("error", true);
    return Status::Internal(std::string("batch fan-out threw: ") + e.what());
  }
  return items;
}

void QueryServer::MutateExclusive(const std::function<void()>& fn) {
  {
    std::unique_lock<WriterPrioritySharedMutex> lock(cube_mu_);
    fn();
    // Fence unconditionally: a table append falsifies the `stale` tag
    // of every cached answer (they were computed when the appended rows
    // did not exist), and an ingest commit changes the answers
    // themselves. The cube generation the cache keys on cannot see the
    // former, so the fence must not be conditional on it.
    cache_->InvalidateAll();
    RebuildGlobalAnswer();
  }
  BumpFreshEpoch();
}

void QueryServer::ReadShared(const std::function<void()>& fn) {
  std::shared_lock<WriterPrioritySharedMutex> lock(cube_mu_);
  fn();
}

void QueryServer::BumpFreshEpoch() {
  {
    std::lock_guard<std::mutex> lock(fresh_mu_);
    ++fresh_epoch_;
  }
  fresh_cv_.notify_all();
}

bool QueryServer::WaitForFreshness(double timeout_ms) {
  Stopwatch timer;
  while (true) {
    // Capture the epoch BEFORE the pending check: a commit landing
    // between the check and the wait bumps the epoch, so the wait
    // predicate observes it — no lost wakeup.
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(fresh_mu_);
      epoch = fresh_epoch_;
    }
    {
      std::shared_lock<WriterPrioritySharedMutex> lock(cube_mu_);
      if (engine_->PendingIngestRows() == 0) return true;
    }
    std::unique_lock<std::mutex> lock(fresh_mu_);
    auto epoch_changed = [&] { return fresh_epoch_ != epoch; };
    if (timeout_ms > 0.0) {
      double remaining_ms = timeout_ms - timer.ElapsedMillis();
      if (remaining_ms <= 0.0) return false;
      if (!fresh_cv_.wait_for(
              lock,
              std::chrono::duration<double, std::milli>(remaining_ms),
              epoch_changed)) {
        return false;  // timed out with the cube still behind
      }
    } else {
      fresh_cv_.wait(lock, epoch_changed);
    }
  }
}

Status QueryServer::Refresh(QueryEngine::RefreshStats* stats) {
  std::unique_lock<WriterPrioritySharedMutex> lock(cube_mu_);
  // Delay-only seam: widens the exclusive-lock window so refresh-vs-
  // query races (generation fencing, stale-cache checks) are reachable
  // deterministically instead of only under lucky scheduling.
  TABULA_FAULT_DELAY("serve.refresh");
  Status st = engine_->Refresh(stats);
  if (st.ok()) {
    // The registered listener already fenced the cache; refresh the
    // degraded-answer snapshot (a full rebuild may replace the global
    // sample).
    RebuildGlobalAnswer();
    metrics_.counter(kRefreshes).Increment();
  }
  return st;
}

}  // namespace tabula

#include "serve/query_server.h"

#include <algorithm>
#include <chrono>

#include "common/stopwatch.h"

namespace tabula {

namespace {
/// Metric names (one registry per server, so no instance prefix).
constexpr char kQueriesTotal[] = "serve_queries_total";
constexpr char kCacheHits[] = "serve_cache_hits";
constexpr char kCacheMisses[] = "serve_cache_misses";
constexpr char kRejected[] = "serve_rejected";
constexpr char kDegraded[] = "serve_degraded";
constexpr char kErrors[] = "serve_errors";
constexpr char kBatches[] = "serve_batches";
constexpr char kRefreshes[] = "serve_refreshes";
constexpr char kInFlight[] = "serve_in_flight";
constexpr char kLatency[] = "serve_latency";
}  // namespace

QueryServer::QueryServer(Tabula* tabula, QueryServerOptions options,
                         ThreadPool* pool)
    : tabula_(tabula),
      options_(options),
      pool_(pool != nullptr ? pool : &ThreadPool::Global()),
      cache_(std::make_unique<ResultCache>(options_.cache)) {
  if (options_.max_concurrency == 0) {
    options_.max_concurrency = pool_->num_threads();
  }
  options_.max_queue = std::max(options_.max_queue, options_.max_concurrency);
  // Cache-invalidation hook: any Refresh() of the underlying cube —
  // through this server or not — fences every cached answer.
  refresh_listener_id_ = tabula_->AddRefreshListener([this] {
    cache_->InvalidateAll();
  });
  RebuildGlobalAnswer();
}

QueryServer::~QueryServer() {
  tabula_->RemoveRefreshListener(refresh_listener_id_);
}

void QueryServer::RebuildGlobalAnswer() {
  auto answer = std::make_shared<TabulaQueryResult>();
  answer->sample = tabula_->global_sample();
  std::lock_guard<std::mutex> lock(global_answer_mu_);
  global_answer_ = std::move(answer);
}

ServeAnswer QueryServer::DegradedAnswer(double queue_millis,
                                        double total_millis) {
  metrics_.counter(kDegraded).Increment();
  ServeAnswer answer;
  {
    std::lock_guard<std::mutex> lock(global_answer_mu_);
    answer.result = global_answer_;
  }
  answer.degraded = true;
  answer.queue_millis = queue_millis;
  answer.total_millis = total_millis;
  metrics_.histogram(kLatency).RecordMillis(total_millis);
  return answer;
}

QueryServer::Admission QueryServer::Admit(double deadline_ms,
                                          double* waited_ms) {
  Stopwatch wait;
  std::unique_lock<std::mutex> lock(slot_mu_);
  if (admitted_ >= options_.max_queue) return Admission::kRejected;
  ++admitted_;
  while (running_ >= options_.max_concurrency) {
    if (deadline_ms > 0.0) {
      double remaining_ms = deadline_ms - wait.ElapsedMillis();
      if (remaining_ms <= 0.0) {
        --admitted_;
        slot_cv_.notify_one();
        *waited_ms = wait.ElapsedMillis();
        return Admission::kTimedOut;
      }
      slot_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                  remaining_ms));
    } else {
      slot_cv_.wait(lock);
    }
  }
  ++running_;
  *waited_ms = wait.ElapsedMillis();
  return Admission::kAcquired;
}

void QueryServer::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    --running_;
    --admitted_;
  }
  slot_cv_.notify_one();
}

Result<ServeAnswer> QueryServer::Execute(
    const std::vector<PredicateTerm>& canonical, const std::string& key) {
  // Capture the cache generation BEFORE the lookup: if a Refresh fences
  // the cache while this query is in flight, the Put below becomes a
  // no-op instead of resurrecting a pre-refresh answer.
  const uint64_t gen = cache_->generation();
  Result<TabulaQueryResult> raw = [&]() -> Result<TabulaQueryResult> {
    std::shared_lock<std::shared_mutex> lock(cube_mu_);
    return tabula_->Query(canonical);
  }();
  if (!raw.ok()) {
    metrics_.counter(kErrors).Increment();
    return raw.status();
  }
  auto shared =
      std::make_shared<const TabulaQueryResult>(std::move(raw).value());
  if (options_.enable_cache) cache_->Put(key, shared, gen);
  ServeAnswer answer;
  answer.result = std::move(shared);
  return answer;
}

Result<ServeAnswer> QueryServer::Query(
    const std::vector<PredicateTerm>& where, double deadline_ms) {
  Stopwatch total;
  const double deadline =
      deadline_ms < 0.0 ? options_.default_deadline_ms : deadline_ms;
  metrics_.counter(kQueriesTotal).Increment();

  std::vector<PredicateTerm> canonical = CanonicalizeTerms(where);
  std::string key = CanonicalPredicateKey(canonical);
  if (options_.enable_cache) {
    if (auto hit = cache_->Get(key)) {
      metrics_.counter(kCacheHits).Increment();
      ServeAnswer answer;
      answer.result = std::move(hit);
      answer.cache_hit = true;
      answer.total_millis = total.ElapsedMillis();
      metrics_.histogram(kLatency).RecordMillis(answer.total_millis);
      return answer;
    }
    metrics_.counter(kCacheMisses).Increment();
  }

  double waited_ms = 0.0;
  switch (Admit(deadline, &waited_ms)) {
    case Admission::kRejected:
      metrics_.counter(kRejected).Increment();
      return Status::Unavailable(
          "admission queue full (max_queue=" +
          std::to_string(options_.max_queue) + ")");
    case Admission::kTimedOut:
      return DegradedAnswer(waited_ms, total.ElapsedMillis());
    case Admission::kAcquired:
      break;
  }

  metrics_.gauge(kInFlight).Increment();
  Result<ServeAnswer> executed = Execute(canonical, key);
  metrics_.gauge(kInFlight).Decrement();
  ReleaseSlot();
  if (!executed.ok()) return executed.status();

  ServeAnswer answer = std::move(executed).value();
  answer.queue_millis = waited_ms;
  answer.total_millis = total.ElapsedMillis();
  metrics_.histogram(kLatency).RecordMillis(answer.total_millis);
  return answer;
}

BatchItem QueryServer::ServeBatchItem(const std::vector<PredicateTerm>& where,
                                      double deadline_ms,
                                      const Stopwatch& batch_timer) {
  BatchItem item;
  Stopwatch total;
  metrics_.counter(kQueriesTotal).Increment();

  std::vector<PredicateTerm> canonical = CanonicalizeTerms(where);
  std::string key = CanonicalPredicateKey(canonical);
  if (options_.enable_cache) {
    if (auto hit = cache_->Get(key)) {
      metrics_.counter(kCacheHits).Increment();
      item.answer.result = std::move(hit);
      item.answer.cache_hit = true;
      item.answer.total_millis = total.ElapsedMillis();
      metrics_.histogram(kLatency).RecordMillis(item.answer.total_millis);
      return item;
    }
    metrics_.counter(kCacheMisses).Increment();
  }

  // Items whose turn comes after the batch deadline degrade instead of
  // stretching the pan's tail latency.
  if (deadline_ms > 0.0 && batch_timer.ElapsedMillis() > deadline_ms) {
    item.answer = DegradedAnswer(0.0, total.ElapsedMillis());
    return item;
  }

  metrics_.gauge(kInFlight).Increment();
  Result<ServeAnswer> executed = Execute(canonical, key);
  metrics_.gauge(kInFlight).Decrement();
  if (!executed.ok()) {
    item.status = executed.status();
    return item;
  }
  item.answer = std::move(executed).value();
  item.answer.total_millis = total.ElapsedMillis();
  metrics_.histogram(kLatency).RecordMillis(item.answer.total_millis);
  return item;
}

Result<std::vector<BatchItem>> QueryServer::BatchQuery(
    const std::vector<std::vector<PredicateTerm>>& cells,
    double deadline_ms) {
  Stopwatch batch_timer;
  const double deadline =
      deadline_ms < 0.0 ? options_.default_deadline_ms : deadline_ms;
  metrics_.counter(kBatches).Increment();
  if (cells.empty()) return std::vector<BatchItem>{};

  // Batch admission: the whole fan-out counts against the queue bound.
  // Items run directly on the pool (its width bounds parallelism), so
  // they skip the per-request slot wait.
  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    if (cells.size() > options_.max_queue - std::min(admitted_, options_.max_queue)) {
      metrics_.counter(kRejected).Increment();
      return Status::Unavailable(
          "batch of " + std::to_string(cells.size()) +
          " would overflow the admission queue (max_queue=" +
          std::to_string(options_.max_queue) + ")");
    }
    admitted_ += cells.size();
  }

  std::vector<BatchItem> items(cells.size());
  pool_->ParallelFor(cells.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      items[i] = ServeBatchItem(cells[i], deadline, batch_timer);
    }
  });

  {
    std::lock_guard<std::mutex> lock(slot_mu_);
    admitted_ -= cells.size();
  }
  slot_cv_.notify_all();
  return items;
}

Status QueryServer::Refresh(Tabula::RefreshStats* stats) {
  std::unique_lock<std::shared_mutex> lock(cube_mu_);
  Status st = tabula_->Refresh(stats);
  if (st.ok()) {
    // The registered listener already fenced the cache; refresh the
    // degraded-answer snapshot (a full rebuild may replace the global
    // sample).
    RebuildGlobalAnswer();
    metrics_.counter(kRefreshes).Increment();
  }
  return st;
}

}  // namespace tabula

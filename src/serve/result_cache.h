#ifndef TABULA_SERVE_RESULT_CACHE_H_
#define TABULA_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tabula.h"
#include "storage/predicate.h"

namespace tabula {

/// Canonical cache key for a conjunctive equality predicate set: terms
/// sorted by (column, literal), exact duplicates removed, each field
/// length-prefixed so distinct predicate sets can never collide. Two
/// WHERE clauses that differ only in term order or exact repetition map
/// to the same key.
std::string CanonicalPredicateKey(const std::vector<PredicateTerm>& terms);

/// Canonicalizes the terms themselves (sorted, exact duplicates removed)
/// — the predicate set actually executed and cached by the server, so a
/// cached answer is valid for every ordering of the same filter.
std::vector<PredicateTerm> CanonicalizeTerms(
    const std::vector<PredicateTerm>& terms);

struct ResultCacheOptions {
  /// Shard count (rounded up to a power of two). More shards → less
  /// lock contention under concurrent clients.
  size_t num_shards = 8;
  /// Total byte budget across all shards. Entries are charged for their
  /// sample row-id vector plus key and bookkeeping overhead.
  uint64_t max_bytes = 64ull << 20;
};

/// Point-in-time cache counters.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Entries dropped because their generation was fenced off.
  uint64_t invalidated = 0;
  uint64_t bytes_used = 0;
  uint64_t entries = 0;
  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded LRU cache of query answers keyed on the canonical
/// predicate set.
///
/// Values are shared_ptr handles to immutable TabulaQueryResult objects,
/// so a hit is a pointer copy — the sample row ids are never duplicated
/// per client. Each shard has its own mutex, LRU list, and slice of the
/// byte budget.
///
/// Coherence with Refresh(): the cache carries a generation counter.
/// InvalidateAll() bumps it; entries remember the generation they were
/// computed under and Get() refuses (and lazily erases) entries from
/// older generations. Writers must capture `generation()` BEFORE running
/// the query they intend to cache and pass it to Put() — a result
/// computed against the pre-refresh cube then carries the old
/// generation and can never be served after the refresh, even if the
/// Put lands after InvalidateAll() (the stale-write race).
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  /// Cached answer for `key`, or nullptr on miss/stale entry.
  std::shared_ptr<const TabulaQueryResult> Get(const std::string& key);

  /// Inserts an answer computed while the cache was at `generation`.
  /// No-ops when the entry alone exceeds the shard budget, or when
  /// `generation` is already stale (the result would never be served).
  void Put(const std::string& key,
           std::shared_ptr<const TabulaQueryResult> result,
           uint64_t generation);

  /// Fences every current entry (lazy eviction) — call after a
  /// Tabula::Refresh() so no stale sample is ever served.
  void InvalidateAll() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Current generation; capture before computing a result to Put().
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  ResultCacheStats Stats() const;

  /// Bytes charged for one cached result (exposed for tests).
  static uint64_t EntryBytes(const std::string& key,
                             const TabulaQueryResult& result);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const TabulaQueryResult> result;
    uint64_t bytes = 0;
    uint64_t generation = 0;
  };

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t bytes_used = 0;
  };

  Shard& ShardFor(const std::string& key);

  /// Drops the least-recently-used entries of `shard` until it fits its
  /// budget. Caller holds shard.mu.
  void EvictLocked(Shard* shard);

  ResultCacheOptions options_;
  uint64_t per_shard_budget_ = 0;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> generation_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidated_{0};
};

}  // namespace tabula

#endif  // TABULA_SERVE_RESULT_CACHE_H_

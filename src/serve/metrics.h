#ifndef TABULA_SERVE_METRICS_H_
#define TABULA_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tabula {

/// \brief Monotone event counter (relaxed atomics; safe from any thread).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (e.g. in-flight requests). May go negative
/// transiently under racy inc/dec interleavings; readers should clamp.
class Gauge {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A percentile estimate plus whether it landed in the overflow bucket.
struct PercentileEstimate {
  double micros = 0.0;
  /// True when the quantile falls in the unbounded overflow bucket:
  /// `micros` is then the bucket's lower edge — a LOWER BOUND on the
  /// true percentile, not an interpolated estimate (the bucket has no
  /// upper edge to interpolate toward).
  bool overflow = false;
};

/// Point-in-time copy of a LatencyHistogram, with percentile estimation.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_micros = 0.0;
  /// Per-bucket observation counts (see LatencyHistogram for bounds).
  std::vector<uint64_t> buckets;

  double MeanMicros() const { return count == 0 ? 0.0 : sum_micros / count; }

  /// Estimated latency at quantile `q` in [0, 1], in microseconds, by
  /// linear interpolation inside the containing bucket. Resolution is
  /// the bucket width (~2x), which is plenty for p50/p95/p99 dashboards.
  /// When the quantile lands in the overflow bucket the estimate is the
  /// bucket's lower edge (check PercentileWithOverflow for the flag).
  double PercentileMicros(double q) const;

  /// PercentileMicros plus the explicit overflow flag.
  PercentileEstimate PercentileWithOverflow(double q) const;

  double P50Micros() const { return PercentileMicros(0.50); }
  double P95Micros() const { return PercentileMicros(0.95); }
  double P99Micros() const { return PercentileMicros(0.99); }
};

/// \brief Fixed-bucket latency histogram with lock-free recording.
///
/// Buckets are geometric powers of two in microseconds: bucket i covers
/// (2^(i-1), 2^i] us, from 1 us up to ~134 s, plus a final overflow
/// bucket. Record() is three relaxed atomic adds — cheap enough for the
/// per-request hot path.
class LatencyHistogram {
 public:
  /// 2^27 us ≈ 134 s upper bound before the overflow bucket.
  static constexpr size_t kNumBuckets = 28;

  void Record(double micros);
  void RecordMillis(double millis) { Record(millis * 1000.0); }

  HistogramSnapshot Snapshot() const;

  /// Upper bound of bucket i in microseconds (1 << i).
  static double BucketUpperMicros(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  /// Total micros, accumulated as an integer to stay lock-free.
  std::atomic<uint64_t> sum_micros_{0};
};

/// Point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name (0 when absent).
  uint64_t CounterValue(const std::string& name) const;

  /// Prometheus-flavoured plain-text rendering (one metric per line;
  /// histograms expand to count/mean/p50/p95/p99).
  std::string ToText() const;
};

/// \brief Named metrics registry for one server instance.
///
/// Metric objects are created on first use and never removed, so the
/// returned references stay valid for the registry's lifetime and the
/// hot path touches only the metric's own atomics (the registry mutex
/// guards creation/lookup, not recording).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string RenderText() const { return Snapshot().ToText(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace tabula

#endif  // TABULA_SERVE_METRICS_H_

#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tabula {

double LatencyHistogram::BucketUpperMicros(size_t i) {
  return static_cast<double>(uint64_t{1} << i);
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0 || std::isnan(micros)) micros = 0.0;
  size_t bucket = 0;
  while (bucket < kNumBuckets && micros > BucketUpperMicros(bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(static_cast<uint64_t>(micros + 0.5),
                        std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets + 1);
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros =
      static_cast<double>(sum_micros_.load(std::memory_order_relaxed));
  return snap;
}

double HistogramSnapshot::PercentileMicros(double q) const {
  return PercentileWithOverflow(q).micros;
}

PercentileEstimate HistogramSnapshot::PercentileWithOverflow(double q) const {
  PercentileEstimate est;
  if (count == 0) return est;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      double lower = i == 0 ? 0.0 : LatencyHistogram::BucketUpperMicros(i - 1);
      if (i >= LatencyHistogram::kNumBuckets) {
        // Overflow bucket: no upper edge exists, so interpolating would
        // fabricate a number. Report the honest lower bound and flag it.
        est.micros = lower;
        est.overflow = true;
        return est;
      }
      double upper = LatencyHistogram::BucketUpperMicros(i);
      double frac = static_cast<double>(rank - seen) / buckets[i];
      est.micros = lower + frac * (upper - lower);
      return est;
    }
    seen += buckets[i];
  }
  // Unreachable when bucket counts sum to `count`; be honest anyway.
  est.micros =
      LatencyHistogram::BucketUpperMicros(LatencyHistogram::kNumBuckets - 1);
  est.overflow = true;
  return est;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "%s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : histograms) {
    std::snprintf(line, sizeof(line),
                  "%s_count %llu\n%s_mean_us %.1f\n%s_p50_us %.1f\n"
                  "%s_p95_us %.1f\n%s_p99_us %.1f\n",
                  name.c_str(), static_cast<unsigned long long>(hist.count),
                  name.c_str(), hist.MeanMicros(), name.c_str(),
                  hist.P50Micros(), name.c_str(), hist.P95Micros(),
                  name.c_str(), hist.P99Micros());
    out += line;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

}  // namespace tabula

#include "serve/result_cache.h"

#include <algorithm>
#include <cstring>

#include "testing/fault_injection.h"

namespace tabula {

namespace {

/// Appends a length-prefixed field ("<len>:<bytes>") so no field
/// boundary ambiguity is possible regardless of content.
void AppendField(std::string* out, const std::string& field) {
  out->append(std::to_string(field.size()));
  out->push_back(':');
  out->append(field);
}

/// Exact, type-tagged rendering of a literal. Doubles are encoded by
/// their IEEE bits so values that round-trip differently through
/// decimal printing still get distinct keys.
std::string EncodeLiteral(const Value& v) {
  if (v.is_null()) return "n";
  if (v.is_int64()) return "i" + std::to_string(v.AsInt64());
  if (v.is_double()) {
    double d = v.AsDouble();
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return "d" + std::to_string(bits);
  }
  return "s" + v.AsString();
}

/// One term's canonical encoding (column, operator, literal).
std::string EncodeTerm(const PredicateTerm& term) {
  std::string out;
  AppendField(&out, term.column);
  AppendField(&out, CompareOpName(term.op));
  AppendField(&out, EncodeLiteral(term.literal));
  return out;
}

}  // namespace

std::vector<PredicateTerm> CanonicalizeTerms(
    const std::vector<PredicateTerm>& terms) {
  std::vector<std::pair<std::string, PredicateTerm>> keyed;
  keyed.reserve(terms.size());
  for (const auto& term : terms) keyed.emplace_back(EncodeTerm(term), term);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<PredicateTerm> out;
  out.reserve(keyed.size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0 && keyed[i].first == keyed[i - 1].first) continue;
    out.push_back(std::move(keyed[i].second));
  }
  return out;
}

std::string CanonicalPredicateKey(const std::vector<PredicateTerm>& terms) {
  std::vector<std::string> encoded;
  encoded.reserve(terms.size());
  for (const auto& term : terms) encoded.push_back(EncodeTerm(term));
  std::sort(encoded.begin(), encoded.end());
  encoded.erase(std::unique(encoded.begin(), encoded.end()), encoded.end());
  std::string key;
  for (const auto& e : encoded) AppendField(&key, e);
  return key;
}

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(options) {
  size_t shards = 1;
  while (shards < std::max<size_t>(options_.num_shards, 1)) shards <<= 1;
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_budget_ = std::max<uint64_t>(options_.max_bytes / shards, 1);
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  // Mix the high bits down: std::hash may be identity-like for small
  // inputs and the low bits alone would imbalance the shards.
  h ^= h >> 16;
  return *shards_[h & shard_mask_];
}

uint64_t ResultCache::EntryBytes(const std::string& key,
                                 const TabulaQueryResult& result) {
  return key.size() + result.sample.MemoryBytes() + sizeof(Entry) +
         sizeof(TabulaQueryResult);
}

std::shared_ptr<const TabulaQueryResult> ResultCache::Get(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  // Delay-only seam between shard selection and the locked lookup:
  // widens the window an InvalidateAll() can land in, so the TOCTOU
  // below (a generation loaded before the lock going stale) stays
  // reachable in tests instead of only under lucky scheduling.
  TABULA_FAULT_DELAY("cache.get");
  std::lock_guard<std::mutex> lock(shard.mu);
  // The generation must be loaded UNDER the shard lock. Loading it
  // before would let an InvalidateAll() landing in between match a
  // pre-refresh entry against the pre-bump generation and serve a
  // fenced answer (TOCTOU).
  const uint64_t current = generation();
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->generation != current) {
    // Fenced by InvalidateAll(): erase lazily, report a miss.
    shard.bytes_used -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidated_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const TabulaQueryResult> result,
                      uint64_t gen) {
  if (result == nullptr) return;
  // A result computed before an InvalidateAll() must never enter with
  // the new generation — it reflects the pre-refresh cube.
  if (gen != generation()) return;
  uint64_t bytes = EntryBytes(key, *result);
  if (bytes > per_shard_budget_) return;  // would evict everything else

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (e.g. re-computed after invalidation).
    shard.bytes_used -= it->second->bytes;
    it->second->result = std::move(result);
    it->second->bytes = bytes;
    it->second->generation = gen;
    shard.bytes_used += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(result), bytes, gen});
    shard.index[key] = shard.lru.begin();
    shard.bytes_used += bytes;
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
  EvictLocked(&shard);
}

void ResultCache::EvictLocked(Shard* shard) {
  while (shard->bytes_used > per_shard_budget_ && !shard->lru.empty()) {
    Entry& victim = shard->lru.back();
    shard->bytes_used -= victim.bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.bytes_used += shard->bytes_used;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace tabula

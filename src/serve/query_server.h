#ifndef TABULA_SERVE_QUERY_SERVER_H_
#define TABULA_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "common/writer_priority_mutex.h"
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/query_engine.h"
#include "core/query_request.h"
#include "core/tabula.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "storage/predicate.h"

namespace tabula {

/// Configuration of a QueryServer.
struct QueryServerOptions {
  /// Maximum queries executing concurrently against the cube
  /// (0 → thread-pool width). Excess requests wait in the admission
  /// queue; cache hits bypass the limit entirely.
  size_t max_concurrency = 0;
  /// Upper bound on requests waiting + executing. Requests beyond it
  /// are rejected with Status::Unavailable instead of queueing without
  /// bound (fail fast under overload, keep latency bounded).
  size_t max_queue = 1024;
  /// Default per-request deadline in milliseconds (0 → none). A request
  /// still waiting for admission when its deadline expires degrades to
  /// the global sample instead of queueing further — the bounded
  /// response-time side of the BlinkDB-style contract. Degraded answers
  /// carry `ServeAnswer::degraded = true` and void the θ bound for
  /// iceberg cells.
  double default_deadline_ms = 0.0;
  bool enable_cache = true;
  ResultCacheOptions cache;
  /// Tracing sink (not owned; may be null). Every served request emits
  /// a "serve.query" span (batches add a "serve.batch" parent) whose
  /// duration IS the latency recorded into the `serve_latency`
  /// histogram, so trace and metrics cannot disagree. Null or kDisabled
  /// costs one branch per request.
  Tracer* tracer = nullptr;
  /// Slow-query log threshold in milliseconds (<= 0 → disabled).
  /// Requests at or above it are recorded with their canonical
  /// predicate key and, when traced, their rendered span tree.
  double slow_query_ms = 0.0;
  size_t slow_query_capacity = 128;
};

/// One served answer: a shared handle to the (possibly cached) query
/// result plus serving metadata.
struct ServeAnswer {
  std::shared_ptr<const TabulaQueryResult> result;
  bool cache_hit = false;
  /// True when the deadline expired before the cell lookup could run;
  /// `result` is then the global sample (θ bound not guaranteed for
  /// iceberg cells — the dashboard should mark the tile provisional).
  bool degraded = false;
  /// Milliseconds spent waiting for an execution slot.
  double queue_millis = 0.0;
  /// End-to-end serving time (queue + lookup), in milliseconds. When
  /// the request was traced this is the "serve.query" span's duration.
  double total_millis = 0.0;
  /// Id of the "serve.query" span that timed this request (0 when not
  /// traced); look its subtree up in the server's Tracer.
  uint64_t span_id = 0;
  /// True when the request failed; `result` is null and the caller got a
  /// Status instead. Failed requests still flow through the latency
  /// epilogue, so the histogram and slow-query log account for them.
  bool error = false;
};

/// Per-item outcome of a BatchQuery (Result<T> is not
/// default-constructible, so batch items carry an explicit Status).
struct BatchItem {
  Status status;
  ServeAnswer answer;
};

/// \brief Concurrent serving layer in front of a query engine.
///
/// Turns the single-caller middleware into a server: a sharded LRU
/// result cache keyed on the canonical predicate set, a bounded
/// admission queue with a concurrency limit on top of the shared
/// ThreadPool, per-request deadlines that degrade gracefully to the
/// global sample, batched multi-cell queries for heatmap pans, and a
/// metrics registry (QPS counters, latency percentiles, hit rate,
/// in-flight gauge).
///
/// Thread-safety: Query()/BatchQuery() may be called from any number of
/// threads. Refresh() takes an exclusive lock (readers drain first) and
/// fences the cache, so a cached answer computed against the
/// pre-refresh cube is never served afterwards.
class QueryServer {
 public:
  /// `engine` must outlive the server — a single-instance `Tabula` or
  /// a `ShardedTabula` (src/shard/), routed through the shared
  /// QueryEngine interface. `pool` defaults to the global pool; pass a
  /// dedicated one to isolate serving from init traffic.
  explicit QueryServer(QueryEngine* engine, QueryServerOptions options = {},
                       ThreadPool* pool = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Answers one dashboard query — the canonical entry point. Honors
  /// every QueryRequest knob: `deadline_ms` (< 0 → server default,
  /// 0 → none), `consistency` (kBypassCache skips the cache probe but
  /// still caches the fresh answer), `trace`/`parent_span` (the
  /// "serve.query" span and its "tabula.query" child).
  Result<ServeAnswer> Query(const QueryRequest& request);

  /// Deprecated bare-predicate overload; thin wrapper over
  /// Query(QueryRequest). Prefer the QueryRequest form.
  Result<ServeAnswer> Query(const std::vector<PredicateTerm>& where,
                            double deadline_ms = -1.0);

  /// Fans a multi-cell request (e.g. every cell of a heatmap pan)
  /// across the thread pool and gathers all answers. One invalid cell
  /// fails only its own item. Rejects the whole batch with Unavailable
  /// when it alone would overflow the admission queue. Per-item
  /// deadlines are measured against the batch clock; each item's
  /// "serve.query" span parents under one "serve.batch" span across the
  /// thread-pool hop.
  Result<std::vector<BatchItem>> BatchQuery(
      const std::vector<QueryRequest>& requests);

  /// Deprecated predicate-list overload; thin wrapper over
  /// BatchQuery(std::vector<QueryRequest>) with one shared deadline.
  Result<std::vector<BatchItem>> BatchQuery(
      const std::vector<std::vector<PredicateTerm>>& cells,
      double deadline_ms = -1.0);

  /// Runs the engine's Refresh() exclusively (in-flight queries drain
  /// first, new ones queue) and fences the result cache so no stale
  /// sample is served afterwards.
  Status Refresh(QueryEngine::RefreshStats* stats = nullptr);

  /// Runs `fn` under the exclusive engine lock (readers drain first),
  /// then fences the result cache, re-captures the degraded-answer
  /// snapshot, and wakes freshness waiters. The Ingestor routes every
  /// engine/table mutation — row appends, BeginIngest, CommitIngest —
  /// through here so serving stays coherent: an append immediately
  /// invalidates cached answers whose `stale` tag it falsified.
  void MutateExclusive(const std::function<void()>& fn);

  /// Runs `fn` under the shared engine lock (concurrent with queries);
  /// the Ingestor's slow phases (PlanIngest, ExecuteIngest) use this so
  /// maintenance never blocks the dashboard.
  void ReadShared(const std::function<void()>& fn);

  /// Blocks until the engine has no pending ingest rows, or `timeout_ms`
  /// elapses (0 → wait forever). Returns true when the cube is fully
  /// caught up. The wait is wakeup-driven (ingest commits and refreshes
  /// bump an internal epoch), not a poll.
  bool WaitForFreshness(double timeout_ms);

  const ResultCache& cache() const { return *cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::string MetricsText() const { return metrics_.RenderText(); }
  const QueryServerOptions& options() const { return options_; }
  const SlowQueryLog& slow_query_log() const { return slow_log_; }
  Tracer* tracer() const { return options_.tracer; }

 private:
  enum class Admission { kRejected, kTimedOut, kAcquired };

  /// Uncached lookup path: executes under the shared cube lock and
  /// caches the answer unless a refresh fenced the generation.
  /// `parent_span` links the middleware's "tabula.query" span under the
  /// caller's "serve.query" span.
  Result<ServeAnswer> Execute(std::vector<PredicateTerm> canonical,
                              const std::string& key, bool trace,
                              uint64_t parent_span);

  /// One batch item: cache probe → deadline check → pooled execution
  /// (no per-request slot; the pool bounds parallelism). Runs on a
  /// pool thread; `batch_span` parents the item's span across the hop.
  BatchItem ServeBatchItem(const QueryRequest& request, double deadline_ms,
                           const Stopwatch& batch_timer,
                           uint64_t batch_span);

  /// Serves the pre-captured global sample when a deadline expired.
  ServeAnswer DegradedAnswer(double queue_millis);

  /// Records `answer` into the slow-query log when it crossed the
  /// threshold, attaching the rendered span tree when traced.
  void MaybeLogSlowQuery(const std::string& key, const ServeAnswer& answer);

  /// Re-captures the global-sample snapshot used by DegradedAnswer.
  void RebuildGlobalAnswer();

  /// Bumps the freshness epoch and wakes WaitForFreshness waiters. It
  /// only takes fresh_mu_, so calling it while holding cube_mu_ is safe
  /// (waiters never hold fresh_mu_ while acquiring cube_mu_).
  void BumpFreshEpoch();

  /// Counts the request against the queue bound and blocks for an
  /// execution slot until `deadline_ms` passes (0 → wait forever).
  Admission Admit(double deadline_ms, double* waited_ms);
  void ReleaseSlot();

  QueryEngine* engine_;
  QueryServerOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<ResultCache> cache_;
  MetricsRegistry metrics_;
  SlowQueryLog slow_log_;
  uint64_t refresh_listener_id_ = 0;

  /// Readers (queries) take shared, Refresh() takes exclusive.
  /// Writer-priority: a pending ingest commit blocks new readers for
  /// the microseconds the pointer swap needs instead of being starved
  /// by a saturating query stream (see writer_priority_mutex.h).
  WriterPrioritySharedMutex cube_mu_;

  /// Degraded answers must not block on cube_mu_ (the overload they
  /// mitigate may be a Refresh holding it), so they serve this
  /// snapshot, guarded by its own mutex.
  std::mutex global_answer_mu_;
  std::shared_ptr<const TabulaQueryResult> global_answer_;

  /// Concurrency-limit semaphore + admission count.
  std::mutex slot_mu_;
  std::condition_variable slot_cv_;
  size_t running_ = 0;
  size_t admitted_ = 0;  // waiting + running, bounded by max_queue

  /// Freshness epoch for WaitForFreshness: bumped on every refresh /
  /// ingest commit (via the refresh listener) and on every
  /// MutateExclusive. Guarded by its own mutex — never held while
  /// acquiring cube_mu_, so bumping under cube_mu_ cannot deadlock.
  std::mutex fresh_mu_;
  std::condition_variable fresh_cv_;
  uint64_t fresh_epoch_ = 0;
};

}  // namespace tabula

#endif  // TABULA_SERVE_QUERY_SERVER_H_

#ifndef TABULA_SERVE_QUERY_SERVER_H_
#define TABULA_SERVE_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/tabula.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "storage/predicate.h"

namespace tabula {

/// Configuration of a QueryServer.
struct QueryServerOptions {
  /// Maximum queries executing concurrently against the cube
  /// (0 → thread-pool width). Excess requests wait in the admission
  /// queue; cache hits bypass the limit entirely.
  size_t max_concurrency = 0;
  /// Upper bound on requests waiting + executing. Requests beyond it
  /// are rejected with Status::Unavailable instead of queueing without
  /// bound (fail fast under overload, keep latency bounded).
  size_t max_queue = 1024;
  /// Default per-request deadline in milliseconds (0 → none). A request
  /// still waiting for admission when its deadline expires degrades to
  /// the global sample instead of queueing further — the bounded
  /// response-time side of the BlinkDB-style contract. Degraded answers
  /// carry `ServeAnswer::degraded = true` and void the θ bound for
  /// iceberg cells.
  double default_deadline_ms = 0.0;
  bool enable_cache = true;
  ResultCacheOptions cache;
};

/// One served answer: a shared handle to the (possibly cached) query
/// result plus serving metadata.
struct ServeAnswer {
  std::shared_ptr<const TabulaQueryResult> result;
  bool cache_hit = false;
  /// True when the deadline expired before the cell lookup could run;
  /// `result` is then the global sample (θ bound not guaranteed for
  /// iceberg cells — the dashboard should mark the tile provisional).
  bool degraded = false;
  /// Milliseconds spent waiting for an execution slot.
  double queue_millis = 0.0;
  /// End-to-end serving time (queue + lookup), in milliseconds.
  double total_millis = 0.0;
};

/// Per-item outcome of a BatchQuery (Result<T> is not
/// default-constructible, so batch items carry an explicit Status).
struct BatchItem {
  Status status;
  ServeAnswer answer;
};

/// \brief Concurrent serving layer in front of a Tabula instance.
///
/// Turns the single-caller middleware into a server: a sharded LRU
/// result cache keyed on the canonical predicate set, a bounded
/// admission queue with a concurrency limit on top of the shared
/// ThreadPool, per-request deadlines that degrade gracefully to the
/// global sample, batched multi-cell queries for heatmap pans, and a
/// metrics registry (QPS counters, latency percentiles, hit rate,
/// in-flight gauge).
///
/// Thread-safety: Query()/BatchQuery() may be called from any number of
/// threads. Refresh() takes an exclusive lock (readers drain first) and
/// fences the cache, so a cached answer computed against the
/// pre-refresh cube is never served afterwards.
class QueryServer {
 public:
  /// `tabula` must outlive the server. `pool` defaults to the global
  /// pool; pass a dedicated one to isolate serving from init traffic.
  explicit QueryServer(Tabula* tabula, QueryServerOptions options = {},
                       ThreadPool* pool = nullptr);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Answers one dashboard query. `deadline_ms` overrides the default
  /// deadline (< 0 → use default; 0 → none).
  Result<ServeAnswer> Query(const std::vector<PredicateTerm>& where,
                            double deadline_ms = -1.0);

  /// Fans a multi-cell request (e.g. every cell of a heatmap pan)
  /// across the thread pool and gathers all answers. One invalid cell
  /// fails only its own item. Rejects the whole batch with Unavailable
  /// when it alone would overflow the admission queue.
  Result<std::vector<BatchItem>> BatchQuery(
      const std::vector<std::vector<PredicateTerm>>& cells,
      double deadline_ms = -1.0);

  /// Runs Tabula::Refresh() exclusively (in-flight queries drain first,
  /// new ones queue) and fences the result cache so no stale sample is
  /// served afterwards.
  Status Refresh(Tabula::RefreshStats* stats = nullptr);

  const ResultCache& cache() const { return *cache_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  std::string MetricsText() const { return metrics_.RenderText(); }
  const QueryServerOptions& options() const { return options_; }

 private:
  enum class Admission { kRejected, kTimedOut, kAcquired };

  /// Uncached lookup path: executes under the shared cube lock and
  /// caches the answer unless a refresh fenced the generation.
  Result<ServeAnswer> Execute(const std::vector<PredicateTerm>& canonical,
                              const std::string& key);

  /// One batch item: cache probe → deadline check → pooled execution
  /// (no per-request slot; the pool bounds parallelism).
  BatchItem ServeBatchItem(const std::vector<PredicateTerm>& where,
                           double deadline_ms, const Stopwatch& batch_timer);

  /// Serves the pre-captured global sample when a deadline expired.
  ServeAnswer DegradedAnswer(double queue_millis, double total_millis);

  /// Re-captures the global-sample snapshot used by DegradedAnswer.
  void RebuildGlobalAnswer();

  /// Counts the request against the queue bound and blocks for an
  /// execution slot until `deadline_ms` passes (0 → wait forever).
  Admission Admit(double deadline_ms, double* waited_ms);
  void ReleaseSlot();

  Tabula* tabula_;
  QueryServerOptions options_;
  ThreadPool* pool_;
  std::unique_ptr<ResultCache> cache_;
  MetricsRegistry metrics_;
  uint64_t refresh_listener_id_ = 0;

  /// Readers (queries) take shared, Refresh() takes exclusive.
  std::shared_mutex cube_mu_;

  /// Degraded answers must not block on cube_mu_ (the overload they
  /// mitigate may be a Refresh holding it), so they serve this
  /// snapshot, guarded by its own mutex.
  std::mutex global_answer_mu_;
  std::shared_ptr<const TabulaQueryResult> global_answer_;

  /// Concurrency-limit semaphore + admission count.
  std::mutex slot_mu_;
  std::condition_variable slot_cv_;
  size_t running_ = 0;
  size_t admitted_ = 0;  // waiting + running, bounded by max_queue
};

}  // namespace tabula

#endif  // TABULA_SERVE_QUERY_SERVER_H_

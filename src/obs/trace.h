#ifndef TABULA_OBS_TRACE_H_
#define TABULA_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace tabula {

/// \brief Distributed-tracing-style instrumentation for the middleware
/// stack (the observability shape the paper's evaluation implies:
/// Figures 8-10 and Table 2 are per-stage timing/memory breakdowns).
///
/// The model is a minimal OTLP-flavoured span tree: a Span has a name,
/// start/end timestamps, typed attributes (rows scanned, cells,
/// iceberg count, ...) and an optional parent, which may live on a
/// different thread (parent ids are plain integers, so linking across
/// ThreadPool hops is just passing the id into the task). Completed
/// spans land in a fixed-capacity ring buffer (TraceRecorder) owned by
/// the Tracer; exporters in obs/export.h render the recorded spans as
/// a human-readable tree or OTLP-style JSON.
///
/// Cost contract: a Tracer in kDisabled mode makes StartSpan() a single
/// relaxed atomic load returning an inert Span — no allocation, no
/// clock read, no lock. Inert spans ignore SetAttribute()/End().

/// Typed attribute value, mirroring the OTLP AnyValue subset we need.
using AttrValue = std::variant<int64_t, double, bool, std::string>;

struct SpanAttr {
  std::string key;
  AttrValue value;
};

/// One completed (or in-flight, inside Span) span.
struct SpanRecord {
  /// Process-unique id (never 0; 0 means "no span" / "no parent").
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  /// Wall-clock nanoseconds since the Unix epoch, measured on the
  /// steady clock and anchored to the system clock once per Tracer, so
  /// durations are monotonic and exported timestamps are absolute.
  uint64_t start_unix_nanos = 0;
  uint64_t end_unix_nanos = 0;
  std::vector<SpanAttr> attributes;

  double DurationMillis() const {
    return end_unix_nanos <= start_unix_nanos
               ? 0.0
               : static_cast<double>(end_unix_nanos - start_unix_nanos) / 1e6;
  }

  /// Attribute lookup helpers (missing key → std::nullopt-like defaults).
  const AttrValue* FindAttribute(std::string_view key) const;
};

/// When spans are recorded.
enum class TraceMode {
  /// StartSpan returns inert spans; the near-zero-cost production
  /// default when tracing is off.
  kDisabled,
  /// Only requests that opted in (QueryRequest::trace) — plus children
  /// of already-traced spans — are recorded.
  kOnDemand,
  /// Every span is recorded.
  kAll,
};

struct TracerOptions {
  TraceMode mode = TraceMode::kAll;
  /// Ring-buffer capacity in completed spans; the oldest span is
  /// evicted when full.
  size_t capacity = 4096;
};

/// \brief Fixed-capacity ring buffer of completed spans.
///
/// Record() claims a slot with one atomic fetch_add and moves the span
/// in under a striped lock (64 stripes over the pre-sized ring), so
/// concurrent serve threads recording spans don't serialize on one
/// mutex. Snapshot()/Clear() walk every stripe; they are the rare side.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity);

  void Record(SpanRecord&& rec);

  /// Recorded spans, oldest first. Consistent when no Record() is
  /// concurrently in flight; otherwise the newest spans may be missing.
  std::vector<SpanRecord> Snapshot() const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (including since-evicted ones).
  uint64_t total_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Spans evicted by ring wrap-around.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 64;
  std::mutex& StripeFor(size_t slot) const {
    return stripes_[slot % kStripes];
  }

  const size_t capacity_;
  mutable std::array<std::mutex, kStripes> stripes_;
  std::vector<SpanRecord> ring_;        // pre-sized to capacity_
  std::atomic<uint64_t> next_{0};       // slots claimed since last Clear()
  std::atomic<uint64_t> recorded_{0};   // total ever recorded
  std::atomic<uint64_t> dropped_{0};    // evicted by wrap-around
};

class Tracer;

/// \brief RAII handle for one span.
///
/// Obtained from Tracer::StartSpan(). Ends (and records) on End() or
/// destruction. A default-constructed or disabled-tracer Span is inert:
/// every method is a no-op guard and id() is 0.
class Span {
 public:
  Span() = default;
  ~Span() { End(); }

  Span(Span&& other) noexcept { MoveFrom(std::move(other)); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span will be recorded on End().
  bool recording() const { return tracer_ != nullptr; }
  /// Span id for parent linkage (0 when inert).
  uint64_t id() const { return rec_.span_id; }

  void SetAttribute(std::string_view key, int64_t value);
  /// Any other integer type (size_t, uint64_t, int, uint32_t, ...)
  /// funnels into the int64_t slot — one template instead of a fragile
  /// overload set that collides where size_t aliases uint64_t.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool> &&
                                        !std::is_same_v<T, int64_t>>>
  void SetAttribute(std::string_view key, T value) {
    SetAttribute(key, static_cast<int64_t>(value));
  }
  void SetAttribute(std::string_view key, double value);
  void SetAttribute(std::string_view key, bool value);
  void SetAttribute(std::string_view key, std::string value);
  void SetAttribute(std::string_view key, const char* value) {
    SetAttribute(key, std::string(value));
  }

  /// Ends the span, pushes it into the tracer's recorder, and returns
  /// its duration in milliseconds (0.0 for an inert span). Idempotent;
  /// repeated calls return the first call's duration. The returned
  /// duration is THE span-derived latency — callers that feed metrics
  /// histograms use this value so span and histogram never disagree.
  double End();

  /// Elapsed milliseconds so far (final duration once ended; 0 inert).
  double ElapsedMillis() const;

 private:
  friend class Tracer;
  void MoveFrom(Span&& other) {
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    duration_millis_ = other.duration_millis_;
    other.tracer_ = nullptr;
    other.rec_ = SpanRecord{};
  }

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
  double duration_millis_ = 0.0;  // set by End()
};

/// \brief Span factory + recorder for one subsystem instance.
///
/// Thread-safe: StartSpan() may be called from any thread; span ids
/// come from one atomic counter, so parent/child linkage works across
/// ThreadPool hops by passing ids into tasks.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  TraceMode mode() const {
    return static_cast<TraceMode>(mode_.load(std::memory_order_relaxed));
  }
  void set_mode(TraceMode mode) {
    mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  }
  /// Master guard: false in kDisabled mode.
  bool enabled() const { return mode() != TraceMode::kDisabled; }

  /// Starts a span. `parent_id` links it under an existing span
  /// (possibly started on another thread); `opt_in` is the per-request
  /// trace flag honoured in kOnDemand mode. Children of a recorded
  /// parent (parent_id != 0) always record in kOnDemand mode, so one
  /// opted-in request traces end-to-end.
  Span StartSpan(std::string_view name, uint64_t parent_id = 0,
                 bool opt_in = false);

  /// Recorded spans, oldest first.
  std::vector<SpanRecord> Snapshot() const { return recorder_.Snapshot(); }
  void Clear() { recorder_.Clear(); }

  const TraceRecorder& recorder() const { return recorder_; }

  /// Current time as Unix-epoch nanoseconds on this tracer's anchored
  /// steady clock.
  uint64_t NowUnixNanos() const;

 private:
  friend class Span;
  void Finish(SpanRecord&& rec) { recorder_.Record(std::move(rec)); }

  std::atomic<int> mode_;
  std::atomic<uint64_t> next_id_{1};
  TraceRecorder recorder_;
  /// system_clock anchor minus steady_clock anchor, in nanoseconds:
  /// NowUnixNanos() = steady_now + offset.
  int64_t steady_to_unix_offset_nanos_ = 0;
};

/// Collects `root_id` and every (transitive) child of it from `spans`.
/// Order follows `spans` (oldest first). Used to extract one request's
/// span tree out of a shared recorder.
std::vector<SpanRecord> SpanSubtree(const std::vector<SpanRecord>& spans,
                                    uint64_t root_id);

}  // namespace tabula

#endif  // TABULA_OBS_TRACE_H_

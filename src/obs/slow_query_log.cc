#include "obs/slow_query_log.h"

#include <algorithm>
#include <cstdio>

namespace tabula {

SlowQueryLog::SlowQueryLog(double threshold_ms, size_t capacity)
    : threshold_ms_(threshold_ms), capacity_(std::max<size_t>(capacity, 1)) {}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_ % capacity_] = std::move(entry);
  }
  ++next_;
  ++logged_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  std::vector<SlowQueryEntry> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t SlowQueryLog::total_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logged_;
}

std::string SlowQueryLog::RenderText() const {
  std::string out;
  char line[256];
  for (const auto& entry : Snapshot()) {
    std::snprintf(line, sizeof(line),
                  "slow query %8.3f ms (queue %6.3f ms)%s%s%s  where=%s\n",
                  entry.total_millis, entry.queue_millis,
                  entry.cache_hit ? "  [cache hit]" : "",
                  entry.degraded ? "  [degraded]" : "",
                  entry.error ? "  [error]" : "",
                  entry.predicate_key.empty() ? "<all>"
                                              : entry.predicate_key.c_str());
    out += line;
    if (!entry.span_tree.empty()) out += entry.span_tree;
  }
  return out;
}

}  // namespace tabula

#ifndef TABULA_OBS_EXPORT_H_
#define TABULA_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace tabula {

/// \brief Span exporters: human-readable text and OTLP-flavoured JSON.
///
/// Both operate on a snapshot (Tracer::Snapshot()), so exporting never
/// blocks recording beyond the ring buffer's own short lock.

/// Renders the spans as an indented tree, one line per span:
///
///   serve.query                         0.812 ms  cache_hit=false
///     tabula.query                      0.790 ms  from_local_sample=true
///
/// Roots (and orphans whose parent was evicted from the ring) start at
/// column zero; children indent under their parent. Siblings keep
/// recording order.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

/// OTLP/JSON-flavoured export: the resourceSpans → scopeSpans → spans
/// shape of the OpenTelemetry protocol JSON encoding, with traceId
/// derived from each span's root ancestor so one request's spans share
/// a trace. Timestamps are startTimeUnixNano/endTimeUnixNano strings;
/// attributes use the typed {stringValue,intValue,doubleValue,boolValue}
/// encoding. Good enough for OTLP-aware tooling that ingests JSON files
/// (e.g. duckdb-otlp style pipelines); not a wire-protocol guarantee.
std::string ToOtlpJson(const std::vector<SpanRecord>& spans,
                       const std::string& service_name = "tabula");

/// Writes ToOtlpJson(tracer.Snapshot()) to `path`.
Status WriteOtlpJsonFile(const Tracer& tracer, const std::string& path,
                         const std::string& service_name = "tabula");

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace tabula

#endif  // TABULA_OBS_EXPORT_H_

#include "obs/trace.h"

#include <algorithm>
#include <unordered_set>

namespace tabula {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const AttrValue* SpanRecord::FindAttribute(std::string_view key) const {
  for (const auto& attr : attributes) {
    if (attr.key == key) return &attr.value;
  }
  return nullptr;
}

// ---------- TraceRecorder ----------

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.resize(capacity_);
}

void TraceRecorder::Record(SpanRecord&& rec) {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) dropped_.fetch_add(1, std::memory_order_relaxed);
  const size_t slot = static_cast<size_t>(idx % capacity_);
  std::lock_guard<std::mutex> lock(StripeFor(slot));
  ring_[slot] = std::move(rec);
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  const uint64_t next = next_.load(std::memory_order_acquire);
  const size_t count = static_cast<size_t>(std::min<uint64_t>(next, capacity_));
  std::vector<SpanRecord> out;
  out.reserve(count);
  // Slot `next % capacity_` holds the oldest span once the ring wraps;
  // before that, slots [0, next) are in insertion order already.
  const size_t first = next <= capacity_
                           ? 0
                           : static_cast<size_t>(next % capacity_);
  for (size_t i = 0; i < count; ++i) {
    const size_t slot = (first + i) % capacity_;
    std::lock_guard<std::mutex> lock(StripeFor(slot));
    if (ring_[slot].span_id != 0) out.push_back(ring_[slot]);
  }
  return out;
}

void TraceRecorder::Clear() {
  // Claim-counter first so concurrent Record()s land in "fresh" slots;
  // then wipe every slot under its stripe.
  next_.store(0, std::memory_order_release);
  for (size_t slot = 0; slot < capacity_; ++slot) {
    std::lock_guard<std::mutex> lock(StripeFor(slot));
    ring_[slot] = SpanRecord{};
  }
}

// ---------- Span ----------

void Span::SetAttribute(std::string_view key, int64_t value) {
  if (tracer_ == nullptr) return;
  rec_.attributes.push_back({std::string(key), AttrValue(value)});
}

void Span::SetAttribute(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  rec_.attributes.push_back({std::string(key), AttrValue(value)});
}

void Span::SetAttribute(std::string_view key, bool value) {
  if (tracer_ == nullptr) return;
  rec_.attributes.push_back({std::string(key), AttrValue(value)});
}

void Span::SetAttribute(std::string_view key, std::string value) {
  if (tracer_ == nullptr) return;
  rec_.attributes.push_back({std::string(key), AttrValue(std::move(value))});
}

double Span::End() {
  if (tracer_ == nullptr) return duration_millis_;
  rec_.end_unix_nanos = tracer_->NowUnixNanos();
  duration_millis_ = rec_.DurationMillis();
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Finish(std::move(rec_));
  rec_ = SpanRecord{};
  return duration_millis_;
}

double Span::ElapsedMillis() const {
  if (tracer_ == nullptr) return duration_millis_;
  uint64_t now = tracer_->NowUnixNanos();
  return now <= rec_.start_unix_nanos
             ? 0.0
             : static_cast<double>(now - rec_.start_unix_nanos) / 1e6;
}

// ---------- Tracer ----------

Tracer::Tracer(TracerOptions options)
    : mode_(static_cast<int>(options.mode)), recorder_(options.capacity) {
  uint64_t unix_now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  steady_to_unix_offset_nanos_ =
      static_cast<int64_t>(unix_now) - static_cast<int64_t>(SteadyNowNanos());
}

uint64_t Tracer::NowUnixNanos() const {
  return static_cast<uint64_t>(static_cast<int64_t>(SteadyNowNanos()) +
                               steady_to_unix_offset_nanos_);
}

Span Tracer::StartSpan(std::string_view name, uint64_t parent_id,
                       bool opt_in) {
  TraceMode m = mode();
  if (m == TraceMode::kDisabled) return Span();
  if (m == TraceMode::kOnDemand && !opt_in && parent_id == 0) return Span();

  Span span;
  span.tracer_ = this;
  span.rec_.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.rec_.parent_id = parent_id;
  span.rec_.name = std::string(name);
  // Every instrumented call site sets a handful of attributes; one
  // up-front reservation beats three vector regrowths on the hot path.
  span.rec_.attributes.reserve(6);
  span.rec_.start_unix_nanos = NowUnixNanos();
  return span;
}

std::vector<SpanRecord> SpanSubtree(const std::vector<SpanRecord>& spans,
                                    uint64_t root_id) {
  std::vector<SpanRecord> out;
  if (root_id == 0) return out;
  std::unordered_set<uint64_t> in_tree{root_id};
  // Spans end child-before-parent sometimes and parent-before-child
  // other times (cache hits end the root early), so grow the member
  // set to a fixed point instead of assuming recorder order.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& span : spans) {
      if (in_tree.count(span.span_id) > 0) continue;
      if (span.parent_id != 0 && in_tree.count(span.parent_id) > 0) {
        in_tree.insert(span.span_id);
        grew = true;
      }
    }
  }
  for (const auto& span : spans) {
    if (in_tree.count(span.span_id) > 0) out.push_back(span);
  }
  return out;
}

}  // namespace tabula

#ifndef TABULA_OBS_SLOW_QUERY_LOG_H_
#define TABULA_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tabula {

/// One slow request as captured by the serving layer.
struct SlowQueryEntry {
  /// The canonicalized predicate set (CanonicalPredicateKey), so
  /// operators can replay the exact cell.
  std::string predicate_key;
  double total_millis = 0.0;
  double queue_millis = 0.0;
  bool cache_hit = false;
  bool degraded = false;
  /// True when the request failed (the caller got a Status); the entry
  /// then records how long the failure took, not a served answer.
  bool error = false;
  /// Root span id of the request (0 when it was not traced).
  uint64_t span_id = 0;
  /// Rendered span tree of the request (empty when not traced) — the
  /// per-stage breakdown that tells you WHERE the time went.
  std::string span_tree;
};

/// \brief Threshold-gated ring buffer of slow requests.
///
/// The serving layer records every request whose end-to-end latency
/// exceeded `threshold_ms`; the newest `capacity` entries are kept.
/// Disabled (threshold <= 0) it costs one double comparison per
/// request.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(double threshold_ms = 0.0, size_t capacity = 128);

  bool enabled() const { return threshold_ms_ > 0.0; }
  double threshold_ms() const { return threshold_ms_; }

  /// True when a request of `total_millis` must be recorded.
  bool ShouldLog(double total_millis) const {
    return enabled() && total_millis >= threshold_ms_;
  }

  void Record(SlowQueryEntry entry);

  /// Logged entries, oldest first.
  std::vector<SlowQueryEntry> Snapshot() const;

  /// Total entries ever logged (including since-evicted ones).
  uint64_t total_logged() const;

  /// Human-readable rendering, one block per entry.
  std::string RenderText() const;

 private:
  const double threshold_ms_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;
  size_t next_ = 0;
  uint64_t logged_ = 0;
};

}  // namespace tabula

#endif  // TABULA_OBS_SLOW_QUERY_LOG_H_

#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace tabula {

namespace {

std::string AttrToString(const AttrValue& value) {
  char buf[64];
  if (const auto* i = std::get_if<int64_t>(&value)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*i));
    return buf;
  }
  if (const auto* d = std::get_if<double>(&value)) {
    std::snprintf(buf, sizeof(buf), "%.4g", *d);
    return buf;
  }
  if (const auto* b = std::get_if<bool>(&value)) {
    return *b ? "true" : "false";
  }
  return std::get<std::string>(value);
}

/// 16-hex-digit (spanId) or 32-hex-digit (traceId) lowercase encoding.
std::string HexId(uint64_t id, size_t hex_digits) {
  std::string out(hex_digits, '0');
  static const char* kHex = "0123456789abcdef";
  for (size_t i = 0; i < hex_digits && id != 0; ++i) {
    out[hex_digits - 1 - i] = kHex[id & 0xF];
    id >>= 4;
  }
  return out;
}

/// Root-most ancestor present in `parent_of` (spans whose parent was
/// evicted from the ring count as their own root).
uint64_t RootOf(uint64_t id,
                const std::unordered_map<uint64_t, uint64_t>& parent_of) {
  uint64_t cur = id;
  // Bounded walk guards against (impossible in practice) parent cycles.
  for (size_t hops = 0; hops < parent_of.size() + 1; ++hops) {
    auto it = parent_of.find(cur);
    if (it == parent_of.end() || it->second == 0) return cur;
    if (parent_of.find(it->second) == parent_of.end()) return cur;
    cur = it->second;
  }
  return cur;
}

void RenderSubtree(
    const std::vector<SpanRecord>& spans, size_t index,
    const std::unordered_map<uint64_t, std::vector<size_t>>& children,
    size_t depth, std::string* out) {
  const SpanRecord& span = spans[index];
  out->append(depth * 2, ' ');
  char line[128];
  std::snprintf(line, sizeof(line), "%-*s %9.3f ms",
                static_cast<int>(36 > depth * 2 ? 36 - depth * 2 : 1),
                span.name.c_str(), span.DurationMillis());
  out->append(line);
  for (const auto& attr : span.attributes) {
    out->append("  ");
    out->append(attr.key);
    out->append("=");
    out->append(AttrToString(attr.value));
  }
  out->append("\n");
  auto it = children.find(span.span_id);
  if (it == children.end()) return;
  for (size_t child : it->second) {
    RenderSubtree(spans, child, children, depth + 1, out);
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  std::unordered_map<uint64_t, size_t> index_of;
  index_of.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    index_of.emplace(spans[i].span_id, i);
  }
  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    uint64_t parent = spans[i].parent_id;
    if (parent != 0 && index_of.count(parent) > 0) {
      children[parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  for (size_t root : roots) {
    RenderSubtree(spans, root, children, 0, &out);
  }
  return out;
}

std::string ToOtlpJson(const std::vector<SpanRecord>& spans,
                       const std::string& service_name) {
  std::unordered_map<uint64_t, uint64_t> parent_of;
  parent_of.reserve(spans.size());
  for (const auto& span : spans) {
    parent_of.emplace(span.span_id, span.parent_id);
  }

  std::string out;
  out += "{\"resourceSpans\":[{";
  out += "\"resource\":{\"attributes\":[{\"key\":\"service.name\",";
  out += "\"value\":{\"stringValue\":\"" + JsonEscape(service_name) +
         "\"}}]},";
  out += "\"scopeSpans\":[{\"scope\":{\"name\":\"tabula.obs\"},\"spans\":[";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out += ",";
    out += "{\"traceId\":\"" + HexId(RootOf(span.span_id, parent_of), 32) +
           "\",";
    out += "\"spanId\":\"" + HexId(span.span_id, 16) + "\",";
    if (span.parent_id != 0) {
      out += "\"parentSpanId\":\"" + HexId(span.parent_id, 16) + "\",";
    }
    out += "\"name\":\"" + JsonEscape(span.name) + "\",";
    std::snprintf(buf, sizeof(buf), "\"startTimeUnixNano\":\"%llu\",",
                  static_cast<unsigned long long>(span.start_unix_nanos));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"endTimeUnixNano\":\"%llu\",",
                  static_cast<unsigned long long>(span.end_unix_nanos));
    out += buf;
    out += "\"attributes\":[";
    for (size_t a = 0; a < span.attributes.size(); ++a) {
      const SpanAttr& attr = span.attributes[a];
      if (a > 0) out += ",";
      out += "{\"key\":\"" + JsonEscape(attr.key) + "\",\"value\":{";
      if (const auto* iv = std::get_if<int64_t>(&attr.value)) {
        // OTLP JSON encodes 64-bit ints as strings.
        std::snprintf(buf, sizeof(buf), "\"intValue\":\"%lld\"",
                      static_cast<long long>(*iv));
        out += buf;
      } else if (const auto* dv = std::get_if<double>(&attr.value)) {
        std::snprintf(buf, sizeof(buf), "\"doubleValue\":%.17g", *dv);
        out += buf;
      } else if (const auto* bv = std::get_if<bool>(&attr.value)) {
        out += *bv ? "\"boolValue\":true" : "\"boolValue\":false";
      } else {
        out += "\"stringValue\":\"" +
               JsonEscape(std::get<std::string>(attr.value)) + "\"";
      }
      out += "}}";
    }
    out += "]}";
  }
  out += "]}]}]}";
  return out;
}

Status WriteOtlpJsonFile(const Tracer& tracer, const std::string& path,
                         const std::string& service_name) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToOtlpJson(tracer.Snapshot(), service_name) << "\n";
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace tabula

#ifndef TABULA_SAMPLING_STRATIFIED_SAMPLER_H_
#define TABULA_SAMPLING_STRATIFIED_SAMPLER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace tabula {

/// Options for the stratified sampler (SnappyData/BlinkDB style).
struct StratifiedSamplerOptions {
  /// Total sample-size budget across all strata.
  size_t total_budget = 100000;
  /// Per-stratum floor — small populations keep representation, the key
  /// idea behind stratified samples for group-by queries.
  size_t min_per_stratum = 32;
  uint64_t seed = 42;
};

/// One stratum of a stratified sample.
struct Stratum {
  /// Packed key on the Query Column Set (see KeyPacker).
  uint64_t key = 0;
  /// Size of the stratum's raw population.
  size_t population = 0;
  /// Sampled base-table row ids.
  std::vector<RowId> rows;
};

/// \brief Stratified sample over a Query Column Set (QCS).
///
/// Implements the pre-built-sample strategy of SnappyData/BlinkDB used as
/// the paper's AQP baseline (Section V): one uniform sample per distinct
/// QCS combination, sized proportionally with a per-stratum floor.
/// Knowing each stratum's true population also lets the baseline certify
/// error bounds and fall back to the raw table when they cannot be met.
class StratifiedSample {
 public:
  /// Builds a stratified sample on `qcs_columns` of `table`.
  static Result<StratifiedSample> Build(
      const Table& table, const std::vector<std::string>& qcs_columns,
      const StratifiedSamplerOptions& options);

  /// Stratum for a packed QCS key, or nullptr when absent.
  const Stratum* Find(uint64_t key) const;

  const std::vector<Stratum>& strata() const { return strata_; }
  const std::vector<std::string>& qcs_columns() const { return qcs_columns_; }

  /// Total sampled rows across strata.
  size_t TotalSampledRows() const;

  /// Memory held by the sampled row ids and stratum metadata.
  uint64_t MemoryBytes() const;

 private:
  std::vector<std::string> qcs_columns_;
  std::vector<Stratum> strata_;
  std::unordered_map<uint64_t, size_t> index_;
};

}  // namespace tabula

#endif  // TABULA_SAMPLING_STRATIFIED_SAMPLER_H_

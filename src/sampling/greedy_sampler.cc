#include "sampling/greedy_sampler.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace tabula {

namespace {

/// Lazy-forward heap entry: a stale upper bound on a candidate's gain.
struct HeapEntry {
  double gain_bound;
  size_t candidate;
  size_t round;  // round the bound was computed in
  bool operator<(const HeapEntry& o) const { return gain_bound < o.gain_bound; }
};

}  // namespace

GreedySampler::GreedySampler(const LossFunction* loss, double threshold,
                             GreedySamplerOptions options)
    : loss_(loss), threshold_(threshold), options_(options) {
  TABULA_CHECK(loss_ != nullptr);
}

Result<std::vector<RowId>> GreedySampler::Sample(
    const DatasetView& raw, GreedySamplerStats* stats) const {
  GreedySamplerStats local_stats;
  GreedySamplerStats* st = stats != nullptr ? stats : &local_stats;
  *st = GreedySamplerStats{};

  if (raw.empty()) return std::vector<RowId>{};

  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<GreedyLossEvaluator> eval,
                          loss_->MakeGreedyEvaluator(raw));
  const size_t n = eval->raw_size();

  // Candidate pool (optionally capped; grows on demand — the termination
  // check is always against the full raw data, so capping never weakens
  // the deterministic guarantee).
  Rng rng(options_.seed);
  std::vector<size_t> pool_order(n);
  for (size_t i = 0; i < n; ++i) pool_order[i] = i;
  rng.Shuffle(&pool_order);
  size_t pool_size = n;
  if (options_.max_candidates > 0 && options_.max_candidates < n) {
    pool_size = options_.max_candidates;
  }
  std::vector<char> in_sample(n, 0);
  std::vector<RowId> sample;

  const bool use_lazy = options_.lazy_forward && loss_->SubmodularGain();
  std::priority_queue<HeapEntry> heap;
  bool heap_initialized = false;

  auto& pool = ThreadPool::Global();
  std::atomic<size_t> eval_count{0};

  // Parallel exhaustive scan over the active candidate pool; returns the
  // candidate with minimal loss-with-candidate, or n when none remain.
  // Exact-loss ties break by pool_order position — a total order that
  // does not depend on how the scan was chunked — so the chosen
  // candidate (and therefore the whole sample) is identical at any
  // thread count. Within a chunk the strict `<` keeps the earliest
  // position; across chunks the merge compares (loss, position)
  // lexicographically.
  auto ExhaustiveBest = [&]() -> std::pair<size_t, double> {
    size_t chunks = pool.num_threads() + 1;
    std::vector<std::pair<double, size_t>> best_per_chunk(
        chunks, {kInfiniteLoss, pool_size});
    pool.ParallelForChunked(
        pool_size, [&](size_t chunk, size_t begin, size_t end) {
          double best_loss = kInfiniteLoss;
          size_t best_pos = pool_size;
          size_t evals = 0;
          for (size_t i = begin; i < end; ++i) {
            size_t cand = pool_order[i];
            if (in_sample[cand]) continue;
            double l = eval->LossWithCandidate(cand);
            ++evals;
            if (l < best_loss) {
              best_loss = l;
              best_pos = i;
            }
          }
          best_per_chunk[chunk] = {best_loss, best_pos};
          eval_count.fetch_add(evals, std::memory_order_relaxed);
        });
    std::pair<double, size_t> best{kInfiniteLoss, pool_size};
    for (const auto& b : best_per_chunk) {
      if (b.second == pool_size) continue;
      if (b.first < best.first ||
          (b.first == best.first && b.second < best.second)) {
        best = b;
      }
    }
    if (best.second == pool_size) return {n, best.first};
    return {pool_order[best.second], best.first};
  };

  // Lazy-forward (CELF): gains only shrink for submodular losses, so a
  // stale bound that still tops the heap after re-evaluation is the true
  // argmax.
  auto LazyBest = [&](size_t round) -> size_t {
    if (!heap_initialized) {
      // Round one is inherently exhaustive; seed the heap with real gains.
      double cur = eval->InternalLoss();
      std::vector<HeapEntry> entries(pool_size);
      pool.ParallelForChunked(
          pool_size, [&](size_t, size_t begin, size_t end) {
            size_t evals = 0;
            for (size_t i = begin; i < end; ++i) {
              size_t cand = pool_order[i];
              entries[i] = {cur - eval->LossWithCandidate(cand), cand, round};
              ++evals;
            }
            eval_count.fetch_add(evals, std::memory_order_relaxed);
          });
      for (const auto& e : entries) heap.push(e);
      heap_initialized = true;
    }
    while (!heap.empty()) {
      HeapEntry top = heap.top();
      heap.pop();
      if (in_sample[top.candidate]) continue;
      if (top.round == round) return top.candidate;
      double gain =
          eval->InternalLoss() - eval->LossWithCandidate(top.candidate);
      eval_count.fetch_add(1, std::memory_order_relaxed);
      heap.push({gain, top.candidate, round});
    }
    return n;
  };

  auto GrowPool = [&]() -> bool {
    if (pool_size >= n) return false;
    size_t new_size = std::min(n, pool_size * 2);
    if (use_lazy && heap_initialized) {
      // Newly admitted candidates enter with an infinite bound so they get
      // evaluated on their first pop.
      for (size_t i = pool_size; i < new_size; ++i) {
        heap.push({kInfiniteLoss, pool_order[i], static_cast<size_t>(-1)});
      }
    }
    pool_size = new_size;
    ++st->pool_growths;
    return true;
  };

  size_t round = 0;
  while (eval->CurrentLoss() > threshold_) {
    if (options_.max_sample_size > 0 &&
        sample.size() >= options_.max_sample_size) {
      break;
    }
    if (sample.size() >= n) break;  // whole dataset chosen
    ++round;
    ++st->rounds;

    size_t best;
    if (use_lazy) {
      best = LazyBest(round);
    } else {
      auto [cand, loss] = ExhaustiveBest();
      (void)loss;
      best = cand;
    }
    if (best == n) {
      // Pool exhausted above the threshold: widen it and retry.
      if (!GrowPool()) break;
      --round;
      --st->rounds;
      continue;
    }
    eval->Add(best);
    in_sample[best] = 1;
    sample.push_back(raw.row(best));
  }

  st->loss_evaluations = eval_count.load();

  if (eval->CurrentLoss() > threshold_ && options_.max_sample_size == 0 &&
      sample.size() < n) {
    // Defensive: should be unreachable (loss(T, T) == 0 for all built-in
    // losses); fall back to the full cell so the guarantee always holds.
    TABULA_LOG(Warn) << "greedy sampler could not reach threshold "
                     << threshold_ << "; returning the full cell";
    return raw.ToRowIds();
  }
  return sample;
}

}  // namespace tabula

#include "sampling/stratified_sampler.h"

#include <algorithm>

#include "exec/group_by.h"
#include "sampling/random_sampler.h"

namespace tabula {

Result<StratifiedSample> StratifiedSample::Build(
    const Table& table, const std::vector<std::string>& qcs_columns,
    const StratifiedSamplerOptions& options) {
  TABULA_ASSIGN_OR_RETURN(KeyEncoder enc, KeyEncoder::Make(table, qcs_columns));
  std::vector<size_t> all_cols(qcs_columns.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(KeyPacker packer, KeyPacker::Make(enc, all_cols));

  DatasetView all(&table);
  GroupedRows groups = GroupRows(enc, packer, all);

  StratifiedSample out;
  out.qcs_columns_ = qcs_columns;
  out.strata_.reserve(groups.keys.size());

  size_t total_rows = table.num_rows();
  Rng rng(options.seed);
  for (size_t g = 0; g < groups.keys.size(); ++g) {
    const auto& rows = groups.rows[g];
    // Proportional share with a per-stratum floor.
    size_t share = total_rows > 0
                       ? (options.total_budget * rows.size()) / total_rows
                       : 0;
    size_t quota = std::max(options.min_per_stratum, share);
    quota = std::min(quota, rows.size());

    Stratum stratum;
    stratum.key = groups.keys[g];
    stratum.population = rows.size();
    DatasetView group_view(&table, rows);
    stratum.rows = RandomSample(group_view, quota, &rng);
    out.index_.emplace(stratum.key, out.strata_.size());
    out.strata_.push_back(std::move(stratum));
  }
  return out;
}

const Stratum* StratifiedSample::Find(uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &strata_[it->second];
}

size_t StratifiedSample::TotalSampledRows() const {
  size_t total = 0;
  for (const auto& s : strata_) total += s.rows.size();
  return total;
}

uint64_t StratifiedSample::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& s : strata_) {
    bytes += s.rows.capacity() * sizeof(RowId) + sizeof(Stratum);
  }
  bytes += index_.size() * (sizeof(uint64_t) + sizeof(size_t) + 16);
  return bytes;
}

}  // namespace tabula

#ifndef TABULA_SAMPLING_RANDOM_SAMPLER_H_
#define TABULA_SAMPLING_RANDOM_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/table.h"

namespace tabula {

/// Draws `k` rows uniformly without replacement from `view`; returns
/// base-table row ids. Returns all rows when k >= |view|.
std::vector<RowId> RandomSample(const DatasetView& view, size_t k, Rng* rng);

/// \brief Global-sample size from Serfling's inequality (Section III-B1).
///
/// Given relative error eps of the mean and confidence delta,
///   k ≈ ln(2/δ) / (2 ε²).
/// Tabula's defaults (ε=0.05, δ=0.01) give ~1060 tuples — the paper's
/// "around 1000 tuples" for the 700M-row NYCtaxi table. The size is
/// independent of the dataset's cardinality, which is why the global
/// sample's memory footprint is flat across experiments.
size_t SerflingSampleSize(double epsilon = 0.05, double delta = 0.01);

}  // namespace tabula

#endif  // TABULA_SAMPLING_RANDOM_SAMPLER_H_

#ifndef TABULA_SAMPLING_RANDOM_SAMPLER_H_
#define TABULA_SAMPLING_RANDOM_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/table.h"

namespace tabula {

/// Draws `k` rows uniformly without replacement from `view`; returns
/// base-table row ids. Returns all rows when k >= |view|.
std::vector<RowId> RandomSample(const DatasetView& view, size_t k, Rng* rng);

/// \brief Deterministic uniform sample that is *consistent under appends*.
///
/// Assigns every row the priority hash(seed, row-id) and keeps the k
/// smallest (ties broken by row id), returned in ascending row-id order.
/// A fixed hash of the row id is an exchangeable random order, so the
/// result is a uniform k-subset just like RandomSample — Serfling's
/// bound applies unchanged — but unlike a permutation draw the selection
/// is stable as the table grows: appending rows only displaces members
/// whose priority is beaten, so bottom-k(A ∪ B) shares almost all of
/// bottom-k(A). Incremental cube maintenance (core/refresh.cc) redraws
/// the global sample every cycle to converge on exactly the cube a
/// from-scratch build over the grown table produces; with this sampler
/// consecutive redraws barely differ, so borderline cells do not churn
/// in and out of the iceberg set at every batch.
std::vector<RowId> ConsistentBottomKSample(const DatasetView& view, size_t k,
                                           uint64_t seed);

/// \brief Global-sample size from Serfling's inequality (Section III-B1).
///
/// Given relative error eps of the mean and confidence delta,
///   k ≈ ln(2/δ) / (2 ε²).
/// Tabula's defaults (ε=0.05, δ=0.01) give ~1060 tuples — the paper's
/// "around 1000 tuples" for the 700M-row NYCtaxi table. The size is
/// independent of the dataset's cardinality, which is why the global
/// sample's memory footprint is flat across experiments.
size_t SerflingSampleSize(double epsilon = 0.05, double delta = 0.01);

}  // namespace tabula

#endif  // TABULA_SAMPLING_RANDOM_SAMPLER_H_

#include "sampling/random_sampler.h"

#include <cmath>

namespace tabula {

std::vector<RowId> RandomSample(const DatasetView& view, size_t k, Rng* rng) {
  size_t n = view.size();
  if (k >= n) return view.ToRowIds();
  std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(n), static_cast<uint32_t>(k));
  std::vector<RowId> out;
  out.reserve(picks.size());
  for (uint32_t i : picks) out.push_back(view.row(i));
  return out;
}

size_t SerflingSampleSize(double epsilon, double delta) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) return 1;
  double k = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<size_t>(std::ceil(k));
}

}  // namespace tabula

#include "sampling/random_sampler.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace tabula {

std::vector<RowId> RandomSample(const DatasetView& view, size_t k, Rng* rng) {
  size_t n = view.size();
  if (k >= n) return view.ToRowIds();
  std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(n), static_cast<uint32_t>(k));
  std::vector<RowId> out;
  out.reserve(picks.size());
  for (uint32_t i : picks) out.push_back(view.row(i));
  return out;
}

namespace {

/// SplitMix64 finalizer — a stateless 64-bit mixer with good avalanche;
/// the priority order it induces on row ids is the fixed "random
/// permutation" consistent sampling selects from.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<RowId> ConsistentBottomKSample(const DatasetView& view, size_t k,
                                           uint64_t seed) {
  size_t n = view.size();
  if (k >= n) return view.ToRowIds();
  std::vector<std::pair<uint64_t, RowId>> prio;
  prio.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RowId r = view.row(i);
    prio.emplace_back(Mix64(seed ^ Mix64(r)), r);
  }
  std::nth_element(prio.begin(), prio.begin() + k, prio.end());
  std::vector<RowId> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(prio[i].second);
  std::sort(out.begin(), out.end());
  return out;
}

size_t SerflingSampleSize(double epsilon, double delta) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) return 1;
  double k = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<size_t>(std::ceil(k));
}

}  // namespace tabula

#ifndef TABULA_SAMPLING_GREEDY_SAMPLER_H_
#define TABULA_SAMPLING_GREEDY_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "loss/loss_function.h"
#include "storage/table.h"

namespace tabula {

/// Tuning knobs for the greedy accuracy-loss-aware sampler.
struct GreedySamplerOptions {
  /// POIsam's lazy-forward acceleration: keep stale gain upper bounds in a
  /// max-heap and only re-evaluate the top. Exact for submodular gains
  /// (min-distance losses); for non-submodular losses the sampler falls
  /// back to exhaustive rounds regardless of this flag.
  bool lazy_forward = true;

  /// Caps the candidate pool per cell: candidates are drawn uniformly from
  /// the raw data, the pool doubles whenever greedy selection stalls above
  /// the threshold, and the termination check always evaluates the loss
  /// against *all* raw tuples — so the deterministic guarantee is
  /// unaffected. 0 disables the cap.
  size_t max_candidates = 1024;

  /// Hard cap on sample size (0 = none). The guarantee requires no cap;
  /// this exists for experimentation only.
  size_t max_sample_size = 0;

  /// Seed for candidate-pool draws.
  uint64_t seed = 42;
};

/// Progress counters from one SAMPLING() invocation.
struct GreedySamplerStats {
  size_t rounds = 0;
  size_t loss_evaluations = 0;
  size_t pool_growths = 0;
};

/// \brief The paper's SAMPLING(*, θ) aggregate — Algorithm 1.
///
/// Greedily grows a sample t ⊆ T, each round adding the tuple that
/// minimizes loss(T, t + tp), until loss(T, t) <= θ. The produced sample
/// is guaranteed to satisfy the threshold (the size may not be minimal —
/// the sampling problem is the minimization version and greedy is the
/// paper's chosen approximation).
class GreedySampler {
 public:
  GreedySampler(const LossFunction* loss, double threshold,
                GreedySamplerOptions options = {});

  /// Draws a sample of `raw`; returns base-table row ids.
  Result<std::vector<RowId>> Sample(const DatasetView& raw,
                                    GreedySamplerStats* stats = nullptr) const;

  double threshold() const { return threshold_; }
  const GreedySamplerOptions& options() const { return options_; }

 private:
  const LossFunction* loss_;
  double threshold_;
  GreedySamplerOptions options_;
};

}  // namespace tabula

#endif  // TABULA_SAMPLING_GREEDY_SAMPLER_H_

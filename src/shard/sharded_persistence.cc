/// Shard-manifest persistence: one file holding the partition (per-shard
/// row lists with fingerprints), every shard's local cube + samples, and
/// the merged directory with its override samples. Written
/// temp-then-rename like the plain cube format, so a failure mid-write
/// (full disk, injected fault) never leaves a partial manifest at the
/// destination. K = 1 delegates to the plain Tabula format (TBLC).

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_io.h"
#include "core/fingerprint.h"
#include "shard/sharded_tabula.h"
#include "testing/fault_injection.h"

namespace tabula {

namespace {

constexpr uint32_t kShardMagic = 0x54424C53;  // "TBLS"
/// v1: full-table fingerprint in the header, covered row count at the
/// tail. v2 moves the covered row count into the header and
/// fingerprints only that prefix, so a manifest saved mid-ingest (rows
/// appended but not folded yet) stays loadable after a crash once the
/// journal replays the tail. v1 files are still accepted.
constexpr uint32_t kShardVersion = 2;

}  // namespace

Status ShardedTabula::Save(const std::string& path) const {
  if (single_ != nullptr) return single_->Save(path);

  const std::string tmp = path + ".tmp";
  Status written = [&]() -> Status {
    TABULA_FAULT_POINT("persistence.open");
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    BinaryWriter w(&out);
    w.WriteU32(kShardMagic);
    w.WriteU32(kShardVersion);
    // The manifest describes exactly the rows the cube has folded in
    // (shard row lists never reference pending rows); fingerprint that
    // prefix so unfolded appends don't tie the file to a table state
    // the cube never saw.
    w.WriteU64(refreshed_rows_);
    w.WriteU64(TableFingerprint(*table_, refreshed_rows_));
    w.WriteString(options_.base.effective_loss()->name());
    w.WriteDouble(options_.base.threshold);
    w.WriteU64(options_.base.cubed_attributes.size());
    for (const auto& attr : options_.base.cubed_attributes) {
      w.WriteString(attr);
    }
    w.WriteU64(options_.num_shards);
    w.WriteU32(static_cast<uint32_t>(options_.partition));
    w.WriteVector(global_sample_rows_);
    TABULA_FAULT_POINT("persistence.write");

    for (const Shard& shard : shards_) {
      w.WriteVector(shard.rows);
      w.WriteU64(RowListFingerprint(shard.rows));
      w.WriteU64(shard.cube.size());
      for (const auto& cell : shard.cube.cells()) {
        w.WriteU64(cell.key);
        w.WriteU32(cell.cuboid);
        w.WriteU32(cell.sample_id);
      }
      w.WriteU64(shard.samples.size());
      for (uint32_t id = 0; id < shard.samples.size(); ++id) {
        w.WriteVector(shard.samples.sample(id));
      }
      TABULA_FAULT_POINT("persistence.write");
    }

    // The merged directory in ascending key order, so the manifest
    // bytes are a pure function of the cube (determinism tests compare
    // manifests byte-for-byte).
    w.WriteU64(merged_.size());
    for (uint64_t key : merged_.SortedKeys()) {
      const MergedCell* cell = merged_.Find(key);
      w.WriteU64(key);
      w.WriteU32(cell->cuboid);
      // Flags word: bit 0 = override sample, bit 1 = global-augmented.
      w.WriteU32((cell->has_override ? 1u : 0u) |
                 (cell->augment_global ? 2u : 0u));
      w.WriteU32(cell->override_id);
    }
    w.WriteU64(override_samples_.size());
    for (uint32_t id = 0; id < override_samples_.size(); ++id) {
      w.WriteVector(override_samples_.sample(id));
    }
    TABULA_FAULT_POINT("persistence.write");

    out.flush();
    if (!w.ok() || !out) {
      return Status::IOError("write failed for '" + tmp + "'");
    }
    return Status::OK();
  }();
  std::error_code ec;
  if (!written.ok()) {
    std::filesystem::remove(tmp, ec);  // best effort; ignore errors
    return written;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::string reason = ec.message();
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot move '" + tmp + "' over '" + path +
                           "': " + reason);
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardedTabula>> ShardedTabula::Load(
    const Table& table, ShardedTabulaOptions options,
    const std::string& path, bool resume_partial) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const LossFunction* loss = options.base.effective_loss();
  if (loss == nullptr) {
    return Status::InvalidArgument("TabulaOptions.loss must be set");
  }
  if (options.num_shards == 1) {
    auto sharded = std::unique_ptr<ShardedTabula>(new ShardedTabula());
    sharded->table_ = &table;
    sharded->options_ = options;
    TABULA_ASSIGN_OR_RETURN(
        sharded->single_,
        Tabula::Load(table, options.base, path, resume_partial));
    sharded->stats_.num_shards = 1;
    sharded->stats_.global_sample_tuples =
        sharded->single_->init_stats().global_sample_tuples;
    sharded->stats_.merged_iceberg_cells =
        sharded->single_->init_stats().iceberg_cells;
    sharded->stats_.shard_iceberg_cells = {
        sharded->single_->init_stats().iceberg_cells};
    return sharded;
  }

  TABULA_FAULT_POINT("persistence.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  BinaryReader r(&in);

  TABULA_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  TABULA_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (magic != kShardMagic) {
    return Status::ParseError("'" + path +
                              "' is not a Tabula shard manifest");
  }
  if (version != 1 && version != kShardVersion) {
    return Status::ParseError("unsupported shard manifest version " +
                              std::to_string(version));
  }
  // v1 manifests carry the covered row count at the tail and a
  // full-table fingerprint, which only matches when the table has not
  // grown since the save — so assuming full coverage here is exact.
  uint64_t saved_rows = table.num_rows();
  if (version >= 2) {
    TABULA_ASSIGN_OR_RETURN(saved_rows, r.ReadU64());
  }
  if (saved_rows > table.num_rows()) {
    return Status::InvalidArgument(
        "shard manifest covers " + std::to_string(saved_rows) +
        " rows but the table only has " + std::to_string(table.num_rows()));
  }
  if (saved_rows != table.num_rows() && !resume_partial) {
    return Status::InvalidArgument(
        "shard manifest covers only " + std::to_string(saved_rows) + " of " +
        std::to_string(table.num_rows()) +
        " rows (stale cube); pass resume_partial to load it and Refresh() "
        "to catch up");
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t fingerprint, r.ReadU64());
  const uint64_t want_fingerprint =
      version >= 2 ? TableFingerprint(table, saved_rows)
                   : TableFingerprint(table);
  if (fingerprint != want_fingerprint) {
    return Status::InvalidArgument(
        "shard manifest was built on a different table (fingerprint "
        "mismatch); re-run Initialize()");
  }
  TABULA_ASSIGN_OR_RETURN(std::string loss_name, r.ReadString());
  if (loss_name != loss->name()) {
    return Status::InvalidArgument("manifest was built with loss '" +
                                   loss_name + "', options specify '" +
                                   loss->name() + "'");
  }
  TABULA_ASSIGN_OR_RETURN(double threshold, r.ReadDouble());
  if (threshold != options.base.threshold) {
    return Status::InvalidArgument(
        "manifest was built with threshold " + std::to_string(threshold) +
        ", options specify " + std::to_string(options.base.threshold));
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t num_attrs, r.ReadU64());
  std::vector<std::string> attrs(num_attrs);
  for (auto& attr : attrs) {
    TABULA_ASSIGN_OR_RETURN(attr, r.ReadString());
  }
  if (attrs != options.base.cubed_attributes) {
    return Status::InvalidArgument(
        "manifest's cubed attributes differ from options");
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t num_shards, r.ReadU64());
  if (num_shards != options.num_shards) {
    return Status::InvalidArgument(
        "manifest holds " + std::to_string(num_shards) +
        " shards, options specify " + std::to_string(options.num_shards));
  }
  TABULA_ASSIGN_OR_RETURN(uint32_t partition, r.ReadU32());
  if (partition != static_cast<uint32_t>(options.partition)) {
    return Status::InvalidArgument(
        "manifest partitioning differs from options");
  }

  auto sharded = std::unique_ptr<ShardedTabula>(new ShardedTabula());
  sharded->table_ = &table;
  sharded->options_ = std::move(options);
  TABULA_ASSIGN_OR_RETURN(sharded->encoder_, KeyEncoder::Make(table, attrs));
  std::vector<size_t> all_cols(attrs.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(sharded->packer_,
                          KeyPacker::Make(sharded->encoder_, all_cols));
  sharded->lattice_ = Lattice(attrs.size());

  TABULA_ASSIGN_OR_RETURN(sharded->global_sample_rows_,
                          r.ReadVector<RowId>());
  for (RowId row : sharded->global_sample_rows_) {
    if (row >= saved_rows) {
      return Status::DataLoss("manifest's global sample references row " +
                              std::to_string(row) + " beyond the table");
    }
  }
  sharded->global_sample_ =
      DatasetView(&table, sharded->global_sample_rows_);

  sharded->shards_.assign(num_shards, Shard{});
  for (Shard& shard : sharded->shards_) {
    TABULA_ASSIGN_OR_RETURN(shard.rows, r.ReadVector<RowId>());
    TABULA_ASSIGN_OR_RETURN(uint64_t row_fp, r.ReadU64());
    if (row_fp != RowListFingerprint(shard.rows)) {
      return Status::DataLoss(
          "shard row-list fingerprint mismatch; manifest is corrupt");
    }
    TABULA_ASSIGN_OR_RETURN(uint64_t num_cells, r.ReadU64());
    for (uint64_t i = 0; i < num_cells; ++i) {
      IcebergCell cell;
      TABULA_ASSIGN_OR_RETURN(cell.key, r.ReadU64());
      TABULA_ASSIGN_OR_RETURN(cell.cuboid, r.ReadU32());
      TABULA_ASSIGN_OR_RETURN(cell.sample_id, r.ReadU32());
      shard.cube.Add(std::move(cell));
    }
    TABULA_ASSIGN_OR_RETURN(uint64_t num_samples, r.ReadU64());
    for (uint64_t i = 0; i < num_samples; ++i) {
      TABULA_ASSIGN_OR_RETURN(std::vector<RowId> rows,
                              r.ReadVector<RowId>());
      for (RowId row : rows) {
        if (row >= saved_rows) {
          return Status::DataLoss("manifest references row " +
                                  std::to_string(row) + " beyond the table");
        }
      }
      shard.samples.Add(std::move(rows));
    }
    for (const auto& cell : shard.cube.cells()) {
      if (cell.sample_id >= shard.samples.size()) {
        return Status::DataLoss("manifest has a dangling sample link");
      }
    }
  }

  TABULA_ASSIGN_OR_RETURN(uint64_t num_merged, r.ReadU64());
  sharded->merged_.reserve(num_merged);
  for (uint64_t i = 0; i < num_merged; ++i) {
    TABULA_ASSIGN_OR_RETURN(uint64_t key, r.ReadU64());
    MergedCell cell;
    TABULA_ASSIGN_OR_RETURN(cell.cuboid, r.ReadU32());
    TABULA_ASSIGN_OR_RETURN(uint32_t flags, r.ReadU32());
    if ((flags & ~3u) != 0) {
      return Status::DataLoss("unknown merged-cell flags " +
                              std::to_string(flags));
    }
    cell.has_override = (flags & 1u) != 0;
    cell.augment_global = (flags & 2u) != 0;
    TABULA_ASSIGN_OR_RETURN(cell.override_id, r.ReadU32());
    auto [slot, inserted] = sharded->merged_.TryEmplace(key, cell);
    (void)slot;
    if (!inserted) {
      return Status::DataLoss("manifest repeats merged cell key " +
                              std::to_string(key));
    }
  }
  TABULA_ASSIGN_OR_RETURN(uint64_t num_overrides, r.ReadU64());
  for (uint64_t i = 0; i < num_overrides; ++i) {
    TABULA_ASSIGN_OR_RETURN(std::vector<RowId> rows, r.ReadVector<RowId>());
    for (RowId row : rows) {
      if (row >= saved_rows) {
        return Status::DataLoss("manifest references row " +
                                std::to_string(row) + " beyond the table");
      }
    }
    sharded->override_samples_.Add(std::move(rows));
  }
  Status override_status = Status::OK();
  sharded->merged_.ForEach([&](uint64_t, const MergedCell& cell) {
    if (cell.has_override &&
        cell.override_id >= sharded->override_samples_.size()) {
      override_status =
          Status::DataLoss("manifest has a dangling override-sample link");
    }
  });
  TABULA_RETURN_NOT_OK(override_status);

  if (version >= 2) {
    // v2 carries the covered row count in the header (`saved_rows`).
    sharded->refreshed_rows_ = saved_rows;
  } else {
    TABULA_ASSIGN_OR_RETURN(sharded->refreshed_rows_, r.ReadU64());
    if (sharded->refreshed_rows_ > table.num_rows()) {
      return Status::DataLoss(
          "manifest covers more rows than the table holds");
    }
    if (sharded->refreshed_rows_ != table.num_rows() && !resume_partial) {
      return Status::InvalidArgument(
          "shard manifest covers only " +
          std::to_string(sharded->refreshed_rows_) + " of " +
          std::to_string(table.num_rows()) +
          " rows (stale cube); pass resume_partial to load it and "
          "Refresh() to catch up");
    }
  }
  // The persisted row lists must partition [0, refreshed_rows) exactly —
  // every row in one shard, no row in two.
  std::vector<uint8_t> seen(sharded->refreshed_rows_, 0);
  size_t assigned = 0;
  for (const Shard& shard : sharded->shards_) {
    for (RowId row : shard.rows) {
      if (row >= sharded->refreshed_rows_) {
        return Status::DataLoss("shard row " + std::to_string(row) +
                                " lies beyond the manifest's row horizon");
      }
      if (seen[row]) {
        return Status::DataLoss("row " + std::to_string(row) +
                                " assigned to two shards");
      }
      seen[row] = 1;
      ++assigned;
    }
  }
  if (assigned != sharded->refreshed_rows_) {
    return Status::DataLoss(
        "shard row lists do not cover the manifest's row horizon");
  }

  sharded->stats_.num_shards = num_shards;
  sharded->stats_.global_sample_tuples = sharded->global_sample_.size();
  sharded->stats_.merged_iceberg_cells = sharded->merged_.size();
  sharded->stats_.shard_build_millis.assign(num_shards, 0.0);
  for (const Shard& shard : sharded->shards_) {
    sharded->stats_.shard_iceberg_cells.push_back(shard.cube.size());
  }
  // Finest states and present-key sets are NOT persisted; the first
  // Refresh rebuilds them via EnsureFinestStates().
  return sharded;
}

}  // namespace tabula

#include <algorithm>
#include <string>

#include "common/stopwatch.h"
#include "shard/sharded_tabula.h"
#include "testing/fault_injection.h"

namespace tabula {

/// Scatter-gather answer path (K > 1; K = 1 delegates to the plain
/// engine for bit-identical behaviour).
///
/// The merged directory decides the shape of the answer:
///  - key absent → non-iceberg cell; the global sample is within θ
///    (verified at merge time from the exactly-merged loss states).
///  - override entry → the union sample violated θ at merge time and a
///    fresh sample was drawn from the full raw data; serve it directly,
///    no fan-out.
///  - plain entry → fan out to every shard and concatenate the
///    shard-local samples in ascending shard order (deterministic);
///    `augment_global` cells append the global sample, the verified
///    stand-in for slices whose shards were individually within θ of
///    it and therefore hold no local sample. A
///    shard failing at the `shard.query` seam degrades the answer: its
///    slice is covered by appending the global sample, the shard id
///    lands in `unavailable_shards`, and `shard_error` carries the
///    kUnavailable detail — the request still succeeds, but the θ bound
///    is voided and the caller is told so.
Result<QueryResponse> ShardedTabula::Query(const QueryRequest& request) const {
  if (single_ != nullptr) return single_->Query(request);

  Tracer* tracer = options_.base.tracer;
  Span span;
  if (tracer != nullptr) {
    span = tracer->StartSpan("tabula.query", request.parent_span,
                            request.trace);
  }
  Stopwatch timer;
  QueryResponse response;
  response.span_id = span.id();
  TabulaQueryResult& result = response.result;
  const std::vector<PredicateTerm>& where = request.where;
  // Progressive-answer tagging, identical to the plain engine: the
  // generation the answer is computed at, plus whether pending rows are
  // scheduled to change this cell (per-cell once BeginIngest published
  // the dirty set, conservatively everywhere before that).
  result.generation = generation_;
  const bool has_pending = table_->num_rows() > refreshed_rows_;

  auto finish = [&]() {
    if (span.recording()) {
      span.SetAttribute("terms", where.size());
      span.SetAttribute("from_local_sample", result.from_local_sample);
      span.SetAttribute("empty_cell", result.empty_cell);
      span.SetAttribute("sample_rows", result.sample.size());
      span.SetAttribute("unavailable_shards",
                        result.unavailable_shards.size());
      result.data_system_millis = span.End();
    } else {
      result.data_system_millis = timer.ElapsedMillis();
    }
  };

  // Identical WHERE-clause contract (and error wording) as the plain
  // engine: equality predicates on cubed attributes only.
  const auto& names = encoder_.column_names();
  std::vector<uint32_t> codes(names.size(), kNullCode);
  for (const auto& term : where) {
    if (term.op != CompareOp::kEq) {
      return Status::InvalidArgument(
          "sampling-cube queries support equality predicates only (got '" +
          term.column + " " + CompareOpName(term.op) + " ...')");
    }
    auto it = std::find(names.begin(), names.end(), term.column);
    if (it == names.end()) {
      return Status::InvalidArgument(
          "'" + term.column +
          "' is not a cubed attribute; WHERE-clause attributes must be a "
          "subset of the cubed attributes of the initialization query");
    }
    size_t k = static_cast<size_t>(it - names.begin());
    if (codes[k] != kNullCode) {
      return Status::InvalidArgument("duplicate predicate on '" +
                                     term.column + "'");
    }
    auto code = encoder_.CodeForValue(k, term.literal);
    if (!code.ok()) {
      result.empty_cell = true;
      result.stale = has_pending;
      result.sample = DatasetView(table_, {});
      finish();
      return response;
    }
    codes[k] = code.value();
  }

  uint64_t key = packer_.PackCodes(codes);
  result.stale =
      has_pending && (pending_dirty_.empty() || pending_dirty_.Contains(key));
  const MergedCell* cell = merged_.Find(key);
  if (cell == nullptr) {
    result.sample = DatasetView(table_, global_sample_rows_);
    finish();
    return response;
  }
  result.from_local_sample = true;
  if (cell->has_override) {
    result.sample =
        DatasetView(table_, override_samples_.sample(cell->override_id));
    finish();
    return response;
  }

  Span fanout_span;
  if (span.recording() && tracer != nullptr) {
    fanout_span = tracer->StartSpan("shard.query.fanout", span.id());
    fanout_span.SetAttribute("shards", shards_.size());
  }
  Stopwatch fanout_timer;
  std::vector<RowId> gathered;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Stopwatch shard_timer;
    Status shard_status = Status::OK();
    if (FaultInjector::AnyArmed()) {
      shard_status = FaultInjector::Global().Hit("shard.query");
    }
    if (shard_status.ok()) {
      const IcebergCell* local = shards_[s].cube.Find(key);
      if (local != nullptr) {
        const auto& sample = shards_[s].samples.sample(local->sample_id);
        gathered.insert(gathered.end(), sample.begin(), sample.end());
      }
    } else {
      result.unavailable_shards.push_back(static_cast<uint32_t>(s));
      if (result.shard_error.ok()) {
        result.shard_error = Status::Unavailable(
            "shard " + std::to_string(s) +
            " unavailable during scatter-gather: " + shard_status.message());
      }
      metrics_.counter("shard_unavailable_total").Increment();
    }
    metrics_.histogram("shard" + std::to_string(s) + "_query_latency")
        .RecordMillis(shard_timer.ElapsedMillis());
  }
  if (!result.unavailable_shards.empty()) {
    metrics_.counter("shard_degraded_answers").Increment();
  }
  if (cell->augment_global || !result.unavailable_shards.empty()) {
    // The global sample stands in for slices the union does not cover.
    // For an `augment_global` cell that is the *verified* answer: its
    // conflict slices are within θ of the global sample and the merge
    // checked union + global against θ. For a degraded answer (shard
    // unavailable) the same rows are a best effort and the bound is
    // voided — which `unavailable_shards` being non-empty signals.
    gathered.insert(gathered.end(), global_sample_rows_.begin(),
                    global_sample_rows_.end());
  }
  double fanout_millis = fanout_span.recording()
                             ? fanout_span.End()
                             : fanout_timer.ElapsedMillis();
  metrics_.histogram("shard_fanout_latency").RecordMillis(fanout_millis);
  result.sample = DatasetView(table_, std::move(gathered));
  finish();
  return response;
}

}  // namespace tabula

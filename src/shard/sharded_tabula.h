#ifndef TABULA_SHARD_SHARDED_TABULA_H_
#define TABULA_SHARD_SHARDED_TABULA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "core/query_engine.h"
#include "core/tabula.h"
#include "cube/cube_table.h"
#include "cube/lattice.h"
#include "serve/metrics.h"
#include "storage/table.h"

namespace tabula {

/// How ShardedTabula assigns base-table rows to shards.
enum class ShardPartition {
  /// shard(r) = mix(r) % K — rows scatter uniformly, every shard sees
  /// an unbiased slice of every cell. Appends touch most shards.
  kHash,
  /// Contiguous row ranges at build time; appended rows go to the
  /// currently smallest shard, so a small append touches one shard and
  /// Refresh re-verifies only that shard.
  kRange,
};

const char* ShardPartitionName(ShardPartition partition);

/// Configuration of a sharded sampling cube.
struct ShardedTabulaOptions {
  /// Per-shard build parameters (loss, θ, cubed attributes, sampler,
  /// seed, tracer). Two knobs behave differently under sharding:
  /// `enable_sample_selection` is ignored at K > 1 (each shard persists
  /// its local samples individually — cross-cell representative-sample
  /// sharing is a global optimization the partitioned build forgoes),
  /// and maintenance state is always kept (the merge pass needs every
  /// shard's finest-cell loss states).
  TabulaOptions base;
  /// Number of shards K. K = 1 is a strict pass-through to a plain
  /// `Tabula` — bit-identical answers, cube, and persistence format.
  size_t num_shards = 1;
  ShardPartition partition = ShardPartition::kHash;
};

/// Diagnostics of one sharded Initialize() (or the merge part of a
/// Refresh). The merge counters document how the deterministic θ bound
/// was restored for the merged cube — see DESIGN.md "Sharding".
struct ShardedInitStats {
  size_t num_shards = 0;
  size_t global_sample_tuples = 0;
  /// Iceberg cells of the merged cube (equals the single-instance
  /// count: loss states merge exactly, so classification agrees).
  size_t merged_iceberg_cells = 0;
  /// Merged iceberg cells whose shard-local iceberg status disagreed
  /// across shards (some slice was covered by the global sample alone).
  size_t conflict_cells = 0;
  /// Cells accepted by the union-closure argument, no check needed.
  size_t union_accepted_cells = 0;
  /// Cells whose merged sample was re-verified (state finalize or
  /// direct loss evaluation).
  size_t verified_cells = 0;
  /// Cells whose union sample violated θ and were re-sampled from the
  /// full raw data into an override sample.
  size_t resampled_cells = 0;
  double build_millis = 0.0;   ///< parallel per-shard build (wall)
  double merge_millis = 0.0;   ///< merge + re-verification
  double total_millis = 0.0;
  /// Modeled K-worker wall clock: the coordinator's serial work
  /// (partition, state merge, re-verification) plus the *slowest*
  /// single shard build. Shard builds are independent pool tasks, so
  /// measured wall clock converges to this once the pool has >= K
  /// workers; on smaller pools the tasks time-share and total_millis
  /// approaches the sum instead. bench_shard_scaling reports both.
  double critical_path_millis = 0.0;
  std::vector<double> shard_build_millis;   ///< per shard
  std::vector<size_t> shard_iceberg_cells;  ///< per shard (local cubes)
};

/// \brief Horizontally sharded sampling cube behind the QueryEngine
/// interface (the paper's middleware scaled out the way its testbed
/// scaled SparkSQL executors).
///
/// Initialize() partitions the base table's rows into K shards, builds
/// each shard's cube in parallel (one coarse task per shard on the
/// global pool; the flat-hash GroupAccumulate engine runs inline inside
/// the task), then merges: per-cell loss states merge *exactly* (they
/// are algebraic), so the merged iceberg-cell set equals the
/// single-instance cube's, and each merged iceberg cell's answer is the
/// union of its shard-local samples — re-verified against θ at merge
/// time and re-sampled from the full raw data when the union violates
/// the bound (see DESIGN.md "Sharding" for the argument per loss
/// class). Query() scatter-gathers shard samples; a shard failing at
/// the `shard.query` fault seam degrades that answer (global sample
/// stands in for the missing slice, `TabulaQueryResult::
/// unavailable_shards` + `shard_error` populated) instead of failing
/// the request.
///
/// Thread-safety matches Tabula: Query() is const ⇒ concurrent-safe;
/// Refresh()/Save()/Load() require external serialization.
class ShardedTabula : public QueryEngine {
 public:
  static Result<std::unique_ptr<ShardedTabula>> Initialize(
      const Table& table, ShardedTabulaOptions options);

  Result<QueryResponse> Query(const QueryRequest& request) const override;
  Status Refresh(RefreshStats* stats = nullptr) override;

  /// \brief Streaming-maintenance phases (see QueryEngine). Refresh()
  /// composes them. PlanIngest routes the pending rows to their owning
  /// shards and computes the dirty cell set; ExecuteIngest rebuilds the
  /// touched shards into staged copies and re-runs the merge + θ
  /// re-verification over the mix of staged and untouched shards;
  /// CommitIngest adopts the staged shards and the merged directory.
  /// Plan/Execute mutate only plan-staged state plus maintenance-only
  /// members Query() never reads (shard finest states / present sets via
  /// EnsureFinestStates), so they may run under a shared lock while
  /// queries serve. K = 1 delegates every phase to the plain engine.
  Result<std::unique_ptr<IngestPlan>> PlanIngest() override;
  void BeginIngest(IngestPlan* plan) override;
  Status ExecuteIngest(IngestPlan* plan) override;
  Status CommitIngest(std::unique_ptr<IngestPlan> plan,
                      RefreshStats* stats = nullptr) override;
  size_t PendingIngestRows() const override {
    return single_ != nullptr ? single_->PendingIngestRows()
                              : table_->num_rows() - refreshed_rows_;
  }

  /// Persists the shard manifest: partition + per-shard row lists with
  /// fingerprints, per-shard cubes and sample tables, and the merged
  /// directory with override samples — one file, written
  /// temp-then-rename so a failure mid-write never leaves a partial
  /// manifest. K = 1 delegates to Tabula::Save (plain cube format).
  Status Save(const std::string& path) const override;

  /// Restores a manifest saved with Save(). `options` must match the
  /// saved loss, threshold, attributes, shard count and partition; the
  /// base-table fingerprint and every per-shard row-list fingerprint
  /// are verified before the manifest is trusted. Like Tabula::Load,
  /// the default rejects a manifest covering fewer rows than the table
  /// holds; `resume_partial = true` accepts it when the covered prefix
  /// matches (crash recovery after a journal replay), leaving the tail
  /// pending for the next Refresh()/ingest cycle.
  static Result<std::unique_ptr<ShardedTabula>> Load(
      const Table& table, ShardedTabulaOptions options,
      const std::string& path, bool resume_partial = false);

  uint64_t generation() const override;
  uint64_t AddRefreshListener(std::function<void()> listener) override;
  void RemoveRefreshListener(uint64_t id) override;
  const DatasetView& global_sample() const override;
  const Table& base_table() const override;

  size_t num_shards() const { return options_.num_shards; }
  const ShardedTabulaOptions& options() const { return options_; }
  const ShardedInitStats& init_stats() const;

  /// Number of iceberg cells of the merged cube.
  size_t merged_iceberg_cells() const;
  /// Sorted packed keys of every merged iceberg cell (for differential
  /// tests against a single-instance cube).
  std::vector<uint64_t> MergedIcebergKeys() const;

  /// Row ids owned by shard `i` (K > 1 only).
  const std::vector<RowId>& shard_rows(size_t i) const;
  /// Shard `i`'s local cube (K > 1 only; tests and diagnostics).
  const CubeTable& shard_cube(size_t i) const;

  /// The underlying plain Tabula at K = 1 (nullptr at K > 1).
  const Tabula* single_instance() const { return single_.get(); }

  /// Per-shard serving metrics: `shard<i>_query_latency` histograms,
  /// `shard_unavailable_total` / `shard_degraded_answers` counters and
  /// the `shard_fanout_latency` histogram. Safe to read concurrently
  /// with Query().
  MetricsRegistry& metrics() const { return metrics_; }

 private:
  ShardedTabula() = default;

  /// Staged state of one in-flight ingest cycle (defined in
  /// sharded_refresh.cc; the layout is an implementation detail).
  struct IngestPlanState;

  /// One shard's slice of the cube.
  struct Shard {
    /// Base-table rows owned by this shard (ascending).
    std::vector<RowId> rows;
    /// Shard-local iceberg cells; sample ids link into `samples`.
    CubeTable cube;
    SampleTable samples;
    /// Finest-cuboid loss states over `rows` — the mergeable roll-up
    /// input the coordinator classifies the merged cube from.
    FlatHashMap<LossState> finest;
    /// Every cell key (all lattice levels) with at least one row in
    /// this shard; distinguishes "slice empty" from "slice covered by
    /// the global sample" during merge-conflict detection.
    FlatHashSet present;
    double build_millis = 0.0;
  };

  /// One entry of the merged cube directory.
  struct MergedCell {
    CuboidMask cuboid = 0;
    /// When true the union sample violated θ and `override_id` names
    /// the re-drawn sample in `override_samples_`; otherwise the
    /// answer is the scatter-gathered union of shard samples.
    bool has_override = false;
    /// Conflict cell whose absent slices are covered by the global
    /// sample: the answer (and the candidate the merge verified) is
    /// the shard-sample union *plus* the global sample, exactly the
    /// rows the missing slices would have been answered from anyway.
    bool augment_global = false;
    uint32_t override_id = 0;
  };

  /// Output of the merge + re-verification pass (staged, so a failed
  /// Refresh commits nothing).
  struct MergeOutput {
    FlatHashMap<MergedCell> merged;
    SampleTable overrides;
    size_t conflict_cells = 0;
    size_t union_accepted_cells = 0;
    size_t verified_cells = 0;
    size_t resampled_cells = 0;
  };

  Status InitializeSharded(const Table& table);

  /// Builds one shard's cube over `shard->rows` (runs inside a pool
  /// task; everything it calls parallelizes inline). `enc` is passed
  /// explicitly because an in-flight ingest plan rebuilds shards with
  /// its staged encoder (the member encoder cannot code appended rows
  /// and must stay untouched until commit, queries read it); `ref` is
  /// the global reference sample to classify against, passed for the
  /// same reason (an ingest plan stages a redrawn sample).
  Status BuildShard(const KeyEncoder& enc, const DatasetView& ref,
                    Tracer* tracer, uint64_t parent_span,
                    Shard* shard) const;

  /// Merges the given shards' states into a fresh directory, running
  /// the θ re-verification pass (see DESIGN.md "Sharding"). `enc` and
  /// `ref`/`ref_rows` as in BuildShard.
  Result<MergeOutput> MergeShardCubes(
      const std::vector<const Shard*>& shards, const KeyEncoder& enc,
      const DatasetView& ref, const std::vector<RowId>& ref_rows,
      Tracer* tracer, uint64_t parent_span) const;

  /// Rolls `finest` up the whole lattice, returning one state map per
  /// cuboid (index = CuboidMask). Shared by the shard build, the merge
  /// pass, and the post-Load state rebuild.
  std::vector<FlatHashMap<LossState>> RollUpLattice(
      const FlatHashMap<LossState>& finest) const;

  /// Rebuilds any shard's finest states / present-key sets that are
  /// missing (after Load, which does not persist them).
  Status EnsureFinestStates();

  /// Shard owning an appended row id under the configured partition.
  size_t ShardForNewRow(RowId row, const std::vector<size_t>& sizes) const;

  void NotifyRefreshListeners();

  const Table* table_ = nullptr;
  ShardedTabulaOptions options_;

  /// K = 1 pass-through instance; when set, every entry point
  /// delegates and the members below stay empty.
  std::unique_ptr<Tabula> single_;

  KeyEncoder encoder_;
  KeyPacker packer_;
  /// Placeholder size until Initialize/Load set the real lattice
  /// (Lattice rejects zero attributes).
  Lattice lattice_{1};
  std::vector<RowId> global_sample_rows_;
  DatasetView global_sample_;
  std::vector<Shard> shards_;
  FlatHashMap<MergedCell> merged_;
  SampleTable override_samples_;
  ShardedInitStats stats_;
  size_t refreshed_rows_ = 0;
  /// Cells the in-flight ingest cycle will change (packed keys across
  /// all cuboids), published by BeginIngest, cleared by CommitIngest;
  /// Query() probes it for per-cell staleness tagging (empty while rows
  /// pend ⇒ conservatively stale everywhere).
  FlatHashSet pending_dirty_;

  mutable MetricsRegistry metrics_;

  uint64_t generation_ = 0;
  uint64_t next_listener_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void()>>> refresh_listeners_;
};

}  // namespace tabula

#endif  // TABULA_SHARD_SHARDED_TABULA_H_

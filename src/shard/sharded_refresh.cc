/// Incremental maintenance of a sharded cube, split into the four-phase
/// streaming-ingestion protocol (see QueryEngine): PlanIngest routes
/// appended rows to their owning shards (hash of the row id, or the
/// smallest shard under range partitioning) and computes the dirty cell
/// set; BeginIngest publishes that set for per-cell staleness tagging;
/// ExecuteIngest rebuilds ONLY the touched shards into staged copies
/// and re-runs the merge + θ re-verification pass over the mix of
/// staged and untouched shards; CommitIngest adopts the staged shards
/// and merged directory. Refresh() composes the phases back-to-back and
/// keeps the single-instance contract: every fallible step is staged,
/// so a failed cycle (including an injected `shard.build` fault) leaves
/// the instance answering queries exactly as before, generation
/// unchanged. K = 1 delegates every phase to the plain engine.

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "sampling/random_sampler.h"
#include "shard/sharded_tabula.h"
#include "testing/fault_injection.h"

namespace tabula {

/// Staged state of one in-flight sharded ingest cycle. Declared as a
/// nested type (the Shard/MergeOutput members are private to
/// ShardedTabula) but defined here so the staged layout stays local to
/// this translation unit. Everything in it is private to the cycle
/// until CommitIngest adopts it, so a failure in any phase just drops
/// the plan.
struct ShardedTabula::IngestPlanState : QueryEngine::IngestPlan {
  KeyEncoder new_encoder;
  /// Parent span for the shard.build / merge spans ExecuteIngest emits
  /// (0 = unparented; Refresh() threads its own span through).
  uint64_t parent_span = 0;
  /// Indices of shards that received appended rows.
  std::vector<size_t> touched;
  /// Redrawn global sample over [0, target_rows) — identical to the
  /// one a from-scratch build over the grown table draws (same seed,
  /// same Serfling size). Staged here and adopted at commit when the
  /// loss's state is reference-independent (retained shard states
  /// remain valid under the rebinding); reference-dependent losses
  /// keep the original sample and `adopt_global` stays false.
  bool adopt_global = false;
  std::vector<RowId> staged_global_rows;
  DatasetView staged_global;
  /// Staged copies of the touched shards: `rows` pre-extended with the
  /// appends at plan time, the cube/samples/states filled by the
  /// rebuild in ExecuteIngest.
  std::vector<Shard> staged;
  MergeOutput merge;
  bool executed = false;
  std::unique_ptr<ShardedTabula> fresh;  ///< full-rebuild path
};

Result<std::unique_ptr<QueryEngine::IngestPlan>> ShardedTabula::PlanIngest() {
  if (single_ != nullptr) return single_->PlanIngest();

  auto owned = std::make_unique<IngestPlanState>();
  IngestPlanState* plan = owned.get();
  const size_t n0 = refreshed_rows_;
  const size_t n1 = table_->num_rows();
  if (n1 < n0) {
    return Status::InvalidArgument(
        "base table shrank; Refresh only supports appends");
  }
  plan->target_rows = n1;
  plan->stats.new_rows = n1 - n0;
  if (n1 == n0) {
    plan->no_op = true;
    return std::unique_ptr<IngestPlan>(std::move(owned));
  }

  TABULA_FAULT_POINT("refresh.begin");

  // Layout check, same as the plain engine: an unseen attribute value
  // shifts the packed-key layout, and every stored key — in every
  // shard — would be stale. Rebuild the whole sharded cube (dirty set
  // stays empty ⇒ queries tag every answer conservatively stale).
  TABULA_ASSIGN_OR_RETURN(
      plan->new_encoder,
      KeyEncoder::Make(*table_, options_.base.cubed_attributes));
  for (size_t k = 0; k < plan->new_encoder.num_columns(); ++k) {
    if (plan->new_encoder.Cardinality(k) != encoder_.Cardinality(k)) {
      plan->full_rebuild = true;
      plan->stats.full_rebuild = true;
      return std::unique_ptr<IngestPlan>(std::move(owned));
    }
  }

  // The merge pass needs every shard's finest states; rebuild any that
  // are missing (e.g. after Load, which does not persist them). This
  // mutates maintenance-only members no Query() path reads, so it is
  // safe under the shared lock; the states describe rows [0, n0) only.
  TABULA_RETURN_NOT_OK(EnsureFinestStates());

  // Redraw the global sample over the grown table exactly as a
  // from-scratch build would (see the plain engine's PlanIngest for
  // the full argument): with a reference-independent loss state the
  // retained per-shard states stay valid under the new binding, so
  // the re-merge classifies against the fresh sample and the merged
  // iceberg set converges to the from-scratch one.
  if (!options_.base.effective_loss()->StateDependsOnReference()) {
    size_t global_size = SerflingSampleSize(options_.base.serfling_epsilon,
                                            options_.base.serfling_delta);
    // Bottom-k over (current sample ∪ appended rows) — equal to the
    // full-table draw because bottom-k selection is decomposable (see
    // the single-instance PlanIngest in core/refresh.cc).
    std::vector<RowId> cand = global_sample_rows_;
    cand.reserve(cand.size() + (n1 - n0));
    for (size_t r = n0; r < n1; ++r) cand.push_back(static_cast<RowId>(r));
    plan->staged_global_rows = ConsistentBottomKSample(
        DatasetView(table_, std::move(cand)), global_size,
        options_.base.seed);
    plan->staged_global = DatasetView(table_, plan->staged_global_rows);
    plan->adopt_global = true;
  }

  // Route appended rows to their owning shards. Range routing feeds
  // the running sizes back in, so a burst of appends still lands on
  // one (the smallest) shard at a time, deterministically.
  const size_t k = options_.num_shards;
  std::vector<size_t> sizes(k);
  for (size_t s = 0; s < k; ++s) sizes[s] = shards_[s].rows.size();
  std::vector<std::vector<RowId>> appended(k);
  for (size_t r = n0; r < n1; ++r) {
    size_t s = ShardForNewRow(static_cast<RowId>(r), sizes);
    appended[s].push_back(static_cast<RowId>(r));
    ++sizes[s];
  }
  for (size_t s = 0; s < k; ++s) {
    if (!appended[s].empty()) plan->touched.push_back(s);
  }

  // Staged row lists for the touched shards. Appended row ids exceed
  // every existing id, so the staged lists stay ascending.
  plan->staged.resize(plan->touched.size());
  for (size_t i = 0; i < plan->touched.size(); ++i) {
    size_t s = plan->touched[i];
    plan->staged[i].rows = shards_[s].rows;
    plan->staged[i].rows.insert(plan->staged[i].rows.end(),
                                appended[s].begin(), appended[s].end());
  }

  // Dirty set: every cell (at every lattice level) holding a pending
  // row. A superset of the cells whose answers actually change — a
  // touched cell can stay non-iceberg — which errs on the side of
  // tagging an unchanged answer stale, never the reverse.
  FlatHashSet dirty;
  for (size_t r = n0; r < n1; ++r) {
    for (size_t m = 0; m < lattice_.num_cuboids(); ++m) {
      dirty.Insert(packer_.PackRowMasked(plan->new_encoder,
                                         static_cast<RowId>(r),
                                         static_cast<CuboidMask>(m)));
    }
  }
  plan->dirty_keys = dirty.SortedKeys();
  return std::unique_ptr<IngestPlan>(std::move(owned));
}

void ShardedTabula::BeginIngest(IngestPlan* plan) {
  if (single_ != nullptr) {
    single_->BeginIngest(plan);
    return;
  }
  auto* p = static_cast<IngestPlanState*>(plan);
  if (p->no_op) return;
  // Replace, not merge: a re-plan after a failed cycle recomputes a
  // superset of any earlier dirty set (refreshed_rows_ only moves at
  // commit). A full rebuild publishes an empty set — coarse staleness.
  pending_dirty_.clear();
  for (uint64_t key : p->dirty_keys) pending_dirty_.Insert(key);
}

Status ShardedTabula::ExecuteIngest(IngestPlan* plan) {
  if (single_ != nullptr) return single_->ExecuteIngest(plan);
  auto* p = static_cast<IngestPlanState*>(plan);
  if (p->no_op) return Status::OK();

  Tracer* tracer = options_.base.tracer;

  if (p->full_rebuild) {
    TABULA_ASSIGN_OR_RETURN(p->fresh, Initialize(*table_, options_));
    p->target_rows = p->fresh->refreshed_rows_;
    return Status::OK();
  }

  // Rebuild ONLY the touched shards, into the staged copies (parallel,
  // one task per shard, like Initialize). The staged encoder codes the
  // appended rows; identical layout means identical keys for rows the
  // member encoder also covers.
  const DatasetView& ref =
      p->adopt_global ? p->staged_global : global_sample_;
  const std::vector<RowId>& ref_rows =
      p->adopt_global ? p->staged_global_rows : global_sample_rows_;
  std::vector<Status> statuses(p->touched.size(), Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(p->touched.size());
  for (size_t i = 0; i < p->touched.size(); ++i) {
    futures.push_back(
        ThreadPool::Global().Submit([this, i, tracer, p, &ref, &statuses] {
          statuses[i] = BuildShard(p->new_encoder, ref, tracer,
                                   p->parent_span, &p->staged[i]);
        }));
  }
  Status first_error = Status::OK();
  for (size_t i = 0; i < p->touched.size(); ++i) {
    try {
      futures[i].get();
    } catch (const std::exception& e) {
      if (first_error.ok()) {
        first_error = Status::Internal(std::string("shard build threw: ") +
                                       e.what());
      }
    }
    if (first_error.ok() && !statuses[i].ok()) first_error = statuses[i];
  }
  TABULA_RETURN_NOT_OK(first_error);

  // Re-merge over the mix of rebuilt and untouched shards (staged
  // output; nothing committed yet). Untouched shards are read-only
  // here — safe concurrently with queries.
  std::vector<const Shard*> shard_ptrs(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shard_ptrs[s] = &shards_[s];
  }
  for (size_t i = 0; i < p->touched.size(); ++i) {
    shard_ptrs[p->touched[i]] = &p->staged[i];
  }
  TABULA_ASSIGN_OR_RETURN(
      p->merge,
      MergeShardCubes(shard_ptrs, p->new_encoder, ref, ref_rows, tracer,
                      p->parent_span));

  // Directory diff for the maintenance stats.
  p->merge.merged.ForEach([&](uint64_t key, const MergedCell&) {
    if (!merged_.contains(key)) ++p->stats.new_iceberg_cells;
  });
  merged_.ForEach([&](uint64_t key, const MergedCell&) {
    if (!p->merge.merged.contains(key)) ++p->stats.dropped_iceberg_cells;
  });
  p->stats.rechecked_cells = p->merge.verified_cells;
  p->stats.resampled_cells = p->merge.resampled_cells;
  p->executed = true;
  return Status::OK();
}

Status ShardedTabula::CommitIngest(std::unique_ptr<IngestPlan> plan,
                                   RefreshStats* stats) {
  if (single_ != nullptr) {
    return single_->CommitIngest(std::move(plan), stats);
  }
  auto* p = static_cast<IngestPlanState*>(plan.get());
  if (p->no_op) {
    if (stats != nullptr) *stats = p->stats;
    return Status::OK();
  }
  if (p->full_rebuild) {
    if (p->fresh == nullptr) {
      return Status::Internal(
          "CommitIngest before ExecuteIngest on a full-rebuild plan");
    }
    // Member-wise adoption instead of whole-object move: the metrics
    // registry (mutexes) must stay put, and listeners + generation
    // survive a rebuild like any other cube mutation.
    ShardedTabula& fresh = *p->fresh;
    encoder_ = std::move(fresh.encoder_);
    packer_ = std::move(fresh.packer_);
    lattice_ = fresh.lattice_;
    global_sample_rows_ = std::move(fresh.global_sample_rows_);
    global_sample_ = std::move(fresh.global_sample_);
    shards_ = std::move(fresh.shards_);
    merged_ = std::move(fresh.merged_);
    override_samples_ = std::move(fresh.override_samples_);
    stats_ = std::move(fresh.stats_);
    refreshed_rows_ = fresh.refreshed_rows_;
    pending_dirty_.clear();
    ++generation_;
    if (stats != nullptr) *stats = p->stats;
    NotifyRefreshListeners();
    return Status::OK();
  }
  if (!p->executed) {
    return Status::Internal("CommitIngest before ExecuteIngest");
  }

  // ---- Commit point: nothing below can fail. ----
  encoder_ = std::move(p->new_encoder);
  if (p->adopt_global) {
    global_sample_rows_ = std::move(p->staged_global_rows);
    global_sample_ = std::move(p->staged_global);
    stats_.global_sample_tuples = global_sample_.size();
  }
  for (size_t i = 0; i < p->touched.size(); ++i) {
    shards_[p->touched[i]] = std::move(p->staged[i]);
  }
  merged_ = std::move(p->merge.merged);
  override_samples_ = std::move(p->merge.overrides);
  stats_.merged_iceberg_cells = merged_.size();
  stats_.conflict_cells = p->merge.conflict_cells;
  stats_.union_accepted_cells = p->merge.union_accepted_cells;
  stats_.verified_cells = p->merge.verified_cells;
  stats_.resampled_cells = p->merge.resampled_cells;
  for (size_t s = 0; s < shards_.size(); ++s) {
    stats_.shard_iceberg_cells[s] = shards_[s].cube.size();
  }
  refreshed_rows_ = p->target_rows;
  pending_dirty_.clear();
  ++generation_;
  if (stats != nullptr) *stats = p->stats;
  NotifyRefreshListeners();
  return Status::OK();
}

Status ShardedTabula::Refresh(RefreshStats* stats) {
  if (single_ != nullptr) return single_->Refresh(stats);

  Stopwatch timer;
  RefreshStats local;
  RefreshStats* out = stats != nullptr ? stats : &local;
  *out = RefreshStats{};

  Tracer* tracer = options_.base.tracer;
  Span span;
  if (tracer != nullptr) span = tracer->StartSpan("tabula.refresh");
  size_t touched_shards = 0;
  auto finish = [&]() {
    if (span.recording()) {
      span.SetAttribute("new_rows", out->new_rows);
      span.SetAttribute("new_iceberg_cells", out->new_iceberg_cells);
      span.SetAttribute("dropped_iceberg_cells", out->dropped_iceberg_cells);
      span.SetAttribute("rechecked_cells", out->rechecked_cells);
      span.SetAttribute("resampled_cells", out->resampled_cells);
      span.SetAttribute("full_rebuild", out->full_rebuild);
      span.SetAttribute("touched_shards", touched_shards);
      out->millis = span.End();
    } else {
      out->millis = timer.ElapsedMillis();
    }
  };

  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<IngestPlan> plan, PlanIngest());
  if (plan->no_op) {
    finish();
    return Status::OK();
  }
  auto* p = static_cast<IngestPlanState*>(plan.get());
  p->parent_span = span.id();
  touched_shards =
      p->full_rebuild ? options_.num_shards : p->touched.size();
  BeginIngest(plan.get());
  // On failure the staged plan dies here; pending_dirty_ stays
  // published — answers keep tagging stale (rows still pend) until a
  // later cycle commits or re-plans.
  TABULA_RETURN_NOT_OK(ExecuteIngest(plan.get()));
  TABULA_RETURN_NOT_OK(CommitIngest(std::move(plan), out));
  finish();
  return Status::OK();
}

}  // namespace tabula

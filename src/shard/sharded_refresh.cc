/// Incremental maintenance of a sharded cube: appended rows are routed
/// to their owning shards (hash of the row id, or the smallest shard
/// under range partitioning), ONLY the touched shards rebuild, and the
/// merge + θ re-verification pass re-runs over the mix of rebuilt and
/// untouched shards. Mirrors the single-instance Refresh contract:
/// every fallible step is staged, so a failed Refresh (including an
/// injected `shard.build` fault) leaves the instance answering queries
/// exactly as before, generation unchanged.

#include <algorithm>
#include <future>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "shard/sharded_tabula.h"
#include "testing/fault_injection.h"

namespace tabula {

Status ShardedTabula::Refresh(RefreshStats* stats) {
  if (single_ != nullptr) return single_->Refresh(stats);

  Stopwatch timer;
  RefreshStats local;
  RefreshStats* out = stats != nullptr ? stats : &local;
  *out = RefreshStats{};

  Tracer* tracer = options_.base.tracer;
  Span span;
  if (tracer != nullptr) span = tracer->StartSpan("tabula.refresh");
  size_t touched_shards = 0;
  auto finish = [&]() {
    if (span.recording()) {
      span.SetAttribute("new_rows", out->new_rows);
      span.SetAttribute("new_iceberg_cells", out->new_iceberg_cells);
      span.SetAttribute("dropped_iceberg_cells", out->dropped_iceberg_cells);
      span.SetAttribute("rechecked_cells", out->rechecked_cells);
      span.SetAttribute("resampled_cells", out->resampled_cells);
      span.SetAttribute("full_rebuild", out->full_rebuild);
      span.SetAttribute("touched_shards", touched_shards);
      out->millis = span.End();
    } else {
      out->millis = timer.ElapsedMillis();
    }
  };

  const size_t n0 = refreshed_rows_;
  const size_t n1 = table_->num_rows();
  if (n1 < n0) {
    return Status::InvalidArgument(
        "base table shrank; Refresh only supports appends");
  }
  out->new_rows = n1 - n0;
  if (out->new_rows == 0) {
    finish();
    return Status::OK();
  }

  TABULA_FAULT_POINT("refresh.begin");

  // Layout check, same as the plain engine: an unseen attribute value
  // shifts the packed-key layout, and every stored key — in every
  // shard — would be stale. Rebuild the whole sharded cube.
  TABULA_ASSIGN_OR_RETURN(
      KeyEncoder new_encoder,
      KeyEncoder::Make(*table_, options_.base.cubed_attributes));
  bool layout_changed = false;
  for (size_t k = 0; k < new_encoder.num_columns(); ++k) {
    if (new_encoder.Cardinality(k) != encoder_.Cardinality(k)) {
      layout_changed = true;
      break;
    }
  }
  if (layout_changed) {
    TABULA_ASSIGN_OR_RETURN(std::unique_ptr<ShardedTabula> fresh,
                            Initialize(*table_, options_));
    // Member-wise adoption instead of whole-object move: the metrics
    // registry (mutexes) must stay put, and listeners + generation
    // survive a rebuild like any other cube mutation.
    encoder_ = std::move(fresh->encoder_);
    packer_ = std::move(fresh->packer_);
    lattice_ = fresh->lattice_;
    global_sample_rows_ = std::move(fresh->global_sample_rows_);
    global_sample_ = std::move(fresh->global_sample_);
    shards_ = std::move(fresh->shards_);
    merged_ = std::move(fresh->merged_);
    override_samples_ = std::move(fresh->override_samples_);
    stats_ = std::move(fresh->stats_);
    refreshed_rows_ = fresh->refreshed_rows_;
    ++generation_;
    out->full_rebuild = true;
    touched_shards = shards_.size();
    finish();
    NotifyRefreshListeners();
    return Status::OK();
  }

  // Adopt the new encoder NOW, before the staged builds: the old one
  // only carries per-row code arrays for rows [0, n0) and cannot encode
  // the appended rows. This is safe ahead of the commit point — the
  // layout check passed, so the two encoders assign identical codes to
  // every existing value and the swap is unobservable if this Refresh
  // fails below.
  encoder_ = std::move(new_encoder);

  // The merge pass needs every shard's finest states; rebuild any that
  // are missing (e.g. after Load, which does not persist them). Safe
  // before the commit point: the states describe rows [0, n0) only.
  TABULA_RETURN_NOT_OK(EnsureFinestStates());

  // Route appended rows to their owning shards. Range routing feeds
  // the running sizes back in, so a burst of appends still lands on
  // one (the smallest) shard at a time, deterministically.
  const size_t k = options_.num_shards;
  std::vector<size_t> sizes(k);
  for (size_t s = 0; s < k; ++s) sizes[s] = shards_[s].rows.size();
  std::vector<std::vector<RowId>> appended(k);
  for (size_t r = n0; r < n1; ++r) {
    size_t s = ShardForNewRow(static_cast<RowId>(r), sizes);
    appended[s].push_back(static_cast<RowId>(r));
    ++sizes[s];
  }

  // Rebuild ONLY the touched shards, into staged copies (parallel, one
  // task per shard, like Initialize). Appended row ids exceed every
  // existing id, so the staged row lists stay ascending.
  std::vector<size_t> touched;
  for (size_t s = 0; s < k; ++s) {
    if (!appended[s].empty()) touched.push_back(s);
  }
  touched_shards = touched.size();
  std::vector<Shard> staged(touched.size());
  for (size_t i = 0; i < touched.size(); ++i) {
    size_t s = touched[i];
    staged[i].rows = shards_[s].rows;
    staged[i].rows.insert(staged[i].rows.end(), appended[s].begin(),
                          appended[s].end());
  }
  std::vector<Status> statuses(touched.size(), Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(touched.size());
  for (size_t i = 0; i < touched.size(); ++i) {
    futures.push_back(
        ThreadPool::Global().Submit([this, i, tracer, &span, &staged,
                                     &statuses] {
          statuses[i] = BuildShard(tracer, span.id(), &staged[i]);
        }));
  }
  Status first_error = Status::OK();
  for (size_t i = 0; i < touched.size(); ++i) {
    try {
      futures[i].get();
    } catch (const std::exception& e) {
      if (first_error.ok()) {
        first_error = Status::Internal(std::string("shard build threw: ") +
                                       e.what());
      }
    }
    if (first_error.ok() && !statuses[i].ok()) first_error = statuses[i];
  }
  TABULA_RETURN_NOT_OK(first_error);

  // Re-merge over the mix of rebuilt and untouched shards (staged
  // output; nothing committed yet).
  std::vector<const Shard*> shard_ptrs(k);
  for (size_t s = 0; s < k; ++s) shard_ptrs[s] = &shards_[s];
  for (size_t i = 0; i < touched.size(); ++i) {
    shard_ptrs[touched[i]] = &staged[i];
  }
  TABULA_ASSIGN_OR_RETURN(MergeOutput merge,
                          MergeShardCubes(shard_ptrs, tracer, span.id()));

  // Directory diff for the maintenance stats.
  merge.merged.ForEach([&](uint64_t key, const MergedCell&) {
    if (!merged_.contains(key)) ++out->new_iceberg_cells;
  });
  merged_.ForEach([&](uint64_t key, const MergedCell&) {
    if (!merge.merged.contains(key)) ++out->dropped_iceberg_cells;
  });
  out->rechecked_cells = merge.verified_cells;
  out->resampled_cells = merge.resampled_cells;

  // ---- Commit point: nothing below can fail. ----
  for (size_t i = 0; i < touched.size(); ++i) {
    shards_[touched[i]] = std::move(staged[i]);
  }
  merged_ = std::move(merge.merged);
  override_samples_ = std::move(merge.overrides);
  stats_.merged_iceberg_cells = merged_.size();
  stats_.conflict_cells = merge.conflict_cells;
  stats_.union_accepted_cells = merge.union_accepted_cells;
  stats_.verified_cells = merge.verified_cells;
  stats_.resampled_cells = merge.resampled_cells;
  for (size_t s = 0; s < k; ++s) {
    stats_.shard_iceberg_cells[s] = shards_[s].cube.size();
  }
  refreshed_rows_ = n1;
  ++generation_;
  finish();
  NotifyRefreshListeners();
  return Status::OK();
}

}  // namespace tabula

#include "shard/sharded_tabula.h"

#include <algorithm>
#include <future>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "sampling/random_sampler.h"
#include "testing/fault_injection.h"

namespace tabula {

const char* ShardPartitionName(ShardPartition partition) {
  switch (partition) {
    case ShardPartition::kHash:
      return "hash";
    case ShardPartition::kRange:
      return "range";
  }
  return "unknown";
}

Result<std::unique_ptr<ShardedTabula>> ShardedTabula::Initialize(
    const Table& table, ShardedTabulaOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  auto sharded = std::unique_ptr<ShardedTabula>(new ShardedTabula());
  sharded->table_ = &table;
  sharded->options_ = std::move(options);

  if (sharded->options_.num_shards == 1) {
    // Strict pass-through: the plain middleware answers everything, so
    // K = 1 is bit-identical to an unsharded deployment by construction.
    TABULA_ASSIGN_OR_RETURN(
        sharded->single_, Tabula::Initialize(table, sharded->options_.base));
    const TabulaInitStats& s = sharded->single_->init_stats();
    sharded->stats_.num_shards = 1;
    sharded->stats_.global_sample_tuples = s.global_sample_tuples;
    sharded->stats_.merged_iceberg_cells = s.iceberg_cells;
    sharded->stats_.build_millis = s.total_millis;
    sharded->stats_.total_millis = s.total_millis;
    sharded->stats_.critical_path_millis = s.total_millis;
    sharded->stats_.shard_build_millis = {s.total_millis};
    sharded->stats_.shard_iceberg_cells = {s.iceberg_cells};
    return sharded;
  }
  TABULA_RETURN_NOT_OK(sharded->InitializeSharded(table));
  return sharded;
}

Status ShardedTabula::InitializeSharded(const Table& table) {
  const TabulaOptions& base = options_.base;
  const LossFunction* loss = base.effective_loss();
  if (loss == nullptr) {
    return Status::InvalidArgument("TabulaOptions.loss must be set");
  }
  if (base.cubed_attributes.empty()) {
    return Status::InvalidArgument("at least one cubed attribute required");
  }
  if (base.threshold <= 0.0) {
    return Status::InvalidArgument("accuracy loss threshold must be > 0");
  }
  for (const auto& col : loss->InputColumns()) {
    if (!table.schema().HasField(col)) {
      return Status::NotFound("loss function input column '" + col +
                              "' not in table");
    }
  }

  // Same span discipline as Tabula::Initialize: a local always-on
  // tracer stands in when the caller's cannot record, so stats are
  // span-derived either way.
  Tracer local_tracer(TracerOptions{TraceMode::kAll, /*capacity=*/256});
  Tracer* tracer = base.tracer != nullptr && base.tracer->enabled()
                       ? base.tracer
                       : &local_tracer;
  Span init_span = tracer->StartSpan("shard.init", 0, /*opt_in=*/true);
  init_span.SetAttribute("table_rows", table.num_rows());
  init_span.SetAttribute("num_shards", options_.num_shards);
  init_span.SetAttribute("partition",
                         ShardPartitionName(options_.partition));

  TABULA_ASSIGN_OR_RETURN(encoder_,
                          KeyEncoder::Make(table, base.cubed_attributes));
  std::vector<size_t> all_cols(base.cubed_attributes.size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  TABULA_ASSIGN_OR_RETURN(packer_, KeyPacker::Make(encoder_, all_cols));
  lattice_ = Lattice(base.cubed_attributes.size());

  // ONE global sample over the FULL table, drawn exactly as the
  // single-instance engine draws it. Sharing it across shards is what
  // makes the per-shard loss states merge to the single-instance
  // states (same reference ⇒ same accumulation), which in turn makes
  // the merged iceberg set equal the single-instance set.
  {
    size_t global_size =
        SerflingSampleSize(base.serfling_epsilon, base.serfling_delta);
    DatasetView all(&table);
    global_sample_rows_ = ConsistentBottomKSample(all, global_size, base.seed);
    global_sample_ = DatasetView(&table, global_sample_rows_);
    stats_.global_sample_tuples = global_sample_.size();
  }

  // Partition the row space. Shard row lists stay ascending under both
  // schemes, so per-shard accumulation order is deterministic.
  const size_t k = options_.num_shards;
  shards_.assign(k, Shard{});
  const size_t n = table.num_rows();
  if (options_.partition == ShardPartition::kHash) {
    for (size_t s = 0; s < k; ++s) shards_[s].rows.reserve(n / k + 1);
    for (size_t r = 0; r < n; ++r) {
      shards_[HashKey64(r) % k].rows.push_back(static_cast<RowId>(r));
    }
  } else {
    for (size_t s = 0; s < k; ++s) {
      size_t begin = n * s / k;
      size_t end = n * (s + 1) / k;
      shards_[s].rows.reserve(end - begin);
      for (size_t r = begin; r < end; ++r) {
        shards_[s].rows.push_back(static_cast<RowId>(r));
      }
    }
  }

  // Parallel per-shard builds: one coarse task per shard. Nested
  // ParallelFor calls inside a worker run inline, so each task is a
  // self-contained sequential build — no cross-shard synchronization
  // until the merge barrier below, and the output is a pure function
  // of the shard's rows regardless of worker count.
  Span build_span = tracer->StartSpan("shard.build_all", init_span.id());
  Stopwatch build_timer;
  std::vector<Status> statuses(k, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    futures.push_back(ThreadPool::Global().Submit([this, s, tracer,
                                                   &build_span, &statuses] {
      statuses[s] = BuildShard(encoder_, global_sample_, tracer,
                               build_span.id(), &shards_[s]);
    }));
  }
  Status first_error = Status::OK();
  for (size_t s = 0; s < k; ++s) {
    try {
      futures[s].get();
    } catch (const std::exception& e) {
      // A thrown injected fault (or any escaped exception) fails init
      // like a Status would — atomically, nothing published.
      if (first_error.ok()) {
        first_error = Status::Internal(std::string("shard build threw: ") +
                                       e.what());
      }
    }
    if (first_error.ok() && !statuses[s].ok()) first_error = statuses[s];
  }
  stats_.build_millis = build_span.End();
  if (!first_error.ok()) return first_error;

  stats_.num_shards = k;
  stats_.shard_build_millis.clear();
  stats_.shard_iceberg_cells.clear();
  for (const Shard& shard : shards_) {
    stats_.shard_build_millis.push_back(shard.build_millis);
    stats_.shard_iceberg_cells.push_back(shard.cube.size());
  }

  // Merge + θ re-verification.
  Span merge_span = tracer->StartSpan("shard.merge", init_span.id());
  std::vector<const Shard*> shard_ptrs;
  shard_ptrs.reserve(k);
  for (const Shard& shard : shards_) shard_ptrs.push_back(&shard);
  TABULA_ASSIGN_OR_RETURN(
      MergeOutput merge,
      MergeShardCubes(shard_ptrs, encoder_, global_sample_,
                      global_sample_rows_, tracer, merge_span.id()));
  merged_ = std::move(merge.merged);
  override_samples_ = std::move(merge.overrides);
  stats_.merged_iceberg_cells = merged_.size();
  stats_.conflict_cells = merge.conflict_cells;
  stats_.union_accepted_cells = merge.union_accepted_cells;
  stats_.verified_cells = merge.verified_cells;
  stats_.resampled_cells = merge.resampled_cells;
  merge_span.SetAttribute("merged_iceberg_cells", merged_.size());
  merge_span.SetAttribute("conflict_cells", merge.conflict_cells);
  merge_span.SetAttribute("resampled_cells", merge.resampled_cells);
  stats_.merge_millis = merge_span.End();

  refreshed_rows_ = n;
  init_span.SetAttribute("merged_iceberg_cells",
                         stats_.merged_iceberg_cells);
  stats_.total_millis = init_span.End();
  // Coordinator-serial work + slowest shard: the wall clock a pool with
  // >= K workers delivers (see the ShardedInitStats doc).
  double slowest_shard = 0.0;
  for (double ms : stats_.shard_build_millis) {
    slowest_shard = std::max(slowest_shard, ms);
  }
  stats_.critical_path_millis =
      stats_.total_millis - stats_.build_millis + slowest_shard;
  return Status::OK();
}

Status ShardedTabula::BuildShard(const KeyEncoder& enc,
                                 const DatasetView& ref, Tracer* tracer,
                                 uint64_t parent_span, Shard* shard) const {
  Span span;
  if (tracer != nullptr) {
    span = tracer->StartSpan("shard.build", parent_span, /*opt_in=*/true);
  }
  Stopwatch timer;
  TABULA_FAULT_POINT("shard.build");

  const TabulaOptions& base = options_.base;
  const LossFunction* loss = base.effective_loss();
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> bound,
                          loss->Bind(*table_, ref));

  // Finest-cuboid states over this shard's rows (kept for refresh and
  // for the coordinator's exact cross-shard state merge).
  DatasetView view(table_, shard->rows);
  const BoundLoss* bound_ptr = bound.get();
  shard->finest = GroupAccumulate<LossState>(
      enc, packer_, view,
      [bound_ptr](LossState* state, RowId row) {
        bound_ptr->Accumulate(state, row);
      });

  // Roll the shard's states up the lattice and classify shard-local
  // iceberg cells — the same algebraic roll-up the dry run performs,
  // restricted to this shard's slice.
  std::vector<FlatHashMap<LossState>> maps = RollUpLattice(shard->finest);

  FlatHashMap<CuboidMask> iceberg_cells;
  size_t present_cells = 0;
  for (size_t m = 0; m < lattice_.num_cuboids(); ++m) present_cells += maps[m].size();
  shard->present = FlatHashSet(present_cells);
  for (size_t m = 0; m < lattice_.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    maps[m].ForEach([&](uint64_t key, const LossState& state) {
      shard->present.Insert(key);
      if (bound_ptr->Finalize(state) > base.threshold) {
        iceberg_cells[key] = mask;
      }
    });
  }

  // Collect raw rows for shard-iceberg cells: one pass over the
  // *shard's* rows per affected cuboid (the join path, shard-scoped).
  std::vector<CuboidMask> affected;
  iceberg_cells.ForEach(
      [&](uint64_t, const CuboidMask& mask) { affected.push_back(mask); });
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  FlatHashMap<std::vector<RowId>> cell_rows(iceberg_cells.size());
  for (CuboidMask mask : affected) {
    for (RowId r : shard->rows) {
      uint64_t key = packer_.PackRowMasked(enc, r, mask);
      const CuboidMask* cm = iceberg_cells.Find(key);
      if (cm != nullptr && *cm == mask) cell_rows[key].push_back(r);
    }
  }

  // Local samples in ascending key order (deterministic sample-table
  // ids). Sharding persists every local sample individually — the
  // cross-cell representative-selection optimization is global and is
  // documented as forgone at K > 1.
  GreedySamplerOptions sampler_opts = base.sampler;
  sampler_opts.seed = base.seed;
  GreedySampler sampler(loss, base.threshold, sampler_opts);
  for (auto& [key, rows] : cell_rows.ExtractSorted()) {
    DatasetView raw(table_, rows);
    TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample, sampler.Sample(raw));
    IcebergCell cell;
    cell.key = key;
    cell.cuboid = *iceberg_cells.Find(key);
    cell.sample_id = shard->samples.Add(std::move(sample));
    // Retained (like the plain real run retains cell rows) so the merge
    // can assemble a violating cell's raw rows from shard slices
    // instead of re-scanning the base table.
    cell.raw_rows = std::move(rows);
    shard->cube.Add(std::move(cell));
  }

  if (span.recording()) {
    span.SetAttribute("rows", shard->rows.size());
    span.SetAttribute("iceberg_cells", shard->cube.size());
    shard->build_millis = span.End();
  } else {
    shard->build_millis = timer.ElapsedMillis();
  }
  return Status::OK();
}

Result<ShardedTabula::MergeOutput> ShardedTabula::MergeShardCubes(
    const std::vector<const Shard*>& shards, const KeyEncoder& enc,
    const DatasetView& ref, const std::vector<RowId>& ref_rows,
    Tracer* tracer, uint64_t parent_span) const {
  (void)tracer;
  (void)parent_span;
  TABULA_FAULT_POINT("shard.merge");
  const TabulaOptions& base = options_.base;
  const LossFunction* loss = base.effective_loss();
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> bound,
                          loss->Bind(*table_, ref));

  // 1. Exact cross-shard state merge: each shard contributes at most
  //    one finest state per key, folded in ascending shard order, so
  //    the merged state equals the single-instance accumulation up to
  //    floating-point fold order.
  FlatHashMap<LossState> merged_finest;
  for (const Shard* shard : shards) {
    merged_finest.reserve(merged_finest.size() + shard->finest.size());
    shard->finest.ForEach([&](uint64_t key, const LossState& state) {
      auto [slot, inserted] = merged_finest.TryEmplace(key);
      if (inserted) {
        *slot = state;
      } else {
        slot->Merge(state);
      }
    });
  }

  // 2. Roll up the merged states and classify the *global* iceberg set.
  std::vector<FlatHashMap<LossState>> maps = RollUpLattice(merged_finest);

  // 3. Per merged-iceberg cell: gather the union of shard-local
  //    samples and decide how the θ bound is restored (see DESIGN.md
  //    "Sharding" for the per-loss-class argument):
  //      - union-closed loss, no conflict → accept without a check;
  //      - reference-free state → exact re-verification from the
  //        merged state (no raw scan), re-sample on violation;
  //      - otherwise (conflict under a reference-bound state) → direct
  //        loss evaluation against the collected raw rows.
  MergeOutput out;
  struct PendingCell {
    CuboidMask cuboid = 0;
    bool verify_first = false;  ///< direct-loss check before resampling
    bool augmented = false;     ///< candidate includes the global sample
    std::vector<RowId> candidate;
  };
  FlatHashMap<PendingCell> needs_raw;
  const bool union_closed = loss->UnionClosed();
  const bool ref_free = !loss->StateDependsOnReference();
  for (size_t m = 0; m < lattice_.num_cuboids(); ++m) {
    CuboidMask mask = static_cast<CuboidMask>(m);
    // Global-sample rows grouped by this cuboid's cell key: a conflict
    // cell's absent slices are, per their shards' dry runs, within θ of
    // the global sample, so these rows stand in for the slices the
    // union sample misses (the same rows a WHERE-filtered global answer
    // would serve). Only reference-dependent losses use this — their
    // coverage-style loss can only improve with extra candidate rows,
    // whereas a mean-style (reference-free) loss is evaluated exactly
    // from the merged state and extra uniform rows would shift the
    // union's statistic as often as they correct it.
    FlatHashMap<std::vector<RowId>> global_in_cell;
    if (!ref_free) {
      for (RowId r : ref_rows) {
        global_in_cell[packer_.PackRowMasked(enc, r, mask)].push_back(r);
      }
    }
    Status status = Status::OK();
    maps[m].ForEach([&](uint64_t key, const LossState& state) {
      if (!status.ok()) return;
      if (bound->Finalize(state) <= base.threshold) return;  // global covers
      std::vector<RowId> candidate;
      bool conflict = false;
      for (const Shard* shard : shards) {
        const IcebergCell* cell = shard->cube.Find(key);
        if (cell != nullptr) {
          const auto& sample = shard->samples.sample(cell->sample_id);
          candidate.insert(candidate.end(), sample.begin(), sample.end());
        } else if (shard->present.Contains(key)) {
          // This shard holds rows of the cell but its slice was within
          // θ of the global sample — the union sample does not cover
          // the slice, so the cell's shard-local statuses disagree.
          conflict = true;
        }
      }
      if (conflict) {
        ++out.conflict_cells;
        if (!ref_free) {
          const std::vector<RowId>* aug = global_in_cell.Find(key);
          if (aug != nullptr) {
            candidate.insert(candidate.end(), aug->begin(), aug->end());
          }
        }
      }
      if (union_closed && !conflict) {
        ++out.union_accepted_cells;
        out.merged[key] = MergedCell{mask, false, false, 0};
        return;
      }
      if (ref_free) {
        // loss(raw, candidate) == Bind(candidate)->Finalize(state(raw))
        // exactly — no raw rows needed for the check itself.
        auto cand_bound =
            loss->Bind(*table_, DatasetView(table_, candidate));
        if (!cand_bound.ok()) {
          status = cand_bound.status();
          return;
        }
        ++out.verified_cells;
        if (cand_bound.value()->Finalize(state) <= base.threshold) {
          out.merged[key] = MergedCell{mask, false, false, 0};
          return;
        }
        needs_raw[key] = PendingCell{mask, /*verify_first=*/false,
                                     /*augmented=*/false,
                                     std::move(candidate)};
      } else {
        needs_raw[key] = PendingCell{mask, /*verify_first=*/true, conflict,
                                     std::move(candidate)};
      }
    });
    TABULA_RETURN_NOT_OK(status);
  }

  // 4. Collect full raw rows for the cells still pending (conflicted
  //    reference-bound cells and union-violating reference-free ones).
  //    Shard builds retained each local iceberg cell's slice rows, so
  //    most of a cell assembles by concatenation; only slices held by
  //    shards *without* a local cube entry (conflict slices, or cubes
  //    restored from disk, where slice rows are not persisted) fall
  //    back to a scan — and that scan walks just the owning shard's
  //    rows, not the whole table.
  if (!needs_raw.empty()) {
    FlatHashMap<std::vector<RowId>> raw_rows(needs_raw.size());
    std::vector<FlatHashMap<CuboidMask>> scan_keys(shards.size());
    needs_raw.ForEach([&](uint64_t key, const PendingCell& cell) {
      std::vector<RowId>& rows = raw_rows[key];
      for (size_t s = 0; s < shards.size(); ++s) {
        const IcebergCell* local = shards[s]->cube.Find(key);
        if (local != nullptr && !local->raw_rows.empty()) {
          rows.insert(rows.end(), local->raw_rows.begin(),
                      local->raw_rows.end());
        } else if (shards[s]->present.Contains(key)) {
          scan_keys[s][key] = cell.cuboid;
        }
      }
    });
    for (size_t s = 0; s < shards.size(); ++s) {
      if (scan_keys[s].empty()) continue;
      std::vector<CuboidMask> affected;
      scan_keys[s].ForEach([&](uint64_t, const CuboidMask& mask) {
        affected.push_back(mask);
      });
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()),
                     affected.end());
      for (CuboidMask mask : affected) {
        for (RowId r : shards[s]->rows) {
          uint64_t key = packer_.PackRowMasked(enc, r, mask);
          const CuboidMask* cm = scan_keys[s].Find(key);
          if (cm != nullptr && *cm == mask) raw_rows[key].push_back(r);
        }
      }
    }
    // Shard slices are disjoint row sets; ascending order restores the
    // exact vector a single full-table scan would have produced, so
    // the re-drawn samples are independent of shard count and scheme.
    raw_rows.ForEach([&](uint64_t, std::vector<RowId>& rows) {
      std::sort(rows.begin(), rows.end());
    });

    // 5. Verify / re-sample in ascending key order so override sample
    //    ids assign deterministically.
    GreedySamplerOptions sampler_opts = base.sampler;
    sampler_opts.seed = base.seed;
    GreedySampler sampler(loss, base.threshold, sampler_opts);
    for (auto& [key, rows] : raw_rows.ExtractSorted()) {
      PendingCell* cell = needs_raw.Find(key);
      TABULA_CHECK(cell != nullptr);
      DatasetView raw(table_, std::move(rows));
      if (cell->verify_first) {
        ++out.verified_cells;
        DatasetView cand(table_, cell->candidate);
        TABULA_ASSIGN_OR_RETURN(double measured, loss->Loss(raw, cand));
        if (measured <= base.threshold) {
          out.merged[key] =
              MergedCell{cell->cuboid, false, cell->augmented, 0};
          continue;
        }
      }
      TABULA_ASSIGN_OR_RETURN(std::vector<RowId> sample,
                              sampler.Sample(raw));
      uint32_t id = out.overrides.Add(std::move(sample));
      out.merged[key] = MergedCell{cell->cuboid, true, false, id};
      ++out.resampled_cells;
    }
  }
  return out;
}

std::vector<FlatHashMap<LossState>> ShardedTabula::RollUpLattice(
    const FlatHashMap<LossState>& finest) const {
  const size_t n_attrs = lattice_.num_attributes();
  std::vector<FlatHashMap<LossState>> maps(lattice_.num_cuboids());
  maps[lattice_.finest()] = finest;  // copy: the roll-up consumes it
  for (CuboidMask mask : lattice_.TopDownOrder()) {
    if (mask == lattice_.finest()) continue;
    // Roll up from the parent that re-adds the lowest missing
    // attribute — the same single-parent evaluation the dry run uses,
    // so per-key state folds happen in an order that is a pure
    // function of the key layout.
    size_t j = 0;
    while (j < n_attrs && (mask & (CuboidMask{1} << j))) ++j;
    CuboidMask parent = mask | (CuboidMask{1} << j);
    FlatHashMap<LossState>& my_map = maps[mask];
    my_map.reserve(maps[parent].size());
    maps[parent].ForEach([&](uint64_t key, const LossState& state) {
      uint64_t rolled = packer_.WithNull(key, j);
      auto [slot, inserted] = my_map.TryEmplace(rolled);
      if (inserted) {
        *slot = state;
      } else {
        slot->Merge(state);
      }
    });
  }
  return maps;
}

Status ShardedTabula::EnsureFinestStates() {
  const LossFunction* loss = options_.base.effective_loss();
  TABULA_ASSIGN_OR_RETURN(std::unique_ptr<BoundLoss> bound,
                          loss->Bind(*table_, global_sample_));
  const BoundLoss* bound_ptr = bound.get();
  for (Shard& shard : shards_) {
    if (!shard.finest.empty() || shard.rows.empty()) continue;
    DatasetView view(table_, shard.rows);
    shard.finest = GroupAccumulate<LossState>(
        encoder_, packer_, view,
        [bound_ptr](LossState* state, RowId row) {
          bound_ptr->Accumulate(state, row);
        });
    if (shard.present.size() == 0) {
      std::vector<FlatHashMap<LossState>> maps = RollUpLattice(shard.finest);
      size_t cells = 0;
      for (const auto& map : maps) cells += map.size();
      shard.present = FlatHashSet(cells);
      for (auto& map : maps) {
        map.ForEach(
            [&](uint64_t key, const LossState&) { shard.present.Insert(key); });
      }
    }
  }
  return Status::OK();
}

const ShardedInitStats& ShardedTabula::init_stats() const { return stats_; }

size_t ShardedTabula::merged_iceberg_cells() const {
  if (single_ != nullptr) return single_->cube_table().size();
  return merged_.size();
}

std::vector<uint64_t> ShardedTabula::MergedIcebergKeys() const {
  std::vector<uint64_t> keys;
  if (single_ != nullptr) {
    keys.reserve(single_->cube_table().size());
    for (const auto& cell : single_->cube_table().cells()) {
      keys.push_back(cell.key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }
  return merged_.SortedKeys();
}

const std::vector<RowId>& ShardedTabula::shard_rows(size_t i) const {
  TABULA_CHECK(single_ == nullptr && i < shards_.size());
  return shards_[i].rows;
}

const CubeTable& ShardedTabula::shard_cube(size_t i) const {
  TABULA_CHECK(single_ == nullptr && i < shards_.size());
  return shards_[i].cube;
}

uint64_t ShardedTabula::generation() const {
  return single_ != nullptr ? single_->generation() : generation_;
}

uint64_t ShardedTabula::AddRefreshListener(std::function<void()> listener) {
  if (single_ != nullptr) {
    return single_->AddRefreshListener(std::move(listener));
  }
  uint64_t id = next_listener_id_++;
  refresh_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void ShardedTabula::RemoveRefreshListener(uint64_t id) {
  if (single_ != nullptr) {
    single_->RemoveRefreshListener(id);
    return;
  }
  for (auto it = refresh_listeners_.begin(); it != refresh_listeners_.end();
       ++it) {
    if (it->first == id) {
      refresh_listeners_.erase(it);
      return;
    }
  }
}

void ShardedTabula::NotifyRefreshListeners() {
  for (auto& [id, listener] : refresh_listeners_) listener();
}

const DatasetView& ShardedTabula::global_sample() const {
  return single_ != nullptr ? single_->global_sample() : global_sample_;
}

const Table& ShardedTabula::base_table() const { return *table_; }

size_t ShardedTabula::ShardForNewRow(RowId row,
                                     const std::vector<size_t>& sizes) const {
  if (options_.partition == ShardPartition::kHash) {
    return HashKey64(row) % options_.num_shards;
  }
  // kRange: the smallest shard owns the append (ties → lowest index),
  // so steady appends touch one shard at a time and stay balanced.
  size_t best = 0;
  for (size_t s = 1; s < sizes.size(); ++s) {
    if (sizes[s] < sizes[best]) best = s;
  }
  return best;
}

}  // namespace tabula

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/csv.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace tabula {
namespace {

Schema TestSchema() {
  return Schema({{"payment", DataType::kCategorical},
                 {"count", DataType::kInt64},
                 {"fare", DataType::kDouble}});
}

std::unique_ptr<Table> TestTable() {
  auto table = std::make_unique<Table>(TestSchema());
  auto add = [&](const char* p, int64_t c, double f) {
    Status st = table->AppendRow({Value(p), Value(c), Value(f)});
    ASSERT_TRUE(st.ok()) << st.ToString();
  };
  add("cash", 1, 10.0);
  add("credit", 2, 20.0);
  add("cash", 1, 30.0);
  add("dispute", 3, 40.0);
  add("credit", 1, 50.0);
  return table;
}

TEST(SchemaTest, FieldLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3u);
  auto idx = s.FieldIndex("count");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").ok());
  EXPECT_TRUE(s.HasField("fare"));
  EXPECT_FALSE(s.HasField("tip"));
}

TEST(DictionaryTest, CodesAreStableAndDense) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.At(1), "b");
  ASSERT_TRUE(dict.Find("b").ok());
  EXPECT_FALSE(dict.Find("zzz").ok());
}

TEST(TableTest, AppendAndRead) {
  auto table = TestTable();
  EXPECT_EQ(table->num_rows(), 5u);
  EXPECT_EQ(table->GetValue(0, 0).AsString(), "cash");
  EXPECT_EQ(table->GetValue(1, 3).AsInt64(), 3);
  EXPECT_DOUBLE_EQ(table->GetValue(2, 4).AsDouble(), 50.0);
}

TEST(TableTest, AppendRowArityMismatch) {
  auto table = TestTable();
  Status st = table->AppendRow({Value("cash")});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendRowTypeMismatch) {
  auto table = TestTable();
  Status st = table->AppendRow({Value(3.0), Value(int64_t{1}), Value(1.0)});
  EXPECT_EQ(st.code(), StatusCode::kTypeMismatch);
}

TEST(TableTest, TakeRowsSharesDictionary) {
  auto table = TestTable();
  auto subset = table->TakeRows({0, 2, 4});
  EXPECT_EQ(subset->num_rows(), 3u);
  EXPECT_EQ(subset->GetValue(0, 2).AsString(), "credit");
  // Codes must be comparable across the two tables.
  const auto* orig = table->column(0).As<CategoricalColumn>();
  const auto* sub = subset->column(0).As<CategoricalColumn>();
  EXPECT_EQ(orig->CodeAt(4), sub->CodeAt(2));
}

TEST(TableTest, AppendRowFromForeignDictionaryRemapsCodes) {
  // Two tables built independently assign different codes to the same
  // strings; AppendFrom must remap through the dictionaries.
  auto a = TestTable();
  Table b(TestSchema());
  ASSERT_TRUE(b.AppendRow({Value("zelle"), Value(int64_t{9}), Value(1.0)})
                  .ok());  // "zelle" gets code 0 in b's dictionary
  ASSERT_TRUE(b.AppendRowFrom(*a, 3).ok());  // "dispute"
  EXPECT_EQ(b.GetValue(0, 1).AsString(), "dispute");
  EXPECT_EQ(b.GetValue(1, 1).AsInt64(), 3);
}

TEST(TableTest, MemoryBytesGrowsWithRows) {
  Table t(TestSchema());
  uint64_t empty = t.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value("x"), Value(int64_t{i}), Value(1.0 * i)}).ok());
  }
  EXPECT_GT(t.MemoryBytes(), empty);
}

TEST(DatasetViewTest, AllRowsAndSubset) {
  auto table = TestTable();
  DatasetView all(table.get());
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(all.covers_all_rows());
  EXPECT_EQ(all.row(3), 3u);

  DatasetView sub(table.get(), {4, 1});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.row(0), 4u);
  auto ids = sub.ToRowIds();
  EXPECT_EQ(ids, (std::vector<RowId>{4, 1}));
}

TEST(DatasetViewTest, MaterializeCopiesRows) {
  auto table = TestTable();
  DatasetView sub(table.get(), {3});
  auto copy = sub.Materialize();
  EXPECT_EQ(copy->num_rows(), 1u);
  EXPECT_EQ(copy->GetValue(0, 0).AsString(), "dispute");
}

TEST(PredicateTest, EqualityOnCategorical) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"payment", CompareOp::kEq, Value("cash")}});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->FilterAll(), (std::vector<RowId>{0, 2}));
}

TEST(PredicateTest, ConjunctionAcrossTypes) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"payment", CompareOp::kEq, Value("cash")},
               {"fare", CompareOp::kGt, Value(15.0)}});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->FilterAll(), (std::vector<RowId>{2}));
}

TEST(PredicateTest, UnknownCategoricalLiteralMatchesNothing) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"payment", CompareOp::kEq, Value("bitcoin")}});
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred->FilterAll().empty());
}

TEST(PredicateTest, NotEqualsUnknownLiteralMatchesAll) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"payment", CompareOp::kNe, Value("bitcoin")}});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->FilterAll().size(), 5u);
}

TEST(PredicateTest, RangeOnInt) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"count", CompareOp::kGe, Value(int64_t{2})}});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->FilterAll(), (std::vector<RowId>{1, 3}));
}

TEST(PredicateTest, RejectsRangeOnCategorical) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"payment", CompareOp::kLt, Value("cash")}});
  EXPECT_FALSE(pred.ok());
}

TEST(PredicateTest, RejectsUnknownColumn) {
  auto table = TestTable();
  auto pred =
      BoundPredicate::Bind(*table, {{"nope", CompareOp::kEq, Value(1.0)}});
  EXPECT_EQ(pred.status().code(), StatusCode::kNotFound);
}

TEST(PredicateTest, FilterRowsOnCandidates) {
  auto table = TestTable();
  auto pred = BoundPredicate::Bind(
      *table, {{"payment", CompareOp::kEq, Value("credit")}});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->FilterRows({0, 1, 2}), (std::vector<RowId>{1}));
}

TEST(CsvTest, RoundTrip) {
  auto table = TestTable();
  std::string path =
      (std::filesystem::temp_directory_path() / "tabula_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto read = ReadCsv(TestSchema(), path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value()->num_rows(), 5u);
  EXPECT_EQ(read.value()->GetValue(0, 3).AsString(), "dispute");
  EXPECT_DOUBLE_EQ(read.value()->GetValue(2, 1).AsDouble(), 20.0);
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderMismatchIsError) {
  auto table = TestTable();
  std::string path =
      (std::filesystem::temp_directory_path() / "tabula_csv_test2.csv")
          .string();
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  Schema other({{"zzz", DataType::kCategorical},
                {"count", DataType::kInt64},
                {"fare", DataType::kDouble}});
  EXPECT_EQ(ReadCsv(other, path).status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabula

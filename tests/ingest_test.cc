/// Streaming-ingestion unit suite: the IngestJournal's durability
/// contract (roundtrip, torn tail, schema checks), the Ingestor's
/// batch-atomicity and staleness tagging, and the end-to-end
/// crash-recovery path (journal replay + `resume_partial` cube load +
/// one maintenance cycle catches the cube up).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "ingest/ingest_journal.h"
#include "ingest/ingestor.h"
#include "loss/mean_loss.h"
#include "storage/predicate.h"

namespace tabula {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Boxes row `r` of `table` into the Value form Ingestor::Append takes.
std::vector<Value> BoxRow(const Table& table, RowId r) {
  std::vector<Value> row;
  row.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    row.push_back(table.column(c).GetValue(r));
  }
  return row;
}

std::vector<std::vector<Value>> BoxRows(const Table& table, RowId begin,
                                        RowId end) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(end - begin);
  for (RowId r = begin; r < end; ++r) rows.push_back(BoxRow(table, r));
  return rows;
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 12000;
    gen.seed = 77;
    full_ = TaxiGenerator(gen).Generate();
    // Live table = the first 10000 rides; the remaining 2000 arrive as
    // streamed batches.
    base_rows_ = 10000;
    std::vector<RowId> base(base_rows_);
    for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
    table_ = full_->TakeRows(base);

    loss_ = std::make_unique<MeanLoss>("fare_amount");
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;
  }

  std::unique_ptr<Table> full_;
  std::unique_ptr<Table> table_;
  size_t base_rows_ = 0;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
};

// ---------------------------------------------------------------------
// IngestJournal
// ---------------------------------------------------------------------

TEST_F(IngestTest, JournalRoundtripReplaysOntoBaseRows) {
  std::string path = TempPath("ingest_journal_roundtrip.wal");
  std::remove(path.c_str());
  {
    auto journal = IngestJournal::Open(path, *table_);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EXPECT_EQ(journal.value()->base_rows(), base_rows_);
    ASSERT_TRUE(journal.value()
                    ->AppendBatch(BoxRows(*full_, base_rows_, base_rows_ + 500))
                    .ok());
    ASSERT_TRUE(
        journal.value()
            ->AppendBatch(BoxRows(*full_, base_rows_ + 500, base_rows_ + 800))
            .ok());
    EXPECT_EQ(journal.value()->journaled_rows(), 800u);
  }

  // Fresh process: only the base rows survive; replay restores the rest.
  std::vector<RowId> base(base_rows_);
  for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
  auto recovered = full_->TakeRows(base);
  auto stats = IngestJournal::Replay(path, recovered.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().batches, 2u);
  EXPECT_EQ(stats.value().rows, 800u);
  EXPECT_EQ(stats.value().appended_rows, 800u);
  EXPECT_FALSE(stats.value().truncated_tail);
  ASSERT_EQ(recovered->num_rows(), base_rows_ + 800);
  // Byte-for-byte the same rows, in order.
  for (RowId r = base_rows_; r < recovered->num_rows(); ++r) {
    for (size_t c = 0; c < full_->num_columns(); ++c) {
      EXPECT_EQ(recovered->column(c).GetValue(r), full_->column(c).GetValue(r))
          << "row " << r << " col " << c;
    }
  }
  std::remove(path.c_str());
}

TEST_F(IngestTest, JournalReplayIsIdempotentAndSkipsAppliedRows) {
  std::string path = TempPath("ingest_journal_idem.wal");
  std::remove(path.c_str());
  {
    auto journal = IngestJournal::Open(path, *table_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()
                    ->AppendBatch(BoxRows(*full_, base_rows_, base_rows_ + 100))
                    .ok());
  }
  // First replay appends; a second replay on the now-caught-up table
  // appends nothing (idempotence — the crash-recovery path may run it
  // any number of times).
  auto first = IngestJournal::Replay(path, table_.get());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().appended_rows, 100u);
  auto second = IngestJournal::Replay(path, table_.get());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().appended_rows, 0u);
  EXPECT_EQ(second.value().rows, 100u);
  EXPECT_EQ(table_->num_rows(), base_rows_ + 100);
  std::remove(path.c_str());
}

TEST_F(IngestTest, JournalToleratesTornTailRecord) {
  std::string path = TempPath("ingest_journal_torn.wal");
  std::remove(path.c_str());
  {
    auto journal = IngestJournal::Open(path, *table_);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()
                    ->AppendBatch(BoxRows(*full_, base_rows_, base_rows_ + 200))
                    .ok());
    ASSERT_TRUE(
        journal.value()
            ->AppendBatch(BoxRows(*full_, base_rows_ + 200, base_rows_ + 300))
            .ok());
  }
  // Crash mid-flush: chop bytes off the second record.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 37);

  auto stats = IngestJournal::Replay(path, table_.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().truncated_tail);
  EXPECT_EQ(stats.value().batches, 1u);
  EXPECT_EQ(stats.value().appended_rows, 200u);
  EXPECT_EQ(table_->num_rows(), base_rows_ + 200);

  // Re-opening truncates the torn tail and appends resume cleanly.
  auto reopened = IngestJournal::Open(path, *table_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->journaled_rows(), 200u);
  ASSERT_TRUE(
      reopened.value()
          ->AppendBatch(BoxRows(*full_, base_rows_ + 200, base_rows_ + 250))
          .ok());
  auto again = IngestJournal::Replay(path, table_.get());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().truncated_tail);
  EXPECT_EQ(again.value().rows, 250u);
  EXPECT_EQ(table_->num_rows(), base_rows_ + 250);
  std::remove(path.c_str());
}

TEST_F(IngestTest, JournalRejectsSchemaMismatch) {
  std::string path = TempPath("ingest_journal_schema.wal");
  std::remove(path.c_str());
  {
    auto journal = IngestJournal::Open(path, *table_);
    ASSERT_TRUE(journal.ok());
  }
  Schema other({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  Table other_table(other);
  auto stats = IngestJournal::Replay(path, &other_table);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Ingestor
// ---------------------------------------------------------------------

TEST_F(IngestTest, AppendValidatesWholeBatchBeforeAnySideEffect) {
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  std::string path = TempPath("ingestor_validate.wal");
  std::remove(path.c_str());
  IngestorOptions iopts;
  iopts.journal_path = path;
  auto ingestor = Ingestor::Make(engine.value().get(), table_.get(), iopts);
  ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();

  // Batch with one bad row (wrong arity): rejected as a whole — no
  // journal record, no table rows, no pending work.
  auto rows = BoxRows(*full_, base_rows_, base_rows_ + 10);
  rows[7].pop_back();
  Status st = ingestor.value()->Append(rows);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table_->num_rows(), base_rows_);
  EXPECT_EQ(ingestor.value()->journal()->journaled_rows(), 0u);
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);

  // Type mismatch likewise.
  rows = BoxRows(*full_, base_rows_, base_rows_ + 10);
  rows[3][0] = Value(12.5);  // vendor is categorical
  st = ingestor.value()->Append(rows);
  EXPECT_EQ(st.code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(table_->num_rows(), base_rows_);
  std::remove(path.c_str());
}

TEST_F(IngestTest, SyncAppendCommitsAndTagsAnswersFreshAgain) {
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  const uint64_t gen0 = engine.value()->generation();
  auto ingestor = Ingestor::Make(engine.value().get(), table_.get());
  ASSERT_TRUE(ingestor.ok());

  ASSERT_TRUE(
      ingestor.value()
          ->Append(BoxRows(*full_, base_rows_, base_rows_ + 1000))
          .ok());
  // Sync mode: the cycle ran inline; the cube is caught up and the
  // generation moved.
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);
  EXPECT_EQ(engine.value()->generation(), gen0 + 1);

  auto answer = engine.value()->Query(
      QueryRequest({{"payment_type", CompareOp::kEq, Value("Cash")}}));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().result.stale);
  EXPECT_EQ(answer.value().result.generation, gen0 + 1);

  const MetricsSnapshot snap = ingestor.value()->metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("ingest_batches_total"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest_rows_total"), 1000u);
  EXPECT_EQ(snap.CounterValue("ingest_commits_total"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest_failures_total"), 0u);
}

TEST_F(IngestTest, AsyncAppendsDrainAndConverge) {
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  IngestorOptions iopts;
  iopts.async = true;
  auto ingestor = Ingestor::Make(engine.value().get(), table_.get(), iopts);
  ASSERT_TRUE(ingestor.ok());

  for (size_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(ingestor.value()
                    ->Append(BoxRows(*full_, base_rows_ + b * 500,
                                     base_rows_ + (b + 1) * 500))
                    .ok());
  }
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);
  EXPECT_EQ(table_->num_rows(), base_rows_ + 2000);

  // Converged cube answers within θ (spot check one cell).
  auto answer = engine.value()->Query(
      QueryRequest({{"payment_type", CompareOp::kEq, Value("Cash")}}));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().result.stale);
  auto pred = BoundPredicate::Bind(
      *table_, {{"payment_type", CompareOp::kEq, Value("Cash")}});
  DatasetView truth(table_.get(), pred->FilterAll());
  if (!truth.empty()) {
    EXPECT_LE(loss_->Loss(truth, answer.value().result.sample).value(),
              options_.threshold);
  }
}

// ---------------------------------------------------------------------
// Crash recovery end-to-end
// ---------------------------------------------------------------------

TEST_F(IngestTest, CrashRecoveryReplaysJournalAndResumesPartialCube) {
  std::string cube_path = TempPath("ingest_recovery_cube.bin");
  std::string wal_path = TempPath("ingest_recovery.wal");
  std::remove(cube_path.c_str());
  std::remove(wal_path.c_str());

  // Session 1: build, checkpoint the cube, stream two batches (the
  // second one is in the journal + table but the process "crashes"
  // before any further checkpoint).
  {
    auto engine = Tabula::Initialize(*table_, options_);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.value()->Save(cube_path).ok());
    IngestorOptions iopts;
    iopts.journal_path = wal_path;
    auto ingestor = Ingestor::Make(engine.value().get(), table_.get(), iopts);
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE(
        ingestor.value()
            ->Append(BoxRows(*full_, base_rows_, base_rows_ + 700))
            .ok());
    ASSERT_TRUE(
        ingestor.value()
            ->Append(BoxRows(*full_, base_rows_ + 700, base_rows_ + 1200))
            .ok());
  }  // crash: everything in memory is gone

  // Session 2: base data + journal + checkpointed cube.
  std::vector<RowId> base(base_rows_);
  for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
  auto recovered = full_->TakeRows(base);
  auto replayed = IngestJournal::Replay(wal_path, recovered.get());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value().appended_rows, 1200u);
  ASSERT_EQ(recovered->num_rows(), base_rows_ + 1200);

  // The checkpoint predates the appends: a strict load calls it stale,
  // the resume path accepts it against the prefix it was built on.
  auto strict = Tabula::Load(*recovered, options_, cube_path);
  EXPECT_FALSE(strict.ok());
  auto resumed = Tabula::Load(*recovered, options_, cube_path,
                              /*resume_partial=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->PendingIngestRows(), 1200u);

  // Until the catch-up cycle commits, answers are honest about it.
  auto stale_answer = resumed.value()->Query(
      QueryRequest({{"payment_type", CompareOp::kEq, Value("Cash")}}));
  ASSERT_TRUE(stale_answer.ok());
  EXPECT_TRUE(stale_answer.value().result.stale);

  // One maintenance cycle catches the cube up; answers match a
  // from-scratch build's guarantee.
  auto ingestor = Ingestor::Make(resumed.value().get(), recovered.get(),
                                 IngestorOptions{});
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  EXPECT_EQ(resumed.value()->PendingIngestRows(), 0u);

  auto scratch = Tabula::Initialize(*recovered, options_);
  ASSERT_TRUE(scratch.ok());
  WorkloadOptions wopt;
  wopt.num_queries = 25;
  wopt.seed = 9;
  auto workload =
      GenerateWorkload(*recovered, options_.cubed_attributes, wopt);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload.value()) {
    auto got = resumed.value()->Query(QueryRequest(q.where));
    auto want = scratch.value()->Query(QueryRequest(q.where));
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_FALSE(got.value().result.stale);
    // Classification agrees with the from-scratch oracle...
    EXPECT_EQ(got.value().result.from_local_sample,
              want.value().result.from_local_sample)
        << q.ToString();
    // ...and the θ bound holds against a direct scan.
    auto pred = BoundPredicate::Bind(*recovered, q.where);
    DatasetView truth(recovered.get(), pred->FilterAll());
    if (truth.empty()) continue;
    EXPECT_LE(loss_->Loss(truth, got.value().result.sample).value(),
              options_.threshold)
        << q.ToString();
  }

  std::remove(cube_path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace tabula

/// Property-based (parameterized) suites for the system's invariants:
/// the deterministic guarantee across losses × thresholds × seeds, the
/// algebraic roll-up identity, key-packing round-trips, and the spatial
/// index's exactness across metrics and point distributions.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <unordered_set>

#include "common/rng.h"
#include "core/tabula.h"
#include "cube/cost_model.h"
#include "cube/dry_run.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "loss/regression_loss.h"
#include "sampling/greedy_sampler.h"
#include "sampling/random_sampler.h"

namespace tabula {
namespace {

/// Loss-function factory keyed by name, used across the suites.
std::unique_ptr<LossFunction> MakeLossByName(const std::string& name) {
  if (name == "mean") return std::make_unique<MeanLoss>("fare_amount");
  if (name == "heatmap") return MakeHeatmapLoss("pickup_x", "pickup_y");
  if (name == "heatmap_manhattan") {
    return MakeHeatmapLoss("pickup_x", "pickup_y",
                           DistanceMetric::kManhattan);
  }
  if (name == "histogram") return MakeHistogramLoss("fare_amount");
  if (name == "regression") {
    return std::make_unique<RegressionLoss>("fare_amount", "tip_amount");
  }
  return nullptr;
}

/// Per-loss threshold scale: a "tight" and a "loose" setting that are
/// meaningful for that loss's units.
std::pair<double, double> ThresholdsFor(const std::string& name) {
  if (name == "mean") return {0.02, 0.15};
  if (name == "heatmap" || name == "heatmap_manhattan") {
    return {0.004, 0.02};
  }
  if (name == "histogram") return {0.25, 1.0};
  if (name == "regression") return {1.0, 6.0};
  return {0.1, 0.5};
}

// ---------------------------------------------------------------------
// Property: the greedy sampler ALWAYS meets the threshold.
// ---------------------------------------------------------------------

using SamplerParam = std::tuple<std::string /*loss*/, int /*tight/loose*/,
                                uint64_t /*seed*/>;

class GreedyGuaranteeProperty
    : public ::testing::TestWithParam<SamplerParam> {};

TEST_P(GreedyGuaranteeProperty, SampleLossNeverExceedsThreshold) {
  const auto& [loss_name, tightness, seed] = GetParam();
  TaxiGeneratorOptions gen;
  gen.num_rows = 4000;
  gen.seed = seed;
  auto table = TaxiGenerator(gen).Generate();

  auto loss = MakeLossByName(loss_name);
  ASSERT_NE(loss, nullptr);
  auto [tight, loose] = ThresholdsFor(loss_name);
  double theta = tightness == 0 ? tight : loose;

  GreedySamplerOptions opts;
  opts.seed = seed;
  GreedySampler sampler(loss.get(), theta, opts);

  // Whole table plus a handful of skewed subpopulations.
  Rng rng(seed);
  std::vector<DatasetView> views;
  views.emplace_back(table.get());
  for (int i = 0; i < 3; ++i) {
    size_t n = static_cast<size_t>(rng.UniformInt(5, 2000));
    views.emplace_back(table.get(),
                       RandomSample(views[0], n, &rng));
  }
  for (const auto& raw : views) {
    auto sample = sampler.Sample(raw);
    ASSERT_TRUE(sample.ok());
    DatasetView sample_view(table.get(), sample.value());
    EXPECT_LE(loss->Loss(raw, sample_view).value(), theta)
        << loss_name << " theta=" << theta << " n=" << raw.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLosses, GreedyGuaranteeProperty,
    ::testing::Combine(::testing::Values("mean", "heatmap",
                                         "heatmap_manhattan", "histogram",
                                         "regression"),
                       ::testing::Values(0, 1),
                       ::testing::Values(1u, 17u, 4242u)),
    [](const auto& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) == 0 ? "_tight" : "_loose") + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Property: dry-run classification == direct loss computation.
// ---------------------------------------------------------------------

class DryRunExactnessProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DryRunExactnessProperty, RollUpMatchesDirectLoss) {
  const std::string& loss_name = GetParam();
  TaxiGeneratorOptions gen;
  gen.num_rows = 8000;
  gen.seed = 77;
  auto table = TaxiGenerator(gen).Generate();

  auto loss = MakeLossByName(loss_name);
  auto [tight, loose] = ThresholdsFor(loss_name);
  double theta = (tight + loose) / 2;

  std::vector<std::string> attrs{"payment_type", "rate_code"};
  auto enc = KeyEncoder::Make(*table, attrs);
  ASSERT_TRUE(enc.ok());
  auto packer = KeyPacker::Make(*enc, {0, 1});
  ASSERT_TRUE(packer.ok());
  Lattice lattice(2);
  Rng rng(5);
  DatasetView all(table.get());
  std::vector<RowId> global_rows = RandomSample(all, 500, &rng);
  DatasetView global(table.get(), global_rows);

  auto dry = RunDryRun(*table, *enc, *packer, lattice, *loss, global, theta);
  ASSERT_TRUE(dry.ok());

  for (CuboidMask mask = 0; mask < 4; ++mask) {
    std::unordered_map<uint64_t, std::vector<RowId>> cells;
    for (RowId r = 0; r < table->num_rows(); ++r) {
      cells[packer->PackRowMasked(*enc, r, mask)].push_back(r);
    }
    std::unordered_set<uint64_t> iceberg(
        dry->cuboids[mask].iceberg_keys.begin(),
        dry->cuboids[mask].iceberg_keys.end());
    EXPECT_EQ(dry->cuboids[mask].total_cells, cells.size());
    for (const auto& [key, rows] : cells) {
      DatasetView cell(table.get(), rows);
      double direct = loss->Loss(cell, global).value();
      EXPECT_EQ(iceberg.count(key) > 0, direct > theta)
          << loss_name << " mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, DryRunExactnessProperty,
                         ::testing::Values("mean", "heatmap", "histogram",
                                           "regression"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property: LossState merging is order-insensitive and matches a
// single accumulation pass (the algebraic requirement).
// ---------------------------------------------------------------------

class MergeInvarianceProperty : public ::testing::TestWithParam<std::string> {
};

TEST_P(MergeInvarianceProperty, ArbitrarySplitsMergeIdentically) {
  const std::string& loss_name = GetParam();
  TaxiGeneratorOptions gen;
  gen.num_rows = 2000;
  gen.seed = 3;
  auto table = TaxiGenerator(gen).Generate();
  auto loss = MakeLossByName(loss_name);

  Rng rng(11);
  DatasetView all(table.get());
  DatasetView ref(table.get(), RandomSample(all, 200, &rng));
  auto bound = loss->Bind(*table, ref);
  ASSERT_TRUE(bound.ok());

  LossState whole;
  for (RowId r = 0; r < table->num_rows(); ++r) {
    bound.value()->Accumulate(&whole, r);
  }
  double expected = bound.value()->Finalize(whole);

  for (int trial = 0; trial < 5; ++trial) {
    // Random partition into 4 chunks, merged in random order.
    std::vector<LossState> parts(4);
    for (RowId r = 0; r < table->num_rows(); ++r) {
      bound.value()->Accumulate(
          &parts[static_cast<size_t>(rng.UniformInt(0, 3))], r);
    }
    std::vector<size_t> order{0, 1, 2, 3};
    rng.Shuffle(&order);
    LossState merged = parts[order[0]];
    for (size_t i = 1; i < 4; ++i) merged.Merge(parts[order[i]]);
    EXPECT_NEAR(bound.value()->Finalize(merged), expected, 1e-9)
        << loss_name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, MergeInvarianceProperty,
                         ::testing::Values("mean", "heatmap", "histogram",
                                           "regression"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property: KeyPacker round-trips arbitrary code/null combinations.
// ---------------------------------------------------------------------

class KeyPackerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyPackerProperty, RoundTripWithRandomNulls) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 3000;
  gen.seed = 1;
  auto table = TaxiGenerator(gen).Generate();
  auto attrs = TaxiGenerator::ExperimentAttributes();
  auto enc = KeyEncoder::Make(*table, attrs);
  ASSERT_TRUE(enc.ok());
  std::vector<size_t> cols(attrs.size());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  auto packer = KeyPacker::Make(*enc, cols);
  ASSERT_TRUE(packer.ok());

  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> codes(attrs.size());
    for (size_t k = 0; k < attrs.size(); ++k) {
      codes[k] = rng.Bernoulli(0.3)
                     ? kNullCode
                     : static_cast<uint32_t>(
                           rng.UniformInt(0, enc->Cardinality(k) - 1));
    }
    uint64_t key = packer->PackCodes(codes);
    EXPECT_EQ(packer->Unpack(key), codes);
    // Nulling each position is idempotent and order-independent.
    uint64_t all_null = key;
    for (size_t k = 0; k < attrs.size(); ++k) {
      all_null = packer->WithNull(all_null, k);
    }
    EXPECT_EQ(all_null, packer->PackCodes(std::vector<uint32_t>(
                            attrs.size(), kNullCode)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyPackerProperty,
                         ::testing::Values(1u, 2u, 3u));

// ---------------------------------------------------------------------
// Property: end-to-end Tabula guarantee across losses and thresholds.
// ---------------------------------------------------------------------

using TabulaParam = std::tuple<std::string, int>;

class TabulaGuaranteeProperty
    : public ::testing::TestWithParam<TabulaParam> {};

TEST_P(TabulaGuaranteeProperty, EveryWorkloadQueryWithinTheta) {
  const auto& [loss_name, tightness] = GetParam();
  TaxiGeneratorOptions gen;
  gen.num_rows = 25000;
  gen.seed = 9;
  auto table = TaxiGenerator(gen).Generate();
  auto loss = MakeLossByName(loss_name);
  auto [tight, loose] = ThresholdsFor(loss_name);
  double theta = tightness == 0 ? tight : loose;
  // The tight heat-map threshold on 25k rows is exercised in the
  // end-to-end suite; keep the property suite fast with the loose one.
  if ((loss_name == "heatmap" || loss_name == "heatmap_manhattan") &&
      tightness == 0) {
    theta = 0.008;
  }

  TabulaOptions opts;
  opts.cubed_attributes = {"payment_type", "rate_code", "passenger_count"};
  opts.loss = loss.get();
  opts.threshold = theta;
  auto tabula = Tabula::Initialize(*table, opts);
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();

  WorkloadOptions wopts;
  wopts.num_queries = 40;
  wopts.seed = 123;
  auto workload = GenerateWorkload(*table, opts.cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload.value()) {
    auto answer = tabula.value()->Query(q.where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table, q.where);
    DatasetView truth(table.get(), pred->FilterAll());
    if (truth.empty()) continue;
    EXPECT_LE(loss->Loss(truth, answer->sample).value(), theta)
        << loss_name << " θ=" << theta << " " << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLosses, TabulaGuaranteeProperty,
    ::testing::Combine(::testing::Values("mean", "heatmap", "histogram",
                                         "regression"),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) == 0 ? "_tight" : "_loose");
    });

// ---------------------------------------------------------------------
// Property: the guarantee survives incremental maintenance under every
// loss function.
// ---------------------------------------------------------------------

class RefreshGuaranteeProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RefreshGuaranteeProperty, GuaranteeHoldsAfterSkewedAppends) {
  const std::string& loss_name = GetParam();
  TaxiGeneratorOptions gen;
  gen.num_rows = 12000;
  gen.seed = 61;
  auto table = TaxiGenerator(gen).Generate();
  auto loss = MakeLossByName(loss_name);
  auto [tight, loose] = ThresholdsFor(loss_name);
  double theta = loose;

  TabulaOptions opts;
  opts.cubed_attributes = {"payment_type", "rate_code"};
  opts.loss = loss.get();
  opts.threshold = theta;
  opts.keep_maintenance_state = true;
  auto tabula = Tabula::Initialize(*table, opts);
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();

  // Append rides from a different seed (shifted hotspots/means).
  TaxiGeneratorOptions extra_gen;
  extra_gen.num_rows = 3000;
  extra_gen.seed = 62;
  auto extra = TaxiGenerator(extra_gen).Generate();
  for (RowId r = 0; r < extra->num_rows(); ++r) {
    ASSERT_TRUE(table->AppendRowFrom(*extra, r).ok());
  }
  Tabula::RefreshStats stats;
  ASSERT_TRUE(tabula.value()->Refresh(&stats).ok());

  WorkloadOptions wopts;
  wopts.num_queries = 25;
  wopts.seed = 3;
  auto workload = GenerateWorkload(*table, opts.cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload.value()) {
    auto answer = tabula.value()->Query(q.where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table, q.where);
    DatasetView truth(table.get(), pred->FilterAll());
    if (truth.empty()) continue;
    EXPECT_LE(loss->Loss(truth, answer->sample).value(), theta)
        << loss_name << " " << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, RefreshGuaranteeProperty,
                         ::testing::Values("mean", "heatmap", "histogram",
                                           "regression"),
                         [](const auto& info) { return info.param; });

/// ------------------------------------------------------------------
/// Cost-model properties (paper Inequation 1). The chooser is pure
/// arithmetic, so its edge cases can be pinned exhaustively: degenerate
/// inputs must pick a sane path, and the decision must respect the
/// obvious monotonicities.
/// ------------------------------------------------------------------

TEST(CostModelProperty, DegenerateInputsPickASanePath) {
  // No iceberg cells: nothing to group — join (prune everything) wins
  // regardless of the other arguments, including nonsense ones.
  for (double n : {0.0, 1.0, 1e3, 1e9}) {
    for (double k : {0.0, 1.0, 7.0, 1e6}) {
      EXPECT_TRUE(PreferJoinPath(n, 0.0, k)) << "n=" << n << " k=" << k;
      EXPECT_TRUE(PreferJoinPath(n, -3.0, k)) << "n=" << n << " k=" << k;
    }
  }
  // A single-cell (or empty) cuboid: GroupBy degenerates to one scan and
  // the join path can never beat it.
  for (double n : {0.0, 1.0, 1e3, 1e9}) {
    for (double i : {0.5, 1.0, 2.0}) {
      EXPECT_FALSE(PreferJoinPath(n, i, 1.0)) << "n=" << n << " i=" << i;
      EXPECT_FALSE(PreferJoinPath(n, i, 0.0)) << "n=" << n << " i=" << i;
    }
  }
  // Empty and single-row tables must not crash or take the join path's
  // per-row prune cost for free: with no log() advantage either way the
  // comparison is 0 < 0 and GroupBy (the simpler plan) wins.
  EXPECT_FALSE(PreferJoinPath(0.0, 2.0, 10.0));
  EXPECT_FALSE(PreferJoinPath(1.0, 2.0, 10.0));
}

TEST(CostModelProperty, AllIcebergNeverPrefersJoin) {
  // i == k: the prune keeps every row, so the join path pays the
  // membership test for nothing. GroupBy must win at any scale.
  for (double n : {10.0, 1e4, 1e8}) {
    for (double k : {2.0, 64.0, 1e5}) {
      EXPECT_FALSE(PreferJoinPath(n, k, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(CostModelProperty, DecisionIsMonotoneInIcebergCells) {
  // Fixing N and k, the join path can only get less attractive as i
  // grows (both its terms are increasing in i): once the chooser flips
  // to GroupBy it must never flip back.
  for (double n : {1e4, 1e6, 1e8}) {
    for (double k : {100.0, 1e4}) {
      bool prev = PreferJoinPath(n, 1.0, k);
      for (double i = 2.0; i <= k; i *= 2.0) {
        bool cur = PreferJoinPath(n, std::min(i, k), k);
        EXPECT_FALSE(!prev && cur)
            << "flipped back to join at n=" << n << " k=" << k << " i=" << i;
        prev = cur;
      }
    }
  }
}

TEST(CostModelProperty, NonIntegerInputsBehaveLikeNearbyIntegers) {
  // Estimates arrive as doubles (selectivity-scaled); fractional inputs
  // must interpolate, not explode. Bracket each fractional decision by
  // its integer neighbours: if both neighbours agree, so must it.
  for (double n : {1e4, 1e6}) {
    for (double k : {100.0, 1e4}) {
      for (double i = 1.5; i < 40.0; i += 3.7) {
        bool lo = PreferJoinPath(n, std::floor(i), k);
        bool hi = PreferJoinPath(n, std::ceil(i), k);
        if (lo == hi) {
          EXPECT_EQ(PreferJoinPath(n, i, k), lo)
              << "n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(CostModelProperty, IcebergRowFractionClampsAndDegrades) {
  // Plain ratio inside the valid range...
  EXPECT_DOUBLE_EQ(IcebergRowFraction(1.0, 4.0), 0.25);
  EXPECT_DOUBLE_EQ(IcebergRowFraction(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(IcebergRowFraction(4.0, 4.0), 1.0);
  // ...clamped against estimator noise pushing it out of [0, 1]...
  EXPECT_DOUBLE_EQ(IcebergRowFraction(5.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(IcebergRowFraction(-1.0, 4.0), 0.0);
  // ...and a conservative 1.0 (prune keeps everything) when the total
  // is unknown or nonsense, so a bad estimate can't starve the scan.
  EXPECT_DOUBLE_EQ(IcebergRowFraction(3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(IcebergRowFraction(3.0, -2.0), 1.0);
  // Monotone in i for fixed k.
  for (double k : {1.0, 10.0, 1e6}) {
    double prev = IcebergRowFraction(0.0, k);
    for (double i = 0.25; i <= 2.0 * k; i *= 2.0) {
      double cur = IcebergRowFraction(i, k);
      EXPECT_GE(cur, prev) << "k=" << k << " i=" << i;
      EXPECT_GE(cur, 0.0);
      EXPECT_LE(cur, 1.0);
      prev = cur;
    }
  }
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "sampling/greedy_sampler.h"
#include "sampling/random_sampler.h"
#include "sampling/stratified_sampler.h"
#include "storage/table.h"

namespace tabula {
namespace {

std::unique_ptr<Table> NumericTable(size_t n, uint64_t seed = 1) {
  Schema schema({{"g", DataType::kCategorical},
                 {"x", DataType::kDouble},
                 {"y", DataType::kDouble},
                 {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  Rng rng(seed);
  const char* groups[] = {"a", "b", "c"};
  for (size_t i = 0; i < n; ++i) {
    const char* g = groups[rng.Discrete({0.8, 0.15, 0.05})];
    EXPECT_TRUE(table
                    ->AppendRow({Value(g), Value(rng.UniformDouble(0, 1)),
                                 Value(rng.UniformDouble(0, 1)),
                                 Value(rng.Normal(50, 10))})
                    .ok());
  }
  return table;
}

TEST(RandomSamplerTest, SampleSizeAndUniqueness) {
  auto table = NumericTable(1000);
  Rng rng(2);
  DatasetView all(table.get());
  auto sample = RandomSample(all, 100, &rng);
  EXPECT_EQ(sample.size(), 100u);
  std::set<RowId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(RandomSamplerTest, OversampleReturnsAll) {
  auto table = NumericTable(10);
  Rng rng(2);
  DatasetView all(table.get());
  EXPECT_EQ(RandomSample(all, 50, &rng).size(), 10u);
}

TEST(RandomSamplerTest, SampleFromSubsetView) {
  auto table = NumericTable(100);
  Rng rng(2);
  std::vector<RowId> subset{5, 10, 15, 20, 25};
  DatasetView view(table.get(), subset);
  auto sample = RandomSample(view, 3, &rng);
  EXPECT_EQ(sample.size(), 3u);
  for (RowId r : sample) {
    EXPECT_TRUE(std::find(subset.begin(), subset.end(), r) != subset.end());
  }
}

TEST(SerflingTest, PaperDefaultsGiveAboutAThousand) {
  // ε=0.05, δ=0.01 → k ≈ ln(200)/0.005 ≈ 1060 ("around 1000 tuples").
  size_t k = SerflingSampleSize();
  EXPECT_GE(k, 1000u);
  EXPECT_LE(k, 1100u);
}

TEST(SerflingTest, TighterErrorNeedsMoreSamples) {
  EXPECT_GT(SerflingSampleSize(0.01, 0.01), SerflingSampleSize(0.05, 0.01));
  EXPECT_GT(SerflingSampleSize(0.05, 0.001), SerflingSampleSize(0.05, 0.01));
}

TEST(SerflingTest, DegenerateParamsAreSafe) {
  EXPECT_EQ(SerflingSampleSize(0.0, 0.01), 1u);
  EXPECT_EQ(SerflingSampleSize(0.05, 0.0), 1u);
}

// ---------- GreedySampler (Algorithm 1) ----------

TEST(GreedySamplerTest, MeetsThresholdMeanLoss) {
  auto table = NumericTable(2000);
  MeanLoss loss("v");
  GreedySampler sampler(&loss, 0.01);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  EXPECT_FALSE(sample.value().empty());
  DatasetView sample_view(table.get(), sample.value());
  EXPECT_LE(loss.Loss(raw, sample_view).value(), 0.01);
}

TEST(GreedySamplerTest, MeetsThresholdHeatmapLoss) {
  auto table = NumericTable(1500);
  auto loss = MakeHeatmapLoss("x", "y");
  GreedySampler sampler(loss.get(), 0.05);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  DatasetView sample_view(table.get(), sample.value());
  EXPECT_LE(loss->Loss(raw, sample_view).value(), 0.05);
  // A 5% average-min-distance budget over [0,1]² needs far fewer points
  // than the raw data.
  EXPECT_LT(sample->size(), 200u);
}

TEST(GreedySamplerTest, LazyForwardMatchesExhaustiveQuality) {
  auto table = NumericTable(400, 9);
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());

  GreedySamplerOptions lazy_opts;
  lazy_opts.lazy_forward = true;
  lazy_opts.max_candidates = 0;
  GreedySampler lazy(loss.get(), 0.03, lazy_opts);
  auto lazy_sample = lazy.Sample(raw);
  ASSERT_TRUE(lazy_sample.ok());

  GreedySamplerOptions plain_opts;
  plain_opts.lazy_forward = false;
  plain_opts.max_candidates = 0;
  GreedySampler plain(loss.get(), 0.03, plain_opts);
  auto plain_sample = plain.Sample(raw);
  ASSERT_TRUE(plain_sample.ok());

  // Both meet the bound; lazy-forward must not inflate the sample much
  // (it is exact for submodular gains — sizes should match).
  EXPECT_EQ(lazy_sample->size(), plain_sample->size());
}

TEST(GreedySamplerTest, LazyForwardDoesFewerEvaluations) {
  auto table = NumericTable(600, 12);
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());

  GreedySamplerOptions lazy_opts;
  lazy_opts.lazy_forward = true;
  lazy_opts.max_candidates = 0;
  GreedySamplerStats lazy_stats;
  GreedySampler lazy(loss.get(), 0.02, lazy_opts);
  ASSERT_TRUE(lazy.Sample(raw, &lazy_stats).ok());

  GreedySamplerOptions plain_opts;
  plain_opts.lazy_forward = false;
  plain_opts.max_candidates = 0;
  GreedySamplerStats plain_stats;
  GreedySampler plain(loss.get(), 0.02, plain_opts);
  ASSERT_TRUE(plain.Sample(raw, &plain_stats).ok());

  EXPECT_LT(lazy_stats.loss_evaluations, plain_stats.loss_evaluations);
}

TEST(GreedySamplerTest, CandidateCapStillGuarantees) {
  auto table = NumericTable(3000, 21);
  auto loss = MakeHeatmapLoss("x", "y");
  GreedySamplerOptions opts;
  opts.max_candidates = 64;
  GreedySamplerStats stats;
  GreedySampler sampler(loss.get(), 0.04, opts);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw, &stats);
  ASSERT_TRUE(sample.ok());
  DatasetView sample_view(table.get(), sample.value());
  EXPECT_LE(loss->Loss(raw, sample_view).value(), 0.04);
}

TEST(GreedySamplerTest, EmptyInputGivesEmptySample) {
  auto table = NumericTable(10);
  MeanLoss loss("v");
  GreedySampler sampler(&loss, 0.1);
  DatasetView empty(table.get(), {});
  auto sample = sampler.Sample(empty);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->empty());
}

TEST(GreedySamplerTest, SingleTupleCell) {
  auto table = NumericTable(1);
  MeanLoss loss("v");
  GreedySampler sampler(&loss, 0.001);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 1u);
}

TEST(GreedySamplerTest, TinyThresholdStillTerminates) {
  auto table = NumericTable(200, 4);
  auto loss = MakeHeatmapLoss("x", "y");
  GreedySampler sampler(loss.get(), 1e-9);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  DatasetView sample_view(table.get(), sample.value());
  EXPECT_LE(loss->Loss(raw, sample_view).value(), 1e-9);
}

TEST(GreedySamplerTest, MaxSampleSizeCapsGrowth) {
  auto table = NumericTable(500, 8);
  auto loss = MakeHeatmapLoss("x", "y");
  GreedySamplerOptions opts;
  opts.max_sample_size = 5;
  GreedySampler sampler(loss.get(), 1e-6, opts);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 5u);
}

TEST(GreedySamplerTest, TiedLossesPickSameSampleAtAnyThreadCount) {
  // Regression: ExhaustiveBest used to break exact-loss ties by whichever
  // chunk reported first, so the chosen candidate — and every later round
  // built on it — depended on the thread count. With only 4 distinct
  // values repeated 100× each, nearly every round is a massive tie.
  Schema schema({{"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value(static_cast<double>(i % 4) * 10.0)}).ok());
  }
  MeanLoss loss("v");
  DatasetView raw(table.get());

  auto run = [&](size_t threads) {
    ThreadPool pool(threads);
    ThreadPool::SetGlobalForTest(&pool);
    GreedySamplerOptions opts;
    opts.lazy_forward = false;
    opts.max_candidates = 0;
    GreedySampler sampler(&loss, 0.5, opts);
    auto sample = sampler.Sample(raw);
    ThreadPool::SetGlobalForTest(nullptr);
    EXPECT_TRUE(sample.ok());
    return sample.value();
  };

  std::vector<RowId> single = run(1);
  std::vector<RowId> multi = run(4);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, multi)
      << "tie-break must be by pool position, not chunk schedule";
  // And stable across repeated runs at the same width.
  EXPECT_EQ(run(4), multi);
}

TEST(GreedySamplerTest, SampleSizeShrinksWithLooserThreshold) {
  auto table = NumericTable(800, 30);
  auto loss = MakeHeatmapLoss("x", "y");
  DatasetView raw(table.get());
  GreedySampler tight(loss.get(), 0.01);
  GreedySampler loose(loss.get(), 0.08);
  auto tight_sample = tight.Sample(raw);
  auto loose_sample = loose.Sample(raw);
  ASSERT_TRUE(tight_sample.ok());
  ASSERT_TRUE(loose_sample.ok());
  EXPECT_GT(tight_sample->size(), loose_sample->size());
}

// ---------- StratifiedSample ----------

TEST(StratifiedSamplerTest, EveryStratumRepresented) {
  auto table = NumericTable(5000, 2);
  StratifiedSamplerOptions opts;
  opts.total_budget = 300;
  opts.min_per_stratum = 10;
  auto sample = StratifiedSample::Build(*table, {"g"}, opts);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->strata().size(), 3u);  // a, b, c
  for (const auto& stratum : sample->strata()) {
    EXPECT_GE(stratum.rows.size(), std::min<size_t>(10, stratum.population));
    EXPECT_GT(stratum.population, 0u);
  }
}

TEST(StratifiedSamplerTest, RareStratumGetsFloor) {
  auto table = NumericTable(10000, 3);
  StratifiedSamplerOptions opts;
  opts.total_budget = 100;
  opts.min_per_stratum = 25;
  auto sample = StratifiedSample::Build(*table, {"g"}, opts);
  ASSERT_TRUE(sample.ok());
  // Stratum "c" (~5%) would get ~5 proportionally; the floor lifts it.
  for (const auto& stratum : sample->strata()) {
    EXPECT_GE(stratum.rows.size(),
              std::min<size_t>(opts.min_per_stratum, stratum.population));
  }
}

TEST(StratifiedSamplerTest, FindByKey) {
  auto table = NumericTable(1000, 4);
  StratifiedSamplerOptions opts;
  auto sample = StratifiedSample::Build(*table, {"g"}, opts);
  ASSERT_TRUE(sample.ok());
  const Stratum& s0 = sample->strata()[0];
  const Stratum* found = sample->Find(s0.key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->population, s0.population);
  EXPECT_EQ(sample->Find(0xDEADBEEFull), nullptr);
}

}  // namespace
}  // namespace tabula

/// Parser robustness: malformed, truncated, and randomly mangled inputs
/// must produce ParseError statuses — never crashes, hangs, or silently
/// wrong ASTs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/parser.h"

namespace tabula {
namespace sql {
namespace {

TEST(ParserRobustnessTest, TruncationsOfValidStatements) {
  const std::string statements[] = {
      "CREATE TABLE c AS SELECT a, b, SAMPLING(*, 0.05) AS sample "
      "FROM t GROUP BY CUBE(a, b) HAVING mean_loss(v, SAM_GLOBAL) > 0.05",
      "SELECT sample FROM c WHERE a = 'x' AND b = 2",
      "CREATE AGGREGATE f(Raw, Sam) RETURN d AS "
      "BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END",
      "SELECT a, AVG(b), COUNT(*) FROM t WHERE c >= 1.5 GROUP BY a "
      "ORDER BY a DESC LIMIT 10",
  };
  for (const auto& stmt : statements) {
    // The full statement parses...
    EXPECT_TRUE(ParseStatement(stmt).ok()) << stmt;
    // ...and every strict prefix either parses (a shorter valid form) or
    // fails cleanly; none may crash.
    for (size_t cut = 1; cut < stmt.size(); ++cut) {
      auto result = ParseStatement(stmt.substr(0, cut));
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kParseError)
            << stmt.substr(0, cut);
      }
    }
  }
}

TEST(ParserRobustnessTest, RandomMutationsNeverCrash) {
  const std::string base =
      "CREATE TABLE c AS SELECT a, SAMPLING(*, 0.05) AS sample FROM t "
      "GROUP BY CUBE(a) HAVING mean_loss(v, SAM_GLOBAL) > 0.05";
  const char charset[] = "abcXYZ01().,*'<>=+-/ \t";
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.UniformInt(1, 6));
    for (int e = 0; e < edits; ++e) {
      size_t pos =
          static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
      mutated[pos] =
          charset[rng.UniformInt(0, sizeof(charset) - 2)];
    }
    // Must terminate and return either OK or an error status.
    auto result = ParseStatement(mutated);
    (void)result;
    SUCCEED();
  }
}

TEST(ParserRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    size_t len = static_cast<size_t>(rng.UniformInt(0, 80));
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    }
    auto result = ParseStatement(garbage);
    (void)result;
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, DeeplyNestedExpressions) {
  // 60 levels of parentheses in a loss body must not blow the parser.
  std::string body = "AVG(Raw)";
  for (int i = 0; i < 60; ++i) body = "(" + body + " + 1)";
  std::string stmt =
      "CREATE AGGREGATE deep(Raw, Sam) RETURN d AS BEGIN " + body + " END";
  EXPECT_TRUE(ParseStatement(stmt).ok());
}

TEST(ParserRobustnessTest, PathologicalTokens) {
  EXPECT_FALSE(ParseStatement(std::string(1000, '(')).ok());
  EXPECT_FALSE(ParseStatement("SELECT '" + std::string(10000, 'x')).ok());
  EXPECT_FALSE(ParseStatement("\0\0\0").ok());
  EXPECT_FALSE(ParseStatement("--only a comment").ok());
}

}  // namespace
}  // namespace sql
}  // namespace tabula

/// Shard-equivalence differential suite: a ShardedTabula at K ∈
/// {1, 2, 4, 8} against the single-instance engine and against
/// brute-force ground truth, across many random tables and seeds.
///
/// The contract under test (DESIGN.md "Sharding"):
///  - the merged iceberg-cell SET equals the single-instance cube's
///    (per-cell loss states merge exactly, so classification agrees);
///  - every served answer still meets the deterministic loss(truth,
///    sample) <= θ bound, truth gathered by a direct predicate scan;
///  - K = 1 is a strict pass-through: answers are bit-identical to a
///    plain Tabula, and a shards=1 soak trace is byte-identical to the
///    unsharded harness;
///  - a sharded soak replays byte-identically for a fixed shard count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/tabula.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "loss/loss_registry.h"
#include "shard/sharded_tabula.h"
#include "storage/predicate.h"
#include "testing/scenario.h"

namespace tabula {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

struct DiffFixture {
  std::unique_ptr<Table> table;
  std::vector<std::string> attrs;
};

DiffFixture MakeFixture(uint64_t seed, size_t rows) {
  SyntheticGeneratorOptions gen;
  gen.seed = seed * 7919 + 11;
  gen.num_rows = rows;
  gen.cell_spread = 1.1;
  gen.noise = 0.1;
  gen.columns.clear();
  Rng rng(seed * 13 + 5);
  const size_t ncols = 2 + (seed % 2);
  for (size_t c = 0; c < ncols; ++c) {
    SyntheticColumnSpec col;
    col.name = "c" + std::to_string(c);
    col.cardinality = 2 + static_cast<uint32_t>(rng.UniformInt(0, 3));
    col.zipf_skew = rng.Bernoulli(0.5) ? 0.8 : 0.0;
    gen.columns.push_back(col);
  }
  SyntheticGenerator generator(gen);
  DiffFixture f;
  f.table = generator.Generate();
  f.attrs = generator.CategoricalColumns();
  return f;
}

std::shared_ptr<const LossFunction> MakeLoss(const std::string& name) {
  LossParams params;
  params.columns = name == "heatmap_loss"
                       ? std::vector<std::string>{"x", "y"}
                       : std::vector<std::string>{"value"};
  auto loss = MakeLossFunction(name, params);
  EXPECT_TRUE(loss.ok()) << loss.status().ToString();
  return std::shared_ptr<const LossFunction>(std::move(loss).value());
}

ShardedTabulaOptions MakeShardOptions(const DiffFixture& f, uint64_t seed,
                                      size_t k,
                                      std::shared_ptr<const LossFunction> loss,
                                      double theta) {
  ShardedTabulaOptions o;
  o.base.cubed_attributes = f.attrs;
  o.base.owned_loss = std::move(loss);
  o.base.threshold = theta;
  o.base.seed = seed;
  o.num_shards = k;
  // Alternate partitioning so both schemes see every seed eventually.
  o.partition =
      (seed + k) % 2 == 0 ? ShardPartition::kHash : ShardPartition::kRange;
  return o;
}

std::vector<uint64_t> PlainIcebergKeys(const Tabula& t) {
  std::vector<uint64_t> keys;
  for (const IcebergCell& c : t.cube_table().cells()) keys.push_back(c.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// loss(truth, sample) <= θ with truth from a direct predicate scan —
/// the paper's deterministic guarantee, zero cube code involved.
void CheckThetaBound(const DiffFixture& f, const LossFunction& loss,
                     double theta, const WorkloadQuery& q,
                     const TabulaQueryResult& result, size_t k,
                     uint64_t seed) {
  auto bound = BoundPredicate::Bind(*f.table, q.where);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  std::vector<RowId> truth = bound.value().FilterAll();
  if (result.empty_cell) {
    // A provably-empty cell must really be empty.
    EXPECT_TRUE(truth.empty()) << "seed=" << seed << " k=" << k;
  }
  if (truth.empty()) return;
  DatasetView truth_view(f.table.get(), std::move(truth));
  auto l = loss.Loss(truth_view, result.sample);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_LE(l.value(), theta * (1.0 + 1e-7) + 1e-12)
      << "seed=" << seed << " k=" << k << " query=" << q.ToString();
}

void RunEquivalence(const std::string& loss_name, uint64_t seed,
                    size_t rows) {
  DiffFixture f = MakeFixture(seed, rows);
  Rng rng(seed * 977 + 3);
  const double theta = loss_name == "heatmap_loss"
                           ? 0.004 + rng.UniformDouble(0.0, 0.006)
                           : 0.05 + rng.UniformDouble(0.0, 0.05);
  std::shared_ptr<const LossFunction> loss = MakeLoss(loss_name);

  TabulaOptions plain_opts;
  plain_opts.cubed_attributes = f.attrs;
  plain_opts.owned_loss = loss;
  plain_opts.threshold = theta;
  plain_opts.seed = seed;
  auto plain = Tabula::Initialize(*f.table, std::move(plain_opts));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  const std::vector<uint64_t> plain_keys = PlainIcebergKeys(*plain.value());

  WorkloadOptions wopt;
  wopt.num_queries = 12;
  wopt.seed = seed * 101 + 7;
  auto qs = GenerateWorkload(*f.table, f.attrs, wopt);
  ASSERT_TRUE(qs.ok()) << qs.status().ToString();

  for (size_t k : kShardCounts) {
    auto sharded = ShardedTabula::Initialize(
        *f.table, MakeShardOptions(f, seed, k, loss, theta));
    ASSERT_TRUE(sharded.ok()) << "seed=" << seed << " k=" << k << ": "
                              << sharded.status().ToString();

    // Merged iceberg-cell SET == single-instance cube's.
    EXPECT_EQ(sharded.value()->MergedIcebergKeys(), plain_keys)
        << "seed=" << seed << " k=" << k;
    EXPECT_EQ(sharded.value()->merged_iceberg_cells(), plain_keys.size());
    if (k > 1) {
      const ShardedInitStats& stats = sharded.value()->init_stats();
      EXPECT_EQ(stats.num_shards, k);
      EXPECT_EQ(stats.merged_iceberg_cells, plain_keys.size());
      if (loss_name == "mean_loss") {
        // Mean is not union-closed: nothing may be accepted unverified.
        EXPECT_EQ(stats.union_accepted_cells, 0u);
      }
      // Every base row is owned by exactly one shard.
      size_t owned = 0;
      for (size_t s = 0; s < k; ++s) {
        owned += sharded.value()->shard_rows(s).size();
      }
      EXPECT_EQ(owned, f.table->num_rows());
    }

    for (const WorkloadQuery& q : qs.value()) {
      auto got = sharded.value()->Query(QueryRequest(q.where));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const TabulaQueryResult& result = got.value().result;
      EXPECT_TRUE(result.unavailable_shards.empty());

      auto want = plain.value()->Query(QueryRequest(q.where));
      ASSERT_TRUE(want.ok());
      // Classification (iceberg / global / empty) always agrees with
      // the single instance; at K = 1 the answer is bit-identical.
      EXPECT_EQ(result.from_local_sample,
                want.value().result.from_local_sample)
          << "seed=" << seed << " k=" << k << " query=" << q.ToString();
      EXPECT_EQ(result.empty_cell, want.value().result.empty_cell);
      if (k == 1) {
        EXPECT_EQ(result.sample.ToRowIds(),
                  want.value().result.sample.ToRowIds())
            << "seed=" << seed << " query=" << q.ToString();
      }
      CheckThetaBound(f, *loss, theta, q, result, k, seed);
    }
  }
}

/// Mean loss (ratio-of-aggregates): NOT union-closed, but its loss
/// state is reference-free, so merge-time verification is the exact
/// finalize-against-candidate check. 20 seeds x 4 shard counts.
TEST(ShardDiff, MeanLossEquivalenceAcross20Seeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RunEquivalence("mean_loss", seed, 700);
  }
}

/// Heatmap loss (min-dist family): union-closed AND
/// reference-dependent, so the merge pass exercises the union-closure
/// acceptance and the raw-scan conflict path.
TEST(ShardDiff, HeatmapLossEquivalenceAcross6Seeds) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RunEquivalence("heatmap_loss", seed, 500);
  }
}

/// Refresh equivalence: append rows, refresh both engines, and the
/// merged iceberg set must still equal the rebuilt single instance's.
TEST(ShardDiff, RefreshKeepsIcebergSetEqualAcrossShardCounts) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    DiffFixture f = MakeFixture(seed, 600);
    std::shared_ptr<const LossFunction> loss = MakeLoss("mean_loss");
    const double theta = 0.07;

    // Donor rows with the same schema; appending shifts cell stats.
    SyntheticGeneratorOptions donor_gen;
    donor_gen.seed = seed * 7919 + 12;
    donor_gen.num_rows = 300;
    donor_gen.cell_spread = 1.1;
    donor_gen.noise = 0.1;
    donor_gen.columns.clear();
    Rng rng(seed * 13 + 5);
    const size_t ncols = 2 + (seed % 2);
    for (size_t c = 0; c < ncols; ++c) {
      SyntheticColumnSpec col;
      col.name = "c" + std::to_string(c);
      col.cardinality = 2 + static_cast<uint32_t>(rng.UniformInt(0, 3));
      col.zipf_skew = rng.Bernoulli(0.5) ? 0.8 : 0.0;
      donor_gen.columns.push_back(col);
    }
    std::unique_ptr<Table> donor = SyntheticGenerator(donor_gen).Generate();

    std::vector<std::unique_ptr<ShardedTabula>> engines;
    for (size_t k : kShardCounts) {
      auto e = ShardedTabula::Initialize(
          *f.table, MakeShardOptions(f, seed, k, loss, theta));
      ASSERT_TRUE(e.ok()) << e.status().ToString();
      engines.push_back(std::move(e).value());
    }

    for (size_t r = 0; r < donor->num_rows(); ++r) {
      ASSERT_TRUE(
          f.table->AppendRowFrom(*donor, static_cast<RowId>(r)).ok());
    }
    for (auto& e : engines) {
      Status st = e->Refresh();
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(e->generation(), 1u);
    }
    // All shard counts agree with each other (k=1 is the plain engine).
    const std::vector<uint64_t> want = engines[0]->MergedIcebergKeys();
    for (size_t i = 1; i < engines.size(); ++i) {
      EXPECT_EQ(engines[i]->MergedIcebergKeys(), want)
          << "seed=" << seed << " k=" << kShardCounts[i];
    }
  }
}

/// shards=1 soak trace is byte-identical to the unsharded harness: the
/// K=1 pass-through may not perturb a single recorded outcome.
TEST(ShardDiff, SoakTraceAtK1MatchesUnshardedEngine) {
  for (uint64_t seed : {2u, 5u, 9u}) {
    SoakOptions a;
    a.seed = seed;
    a.steps = 60;
    SoakOptions b = a;
    b.shards = 1;
    auto ra = RunSoak(a);
    auto rb = RunSoak(b);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    EXPECT_TRUE(ra.value().ok()) << ra.value().violations.front();
    EXPECT_TRUE(rb.value().ok()) << rb.value().violations.front();
    EXPECT_EQ(ra.value().trace, rb.value().trace) << "seed=" << seed;
  }
}

/// A sharded soak replays byte-identically for a fixed shard count —
/// the determinism the fault schedule and failure repro depend on.
TEST(ShardDiff, ShardedSoakReplaysByteIdentically) {
  for (size_t k : {2u, 4u, 8u}) {
    SoakOptions opt;
    opt.seed = 7 + k;
    opt.steps = 70;
    opt.shards = k;
    auto r1 = RunSoak(opt);
    auto r2 = RunSoak(opt);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_TRUE(r1.value().ok())
        << "k=" << k << ": " << r1.value().violations.front();
    EXPECT_EQ(r1.value().trace, r2.value().trace) << "k=" << k;
  }
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include "data/taxi_gen.h"
#include "loss/mean_loss.h"
#include "sql/engine.h"
#include "sql/expression.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace tabula {
namespace sql {
namespace {

// ---------- Lexer ----------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, AVG(b) FROM t WHERE c = 'x[0,5)' AND d >= 2.5");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_TRUE(t[0].IsWord("select"));
  EXPECT_TRUE(t[1].IsWord("A"));
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[12].type, TokenType::kString);
  EXPECT_EQ(t[12].text, "x[0,5)");
  EXPECT_TRUE(t[15].IsSymbol(">="));
  EXPECT_EQ(t[16].text, "2.5");
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, CommentsAndWhitespace) {
  auto tokens = Tokenize("SELECT -- a comment\n  x FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[1].IsWord("x"));
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, ScientificNumbers) {
  auto tokens = Tokenize("0.004 1e-3 2.5E+2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "0.004");
  EXPECT_EQ(tokens.value()[1].text, "1e-3");
  EXPECT_EQ(tokens.value()[2].text, "2.5E+2");
}

// ---------- Parser ----------

TEST(ParserTest, CreateSamplingCube) {
  auto stmt = ParseStatement(
      "CREATE TABLE SamplingCube AS "
      "SELECT D, C, M, SAMPLING(*, 0.05) AS sample "
      "FROM nyctaxi GROUPBY CUBE(D, C, M) "
      "HAVING mean_loss(fare, SAM_GLOBAL) > 0.05");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& cube = std::get<CreateSamplingCubeStmt>(stmt.value());
  EXPECT_EQ(cube.cube_name, "SamplingCube");
  EXPECT_EQ(cube.table_name, "nyctaxi");
  EXPECT_EQ(cube.cubed_attributes,
            (std::vector<std::string>{"D", "C", "M"}));
  EXPECT_DOUBLE_EQ(cube.sampling_threshold, 0.05);
  EXPECT_EQ(cube.loss_name, "mean_loss");
  EXPECT_EQ(cube.loss_attributes, (std::vector<std::string>{"fare"}));
  EXPECT_DOUBLE_EQ(cube.having_threshold, 0.05);
}

TEST(ParserTest, CreateCubeWithTwoLossAttributes) {
  auto stmt = ParseStatement(
      "CREATE TABLE c AS SELECT a, SAMPLING(*, 0.004) AS sample "
      "FROM t GROUP BY CUBE(a) "
      "HAVING heatmap_loss(px, py, Sam_global) > 0.004");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& cube = std::get<CreateSamplingCubeStmt>(stmt.value());
  EXPECT_EQ(cube.loss_attributes, (std::vector<std::string>{"px", "py"}));
}

TEST(ParserTest, CubeAttributesMustMatchProjection) {
  auto stmt = ParseStatement(
      "CREATE TABLE c AS SELECT a, b, SAMPLING(*, 0.1) AS sample "
      "FROM t GROUP BY CUBE(a) HAVING mean_loss(v, SAM_GLOBAL) > 0.1");
  EXPECT_FALSE(stmt.ok());
}

TEST(ParserTest, SelectSample) {
  auto stmt = ParseStatement(
      "SELECT sample FROM SamplingCube WHERE D = '[0, 5)' AND C = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<SelectSampleStmt>(stmt.value());
  EXPECT_EQ(sel.cube_name, "SamplingCube");
  ASSERT_EQ(sel.where.size(), 2u);
  EXPECT_EQ(sel.where[0].column, "D");
  EXPECT_EQ(sel.where[0].literal.AsString(), "[0, 5)");
  EXPECT_EQ(sel.where[1].literal.AsInt64(), 1);
}

TEST(ParserTest, CreateAggregateFunction1) {
  // The paper's Function 1 body.
  auto stmt = ParseStatement(
      "CREATE AGGREGATE my_loss(Raw, Sam) RETURN decimal_value AS "
      "BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& agg = std::get<CreateAggregateStmt>(stmt.value());
  EXPECT_EQ(agg.name, "my_loss");
  ASSERT_NE(agg.body, nullptr);
  EXPECT_EQ(agg.body->kind, Expr::Kind::kAbs);
}

TEST(ParserTest, CreateAggregateAngle) {
  auto stmt = ParseStatement(
      "CREATE AGGREGATE reg_loss(Raw, Sam) RETURN decimal_value AS "
      "BEGIN ABS(ANGLE(Raw) - ANGLE(Sam)) END");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& agg = std::get<CreateAggregateStmt>(stmt.value());
  EXPECT_TRUE(UsesAngle(*agg.body));
}

TEST(ParserTest, PlainSelect) {
  auto stmt = ParseStatement(
      "SELECT payment_type, AVG(fare_amount), COUNT(*) FROM rides "
      "WHERE rate_code = 'JFK' GROUP BY payment_type");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<SelectStmt>(stmt.value());
  EXPECT_EQ(sel.items.size(), 3u);
  EXPECT_FALSE(sel.items[0].is_aggregate);
  EXPECT_TRUE(sel.items[1].is_aggregate);
  EXPECT_EQ(sel.items[1].func, AggFunc::kAvg);
  EXPECT_TRUE(sel.items[2].column.empty());  // COUNT(*)
  EXPECT_EQ(sel.group_by, (std::vector<std::string>{"payment_type"}));
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM rides WHERE vendor_name = 'CMT'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStmt>(stmt.value()).select_star);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseStatement("DROP TABLE x").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra junk !").ok());
}

// ---------- Expression loss ----------

TEST(ExpressionTest, EvaluatesArithmetic) {
  auto stmt = ParseStatement(
      "CREATE AGGREGATE f(Raw, Sam) RETURN d AS "
      "BEGIN (AVG(Raw) - AVG(Sam)) * 2 + 1 END");
  ASSERT_TRUE(stmt.ok());
  auto body = std::shared_ptr<const Expr>(
      std::move(std::get<CreateAggregateStmt>(stmt.value()).body));
  AggValues raw, sam;
  raw.avg = 5.0;
  sam.avg = 3.0;
  EXPECT_DOUBLE_EQ(EvaluateExpr(*body, raw, sam), 5.0);
}

TEST(ExpressionTest, DivisionByZeroIsInfinite) {
  auto stmt = ParseStatement(
      "CREATE AGGREGATE f(Raw, Sam) RETURN d AS "
      "BEGIN (AVG(Raw) - AVG(Sam)) / AVG(Raw) END");
  ASSERT_TRUE(stmt.ok());
  auto body = std::shared_ptr<const Expr>(
      std::move(std::get<CreateAggregateStmt>(stmt.value()).body));
  AggValues raw, sam;  // both zero
  EXPECT_EQ(EvaluateExpr(*body, raw, sam), kInfiniteLoss);  // 0/0 → NaN → inf
}

TEST(ExpressionTest, CompiledLossMatchesBuiltinMeanLoss) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 3000;
  auto table = TaxiGenerator(gen).Generate();

  auto stmt = ParseStatement(
      "CREATE AGGREGATE f(Raw, Sam) RETURN d AS "
      "BEGIN ABS((AVG(Raw) - AVG(Sam)) / AVG(Raw)) END");
  ASSERT_TRUE(stmt.ok());
  auto body = std::shared_ptr<const Expr>(
      std::move(std::get<CreateAggregateStmt>(stmt.value()).body));
  auto loss = ExpressionLoss::Make("f", body, {"fare_amount"});
  ASSERT_TRUE(loss.ok());

  DatasetView raw(table.get());
  DatasetView sample(table.get(), {0, 10, 20, 30, 40});
  // Compare against the hand-written MeanLoss result.
  MeanLoss builtin("fare_amount");
  EXPECT_NEAR(loss.value()->Loss(raw, sample).value(),
              builtin.Loss(raw, sample).value(), 1e-12);
}

TEST(ExpressionTest, AngleNeedsTwoAttributes) {
  auto stmt = ParseStatement(
      "CREATE AGGREGATE f(Raw, Sam) RETURN d AS "
      "BEGIN ABS(ANGLE(Raw) - ANGLE(Sam)) END");
  ASSERT_TRUE(stmt.ok());
  auto body = std::shared_ptr<const Expr>(
      std::move(std::get<CreateAggregateStmt>(stmt.value()).body));
  EXPECT_FALSE(ExpressionLoss::Make("f", body, {"fare_amount"}).ok());
  EXPECT_TRUE(
      ExpressionLoss::Make("f", body, {"fare_amount", "tip_amount"}).ok());
}

// ---------- Engine ----------

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 20000;
    gen.seed = 8;
    ASSERT_TRUE(
        engine_.RegisterTable("rides", TaxiGenerator(gen).Generate()).ok());
  }
  SqlEngine engine_;
};

TEST_F(SqlEngineTest, PlainSelectProjection) {
  auto result = engine_.Execute(
      "SELECT payment_type, fare_amount FROM rides WHERE rate_code = 'JFK'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->table, nullptr);
  EXPECT_GT(result->table->num_rows(), 0u);
  EXPECT_EQ(result->table->schema().num_fields(), 2u);
}

TEST_F(SqlEngineTest, GroupedAggregation) {
  auto result = engine_.Execute(
      "SELECT payment_type, AVG(fare_amount), COUNT(*) FROM rides "
      "GROUP BY payment_type");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->table, nullptr);
  EXPECT_EQ(result->table->num_rows(), 4u);  // Cash, Credit, No Charge, Dispute
  // Counts must sum to the table cardinality.
  double total = 0.0;
  auto count_col = result->table->ColumnByName("count");
  ASSERT_TRUE(count_col.ok());
  for (size_t r = 0; r < result->table->num_rows(); ++r) {
    total += count_col.value()->As<DoubleColumn>()->At(r);
  }
  EXPECT_DOUBLE_EQ(total, 20000.0);
}

TEST_F(SqlEngineTest, GroupByCubeOperator) {
  auto result = engine_.Execute(
      "SELECT payment_type, rate_code, COUNT(*) FROM rides "
      "GROUP BY CUBE(payment_type, rate_code)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->table, nullptr);
  const Table& t = *result->table;

  // Every cuboid contributes: finest cells, two 1-attr roll-ups, and the
  // all-null "(null),(null)" grand total.
  size_t grand_total_rows = 0;
  double grand_total_count = 0.0;
  auto count_col = t.ColumnByName("count");
  ASSERT_TRUE(count_col.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool p_null = t.GetValue(0, r).AsString() == "(null)";
    bool rc_null = t.GetValue(1, r).AsString() == "(null)";
    if (p_null && rc_null) {
      ++grand_total_rows;
      grand_total_count = count_col.value()->As<DoubleColumn>()->At(r);
    }
  }
  EXPECT_EQ(grand_total_rows, 1u);
  EXPECT_DOUBLE_EQ(grand_total_count, 20000.0);

  // The cube has strictly more rows than the finest GroupBy alone.
  auto plain = engine_.Execute(
      "SELECT payment_type, rate_code, COUNT(*) FROM rides "
      "GROUP BY payment_type, rate_code");
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(t.num_rows(), plain->table->num_rows());
}

TEST_F(SqlEngineTest, CubeRollUpSumsAreConsistent) {
  auto result = engine_.Execute(
      "SELECT payment_type, SUM(fare_amount) FROM rides "
      "GROUP BY CUBE(payment_type)");
  ASSERT_TRUE(result.ok());
  const Table& t = *result->table;
  double total = 0.0, rolled = 0.0;
  auto sum_col = t.ColumnByName("sum_fare_amount");
  ASSERT_TRUE(sum_col.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    double v = sum_col.value()->As<DoubleColumn>()->At(r);
    if (t.GetValue(0, r).AsString() == "(null)") {
      rolled = v;
    } else {
      total += v;
    }
  }
  // SUM is distributive: the '*' cell equals the sum of its descendants.
  EXPECT_NEAR(rolled, total, 1e-6);
}

TEST_F(SqlEngineTest, AggregateWithoutGroupBy) {
  auto result = engine_.Execute("SELECT COUNT(*), AVG(fare_amount) FROM rides");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->table, nullptr);
  EXPECT_EQ(result->table->num_rows(), 1u);
}

TEST_F(SqlEngineTest, OrderByAndLimit) {
  auto result = engine_.Execute(
      "SELECT payment_type, AVG(fare_amount) FROM rides "
      "GROUP BY payment_type ORDER BY avg_fare_amount DESC LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->table, nullptr);
  ASSERT_EQ(result->table->num_rows(), 2u);
  const auto* avg = result->table->column(1).As<DoubleColumn>();
  EXPECT_GE(avg->At(0), avg->At(1));
}

TEST_F(SqlEngineTest, OrderByCategoricalAscending) {
  auto result = engine_.Execute(
      "SELECT payment_type, COUNT(*) FROM rides GROUP BY payment_type "
      "ORDER BY payment_type");
  ASSERT_TRUE(result.ok());
  const Table& t = *result->table;
  for (size_t r = 1; r < t.num_rows(); ++r) {
    EXPECT_LE(t.GetValue(0, r - 1).AsString(), t.GetValue(0, r).AsString());
  }
}

TEST_F(SqlEngineTest, LimitOnRowProjection) {
  auto result = engine_.Execute(
      "SELECT fare_amount FROM rides WHERE payment_type = 'Cash' LIMIT 7");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->num_rows(), 7u);
}

TEST_F(SqlEngineTest, OrderByUnknownColumnFails) {
  auto result = engine_.Execute(
      "SELECT payment_type, COUNT(*) FROM rides GROUP BY payment_type "
      "ORDER BY nonexistent");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlEngineTest, EndToEndSamplingCubeViaSql) {
  auto create = engine_.Execute(
      "CREATE TABLE cube1 AS "
      "SELECT payment_type, rate_code, SAMPLING(*, 0.05) AS sample "
      "FROM rides GROUP BY CUBE(payment_type, rate_code) "
      "HAVING mean_loss(fare_amount, SAM_GLOBAL) > 0.05");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  EXPECT_NE(engine_.GetCube("cube1"), nullptr);

  auto query = engine_.Execute(
      "SELECT sample FROM cube1 WHERE rate_code = 'JFK'");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query->has_sample);
  EXPECT_GT(query->sample.size(), 0u);

  // The deterministic guarantee through the SQL path.
  const Table* rides = engine_.GetTable("rides");
  auto pred = BoundPredicate::Bind(
      *rides, {{"rate_code", CompareOp::kEq, Value("JFK")}});
  ASSERT_TRUE(pred.ok());
  DatasetView truth(rides, pred->FilterAll());
  MeanLoss loss("fare_amount");
  EXPECT_LE(loss.Loss(truth, query->sample).value(), 0.05);
}

TEST_F(SqlEngineTest, UserDefinedLossDrivesCube) {
  ASSERT_TRUE(engine_
                  .Execute("CREATE AGGREGATE tail_loss(Raw, Sam) RETURN d AS "
                           "BEGIN ABS((MAX(Raw) - MAX(Sam)) / MAX(Raw)) END")
                  .ok());
  auto create = engine_.Execute(
      "CREATE TABLE cube2 AS "
      "SELECT payment_type, SAMPLING(*, 0.2) AS sample "
      "FROM rides GROUP BY CUBE(payment_type) "
      "HAVING tail_loss(fare_amount, SAM_GLOBAL) > 0.2");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  auto query =
      engine_.Execute("SELECT sample FROM cube2 WHERE payment_type = 'Cash'");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->has_sample);
}

TEST_F(SqlEngineTest, ErrorsAreStatuses) {
  EXPECT_EQ(engine_.Execute("SELECT * FROM missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_.Execute("SELECT sample FROM missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine_
                .Execute("CREATE TABLE c AS SELECT a, SAMPLING(*, 0.1) AS s "
                         "FROM rides GROUP BY CUBE(a) "
                         "HAVING nosuch(fare_amount, SAM_GLOBAL) > 0.1")
                .status()
                .code(),
            StatusCode::kNotFound);
  // Mismatched thresholds.
  EXPECT_EQ(engine_
                .Execute("CREATE TABLE c AS SELECT payment_type, "
                         "SAMPLING(*, 0.1) AS s FROM rides "
                         "GROUP BY CUBE(payment_type) "
                         "HAVING mean_loss(fare_amount, SAM_GLOBAL) > 0.2")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Duplicate registration.
  EXPECT_TRUE(engine_
                  .Execute("CREATE AGGREGATE dup(Raw, Sam) RETURN d AS "
                           "BEGIN AVG(Raw) END")
                  .ok());
  EXPECT_EQ(engine_
                .Execute("CREATE AGGREGATE dup(Raw, Sam) RETURN d AS "
                         "BEGIN AVG(Sam) END")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace sql
}  // namespace tabula

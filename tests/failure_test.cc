/// Failure-injection and edge-condition coverage: a loss function that
/// errors mid-pipeline must surface a Status (never crash or silently
/// drop the guarantee), and every component must cope with degenerate
/// inputs (empty tables, single rows, constant columns).

#include <gtest/gtest.h>

#include "baselines/sample_cube.h"
#include "baselines/sample_on_the_fly.h"
#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "sampling/greedy_sampler.h"
#include "selection/rep_selection.h"

namespace tabula {
namespace {

/// A loss that fails at a chosen pipeline stage.
class FailingLoss final : public LossFunction {
 public:
  enum class FailAt { kBind, kLoss, kEvaluator, kNever };

  explicit FailingLoss(FailAt fail_at)
      : fail_at_(fail_at), inner_("fare_amount") {}

  std::string name() const override { return "failing_loss"; }

  Result<std::unique_ptr<BoundLoss>> Bind(
      const Table& table, const DatasetView& ref) const override {
    if (fail_at_ == FailAt::kBind) {
      return Status::Internal("injected Bind failure");
    }
    return inner_.Bind(table, ref);
  }

  Result<double> Loss(const DatasetView& raw,
                      const DatasetView& sample) const override {
    if (fail_at_ == FailAt::kLoss) {
      return Status::Internal("injected Loss failure");
    }
    return inner_.Loss(raw, sample);
  }

  Result<std::unique_ptr<GreedyLossEvaluator>> MakeGreedyEvaluator(
      const DatasetView& raw) const override {
    if (fail_at_ == FailAt::kEvaluator) {
      return Status::Internal("injected evaluator failure");
    }
    return inner_.MakeGreedyEvaluator(raw);
  }

  std::vector<std::string> InputColumns() const override {
    return inner_.InputColumns();
  }

 private:
  FailAt fail_at_;
  MeanLoss inner_;
};

std::unique_ptr<Table> SmallTaxi() {
  TaxiGeneratorOptions gen;
  gen.num_rows = 5000;
  gen.seed = 4;
  return TaxiGenerator(gen).Generate();
}

TabulaOptions OptionsFor(const LossFunction* loss) {
  TabulaOptions opts;
  opts.cubed_attributes = {"payment_type", "rate_code"};
  opts.loss = loss;
  opts.threshold = 0.05;
  return opts;
}

TEST(FailureInjectionTest, BindFailurePropagatesFromInitialize) {
  auto table = SmallTaxi();
  FailingLoss loss(FailingLoss::FailAt::kBind);
  auto tabula = Tabula::Initialize(*table, OptionsFor(&loss));
  ASSERT_FALSE(tabula.ok());
  EXPECT_EQ(tabula.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, EvaluatorFailurePropagatesFromRealRun) {
  auto table = SmallTaxi();
  FailingLoss loss(FailingLoss::FailAt::kEvaluator);
  auto tabula = Tabula::Initialize(*table, OptionsFor(&loss));
  ASSERT_FALSE(tabula.ok());
  EXPECT_EQ(tabula.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, EvaluatorFailurePropagatesFromSampler) {
  auto table = SmallTaxi();
  FailingLoss loss(FailingLoss::FailAt::kEvaluator);
  GreedySampler sampler(&loss, 0.05);
  DatasetView raw(table.get());
  EXPECT_FALSE(sampler.Sample(raw).ok());
}

TEST(FailureInjectionTest, LossFailurePropagatesFromBaselines) {
  auto table = SmallTaxi();
  FailingLoss loss(FailingLoss::FailAt::kLoss);
  MaterializedSampleCube partial(*table, {"payment_type"}, &loss, 0.05,
                                 MaterializedSampleCube::Mode::kPartial);
  EXPECT_FALSE(partial.Prepare().ok());
}

TEST(FailureInjectionTest, NeverFailingWrapperWorksEndToEnd) {
  // Sanity: the wrapper itself is sound when not failing.
  auto table = SmallTaxi();
  FailingLoss loss(FailingLoss::FailAt::kNever);
  auto tabula = Tabula::Initialize(*table, OptionsFor(&loss));
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
}

// ---------- degenerate inputs ----------

TEST(DegenerateInputTest, EmptyTableInitializes) {
  Table empty(TaxiGenerator::MakeSchema());
  MeanLoss loss("fare_amount");
  auto tabula = Tabula::Initialize(empty, OptionsFor(&loss));
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
  EXPECT_EQ(tabula.value()->init_stats().total_cells, 0u);
  EXPECT_EQ(tabula.value()->init_stats().iceberg_cells, 0u);
  // Queries on an empty cube return the (empty) global sample.
  auto answer = tabula.value()->Query(QueryRequest{});
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->result.sample.size(), 0u);
}

TEST(DegenerateInputTest, SingleRowTable) {
  Table table(TaxiGenerator::MakeSchema());
  ASSERT_TRUE(table
                  .AppendRow({Value("CMT"), Value("Mon"), Value("1"),
                              Value("Cash"), Value("Standard"), Value("N"),
                              Value("Mon"), Value("[0,5)"), Value(1.0),
                              Value(5.0), Value(0.0), Value(0.5),
                              Value(0.5)})
                  .ok());
  MeanLoss loss("fare_amount");
  auto tabula = Tabula::Initialize(table, OptionsFor(&loss));
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
  auto answer = tabula.value()->Query(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->sample.size(), 1u);
  DatasetView truth(&table);
  EXPECT_LE(loss.Loss(truth, answer->sample).value(), 0.05);
}

TEST(DegenerateInputTest, ConstantTargetColumn) {
  // All fares identical: every loss is exactly 0, nothing is iceberg.
  Table table(TaxiGenerator::MakeSchema());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({Value(i % 2 == 0 ? "CMT" : "VTS"),
                                Value("Mon"), Value("1"), Value("Cash"),
                                Value("Standard"), Value("N"), Value("Mon"),
                                Value("[0,5)"), Value(1.0), Value(10.0),
                                Value(0.0), Value(0.5), Value(0.5)})
                    .ok());
  }
  MeanLoss loss("fare_amount");
  TabulaOptions opts = OptionsFor(&loss);
  opts.cubed_attributes = {"vendor_name"};
  auto tabula = Tabula::Initialize(table, opts);
  ASSERT_TRUE(tabula.ok());
  EXPECT_EQ(tabula.value()->init_stats().iceberg_cells, 0u);
}

TEST(DegenerateInputTest, SamplerOnIdenticalPoints) {
  // All pickups at one point: a single tuple must satisfy any θ.
  Table table(TaxiGenerator::MakeSchema());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({Value("CMT"), Value("Mon"), Value("1"),
                                Value("Cash"), Value("Standard"), Value("N"),
                                Value("Mon"), Value("[0,5)"), Value(1.0),
                                Value(5.0), Value(0.0), Value(0.25),
                                Value(0.75)})
                    .ok());
  }
  auto loss = MakeHeatmapLoss("pickup_x", "pickup_y");
  GreedySampler sampler(loss.get(), 1e-9);
  DatasetView raw(&table);
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 1u);
}

TEST(DegenerateInputTest, SelectionWithSingleIcebergCell) {
  auto table = SmallTaxi();
  MeanLoss loss("fare_amount");
  CubeTable cube;
  IcebergCell cell;
  cell.key = 1;
  cell.cuboid = 0b1;
  for (RowId r = 0; r < 100; ++r) cell.raw_rows.push_back(r);
  cell.local_sample = {0, 1, 2};
  // Make the "sample" actually satisfy θ for its raw data.
  GreedySampler sampler(&loss, 0.05);
  DatasetView raw(table.get(), cell.raw_rows);
  cell.local_sample = sampler.Sample(raw).value();
  cube.Add(std::move(cell));

  SampleTable samples;
  SelectionOptions opts;
  auto sel = SelectRepresentativeSamples(*table, loss, 0.05, opts, &cube,
                                         &samples);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->representatives, 1u);
  EXPECT_EQ(cube.cells()[0].sample_id, 0u);
}

TEST(DegenerateInputTest, SampleOnTheFlyEmptyPopulation) {
  auto table = SmallTaxi();
  MeanLoss loss("fare_amount");
  SampleOnTheFly fly(*table, &loss, 0.05);
  ASSERT_TRUE(fly.Prepare().ok());
  // A contradiction-free but unmatched filter.
  auto answer = fly.Execute(
      {{"payment_type", CompareOp::kEq, Value("Cash")},
       {"payment_type", CompareOp::kNe, Value("Cash")}});
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 0u);
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"

namespace tabula {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 20000;
    gen.seed = 31;
    table_ = TaxiGenerator(gen).Generate();
    loss_ = std::make_unique<MeanLoss>("fare_amount");
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
};

TEST_F(PersistenceTest, SaveLoadRoundTripAnswersIdentically) {
  auto original = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("tabula_cube.bin");
  ASSERT_TRUE(original.value()->Save(path).ok());

  auto loaded = Tabula::Load(*table_, options_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Identical structure...
  EXPECT_EQ(loaded.value()->cube_table().size(),
            original.value()->cube_table().size());
  EXPECT_EQ(loaded.value()->sample_table().size(),
            original.value()->sample_table().size());
  EXPECT_EQ(loaded.value()->global_sample().size(),
            original.value()->global_sample().size());

  // ...and identical answers for a spread of queries.
  std::vector<std::vector<PredicateTerm>> queries = {
      {},
      {{"payment_type", CompareOp::kEq, Value("Cash")}},
      {{"rate_code", CompareOp::kEq, Value("JFK")}},
      {{"payment_type", CompareOp::kEq, Value("Dispute")},
       {"rate_code", CompareOp::kEq, Value("Standard")}},
  };
  for (const auto& where : queries) {
    auto a = original.value()->Query(where);
    auto b = loaded.value()->Query(where);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->from_local_sample, b->from_local_sample);
    EXPECT_EQ(a->sample.ToRowIds(), b->sample.ToRowIds());
  }
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, LoadIsFasterThanInitialize) {
  auto original = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("tabula_cube_fast.bin");
  ASSERT_TRUE(original.value()->Save(path).ok());
  auto loaded = Tabula::Load(*table_, options_, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_LT(loaded.value()->init_stats().total_millis,
            original.value()->init_stats().total_millis);
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, RejectsWrongTable) {
  auto original = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("tabula_cube_wrong.bin");
  ASSERT_TRUE(original.value()->Save(path).ok());

  TaxiGeneratorOptions gen;
  gen.num_rows = 20000;
  gen.seed = 99;  // different content, same shape
  auto other_table = TaxiGenerator(gen).Generate();
  auto loaded = Tabula::Load(*other_table, options_, path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, RejectsMismatchedConfiguration) {
  auto original = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("tabula_cube_cfg.bin");
  ASSERT_TRUE(original.value()->Save(path).ok());

  TabulaOptions wrong_theta = options_;
  wrong_theta.threshold = 0.10;
  EXPECT_FALSE(Tabula::Load(*table_, wrong_theta, path).ok());

  // A loss with a different registry name is rejected.
  auto other_loss = MakeHistogramLoss("fare_amount");
  TabulaOptions wrong_loss = options_;
  wrong_loss.loss = other_loss.get();
  EXPECT_FALSE(Tabula::Load(*table_, wrong_loss, path).ok());

  TabulaOptions wrong_attrs = options_;
  wrong_attrs.cubed_attributes = {"payment_type"};
  EXPECT_FALSE(Tabula::Load(*table_, wrong_attrs, path).ok());
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, RejectsCorruptFiles) {
  std::string path = TempPath("tabula_cube_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a cube file at all, sorry";
  }
  EXPECT_FALSE(Tabula::Load(*table_, options_, path).ok());

  // Truncated real file.
  auto original = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(original.value()->Save(path).ok());
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(Tabula::Load(*table_, options_, path).ok());
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, MissingFileIsIOError) {
  auto loaded = Tabula::Load(*table_, options_, "/nonexistent/cube.bin");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/binary_io.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace tabula {
namespace {

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights{0.9, 0.1};
  size_t zeros = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Discrete(weights) == 0) ++zeros;
  }
  EXPECT_GT(zeros, 1600u);
  EXPECT_LT(zeros, 1990u);
}

TEST(RngTest, SampleWithoutReplacementSparse) {
  Rng rng(5);
  auto picks = rng.SampleWithoutReplacement(1000000, 50);
  std::set<uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 50u);
  for (uint32_t p : picks) EXPECT_LT(p, 1000000u);
}

TEST(RngTest, SampleWithoutReplacementDense) {
  Rng rng(5);
  auto picks = rng.SampleWithoutReplacement(100, 80);
  std::set<uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 80u);
}

TEST(RngTest, SampleAllWhenKExceedsN) {
  Rng rng(5);
  auto picks = rng.SampleWithoutReplacement(10, 100);
  EXPECT_EQ(picks.size(), 10u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkIndicesDisjoint) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<size_t> chunks;
  pool.ParallelForChunked(100, [&](size_t chunk, size_t, size_t) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert(chunk);
  });
  EXPECT_GE(chunks.size(), 1u);
  EXPECT_LE(chunks.size(), 5u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a worker must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ThreadPool::Global().ParallelFor(10, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPoolTest, SubmitReturnsCompletableFuture) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto fut = pool.Submit([&] { ran = true; });
  fut.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, EmptyChunkedRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelForChunked(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmittedExceptionPropagatesViaFuture) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive.
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForSurvivesThrowingChunk) {
  ThreadPool pool(4);
  // One chunk throws; every other chunk must still run to completion
  // (the pool must not abandon tasks referencing the caller's lambda),
  // the first exception resurfaces, and the pool stays usable.
  std::atomic<size_t> visited{0};
  auto run = [&] {
    pool.ParallelFor(1000, [&](size_t begin, size_t end) {
      if (begin == 0) throw std::runtime_error("chunk boom");
      visited += end - begin;
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  EXPECT_EQ(visited.load(), 1000 - 250u);  // all chunks but the thrower

  std::atomic<size_t> total{0};
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 1000u);
}

// ---------- string_util ----------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, TrimView) {
  EXPECT_EQ(TrimView("  hi \t\n"), "hi");
  EXPECT_EQ(TrimView(""), "");
  EXPECT_EQ(TrimView("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "groups"));
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(3u * 1024 * 1024), "3.00 MB");
}

TEST(StringUtilTest, HumanMillis) {
  EXPECT_EQ(HumanMillis(2500.0), "2.50 s");
  EXPECT_EQ(HumanMillis(42.0), "42.0 ms");
  EXPECT_EQ(HumanMillis(0.5), "0.500 ms");
}

// ---------- env ----------

TEST(EnvTest, FallbacksAndParses) {
  unsetenv("TABULA_TEST_ENV");
  EXPECT_EQ(EnvInt64("TABULA_TEST_ENV", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("TABULA_TEST_ENV", 1.5), 1.5);
  EXPECT_EQ(EnvString("TABULA_TEST_ENV", "x"), "x");
  setenv("TABULA_TEST_ENV", "123", 1);
  EXPECT_EQ(EnvInt64("TABULA_TEST_ENV", 42), 123);
  setenv("TABULA_TEST_ENV", "2.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("TABULA_TEST_ENV", 1.5), 2.25);
  setenv("TABULA_TEST_ENV", "garbage", 1);
  EXPECT_EQ(EnvInt64("TABULA_TEST_ENV", 42), 42);
  unsetenv("TABULA_TEST_ENV");
}

// ---------- Stopwatch ----------

TEST(StopwatchTest, MonotoneAndRestartable) {
  Stopwatch sw;
  double t1 = sw.ElapsedMillis();
  double t2 = sw.ElapsedMillis();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 1000.0);
  EXPECT_NEAR(sw.ElapsedSeconds() * 1000.0, sw.ElapsedMillis(), 1.0);
}

// ---------- binary_io ----------

TEST(BinaryIoTest, RoundTripAllTypes) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x1122334455667788ull);
  w.WriteDouble(3.14159);
  w.WriteString("hello cube");
  w.WriteVector(std::vector<uint32_t>{1, 2, 3});
  ASSERT_TRUE(w.ok());

  BinaryReader r(&ss);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x1122334455667788ull);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.14159);
  EXPECT_EQ(r.ReadString().value(), "hello cube");
  EXPECT_EQ(r.ReadVector<uint32_t>().value(),
            (std::vector<uint32_t>{1, 2, 3}));
}

TEST(BinaryIoTest, TruncatedReadFails) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.WriteU32(7);
  BinaryReader r(&ss);
  EXPECT_TRUE(r.ReadU32().ok());
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(BinaryIoTest, HostileLengthRejected) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.WriteU64(~0ull);  // absurd string length
  BinaryReader r(&ss);
  EXPECT_FALSE(r.ReadString().ok());
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "data/taxi_gen.h"
#include "data/workload.h"
#include "exec/key_encoder.h"
#include "loss/spatial.h"
#include "storage/predicate.h"

namespace tabula {
namespace {

class TaxiGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TaxiGeneratorOptions gen;
    gen.num_rows = 50000;
    gen.seed = 123;
    table_ = TaxiGenerator(gen).Generate().release();
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static const Table* table_;
};

const Table* TaxiGenTest::table_ = nullptr;

TEST_F(TaxiGenTest, SchemaAndCardinalities) {
  EXPECT_EQ(table_->num_rows(), 50000u);
  auto enc = KeyEncoder::Make(*table_, TaxiGenerator::ExperimentAttributes());
  ASSERT_TRUE(enc.ok());
  // The paper's attribute cardinalities are small categoricals; full
  // cubes over 4..7 attributes land in the thousands-to-150k cell range.
  EXPECT_EQ(enc->Cardinality(0), 3u);  // vendor
  EXPECT_EQ(enc->Cardinality(1), 7u);  // pickup weekday
  EXPECT_EQ(enc->Cardinality(2), 6u);  // passenger count
  EXPECT_EQ(enc->Cardinality(3), 4u);  // payment type
  EXPECT_EQ(enc->Cardinality(4), 5u);  // rate code
  EXPECT_EQ(enc->Cardinality(5), 2u);  // store and forward
  EXPECT_EQ(enc->Cardinality(6), 7u);  // dropoff weekday
}

TEST_F(TaxiGenTest, DeterministicForSameSeed) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 500;
  gen.seed = 77;
  auto a = TaxiGenerator(gen).Generate();
  auto b = TaxiGenerator(gen).Generate();
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (RowId r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->GetValue(c, r), b->GetValue(c, r)) << r << "," << c;
    }
  }
}

TEST_F(TaxiGenTest, FareTracksDistance) {
  auto dist = table_->ColumnByName("trip_distance");
  auto fare = table_->ColumnByName("fare_amount");
  ASSERT_TRUE(dist.ok());
  ASSERT_TRUE(fare.ok());
  // Correlation between distance and fare must be strongly positive.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  size_t n = table_->num_rows();
  for (RowId r = 0; r < n; ++r) {
    double x = dist.value()->As<DoubleColumn>()->At(r);
    double y = fare.value()->As<DoubleColumn>()->At(r);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double corr = (n * sxy - sx * sy) /
                std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.9);
}

TEST_F(TaxiGenTest, AirportHotspotExists) {
  // JFK-rate rides must cluster around the JFK hotspot (0.82, 0.18) far
  // from Manhattan — the Figure 2 "red circle" pattern.
  auto pred = BoundPredicate::Bind(
      *table_, {{"rate_code", CompareOp::kEq, Value("JFK")}});
  ASSERT_TRUE(pred.ok());
  auto rows = pred->FilterAll();
  ASSERT_GT(rows.size(), 500u);
  auto px = table_->ColumnByName("pickup_x");
  auto py = table_->ColumnByName("pickup_y");
  size_t near_airport = 0;
  for (RowId r : rows) {
    double dx = px.value()->As<DoubleColumn>()->At(r) - 0.82;
    double dy = py.value()->As<DoubleColumn>()->At(r) - 0.18;
    if (std::sqrt(dx * dx + dy * dy) < 0.08) ++near_airport;
  }
  EXPECT_GT(static_cast<double>(near_airport) / rows.size(), 0.6);
}

TEST_F(TaxiGenTest, TipsDependOnPaymentType) {
  auto tip = table_->ColumnByName("tip_amount");
  auto fare = table_->ColumnByName("fare_amount");
  for (const char* payment : {"Credit", "Cash"}) {
    auto pred = BoundPredicate::Bind(
        *table_, {{"payment_type", CompareOp::kEq, Value(payment)}});
    auto rows = pred->FilterAll();
    double tip_rate = 0.0;
    for (RowId r : rows) {
      tip_rate += tip.value()->As<DoubleColumn>()->At(r) /
                  fare.value()->As<DoubleColumn>()->At(r);
    }
    tip_rate /= rows.size();
    if (std::string(payment) == "Credit") {
      EXPECT_GT(tip_rate, 0.15);
    } else {
      EXPECT_LT(tip_rate, 0.05);
    }
  }
}

TEST_F(TaxiGenTest, DistanceBinMatchesDistance) {
  auto bin = table_->ColumnByName("trip_distance_bin");
  auto dist = table_->ColumnByName("trip_distance");
  for (RowId r = 0; r < 2000; ++r) {
    double d = dist.value()->As<DoubleColumn>()->At(r);
    std::string b = bin.value()->GetValue(r).AsString();
    if (d < 5) {
      EXPECT_EQ(b, "[0,5)");
    } else if (d < 10) {
      EXPECT_EQ(b, "[5,10)");
    }
  }
}

TEST_F(TaxiGenTest, CoordinatesNormalized) {
  auto px = table_->ColumnByName("pickup_x");
  auto py = table_->ColumnByName("pickup_y");
  for (RowId r = 0; r < table_->num_rows(); ++r) {
    double x = px.value()->As<DoubleColumn>()->At(r);
    double y = py.value()->As<DoubleColumn>()->At(r);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    ASSERT_GE(y, 0.0);
    ASSERT_LE(y, 1.0);
  }
}

TEST_F(TaxiGenTest, UnitConversionMatchesPaper) {
  // Figure 11: "0.25 kilo meter ≈ 0.004 (normalized distance)".
  EXPECT_NEAR(0.25 * kNormalizedUnitsPerKm, 0.004, 1e-12);
}

// ---------- Workload ----------

TEST(WorkloadTest, QueriesAreNonEmptyCells) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 10000;
  auto table = TaxiGenerator(gen).Generate();
  WorkloadOptions opts;
  opts.num_queries = 100;
  auto attrs = std::vector<std::string>{"payment_type", "rate_code",
                                        "passenger_count"};
  auto workload = GenerateWorkload(*table, attrs, opts);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->size(), 100u);
  for (const auto& q : *workload) {
    auto pred = BoundPredicate::Bind(*table, q.where);
    ASSERT_TRUE(pred.ok());
    EXPECT_FALSE(pred->FilterAll().empty()) << q.ToString();
    // Only cubed attributes appear.
    for (const auto& term : q.where) {
      EXPECT_NE(std::find(attrs.begin(), attrs.end(), term.column),
                attrs.end());
    }
  }
}

TEST(WorkloadTest, CoversMultipleCuboids) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 5000;
  auto table = TaxiGenerator(gen).Generate();
  WorkloadOptions opts;
  opts.num_queries = 60;
  auto workload =
      GenerateWorkload(*table, {"payment_type", "rate_code"}, opts);
  ASSERT_TRUE(workload.ok());
  std::set<size_t> arities;
  for (const auto& q : *workload) arities.insert(q.where.size());
  // 0, 1 and 2 predicate queries must all occur.
  EXPECT_EQ(arities, (std::set<size_t>{0, 1, 2}));
}

TEST(WorkloadTest, DeterministicForSeed) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 2000;
  auto table = TaxiGenerator(gen).Generate();
  WorkloadOptions opts;
  opts.num_queries = 10;
  opts.seed = 5;
  auto a = GenerateWorkload(*table, {"payment_type"}, opts);
  auto b = GenerateWorkload(*table, {"payment_type"}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
  }
}

}  // namespace
}  // namespace tabula

#include <gtest/gtest.h>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "data/workload.h"
#include "loss/topk_loss.h"
#include "sampling/greedy_sampler.h"
#include "sql/engine.h"

namespace tabula {
namespace {

std::unique_ptr<Table> ValuesTable(const std::vector<double>& values) {
  Schema schema({{"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  for (double v : values) EXPECT_TRUE(table->AppendRow({Value(v)}).ok());
  return table;
}

TEST(TopKLossTest, TopKAvgOfKnownValues) {
  auto table = ValuesTable({1, 9, 3, 7, 5});
  TopKLoss loss("v", 2);
  DatasetView raw(table.get());
  // Top-2 of raw = {9, 7} → avg 8. Sample {9} → top-2 avg 9.
  DatasetView sample(table.get(), {1});
  EXPECT_NEAR(loss.Loss(raw, sample).value(), std::abs((8.0 - 9.0) / 8.0),
              1e-12);
  // A sample containing the true top-2 has zero loss.
  DatasetView perfect(table.get(), {1, 3});
  EXPECT_DOUBLE_EQ(loss.Loss(raw, perfect).value(), 0.0);
}

TEST(TopKLossTest, EmptySampleIsInfinite) {
  auto table = ValuesTable({1, 2, 3});
  TopKLoss loss("v", 2);
  DatasetView raw(table.get());
  DatasetView empty(table.get(), {});
  EXPECT_EQ(loss.Loss(raw, empty).value(), kInfiniteLoss);
}

TEST(TopKLossTest, StateMergeKeepsKLargest) {
  auto table = ValuesTable({10, 40, 20, 50, 30, 60});
  TopKLoss loss("v", 3);
  DatasetView ref(table.get(), {0});
  auto bound = loss.Bind(*table, ref);
  ASSERT_TRUE(bound.ok());

  LossState a, b, whole;
  for (RowId r : {0u, 1u, 2u}) bound.value()->Accumulate(&a, r);
  for (RowId r : {3u, 4u, 5u}) bound.value()->Accumulate(&b, r);
  for (RowId r = 0; r < 6; ++r) bound.value()->Accumulate(&whole, r);
  a.Merge(b);
  EXPECT_EQ(a.topk, (std::vector<double>{60, 50, 40}));
  EXPECT_EQ(a.topk, whole.topk);
  EXPECT_NEAR(bound.value()->Finalize(a), bound.value()->Finalize(whole),
              1e-12);
}

TEST(TopKLossTest, MergeWithPartiallyFilledSides) {
  // One side saw fewer than k values; the merge must keep all ≤ k.
  auto table = ValuesTable({10, 90, 20});
  TopKLoss loss("v", 5);
  DatasetView ref(table.get(), {0});
  auto bound = loss.Bind(*table, ref);
  ASSERT_TRUE(bound.ok());
  LossState a, b;
  bound.value()->Accumulate(&a, 0);
  bound.value()->Accumulate(&b, 1);
  bound.value()->Accumulate(&b, 2);
  a.Merge(b);
  EXPECT_EQ(a.topk, (std::vector<double>{90, 20, 10}));
}

TEST(TopKLossTest, GreedySamplerMeetsThreshold) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 5000;
  gen.seed = 14;
  auto table = TaxiGenerator(gen).Generate();
  TopKLoss loss("fare_amount", 10);
  GreedySampler sampler(&loss, 0.02);
  DatasetView raw(table.get());
  auto sample = sampler.Sample(raw);
  ASSERT_TRUE(sample.ok());
  DatasetView sample_view(table.get(), sample.value());
  EXPECT_LE(loss.Loss(raw, sample_view).value(), 0.02);
  // Matching the top-k needs only a handful of tuples.
  EXPECT_LE(sample->size(), 20u);
}

TEST(TopKLossTest, TabulaEndToEndGuarantee) {
  TaxiGeneratorOptions gen;
  gen.num_rows = 20000;
  gen.seed = 15;
  auto table = TaxiGenerator(gen).Generate();
  TopKLoss loss("fare_amount", 10);
  TabulaOptions opts;
  opts.cubed_attributes = {"payment_type", "rate_code"};
  opts.loss = &loss;
  opts.threshold = 0.05;
  auto tabula = Tabula::Initialize(*table, opts);
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();
  EXPECT_GT(tabula.value()->init_stats().iceberg_cells, 0u);

  WorkloadOptions wopts;
  wopts.num_queries = 30;
  auto workload = GenerateWorkload(*table, opts.cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload.value()) {
    auto answer = tabula.value()->Query(q.where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table, q.where);
    DatasetView truth(table.get(), pred->FilterAll());
    if (truth.empty()) continue;
    EXPECT_LE(loss.Loss(truth, answer->sample).value(), 0.05)
        << q.ToString();
  }
}

TEST(TopKLossTest, AvailableThroughSql) {
  sql::SqlEngine engine;
  TaxiGeneratorOptions gen;
  gen.num_rows = 8000;
  ASSERT_TRUE(
      engine.RegisterTable("rides", TaxiGenerator(gen).Generate()).ok());
  auto create = engine.Execute(
      "CREATE TABLE tk AS SELECT payment_type, SAMPLING(*, 0.05) AS sample "
      "FROM rides GROUP BY CUBE(payment_type) "
      "HAVING topk_loss(fare_amount, SAM_GLOBAL) > 0.05");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  auto query =
      engine.Execute("SELECT sample FROM tk WHERE payment_type = 'Credit'");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->has_sample);
}

}  // namespace
}  // namespace tabula

/// Differential tests (SQLite-TH3 style): the optimized cube pipeline —
/// the algebraic dry-run roll-up, the cost-model fetch paths, the
/// lazy-forward greedy sampler — against the deliberately naive
/// reference implementations in src/testing/oracle.h, across many
/// random tables and seeds. Agreement is the test: the oracle shares no
/// code with the production path beyond the LossFunction interface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "cube/dry_run.h"
#include "cube/real_run.h"
#include "data/synthetic_gen.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"
#include "sampling/greedy_sampler.h"
#include "sampling/random_sampler.h"
#include "testing/oracle.h"

namespace tabula {
namespace {

std::unique_ptr<Table> SmallTable(uint64_t seed, size_t rows,
                                  size_t num_cols) {
  SyntheticGeneratorOptions gen;
  gen.seed = seed;
  gen.num_rows = rows;
  gen.cell_spread = 1.2;
  gen.noise = 0.1;
  gen.columns.clear();
  Rng rng(seed * 31 + 7);
  for (size_t c = 0; c < num_cols; ++c) {
    SyntheticColumnSpec col;
    col.name = "c" + std::to_string(c);
    col.cardinality = 2 + static_cast<uint32_t>(rng.UniformInt(0, 2));
    col.zipf_skew = rng.Bernoulli(0.5) ? 0.7 : 0.0;
    gen.columns.push_back(col);
  }
  return SyntheticGenerator(gen).Generate();
}

std::vector<std::string> ColNames(size_t num_cols) {
  std::vector<std::string> names;
  for (size_t c = 0; c < num_cols; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  return names;
}

/// A random cell-sized raw view: a contiguous-ish random subset of rows.
DatasetView RandomRaw(const Table& table, uint64_t seed, size_t min_rows,
                      size_t max_rows) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(min_rows),
                     static_cast<int64_t>(max_rows)));
  n = std::min(n, table.num_rows());
  std::vector<uint32_t> picked = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(table.num_rows()), static_cast<uint32_t>(n));
  std::vector<RowId> rows(picked.begin(), picked.end());
  std::sort(rows.begin(), rows.end());
  return DatasetView(&table, std::move(rows));
}

/// ---------------------------------------------------------------------
/// Sampler differential: production GreedySampler (lazy-forward,
/// incremental evaluators) vs NaiveGreedySample (direct loss, no
/// acceleration). Both scan candidates in the same seeded shuffle
/// order, so on exact loss ties they pick the same candidate; the
/// samples must match EXACTLY — element order included. Any divergence
/// means an optimization changed the algorithm, not just its speed.
/// ---------------------------------------------------------------------

/// `exact` = true demands element-for-element equality (the exhaustive
/// path's chunked scan provably shares the naive tie-break: smallest
/// shuffled-pool index wins). The lazy-forward (CELF) heap breaks exact
/// gain TIES by heap order instead, so submodular losses may substitute
/// an equally-good candidate; with `exact` = false that is the ONLY
/// divergence allowed — sizes must still match, and at the first
/// diverging pick both candidates must yield the same loss to within
/// FP noise. Anything beyond a tied swap is a real algorithmic bug.
void RunSamplerDifferential(const LossFunction& loss, uint64_t seed,
                            double theta, bool exact) {
  std::unique_ptr<Table> table = SmallTable(seed, 400, 2);
  DatasetView raw = RandomRaw(*table, seed * 131 + 1, 30, 220);

  GreedySamplerOptions opts;
  opts.seed = seed;
  opts.max_candidates = 0;  // the naive reference has no pool cap
  GreedySampler sampler(&loss, theta, opts);
  Result<std::vector<RowId>> fast = sampler.Sample(raw);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  Result<std::vector<RowId>> naive =
      NaiveGreedySample(*table, loss, theta, raw, seed);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  if (exact) {
    EXPECT_EQ(fast.value(), naive.value())
        << "seed=" << seed << " theta=" << theta
        << " fast_size=" << fast.value().size()
        << " naive_size=" << naive.value().size();
  } else {
    ASSERT_EQ(fast.value().size(), naive.value().size())
        << "seed=" << seed << " theta=" << theta;
    // Find the first diverging pick. Everything before it must agree;
    // the two picks there must be an exact gain tie.
    size_t i = 0;
    while (i < fast.value().size() &&
           fast.value()[i] == naive.value()[i]) {
      ++i;
    }
    if (i < fast.value().size()) {
      std::vector<RowId> prefix(fast.value().begin(),
                                fast.value().begin() + i);
      double alts[2];
      const RowId picks[2] = {fast.value()[i], naive.value()[i]};
      for (int k = 0; k < 2; ++k) {
        std::vector<RowId> trial = prefix;
        trial.push_back(picks[k]);
        DatasetView view(table.get(), std::move(trial));
        Result<double> l = loss.Loss(raw, view);
        ASSERT_TRUE(l.ok());
        alts[k] = l.value();
      }
      EXPECT_NEAR(alts[0], alts[1],
                  1e-9 * std::max(1.0, std::abs(alts[0])))
          << "seed=" << seed << " pick " << i
          << ": lazy-forward chose a strictly worse candidate ("
          << picks[0] << " vs " << picks[1] << ")";
    }
  }

  // Both must independently satisfy the deterministic guarantee.
  for (const std::vector<RowId>* s : {&fast.value(), &naive.value()}) {
    DatasetView sample_view(table.get(), *s);
    Result<double> l = loss.Loss(raw, sample_view);
    ASSERT_TRUE(l.ok());
    EXPECT_LE(l.value(), theta * (1.0 + 1e-9) + 1e-12)
        << "seed=" << seed;
  }
}

TEST(SamplerDifferential, MeanLossMatchesNaiveAcross40Seeds) {
  MeanLoss loss("value");
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 977);
    double theta = 0.01 + rng.UniformDouble(0.0, 0.08);
    RunSamplerDifferential(loss, seed, theta, /*exact=*/true);
  }
}

TEST(SamplerDifferential, HeatmapLossMatchesNaiveAcross15Seeds) {
  // The heatmap loss is submodular, so this exercises the lazy-forward
  // (CELF) heap against naive exhaustive rounds.
  std::unique_ptr<LossFunction> loss = MakeHeatmapLoss("x", "y");
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 571);
    double theta = 0.01 + rng.UniformDouble(0.0, 0.04);
    RunSamplerDifferential(*loss, seed, theta, /*exact=*/false);
  }
}

TEST(SamplerDifferential, CappedPoolStillMeetsThetaAcrossSeeds) {
  // With a candidate cap the chosen sample may legitimately differ from
  // the uncapped greedy run (the pool only grows on demand), but the
  // deterministic guarantee must hold regardless — the termination
  // check is always against the full raw data.
  MeanLoss loss("value");
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::unique_ptr<Table> table = SmallTable(seed, 400, 2);
    DatasetView raw = RandomRaw(*table, seed * 131 + 1, 60, 220);
    const double theta = 0.02;
    GreedySamplerOptions opts;
    opts.seed = seed;
    opts.max_candidates = 8;  // force repeated pool doubling
    GreedySampler sampler(&loss, theta, opts);
    Result<std::vector<RowId>> sample = sampler.Sample(raw);
    ASSERT_TRUE(sample.ok());
    DatasetView sample_view(table.get(), sample.value());
    Result<double> l = loss.Loss(raw, sample_view);
    ASSERT_TRUE(l.ok());
    EXPECT_LE(l.value(), theta * (1.0 + 1e-9) + 1e-12) << "seed=" << seed;
  }
}

/// ---------------------------------------------------------------------
/// Cube differential: dry-run iceberg marking and real-run samples vs
/// the brute-force oracle cube (independent full scan per cuboid,
/// direct loss per cell — no LossState roll-up).
/// ---------------------------------------------------------------------

struct CubeFixture {
  std::unique_ptr<Table> table;
  KeyEncoder encoder;
  KeyPacker packer;
  Lattice lattice{1};
  std::vector<RowId> global_rows;
  DatasetView global_sample;
};

CubeFixture MakeCubeFixture(uint64_t seed, size_t rows, size_t num_cols) {
  CubeFixture f;
  f.table = SmallTable(seed, rows, num_cols);
  auto enc = KeyEncoder::Make(*f.table, ColNames(num_cols));
  EXPECT_TRUE(enc.ok());
  f.encoder = std::move(enc).value();
  std::vector<size_t> all_cols(num_cols);
  for (size_t i = 0; i < num_cols; ++i) all_cols[i] = i;
  auto packer = KeyPacker::Make(f.encoder, all_cols);
  EXPECT_TRUE(packer.ok());
  f.packer = std::move(packer).value();
  f.lattice = Lattice(num_cols);
  Rng rng(seed * 17 + 3);
  DatasetView all(f.table.get());
  f.global_rows = RandomSample(all, rows / 6, &rng);
  f.global_sample = DatasetView(f.table.get(), f.global_rows);
  return f;
}

TEST(CubeDifferential, DryRunIcebergMarkingMatchesOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const size_t num_cols = 2 + (seed % 2);
    CubeFixture f = MakeCubeFixture(seed, 360, num_cols);
    MeanLoss loss("value");
    const double theta = 0.04;

    auto dry = RunDryRun(*f.table, f.encoder, f.packer, f.lattice, loss,
                         f.global_sample, theta);
    ASSERT_TRUE(dry.ok()) << dry.status().ToString();
    auto oracle = BuildOracleCube(*f.table, f.encoder, f.packer, loss,
                                  f.global_sample, theta);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    EXPECT_EQ(dry.value().total_cells, oracle.value().total_cells)
        << "seed=" << seed;
    EXPECT_EQ(dry.value().total_iceberg_cells, oracle.value().iceberg_cells)
        << "seed=" << seed;

    for (const CuboidDryRunInfo& cuboid : dry.value().cuboids) {
      // Exact per-cuboid cell counts.
      size_t oracle_cells = 0;
      std::set<uint64_t> oracle_iceberg;
      for (const OracleCell& cell : oracle.value().cells) {
        if (cell.cuboid != cuboid.mask) continue;
        ++oracle_cells;
        if (cell.iceberg) oracle_iceberg.insert(cell.key);
      }
      EXPECT_EQ(cuboid.total_cells, oracle_cells)
          << "seed=" << seed << " cuboid=" << cuboid.mask;
      std::set<uint64_t> dry_iceberg(cuboid.iceberg_keys.begin(),
                                     cuboid.iceberg_keys.end());
      EXPECT_EQ(dry_iceberg, oracle_iceberg)
          << "seed=" << seed << " cuboid=" << cuboid.mask
          << ": the rolled-up LossState classification disagrees with "
             "the direct per-cell loss";
    }
  }
}

TEST(CubeDifferential, RealRunSamplesMatchOracleOnBothCostPaths) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CubeFixture f = MakeCubeFixture(seed, 360, 2);
    MeanLoss loss("value");
    const double theta = 0.04;

    auto dry = RunDryRun(*f.table, f.encoder, f.packer, f.lattice, loss,
                         f.global_sample, theta);
    ASSERT_TRUE(dry.ok());
    auto oracle = BuildOracleCube(*f.table, f.encoder, f.packer, loss,
                                  f.global_sample, theta);
    ASSERT_TRUE(oracle.ok());

    GreedySamplerOptions sampler_opts;
    sampler_opts.seed = seed;

    // Force BOTH data-fetch paths; Inequation 1 may only pick between
    // them, never change what gets sampled.
    RealRunResult runs[2];
    const RealRunPathPolicy policies[2] = {RealRunPathPolicy::kAlwaysJoin,
                                           RealRunPathPolicy::kAlwaysGroupBy};
    for (int p = 0; p < 2; ++p) {
      auto real = RunRealRun(*f.table, f.encoder, f.packer, f.lattice,
                             dry.value(), loss, theta, sampler_opts,
                             policies[p]);
      ASSERT_TRUE(real.ok()) << real.status().ToString();
      runs[p] = std::move(real).value();
    }

    for (const RealRunResult& run : runs) {
      // Exactly the oracle's iceberg cells got local samples.
      EXPECT_EQ(run.cube.size(), oracle.value().iceberg_cells)
          << "seed=" << seed;
      for (const IcebergCell& cell : run.cube.cells()) {
        const OracleCell* want = oracle.value().Find(cell.key);
        ASSERT_NE(want, nullptr) << "seed=" << seed
                                 << ": sampled a non-oracle cell";
        EXPECT_TRUE(want->iceberg);
        // The cell's raw rows must be exactly the oracle's direct scan.
        std::vector<RowId> got_rows = cell.raw_rows;
        std::vector<RowId> want_rows = want->rows;
        std::sort(got_rows.begin(), got_rows.end());
        std::sort(want_rows.begin(), want_rows.end());
        EXPECT_EQ(got_rows, want_rows) << "seed=" << seed;
        // And its local sample must meet θ by DIRECT loss against them.
        DatasetView raw(f.table.get(), want->rows);
        DatasetView sample(f.table.get(), cell.local_sample);
        Result<double> l = loss.Loss(raw, sample);
        ASSERT_TRUE(l.ok());
        EXPECT_LE(l.value(), theta * (1.0 + 1e-9) + 1e-12)
            << "seed=" << seed;
      }
    }

    // The two forced paths must produce IDENTICAL cubes: same cells,
    // same local samples (the sampler is seeded identically; only the
    // data-fetch strategy differs).
    ASSERT_EQ(runs[0].cube.size(), runs[1].cube.size());
    for (const IcebergCell& cell : runs[0].cube.cells()) {
      const IcebergCell* other = runs[1].cube.Find(cell.key);
      ASSERT_NE(other, nullptr) << "seed=" << seed;
      EXPECT_EQ(cell.local_sample, other->local_sample)
          << "seed=" << seed
          << ": join vs GroupBy fetch changed the sample";
    }
  }
}

}  // namespace
}  // namespace tabula

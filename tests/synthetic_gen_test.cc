#include <gtest/gtest.h>

#include "core/tabula.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "exec/key_encoder.h"
#include "loss/mean_loss.h"
#include "loss/min_dist_loss.h"

namespace tabula {
namespace {

TEST(SyntheticGenTest, DefaultSchemaAndCardinalities) {
  SyntheticGeneratorOptions opts;
  opts.num_rows = 5000;
  SyntheticGenerator gen(opts);
  auto table = gen.Generate();
  EXPECT_EQ(table->num_rows(), 5000u);
  EXPECT_EQ(table->schema().num_fields(), 7u);  // 4 dims + value + x + y
  auto enc = KeyEncoder::Make(*table, gen.CategoricalColumns());
  ASSERT_TRUE(enc.ok());
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(enc->Cardinality(k), 4u);
  }
}

TEST(SyntheticGenTest, DeterministicForSeed) {
  SyntheticGeneratorOptions opts;
  opts.num_rows = 300;
  opts.seed = 21;
  auto a = SyntheticGenerator(opts).Generate();
  auto b = SyntheticGenerator(opts).Generate();
  for (RowId r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      ASSERT_EQ(a->GetValue(c, r), b->GetValue(c, r));
    }
  }
}

TEST(SyntheticGenTest, ZipfSkewConcentratesMass) {
  SyntheticGeneratorOptions opts;
  opts.num_rows = 20000;
  opts.columns = {{"d", 8, 1.2}};
  SyntheticGenerator gen(opts);
  auto table = gen.Generate();
  // "d_0" must dominate "d_7" by a wide margin.
  const auto* col = table->column(0).As<CategoricalColumn>();
  size_t first = 0, last = 0;
  auto code0 = col->dict().Find("d_0");
  auto code7 = col->dict().Find("d_7");
  ASSERT_TRUE(code0.ok());
  ASSERT_TRUE(code7.ok());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (col->CodeAt(r) == code0.value()) ++first;
    if (col->CodeAt(r) == code7.value()) ++last;
  }
  EXPECT_GT(first, 4 * last);
}

TEST(SyntheticGenTest, CellSpreadControlsIcebergCells) {
  MeanLoss loss("value");
  auto count_icebergs = [&](double spread) {
    SyntheticGeneratorOptions opts;
    opts.num_rows = 20000;
    opts.cell_spread = spread;
    opts.noise = 0.05;
    SyntheticGenerator gen(opts);
    auto table = gen.Generate();
    TabulaOptions topts;
    topts.cubed_attributes = gen.CategoricalColumns();
    topts.loss = &loss;
    topts.threshold = 0.05;
    auto tabula = Tabula::Initialize(*table, topts);
    EXPECT_TRUE(tabula.ok());
    return tabula.ok() ? tabula.value()->init_stats().iceberg_cells
                       : size_t{0};
  };
  // Identical cells → no iceberg cells; spread cells → many.
  EXPECT_EQ(count_icebergs(0.0), 0u);
  EXPECT_GT(count_icebergs(1.0), 50u);
}

TEST(SyntheticGenTest, TabulaGuaranteeOnNonTaxiData) {
  // Eight 3-ary dimensions — a shape very unlike NYC taxi.
  SyntheticGeneratorOptions opts;
  opts.num_rows = 15000;
  opts.columns.clear();
  for (int d = 0; d < 8; ++d) {
    opts.columns.push_back(
        {"dim" + std::to_string(d), 3, d % 2 == 0 ? 0.8 : 0.0});
  }
  opts.cell_spread = 0.8;
  SyntheticGenerator gen(opts);
  auto table = gen.Generate();

  auto loss = MakeHeatmapLoss("x", "y");
  TabulaOptions topts;
  topts.cubed_attributes = gen.CategoricalColumns();
  topts.loss = loss.get();
  topts.threshold = 0.02;
  auto tabula = Tabula::Initialize(*table, topts);
  ASSERT_TRUE(tabula.ok()) << tabula.status().ToString();

  WorkloadOptions wopts;
  wopts.num_queries = 30;
  auto workload = GenerateWorkload(*table, topts.cubed_attributes, wopts);
  ASSERT_TRUE(workload.ok());
  for (const auto& q : workload.value()) {
    auto answer = tabula.value()->Query(q.where);
    ASSERT_TRUE(answer.ok());
    auto pred = BoundPredicate::Bind(*table, q.where);
    DatasetView truth(table.get(), pred->FilterAll());
    if (truth.empty()) continue;
    EXPECT_LE(loss->Loss(truth, answer->sample).value(), 0.02)
        << q.ToString();
  }
}

}  // namespace
}  // namespace tabula

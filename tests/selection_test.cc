#include <gtest/gtest.h>

#include "common/rng.h"
#include "cube/dry_run.h"
#include "cube/real_run.h"
#include "loss/mean_loss.h"
#include "sampling/random_sampler.h"
#include "selection/rep_selection.h"
#include "selection/samgraph.h"
#include "storage/table.h"

namespace tabula {
namespace {

/// Table with several groups whose distributions come in two families, so
/// samples are highly reusable across iceberg cells.
std::unique_ptr<Table> FamiliesTable(size_t n = 6000, uint64_t seed = 13) {
  Schema schema({{"g1", DataType::kCategorical},
                 {"g2", DataType::kCategorical},
                 {"v", DataType::kDouble}});
  auto table = std::make_unique<Table>(schema);
  Rng rng(seed);
  const char* g1s[] = {"a", "b", "c", "d"};
  const char* g2s[] = {"p", "q", "r"};
  for (size_t i = 0; i < n; ++i) {
    const char* g1 = g1s[rng.UniformInt(0, 3)];
    const char* g2 = g2s[rng.UniformInt(0, 2)];
    // Family 1 (a, b): mean 200. Family 2 (c, d): mean 800.
    double base = (g1[0] == 'a' || g1[0] == 'b') ? 200.0 : 800.0;
    EXPECT_TRUE(
        table->AppendRow({Value(g1), Value(g2), Value(rng.Normal(base, 4.0))})
            .ok());
  }
  return table;
}

struct SelFixture {
  std::unique_ptr<Table> table;
  KeyEncoder encoder;
  KeyPacker packer;
  Lattice lattice{2};
  std::vector<RowId> global_rows;
  CubeTable cube;
  double theta = 0.05;
  MeanLoss loss{"v"};

  SelFixture() : table(FamiliesTable()) {
    auto enc = KeyEncoder::Make(*table, {"g1", "g2"});
    EXPECT_TRUE(enc.ok());
    encoder = std::move(enc).value();
    auto pk = KeyPacker::Make(encoder, {0, 1});
    EXPECT_TRUE(pk.ok());
    packer = std::move(pk).value();
    Rng rng(1);
    DatasetView all(table.get());
    global_rows = RandomSample(all, 400, &rng);

    auto dry = RunDryRun(*table, encoder, packer, lattice, loss,
                         DatasetView(table.get(), global_rows), theta);
    EXPECT_TRUE(dry.ok());
    GreedySamplerOptions opts;
    auto real = RunRealRun(*table, encoder, packer, lattice, *dry, loss,
                           theta, opts);
    EXPECT_TRUE(real.ok());
    cube = std::move(real->cube);
    EXPECT_GT(cube.size(), 2u);
  }
};

TEST(SamGraphTest, SelfEdgesAlwaysPresent) {
  SelFixture fx;
  SamGraphOptions opts;
  auto graph = SamGraph::Build(*fx.table, fx.cube, fx.loss, fx.theta, opts);
  ASSERT_TRUE(graph.ok());
  for (uint32_t v = 0; v < graph->num_vertices(); ++v) {
    const auto& in = graph->InEdges(v);
    EXPECT_NE(std::find(in.begin(), in.end(), v), in.end());
  }
}

TEST(SamGraphTest, EdgesRespectRepresentationDefinition) {
  SelFixture fx;
  SamGraphOptions opts;
  auto graph = SamGraph::Build(*fx.table, fx.cube, fx.loss, fx.theta, opts);
  ASSERT_TRUE(graph.ok());
  // Definition 5: edge u→v iff loss(raw(v), sample(u)) <= θ.
  for (uint32_t u = 0; u < graph->num_vertices(); ++u) {
    DatasetView sam_u(fx.table.get(), fx.cube.cells()[u].local_sample);
    for (uint32_t v : graph->OutEdges(u)) {
      DatasetView raw_v(fx.table.get(), fx.cube.cells()[v].raw_rows);
      EXPECT_LE(fx.loss.Loss(raw_v, sam_u).value(), fx.theta)
          << "edge " << u << "->" << v;
    }
  }
}

TEST(SamGraphTest, FamiliesShareRepresentatives) {
  SelFixture fx;
  SamGraphOptions opts;
  auto graph = SamGraph::Build(*fx.table, fx.cube, fx.loss, fx.theta, opts);
  ASSERT_TRUE(graph.ok());
  // Cells within the same value family have near-identical distributions,
  // so cross-cell edges must exist.
  EXPECT_GT(graph->num_edges(), graph->num_vertices());
}

TEST(SamGraphTest, CandidateCapBoundsEvaluations) {
  SelFixture fx;
  SamGraphOptions capped;
  capped.max_candidates_per_vertex = 2;
  auto graph = SamGraph::Build(*fx.table, fx.cube, fx.loss, fx.theta, capped);
  ASSERT_TRUE(graph.ok());
  EXPECT_LE(graph->loss_evaluations(), fx.cube.size() * 2);
}

TEST(RepSelectionTest, EveryCellLinksToAValidSample) {
  SelFixture fx;
  SampleTable samples;
  SelectionOptions opts;
  auto sel = SelectRepresentativeSamples(*fx.table, fx.loss, fx.theta, opts,
                                         &fx.cube, &samples);
  ASSERT_TRUE(sel.ok());
  EXPECT_GT(samples.size(), 0u);
  EXPECT_LE(samples.size(), fx.cube.size());
  for (const auto& cell : fx.cube.cells()) {
    ASSERT_NE(cell.sample_id, kInvalidSampleId);
    ASSERT_LT(cell.sample_id, samples.size());
  }
}

TEST(RepSelectionTest, RepresentativesFewerThanCellsWhenSimilar) {
  SelFixture fx;
  SampleTable samples;
  SelectionOptions opts;
  auto sel = SelectRepresentativeSamples(*fx.table, fx.loss, fx.theta, opts,
                                         &fx.cube, &samples);
  ASSERT_TRUE(sel.ok());
  // Two distribution families → far fewer representatives than cells.
  EXPECT_LT(sel->representatives, fx.cube.size());
  EXPECT_GT(sel->cells_sharing, 0u);
}

TEST(RepSelectionTest, BoundedErrorGuaranteeHolds) {
  // THE paper's core guarantee: after selection, the sample linked to any
  // iceberg cell is within θ of that cell's raw data.
  SelFixture fx;
  // Keep raw rows to verify after normalization drops them.
  std::vector<std::vector<RowId>> raw_copy;
  for (const auto& cell : fx.cube.cells()) raw_copy.push_back(cell.raw_rows);

  SampleTable samples;
  SelectionOptions opts;
  auto sel = SelectRepresentativeSamples(*fx.table, fx.loss, fx.theta, opts,
                                         &fx.cube, &samples);
  ASSERT_TRUE(sel.ok());
  for (size_t i = 0; i < fx.cube.size(); ++i) {
    const auto& cell = fx.cube.cells()[i];
    DatasetView raw(fx.table.get(), raw_copy[i]);
    DatasetView sample(fx.table.get(), samples.sample(cell.sample_id));
    EXPECT_LE(fx.loss.Loss(raw, sample).value(), fx.theta) << "cell " << i;
  }
}

TEST(RepSelectionTest, NormalizationDropsRawData) {
  SelFixture fx;
  SampleTable samples;
  SelectionOptions opts;
  ASSERT_TRUE(SelectRepresentativeSamples(*fx.table, fx.loss, fx.theta, opts,
                                          &fx.cube, &samples)
                  .ok());
  EXPECT_EQ(fx.cube.RawDataBytes(), 0u);
}

TEST(RepSelectionTest, PersistAllIsTabulaStar) {
  SelFixture fx;
  size_t cells = fx.cube.size();
  SampleTable samples;
  auto sel = PersistAllSamples(&fx.cube, &samples);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(samples.size(), cells);
  for (const auto& cell : fx.cube.cells()) {
    EXPECT_NE(cell.sample_id, kInvalidSampleId);
  }
}

TEST(RepSelectionTest, SelectionSmallerThanPersistAll) {
  SelFixture fx1;
  SampleTable with_sel;
  SelectionOptions opts;
  ASSERT_TRUE(SelectRepresentativeSamples(*fx1.table, fx1.loss, fx1.theta,
                                          opts, &fx1.cube, &with_sel)
                  .ok());
  SelFixture fx2;
  SampleTable without_sel;
  ASSERT_TRUE(PersistAllSamples(&fx2.cube, &without_sel).ok());
  EXPECT_LT(with_sel.TotalTuples(), without_sel.TotalTuples());
}

TEST(RepSelectionTest, EmptyCubeIsFine) {
  SelFixture fx;
  CubeTable empty;
  SampleTable samples;
  SelectionOptions opts;
  auto sel = SelectRepresentativeSamples(*fx.table, fx.loss, fx.theta, opts,
                                         &empty, &samples);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->representatives, 0u);
}

}  // namespace
}  // namespace tabula

#include "common/status.h"

#include <gtest/gtest.h>

namespace tabula {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingFn() { return Status::Internal("boom"); }

Status PropagatingFn() {
  TABULA_RETURN_NOT_OK(FailingFn());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagatingFn().code(), StatusCode::kInternal);
}

Result<int> ProduceInt(bool ok) {
  if (ok) return 7;
  return Status::OutOfRange("nope");
}

Result<int> ChainFn(bool ok) {
  TABULA_ASSIGN_OR_RETURN(int v, ProduceInt(ok));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnChains) {
  auto good = ChainFn(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 14);
  auto bad = ChainFn(false);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tabula

/// Fault-seam regression suite for streaming ingestion: every seam on
/// the ingest path (`ingest.route`, `ingest.journal.write`,
/// `ingest.merge`, `ingest.resample`) is armed mid-batch and the
/// invariant checked is always the same — the cube stays atomically at
/// the previous generation, serving exactly the answers it served
/// before, and once the fault clears a Drain() converges to the caught-
/// up state.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/tabula.h"
#include "data/taxi_gen.h"
#include "ingest/ingest_journal.h"
#include "ingest/ingestor.h"
#include "loss/mean_loss.h"
#include "shard/sharded_tabula.h"
#include "testing/fault_injection.h"

namespace tabula {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<Value> BoxRow(const Table& table, RowId r) {
  std::vector<Value> row;
  row.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    row.push_back(table.column(c).GetValue(r));
  }
  return row;
}

std::vector<std::vector<Value>> BoxRows(const Table& table, RowId begin,
                                        RowId end) {
  std::vector<std::vector<Value>> rows;
  for (RowId r = begin; r < end; ++r) rows.push_back(BoxRow(table, r));
  return rows;
}

class IngestFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TaxiGeneratorOptions gen;
    gen.num_rows = 9000;
    gen.seed = 31;
    full_ = TaxiGenerator(gen).Generate();
    base_rows_ = 8000;
    std::vector<RowId> base(base_rows_);
    for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
    table_ = full_->TakeRows(base);

    loss_ = std::make_unique<MeanLoss>("fare_amount");
    options_.cubed_attributes = {"payment_type", "rate_code"};
    options_.loss = loss_.get();
    options_.threshold = 0.05;
    options_.keep_maintenance_state = true;
  }

  FaultSpec ErrorSpec() {
    FaultSpec spec;
    spec.every_nth = 1;
    spec.code = StatusCode::kIOError;
    spec.message = "injected ingest fault";
    return spec;
  }

  std::unique_ptr<Table> full_;
  std::unique_ptr<Table> table_;
  size_t base_rows_ = 0;
  std::unique_ptr<MeanLoss> loss_;
  TabulaOptions options_;
};

TEST_F(IngestFaultTest, RouteFaultRejectsBatchBeforeAnySideEffect) {
  ScopedFaultClear clear;
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  const uint64_t gen0 = engine.value()->generation();
  auto ingestor =
      Ingestor::Make(engine.value().get(), table_.get(), IngestorOptions{});
  ASSERT_TRUE(ingestor.ok());

  FaultInjector::Global().Arm("ingest.route", ErrorSpec());
  Status st =
      ingestor.value()->Append(BoxRows(*full_, base_rows_, base_rows_ + 300));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // Atomic rejection: no rows, no pending work, generation untouched.
  EXPECT_EQ(table_->num_rows(), base_rows_);
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);
  EXPECT_EQ(engine.value()->generation(), gen0);
  EXPECT_GE(FaultInjector::Global().StatsFor("ingest.route").triggers, 1u);

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(
      ingestor.value()
          ->Append(BoxRows(*full_, base_rows_, base_rows_ + 300))
          .ok());
  EXPECT_EQ(engine.value()->generation(), gen0 + 1);
}

TEST_F(IngestFaultTest, JournalWriteFaultLeavesJournalAndCubeUntouched) {
  ScopedFaultClear clear;
  std::string wal = TempPath("ingest_fault_journal.wal");
  std::remove(wal.c_str());
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  const uint64_t gen0 = engine.value()->generation();
  IngestorOptions iopts;
  iopts.journal_path = wal;
  auto ingestor = Ingestor::Make(engine.value().get(), table_.get(), iopts);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE(
      ingestor.value()
          ->Append(BoxRows(*full_, base_rows_, base_rows_ + 100))
          .ok());
  const uint64_t journaled0 = ingestor.value()->journal()->journaled_rows();
  const auto wal_size0 = std::filesystem::file_size(wal);

  FaultInjector::Global().Arm("ingest.journal.write", ErrorSpec());
  Status st = ingestor.value()->Append(
      BoxRows(*full_, base_rows_ + 100, base_rows_ + 400));
  EXPECT_FALSE(st.ok());
  // The partial record was truncated back off: journal byte-identical
  // in length, no table rows, generation unchanged.
  EXPECT_EQ(std::filesystem::file_size(wal), wal_size0);
  EXPECT_EQ(ingestor.value()->journal()->journaled_rows(), journaled0);
  EXPECT_EQ(table_->num_rows(), base_rows_ + 100);
  EXPECT_EQ(engine.value()->generation(), gen0 + 1);

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(ingestor.value()
                  ->Append(BoxRows(*full_, base_rows_ + 100, base_rows_ + 400))
                  .ok());
  EXPECT_EQ(table_->num_rows(), base_rows_ + 400);
  // The journal still replays cleanly after the rollback.
  std::vector<RowId> base(base_rows_);
  for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
  auto recovered = full_->TakeRows(base);
  auto replayed = IngestJournal::Replay(wal, recovered.get());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_FALSE(replayed.value().truncated_tail);
  EXPECT_EQ(replayed.value().appended_rows, 400u);
  std::remove(wal.c_str());
}

TEST_F(IngestFaultTest, MergeFaultMidBatchKeepsPreviousGenerationAtomically) {
  ScopedFaultClear clear;
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  const uint64_t gen0 = engine.value()->generation();
  auto ingestor =
      Ingestor::Make(engine.value().get(), table_.get(), IngestorOptions{});
  ASSERT_TRUE(ingestor.ok());

  // Reference answer served before the failed cycle.
  const QueryRequest probe(
      {{"payment_type", CompareOp::kEq, Value("Cash")}});
  auto before = engine.value()->Query(probe);
  ASSERT_TRUE(before.ok());

  FaultInjector::Global().Arm("ingest.merge", ErrorSpec());
  Status st =
      ingestor.value()->Append(BoxRows(*full_, base_rows_, base_rows_ + 500));
  EXPECT_FALSE(st.ok());
  // Rows are appended + pending, but the cube is atomically at the
  // previous generation and serves the exact same sample, now honestly
  // tagged stale.
  EXPECT_EQ(table_->num_rows(), base_rows_ + 500);
  EXPECT_EQ(ingestor.value()->PendingRows(), 500u);
  EXPECT_EQ(engine.value()->generation(), gen0);
  auto during = engine.value()->Query(probe);
  ASSERT_TRUE(during.ok());
  EXPECT_TRUE(during.value().result.stale);
  EXPECT_EQ(during.value().result.generation, gen0);
  EXPECT_EQ(during.value().result.sample.ToRowIds(),
            before.value().result.sample.ToRowIds());

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);
  EXPECT_EQ(engine.value()->generation(), gen0 + 1);
  auto after = engine.value()->Query(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().result.stale);
}

TEST_F(IngestFaultTest, ResampleFaultKeepsPreviousGenerationOnBothEngines) {
  ScopedFaultClear clear;
  for (size_t k : {size_t{1}, size_t{4}}) {
    ShardedTabulaOptions sopts;
    sopts.base = options_;
    sopts.num_shards = k;
    sopts.partition = ShardPartition::kRange;
    std::vector<RowId> base(base_rows_);
    for (RowId r = 0; r < base_rows_; ++r) base[r] = r;
    auto live = full_->TakeRows(base);
    auto engine = ShardedTabula::Initialize(*live, sopts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const uint64_t gen0 = engine.value()->generation();
    auto ingestor =
        Ingestor::Make(engine.value().get(), live.get(), IngestorOptions{});
    ASSERT_TRUE(ingestor.ok());

    FaultInjector::Global().Arm("ingest.resample", ErrorSpec());
    Status st =
        ingestor.value()->Append(BoxRows(*full_, base_rows_, base_rows_ + 400));
    EXPECT_FALSE(st.ok()) << "k=" << k;
    EXPECT_EQ(engine.value()->generation(), gen0) << "k=" << k;
    EXPECT_EQ(ingestor.value()->PendingRows(), 400u) << "k=" << k;

    FaultInjector::Global().DisarmAll();
    ASSERT_TRUE(ingestor.value()->Drain().ok()) << "k=" << k;
    EXPECT_EQ(engine.value()->generation(), gen0 + 1) << "k=" << k;
    EXPECT_EQ(ingestor.value()->PendingRows(), 0u) << "k=" << k;
  }
}

TEST_F(IngestFaultTest, ThrownExceptionMidCycleAlsoPreservesGeneration) {
  ScopedFaultClear clear;
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  const uint64_t gen0 = engine.value()->generation();
  auto ingestor =
      Ingestor::Make(engine.value().get(), table_.get(), IngestorOptions{});
  ASSERT_TRUE(ingestor.ok());

  FaultSpec spec = ErrorSpec();
  spec.throw_exception = true;
  FaultInjector::Global().Arm("ingest.resample", spec);
  bool threw = false;
  try {
    (void)ingestor.value()->Append(
        BoxRows(*full_, base_rows_, base_rows_ + 200));
  } catch (const std::exception&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(engine.value()->generation(), gen0);

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  EXPECT_EQ(engine.value()->generation(), gen0 + 1);
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);
}

/// Intermittent faults (every 3rd hit) across many batches: the system
/// keeps accepting what it can, never commits a broken state, and the
/// final Drain() converges to the same row count a fault-free run has.
TEST_F(IngestFaultTest, IntermittentMergeFaultsEventuallyConverge) {
  ScopedFaultClear clear;
  auto engine = Tabula::Initialize(*table_, options_);
  ASSERT_TRUE(engine.ok());
  auto ingestor =
      Ingestor::Make(engine.value().get(), table_.get(), IngestorOptions{});
  ASSERT_TRUE(ingestor.ok());

  FaultSpec spec = ErrorSpec();
  spec.every_nth = 3;
  FaultInjector::Global().Arm("ingest.merge", spec);
  for (size_t b = 0; b < 6; ++b) {
    // Some of these fail their inline cycle; the rows still land.
    (void)ingestor.value()->Append(BoxRows(
        *full_, base_rows_ + b * 100, base_rows_ + (b + 1) * 100));
  }
  EXPECT_EQ(table_->num_rows(), base_rows_ + 600);

  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(ingestor.value()->Drain().ok());
  EXPECT_EQ(ingestor.value()->PendingRows(), 0u);
  auto answer = engine.value()->Query(
      QueryRequest({{"payment_type", CompareOp::kEq, Value("Cash")}}));
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer.value().result.stale);
}

}  // namespace
}  // namespace tabula
